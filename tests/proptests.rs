//! Property-based tests over the simulation substrate and the analysis
//! algorithms, spanning crates through the public facade.

use proptest::prelude::*;

use hang_doctor_repro::appmodel::{
    build_run, ActionSpec, ApiId, ApiKind, ApiSpec, App, BugSpec, Call, CompiledApp, CostSpec,
    Dist, EventSpec, ProfileKind, Schedule,
};
use hang_doctor_repro::hangdoctor::{pearson, CounterDiffs, Filter, SChecker, SymptomThresholds};
use hang_doctor_repro::simrt::{nominal_duration, SimConfig, SimTime, MILLIS, NUM_EVENTS};

/// Strategy: one API with random (bounded) costs.
fn arb_api(idx: usize) -> impl Strategy<Value = ApiSpec> {
    (
        0u64..200, // cpu ms
        0u64..300, // io ms
        0u32..30,  // frames
        prop_oneof![
            Just(ProfileKind::Ui),
            Just(ProfileKind::Compute),
            Just(ProfileKind::MemoryHeavy),
            Just(ProfileKind::IoStub),
        ],
        1u32..6, // io chunks
    )
        .prop_map(move |(cpu, io, frames, profile, chunks)| {
            ApiSpec::new(
                &format!("gen.pkg.Class{idx}.method{idx}"),
                10 + idx as u32,
                ApiKind::Blocking { known_since: None },
                CostSpec {
                    cpu: Dist::new(cpu * MILLIS, 0.2),
                    io: Dist::new(io * MILLIS, 0.2),
                    profile,
                    frames: Dist::new(frames as u64, 0.2),
                    frame_ns: 4 * MILLIS,
                    manifest_p: 1.0,
                    light_scale: 1.0,
                    io_chunks: chunks,
                    network: false,
                },
            )
        })
}

/// Strategy: a small random app (1-3 actions, 1-3 calls each).
fn arb_app() -> impl Strategy<Value = App> {
    let apis = proptest::collection::vec(0usize..4, 1..4).prop_flat_map(|_| {
        (
            arb_api(0),
            arb_api(1),
            arb_api(2),
            proptest::collection::vec(
                (0usize..3, proptest::collection::vec(0usize..3, 1..4)),
                1..4,
            ),
        )
    });
    apis.prop_map(|(a0, a1, a2, action_specs)| {
        let apis = vec![a0, a1, a2];
        let actions = action_specs
            .into_iter()
            .enumerate()
            .map(|(i, (_h, calls))| {
                ActionSpec::new(
                    i as u64,
                    &format!("action {i}"),
                    vec![EventSpec::new(
                        &format!("gen.app.Main.handler{i}"),
                        (i + 1) as u32,
                        calls.into_iter().map(|c| Call::direct(ApiId(c))).collect(),
                    )],
                )
            })
            .collect();
        App {
            name: "GenApp".into(),
            package: "gen.app".into(),
            category: "Tools".into(),
            downloads: 1,
            commit: "deadbee".into(),
            apis,
            actions,
            executors: Vec::new(),
            bugs: Vec::<BugSpec>::new(),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every scheduled execution completes, in order, with a response at
    /// least as long as its sampled main-thread work.
    #[test]
    fn simulation_completes_all_actions(app in arb_app(), seed in 0u64..1000) {
        let compiled = CompiledApp::new(app.clone());
        let mut arrivals = Vec::new();
        let mut t = SimTime::from_ms(100);
        for a in &app.actions {
            arrivals.push((t, a.uid));
            t += 3_000 * MILLIS;
        }
        let schedule = Schedule { arrivals };
        let mut run = build_run(&compiled, &schedule, SimConfig::default(), seed);
        let summary = run.sim.run();
        prop_assert!(!summary.truncated);
        prop_assert_eq!(summary.actions_completed, app.actions.len());
        for (i, rec) in run.sim.records().iter().enumerate() {
            prop_assert_eq!(rec.exec_id.0, i as u64 + 1);
            // Completion order equals arrival order.
            prop_assert_eq!(rec.uid, schedule.arrivals[i].1);
            prop_assert!(rec.ended.as_ns() >= rec.began.as_ns());
        }
    }

    /// The same (app, schedule, seed) triple reproduces identical
    /// timelines and counters.
    #[test]
    fn simulation_is_deterministic(app in arb_app(), seed in 0u64..1000) {
        let compiled = CompiledApp::new(app.clone());
        let uid = app.actions[0].uid;
        let schedule = Schedule { arrivals: vec![(SimTime::from_ms(50), uid)] };
        let run_once = || {
            let mut run = build_run(&compiled, &schedule, SimConfig::default(), seed);
            run.sim.run();
            (
                run.sim.records().iter().map(|r| r.max_response_ns()).collect::<Vec<_>>(),
                run.sim.app_cpu_ns(),
                run.sim.thread_counter(run.sim.main_tid(), hang_doctor_repro::simrt::HwEvent::ContextSwitches),
            )
        };
        prop_assert_eq!(run_once(), run_once());
    }

    /// The response of a single-event action is bounded below by the
    /// event's nominal busy time (CPU + I/O cannot be skipped).
    #[test]
    fn response_at_least_nominal_busy(app in arb_app(), seed in 0u64..1000) {
        let compiled = CompiledApp::new(app.clone());
        let uid = app.actions[0].uid;
        let schedule = Schedule { arrivals: vec![(SimTime::from_ms(50), uid)] };
        let mut run = build_run(&compiled, &schedule, SimConfig::default(), seed);
        // Recompute the sampled request with the same derivation seed to
        // get the nominal duration.
        let mut rng = hang_doctor_repro::simrt::SimRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let (req, _) = compiled.sample(uid, &mut rng);
        let (cpu, io) = nominal_duration(&req.events[0]);
        run.sim.run();
        let resp = run.sim.records()[0].max_response_ns();
        prop_assert!(
            resp >= cpu + io,
            "response {} < nominal busy {}",
            resp,
            cpu + io
        );
        // And bounded above by a generous dilation factor.
        prop_assert!(resp <= (cpu + io) * 3 + 50 * MILLIS);
    }

    /// Pearson is always within [-1, 1] and symmetric.
    #[test]
    fn pearson_bounds(pairs in proptest::collection::vec((-1e9f64..1e9, -1e9f64..1e9), 2..64)) {
        let xs: Vec<f64> = pairs.iter().map(|(a, _)| *a).collect();
        let ys: Vec<f64> = pairs.iter().map(|(_, b)| *b).collect();
        let r = pearson(&xs, &ys);
        prop_assert!((-1.0001..=1.0001).contains(&r), "r = {r}");
        let r2 = pearson(&ys, &xs);
        prop_assert!((r - r2).abs() < 1e-9);
    }

    /// The S-Checker is monotone: raising any difference never turns a
    /// suspicious verdict clean.
    #[test]
    fn schecker_is_monotone(
        cs in -500.0f64..500.0,
        tc in -5e8f64..5e8,
        pf in -5e3f64..5e3,
        bump in 0.0f64..1e9,
    ) {
        let checker = SChecker::new(SymptomThresholds::default());
        let base = checker.check(CounterDiffs { context_switches: cs, task_clock: tc, page_faults: pf });
        let bumped = checker.check(CounterDiffs {
            context_switches: cs + bump.min(1e3),
            task_clock: tc + bump,
            page_faults: pf + bump.min(1e5),
        });
        if base.suspicious {
            prop_assert!(bumped.suspicious);
        }
    }

    /// Filter confusion counts always partition the sample set.
    #[test]
    fn filter_confusion_partitions(
        labels in proptest::collection::vec(any::<bool>(), 1..60),
        threshold in -100.0f64..100.0,
    ) {
        use hang_doctor_repro::hangdoctor::{Condition, DiffMode, TrainingSample};
        use hang_doctor_repro::simrt::HwEvent;
        let samples: Vec<TrainingSample> = labels
            .iter()
            .enumerate()
            .map(|(i, &label)| {
                let mut diff = vec![0.0; NUM_EVENTS];
                diff[HwEvent::ContextSwitches.index()] = (i as f64) - 30.0;
                TrainingSample { label, diff: diff.clone(), main_only: diff, source: String::new() }
            })
            .collect();
        let filter = Filter {
            conditions: vec![Condition { event: HwEvent::ContextSwitches, threshold }],
        };
        let (tp, fp, fneg, tn) = filter.evaluate(&samples, DiffMode::MainMinusRender);
        prop_assert_eq!(tp + fp + fneg + tn, samples.len());
        let bugs = labels.iter().filter(|&&l| l).count();
        prop_assert_eq!(tp + fneg, bugs);
    }

    /// Offloading every call keeps the app responsive regardless of the
    /// sampled costs (the "fix" always works).
    #[test]
    fn offloading_everything_always_fixes(app in arb_app(), seed in 0u64..500) {
        let mut fixed = app.clone();
        for action in &mut fixed.actions {
            for ev in &mut action.events {
                for call in &mut ev.calls {
                    call.offloaded = true;
                }
            }
        }
        let compiled = CompiledApp::new(fixed.clone());
        let uid = fixed.actions[0].uid;
        let schedule = Schedule { arrivals: vec![(SimTime::from_ms(50), uid)] };
        let mut run = build_run(&compiled, &schedule, SimConfig::default(), seed);
        run.sim.run();
        let resp = run.sim.records()[0].max_response_ns();
        prop_assert!(resp < 50 * MILLIS, "offloaded app still hangs: {resp}");
    }
}

// ---------------------------------------------------------------------
// Merge algebra. The fleet engine folds shard results in job order but
// must be free to regroup, reorder, or retry shards; that is sound only
// if the merge operators form join-semilattices. Generate random small
// reports/databases and check associativity, commutativity, and
// idempotence via the canonical JSON encoding (the shim's serde sorts
// map keys, so equal values encode to equal strings).

use hang_doctor_repro::hangdoctor::{BlockingApiDb, HangBugReport, RootCause, RootKind};
use hang_doctor_repro::simrt::ActionUid;

/// One mutation applied while building a random report.
#[derive(Clone, Debug)]
enum ReportOp {
    /// `note_execution(device, uid, name)`.
    Exec { device: u32, uid: u64, name: usize },
    /// `record_bug(device, uid, root, hang_ns)`.
    Bug {
        device: u32,
        uid: u64,
        sym: usize,
        file: usize,
        line: u32,
        kind: bool,
        hang_ms: u64,
    },
}

const OP_NAMES: [&str; 3] = ["open inbox", "send mail", "sync folders"];
const OP_SYMBOLS: [&str; 3] = ["com.a.A.x", "com.b.B.y", "com.c.C.z"];
const OP_FILES: [&str; 2] = ["A.java", "B.java"];

fn arb_report_op() -> impl Strategy<Value = ReportOp> {
    prop_oneof![
        (1u32..5, 0u64..4, 0usize..OP_NAMES.len()).prop_map(|(device, uid, name)| ReportOp::Exec {
            device,
            uid,
            name
        }),
        (
            1u32..5,
            0u64..4,
            0usize..OP_SYMBOLS.len(),
            0usize..OP_FILES.len(),
            1u32..50,
            any::<bool>(),
            1u64..400,
        )
            .prop_map(|(device, uid, sym, file, line, kind, hang_ms)| {
                ReportOp::Bug {
                    device,
                    uid,
                    sym,
                    file,
                    line,
                    kind,
                    hang_ms,
                }
            }),
    ]
}

fn build_report(ops: &[ReportOp]) -> HangBugReport {
    let mut report = HangBugReport::new("GenApp");
    for op in ops {
        match op {
            ReportOp::Exec { device, uid, name } => {
                report.note_execution(*device, ActionUid(*uid), OP_NAMES[*name]);
            }
            ReportOp::Bug {
                device,
                uid,
                sym,
                file,
                line,
                kind,
                hang_ms,
            } => {
                let root = RootCause {
                    symbol: OP_SYMBOLS[*sym].to_string(),
                    file: OP_FILES[*file].to_string(),
                    line: *line,
                    occurrence_factor: 1.0,
                    kind: if *kind {
                        RootKind::BlockingApi
                    } else {
                        RootKind::SelfDeveloped
                    },
                };
                report.record_bug(*device, ActionUid(*uid), &root, hang_ms * MILLIS);
            }
        }
    }
    report
}

fn arb_report() -> impl Strategy<Value = HangBugReport> {
    proptest::collection::vec(arb_report_op(), 0..12).prop_map(|ops| build_report(&ops))
}

/// One mutation applied while building a random API database.
#[derive(Clone, Debug)]
enum DbOp {
    Documented(u16),
    Discovered { sym: usize, app: usize },
}

const DB_APPS: [&str; 3] = ["K9-mail", "AndStatus", "Zulip"];

fn arb_apidb() -> impl Strategy<Value = BlockingApiDb> {
    let op = prop_oneof![
        (2009u16..2018).prop_map(DbOp::Documented),
        (0usize..OP_SYMBOLS.len(), 0usize..DB_APPS.len())
            .prop_map(|(sym, app)| DbOp::Discovered { sym, app }),
    ];
    proptest::collection::vec(op, 0..8).prop_map(|ops| {
        let mut db = BlockingApiDb::new();
        for op in &ops {
            match op {
                DbOp::Documented(year) => db.merge(&BlockingApiDb::documented(*year)),
                DbOp::Discovered { sym, app } => {
                    db.add_discovered(OP_SYMBOLS[*sym], DB_APPS[*app]);
                }
            }
        }
        db
    })
}

fn json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("serializable")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c) for hang bug reports.
    #[test]
    fn report_merge_is_associative(
        a in arb_report(), b in arb_report(), c in arb_report(),
    ) {
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(json(&left), json(&right));
    }

    /// a ⊔ b == b ⊔ a for hang bug reports.
    #[test]
    fn report_merge_is_commutative(a in arb_report(), b in arb_report()) {
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(json(&ab), json(&ba));
    }

    /// a ⊔ a == a for hang bug reports (shard retries are harmless).
    #[test]
    fn report_merge_is_idempotent(a in arb_report()) {
        let before = json(&a);
        let mut merged = a.clone();
        merged.merge(&a);
        prop_assert_eq!(json(&merged), before);
    }

    /// The same three laws for the blocking-API database.
    #[test]
    fn apidb_merge_is_a_semilattice_join(
        a in arb_apidb(), b in arb_apidb(), c in arb_apidb(),
    ) {
        // Associative.
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(json(&left), json(&right));
        // Commutative.
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(json(&ab), json(&ba));
        // Idempotent.
        let before = json(&ab);
        ab.merge(&a);
        ab.merge(&b);
        prop_assert_eq!(json(&ab), before);
    }
}

/// Deterministic (non-proptest) sanity for the generated-app strategy:
/// compiled apps always validate.
#[test]
fn generated_apps_validate() {
    use proptest::strategy::ValueTree;
    use proptest::test_runner::TestRunner;
    let mut runner = TestRunner::deterministic();
    for _ in 0..50 {
        let app = arb_app().new_tree(&mut runner).unwrap().current();
        assert!(app.validate().is_empty());
    }
}
