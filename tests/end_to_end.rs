//! Cross-crate integration tests: the full pipeline from app model to
//! diagnosed report, exercised through the public facade.

use hang_doctor_repro::appmodel::corpus::{full_corpus, table1, table5};
use hang_doctor_repro::appmodel::{
    build_run, generate_schedule, round_robin_schedule, CompiledApp, TraceParams,
};
use hang_doctor_repro::baselines::{missed_bugs, TimeoutDetector};
use hang_doctor_repro::hangdoctor::{
    shared, ActionState, BlockingApiDb, HangDoctor, HangDoctorConfig,
};
use hang_doctor_repro::metrics::{bugs_flagged, score, OverheadReport, PERCEIVABLE_NS};
use hang_doctor_repro::perfmon::CostModel;
use hang_doctor_repro::simrt::{SimConfig, SimRng, MILLIS};

#[test]
fn hang_doctor_full_pipeline_on_k9() {
    let app = table5::k9mail();
    let compiled = CompiledApp::new(app.clone());
    let schedule = round_robin_schedule(&app, 4, 3_000);
    let db = shared(BlockingApiDb::documented(2017));
    let mut run = build_run(&compiled, &schedule, SimConfig::default(), 1);
    let (probe, out) = HangDoctor::new(
        HangDoctorConfig::default(),
        &app.name,
        &app.package,
        1,
        Some(db.clone()),
    );
    run.sim.add_probe(Box::new(probe));
    let summary = run.sim.run();
    assert!(!summary.truncated);
    assert_eq!(summary.actions_completed, schedule.len());

    let out = out.borrow();
    // Both K9 bugs end in the HangBug state and in the report.
    assert_eq!(out.states.in_state(ActionState::HangBug).len(), 2);
    let report_symbols: Vec<String> = out
        .report
        .entries()
        .iter()
        .map(|e| e.symbol.clone())
        .collect();
    assert!(report_symbols.iter().any(|s| s.contains("HtmlCleaner")));
    assert!(report_symbols.iter().any(|s| s.contains("JSONObject")));
    // The unknown APIs reached the shared database.
    assert!(db.lock().contains("org.htmlcleaner.HtmlCleaner.clean"));
    // Report serializes round-trip.
    let json = serde_json::to_string(&out.report).unwrap();
    let back: hang_doctor_repro::hangdoctor::HangBugReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.entries(), out.report.entries());
}

#[test]
fn hd_flags_are_a_subset_of_ti_flags_with_better_precision() {
    // TI(100ms) traces every soft hang; Hang Doctor must never flag an
    // execution TI would not flag, and its precision must be higher.
    let app = table5::cyclestreets();
    let compiled = CompiledApp::new(app.clone());
    let mut rng = SimRng::seed_from_u64(33);
    let schedule = generate_schedule(
        &app,
        TraceParams {
            actions: 80,
            think_min_ms: 1_500,
            think_max_ms: 3_000,
        },
        &mut rng,
    );
    let hd = hang_doctor_repro::bench::run_detector_compiled(
        &compiled,
        &schedule,
        33,
        hang_doctor_repro::bench::DetectorKind::HangDoctor,
        None,
    );
    let ti = hang_doctor_repro::bench::run_detector_compiled(
        &compiled,
        &schedule,
        33,
        hang_doctor_repro::bench::DetectorKind::Ti(100 * MILLIS),
        None,
    );
    for exec in &hd.flagged {
        assert!(
            ti.flagged.contains(exec),
            "HD flagged {exec:?} but TI did not"
        );
    }
    let hd_score = score(&hd.records, &hd.truths, &hd.flagged);
    let ti_score = score(&ti.records, &ti.truths, &ti.flagged);
    assert!(
        hd_score.precision() > ti_score.precision(),
        "HD {:.2} vs TI {:.2}",
        hd_score.precision(),
        ti_score.precision()
    );
    // And HD recovers the same distinct bugs.
    let hd_bugs = bugs_flagged(&hd.records, &hd.truths, &hd.flagged);
    let ti_bugs = bugs_flagged(&ti.records, &ti.truths, &ti.flagged);
    assert_eq!(hd_bugs, ti_bugs, "HD and TI disagree on distinct bugs");
}

#[test]
fn fixed_apps_stop_hanging_and_stop_being_flagged() {
    // The developer workflow: fix what Hang Doctor reported and verify
    // "the modified app did not show any more soft hangs" (Section 4.2).
    let app = table5::uoitdc();
    let fixed = app.with_all_bugs_fixed();
    let compiled = CompiledApp::new(fixed.clone());
    let schedule = round_robin_schedule(&fixed, 4, 3_000);
    let mut run = build_run(&compiled, &schedule, SimConfig::default(), 5);
    let (probe, out) = HangDoctor::new(
        HangDoctorConfig::default(),
        &fixed.name,
        &fixed.package,
        1,
        None,
    );
    run.sim.add_probe(Box::new(probe));
    run.sim.run();
    let out = out.borrow();
    // No bug diagnoses and no bug-caused hangs at all.
    assert!(
        out.detections.iter().all(|d| !d.is_bug()),
        "{:?}",
        out.detections
    );
    for truth in &run.truths {
        assert!(!truth.is_buggy(PERCEIVABLE_NS));
    }
    assert!(out.report.entries().is_empty());
}

#[test]
fn offline_scan_improves_after_field_study() {
    // Figure 2(a)'s loop: run Hang Doctor on K9 and SageMath, then
    // re-scan SkyTube-like apps... here: total offline misses across the
    // study apps must strictly decrease after the learned DB update.
    let db = shared(BlockingApiDb::documented(2017));
    let before: usize = table5::apps()
        .iter()
        .map(|a| missed_bugs(a, &db.lock()).len())
        .sum();
    for app in [table5::k9mail(), table5::sagemath()] {
        let compiled = CompiledApp::new(app.clone());
        let schedule = round_robin_schedule(&app, 3, 3_000);
        let mut run = build_run(&compiled, &schedule, SimConfig::default(), 9);
        let (probe, _out) = HangDoctor::new(
            HangDoctorConfig::default(),
            &app.name,
            &app.package,
            1,
            Some(db.clone()),
        );
        run.sim.add_probe(Box::new(probe));
        run.sim.run();
    }
    let after: usize = table5::apps()
        .iter()
        .map(|a| missed_bugs(a, &db.lock()).len())
        .sum();
    assert!(
        after < before,
        "offline misses should drop: {before} -> {after}"
    );
}

#[test]
fn overhead_is_deterministic_and_bounded() {
    let app = table1::websms();
    let compiled = CompiledApp::new(app.clone());
    let schedule = round_robin_schedule(&app, 3, 2_500);
    let run_once = || {
        let mut run = build_run(&compiled, &schedule, SimConfig::default(), 77);
        let (probe, _out) = HangDoctor::new(
            HangDoctorConfig::default(),
            &app.name,
            &app.package,
            1,
            None,
        );
        run.sim.add_probe(Box::new(probe));
        run.sim.run();
        OverheadReport::from_sim(&run.sim)
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a, b, "overhead must be reproducible");
    assert!(a.avg_pct() < 15.0, "overhead {:.2}%", a.avg_pct());
}

#[test]
fn healthy_corpus_apps_produce_no_bug_reports() {
    // The 90 generated field apps are bug-free; Hang Doctor must not
    // report anything on them (sampling a few).
    let corpus = full_corpus(42);
    let healthy: Vec<_> = corpus
        .iter()
        .filter(|a| a.bugs.is_empty())
        .take(4)
        .collect();
    assert_eq!(healthy.len(), 4);
    for app in healthy {
        let compiled = CompiledApp::new(app.clone());
        let schedule = round_robin_schedule(app, 3, 2_500);
        let mut run = build_run(&compiled, &schedule, SimConfig::default(), 55);
        let (probe, out) = HangDoctor::new(
            HangDoctorConfig::default(),
            &app.name,
            &app.package,
            1,
            None,
        );
        run.sim.add_probe(Box::new(probe));
        run.sim.run();
        let out = out.borrow();
        assert!(
            out.report.entries().is_empty(),
            "{}: spurious report {:?}",
            app.name,
            out.report.entries()
        );
        assert!(out.states.in_state(ActionState::HangBug).is_empty());
    }
}

#[test]
fn ti_with_anr_timeout_matches_android_behaviour() {
    // Android's 5 s ANR tool sees nothing on any study app trace.
    for app in [table5::k9mail(), table5::omninotes()] {
        let compiled = CompiledApp::new(app.clone());
        let schedule = round_robin_schedule(&app, 2, 2_500);
        let mut run = build_run(&compiled, &schedule, SimConfig::default(), 3);
        let (probe, out) = TimeoutDetector::new(5_000 * MILLIS, 10 * MILLIS, CostModel::default());
        run.sim.add_probe(Box::new(probe));
        run.sim.run();
        assert!(out.borrow().traced.is_empty(), "{}", app.name);
    }
}
