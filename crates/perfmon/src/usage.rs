//! Coarse resource-utilization sampling (`/proc` analog).
//!
//! The utilization-based baselines (UT in the paper, after Pelleg et al.
//! and Zhu et al.) periodically read the main thread's CPU time and
//! memory traffic and compare them against static thresholds. This
//! module provides that read, priced per the shared [`CostModel`].

use hd_simrt::{HwEvent, ProbeCtx, ThreadId};
use serde::{Deserialize, Serialize};

use crate::config::CostModel;

/// One utilization snapshot of a thread.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ResourceUsage {
    /// Accumulated CPU time, ns (from `/proc/<pid>/stat`).
    pub cpu_ns: f64,
    /// Accumulated memory accesses (traffic proxy, from `/proc/<pid>/io`).
    pub mem_accesses: f64,
    /// Accumulated page faults (memory-pressure proxy).
    pub page_faults: f64,
}

impl ResourceUsage {
    /// Samples the utilization counters of `tid`, charging the poll cost.
    pub fn sample(ctx: &mut ProbeCtx<'_>, tid: ThreadId, costs: &CostModel) -> ResourceUsage {
        ctx.charge_cpu(costs.util_poll_ns);
        ctx.charge_mem(costs.util_poll_bytes);
        ResourceUsage {
            cpu_ns: ctx.counter(tid, HwEvent::TaskClock),
            mem_accesses: ctx.counter(tid, HwEvent::RawMemAccess),
            page_faults: ctx.counter(tid, HwEvent::PageFaults),
        }
    }

    /// Returns the delta `self - earlier` (element-wise, clamped at 0).
    pub fn since(&self, earlier: &ResourceUsage) -> ResourceUsage {
        ResourceUsage {
            cpu_ns: (self.cpu_ns - earlier.cpu_ns).max(0.0),
            mem_accesses: (self.mem_accesses - earlier.mem_accesses).max(0.0),
            page_faults: (self.page_faults - earlier.page_faults).max(0.0),
        }
    }

    /// CPU utilization over a window of `window_ns`.
    pub fn cpu_utilization(&self, window_ns: u64) -> f64 {
        if window_ns == 0 {
            return 0.0;
        }
        self.cpu_ns / window_ns as f64
    }

    /// Page faults per millisecond over a window of `window_ns`.
    pub fn fault_rate_per_ms(&self, window_ns: u64) -> f64 {
        if window_ns == 0 {
            return 0.0;
        }
        self.page_faults / (window_ns as f64 / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_clamps_negative() {
        let a = ResourceUsage {
            cpu_ns: 10.0,
            mem_accesses: 5.0,
            page_faults: 2.0,
        };
        let b = ResourceUsage {
            cpu_ns: 4.0,
            mem_accesses: 9.0,
            page_faults: 7.0,
        };
        let d = b.since(&a);
        assert_eq!(d.cpu_ns, 0.0);
        assert_eq!(d.mem_accesses, 4.0);
        assert_eq!(d.page_faults, 5.0);
        let d = a.since(&b);
        assert_eq!(d.cpu_ns, 6.0);
        assert_eq!(d.mem_accesses, 0.0);
        assert_eq!(d.page_faults, 0.0);
    }

    #[test]
    fn utilization_over_window() {
        let u = ResourceUsage {
            cpu_ns: 50.0,
            mem_accesses: 0.0,
            page_faults: 8.0,
        };
        assert!((u.cpu_utilization(100) - 0.5).abs() < 1e-12);
        assert_eq!(u.cpu_utilization(0), 0.0);
        assert!((u.fault_rate_per_ms(2_000_000) - 4.0).abs() < 1e-12);
        assert_eq!(u.fault_rate_per_ms(0), 0.0);
    }
}
