//! Periodic main-thread stack sampling.
//!
//! The Diagnoser's Trace Collector "collects stack traces of the main
//! thread until the end of the soft hang". [`StackSampler`] packages the
//! timer bookkeeping: arm it when a hang is detected, feed it the probe's
//! timer callbacks, and stop it at dispatch end to get the samples.

use hd_faults::FaultPlan;
use hd_simrt::{FrameId, ProbeCtx, SimTime};
use serde::{Deserialize, Serialize};

use crate::config::CostModel;

/// One collected stack sample.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StackSample {
    /// When the sample was taken.
    pub at: SimTime,
    /// Main-thread stack, outermost frame first.
    pub frames: Vec<FrameId>,
}

/// Everything one sampling window produced, including what was lost to
/// injected faults — the Diagnoser uses the loss to decide whether the
/// window is trustworthy enough to analyze.
#[derive(Clone, Debug, Default)]
pub struct SampleWindow {
    /// Samples that survived.
    pub samples: Vec<StackSample>,
    /// Samples attempted but dropped by fault injection.
    pub dropped: usize,
    /// Surviving samples that were truncated by fault injection.
    pub truncated: usize,
}

impl SampleWindow {
    /// Fraction of attempted samples that were lost (`0.0` when nothing
    /// was attempted).
    pub fn loss_fraction(&self) -> f64 {
        let attempted = self.samples.len() + self.dropped;
        if attempted == 0 {
            0.0
        } else {
            self.dropped as f64 / attempted as f64
        }
    }
}

/// Periodic stack-trace collector driven by probe timers.
#[derive(Clone, Debug)]
pub struct StackSampler {
    period_ns: u64,
    token: u64,
    active: bool,
    armed_token: u64,
    samples: Vec<StackSample>,
    dropped: usize,
    truncated: usize,
    causal: bool,
    costs: CostModel,
}

impl StackSampler {
    /// Creates an idle sampler with the given period and timer-token
    /// namespace tag (so one probe can multiplex several samplers).
    pub fn new(period_ns: u64, token: u64, costs: CostModel) -> StackSampler {
        StackSampler {
            period_ns,
            token,
            active: false,
            armed_token: 0,
            samples: Vec::new(),
            dropped: 0,
            truncated: 0,
            causal: false,
            costs,
        }
    }

    /// Enables or disables causal unwinding: when the main thread is
    /// blocked on a future join at sample time, the sample extends
    /// across the wait edge into the worker (or queued task) holding the
    /// join up, so the culprit frames appear beneath the join site.
    pub fn causal(mut self, on: bool) -> StackSampler {
        self.causal = on;
        self
    }

    /// Returns whether sampling is currently active.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Starts a collection window: takes an immediate sample and arms the
    /// periodic timer.
    pub fn begin(&mut self, ctx: &mut ProbeCtx<'_>) {
        self.samples.clear();
        self.dropped = 0;
        self.truncated = 0;
        self.active = true;
        self.take_sample(ctx, None);
        self.arm(ctx, None);
    }

    /// Fault-aware [`begin`]: the window may start late (sampler-start
    /// latency — the immediate sample is then skipped and the first
    /// sample arrives with the delayed timer), and every sample is
    /// subject to drop/truncation faults.
    ///
    /// [`begin`]: StackSampler::begin
    pub fn begin_with(&mut self, ctx: &mut ProbeCtx<'_>, faults: &mut FaultPlan) {
        self.samples.clear();
        self.dropped = 0;
        self.truncated = 0;
        self.active = true;
        if let Some(delay_ns) = faults.sampler_latency_ns() {
            // Late start: no immediate sample; the first one arrives a
            // period (plus the injected latency) from now.
            self.armed_token = self.token;
            let at = ctx.now() + self.period_ns + delay_ns;
            ctx.set_timer(faults.jitter_deadline(at), self.token);
            return;
        }
        self.take_sample(ctx, Some(faults));
        self.arm(ctx, Some(faults));
    }

    /// Handles a probe timer callback. Returns `true` if the token
    /// belonged to this sampler.
    pub fn on_timer(&mut self, ctx: &mut ProbeCtx<'_>, token: u64) -> bool {
        if token != self.token {
            return false;
        }
        if !self.active {
            // A stale timer from a window that already ended.
            return true;
        }
        self.take_sample(ctx, None);
        self.arm(ctx, None);
        true
    }

    /// Fault-aware [`on_timer`].
    ///
    /// [`on_timer`]: StackSampler::on_timer
    pub fn on_timer_with(
        &mut self,
        ctx: &mut ProbeCtx<'_>,
        token: u64,
        faults: &mut FaultPlan,
    ) -> bool {
        if token != self.token {
            return false;
        }
        if !self.active {
            return true;
        }
        self.take_sample(ctx, Some(faults));
        self.arm(ctx, Some(faults));
        true
    }

    /// Ends the window and returns the collected samples.
    pub fn end(&mut self) -> Vec<StackSample> {
        self.end_window().samples
    }

    /// Ends the window and returns everything it produced, including the
    /// fault-loss accounting.
    pub fn end_window(&mut self) -> SampleWindow {
        self.active = false;
        SampleWindow {
            samples: std::mem::take(&mut self.samples),
            dropped: std::mem::take(&mut self.dropped),
            truncated: std::mem::take(&mut self.truncated),
        }
    }

    /// Number of samples collected so far in this window.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns whether no samples were collected yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn take_sample(&mut self, ctx: &mut ProbeCtx<'_>, faults: Option<&mut FaultPlan>) {
        // The attempt is always charged: a dropped sample still cost the
        // sampling thread its unwind work.
        ctx.charge_cpu(self.costs.stack_sample_ns);
        ctx.charge_mem(self.costs.stack_sample_bytes);
        ctx.note_stack_sample();
        if let Some(faults) = faults {
            if faults.drop_sample() {
                self.dropped += 1;
                return;
            }
            let mut frames = self.unwind(ctx);
            if frames.len() > 1 && faults.truncate_sample() {
                // A partial unwind keeps only the outermost half of the
                // stack — the innermost (likely root-cause) frames are
                // the ones lost.
                frames.truncate(frames.len().div_ceil(2));
                self.truncated += 1;
            }
            self.samples.push(StackSample {
                at: ctx.now(),
                frames,
            });
            return;
        }
        self.samples.push(StackSample {
            at: ctx.now(),
            frames: self.unwind(ctx),
        });
    }

    fn unwind(&self, ctx: &ProbeCtx<'_>) -> Vec<FrameId> {
        if self.causal {
            ctx.main_stack_causal()
        } else {
            ctx.main_stack()
        }
    }

    fn arm(&mut self, ctx: &mut ProbeCtx<'_>, faults: Option<&mut FaultPlan>) {
        self.armed_token = self.token;
        let at = ctx.now() + self.period_ns;
        let at = match faults {
            Some(faults) => faults.jitter_deadline(at),
            None => at,
        };
        ctx.set_timer(at, self.token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    use hd_simrt::{
        ActionRequest, ActionUid, FrameTable, MemProfile, MessageInfo, Probe, SimConfig, SimTime,
        Simulator, Step, MILLIS,
    };

    struct P {
        sampler: StackSampler,
        out: Rc<RefCell<Vec<StackSample>>>,
    }

    impl Probe for P {
        fn on_dispatch_begin(&mut self, ctx: &mut ProbeCtx<'_>, _info: &MessageInfo) {
            self.sampler.begin(ctx);
        }
        fn on_dispatch_end(
            &mut self,
            _ctx: &mut ProbeCtx<'_>,
            _info: &MessageInfo,
            _response_ns: u64,
        ) {
            self.out.borrow_mut().extend(self.sampler.end());
        }
        fn on_timer(&mut self, ctx: &mut ProbeCtx<'_>, token: u64) {
            assert!(self.sampler.on_timer(ctx, token));
        }
    }

    #[test]
    fn samples_cover_the_dispatch_window() {
        let mut table = FrameTable::new();
        let handler = table.intern_new("app.Main.onOpen", "Main.java", 12);
        let api = table.intern_new("org.HtmlCleaner.clean", "HtmlCleaner.java", 25);
        let out = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(SimConfig::default(), table);
        sim.add_probe(Box::new(P {
            sampler: StackSampler::new(10 * MILLIS, 1, CostModel::default()),
            out: out.clone(),
        }));
        sim.schedule_action(
            SimTime::from_ms(1),
            ActionRequest {
                uid: ActionUid(1),
                name: "open email".into(),
                events: vec![vec![
                    Step::Push(handler),
                    Step::Push(api),
                    Step::Cpu {
                        ns: 300 * MILLIS,
                        profile: MemProfile::memory_heavy(),
                    },
                    Step::Pop,
                    Step::Pop,
                ]],
            },
        );
        sim.run();
        let samples = out.borrow();
        // ~300ms of hang sampled every 10ms, plus dilation: ≥ 25 samples.
        assert!(samples.len() >= 25, "got {} samples", samples.len());
        // Nearly all samples show the blocking API on top of the stack.
        let with_api = samples.iter().filter(|s| s.frames.len() == 2).count();
        assert!(with_api as f64 / samples.len() as f64 > 0.9);
        let cost = sim.monitor_cost();
        assert_eq!(cost.stack_samples as usize, samples.len());
    }

    #[test]
    fn stale_timers_after_end_are_ignored() {
        // A sampler that is ended while a timer is still in flight must
        // swallow the late callback without sampling.
        struct Late {
            sampler: StackSampler,
            extra: Rc<RefCell<usize>>,
        }
        impl Probe for Late {
            fn on_dispatch_begin(&mut self, ctx: &mut ProbeCtx<'_>, _info: &MessageInfo) {
                self.sampler.begin(ctx);
                // End immediately: the armed timer becomes stale.
                let n = self.sampler.end().len();
                assert_eq!(n, 1);
            }
            fn on_timer(&mut self, ctx: &mut ProbeCtx<'_>, token: u64) {
                assert!(self.sampler.on_timer(ctx, token));
                *self.extra.borrow_mut() += 1;
                assert!(self.sampler.is_empty());
            }
        }
        let mut table = FrameTable::new();
        let f = table.intern_new("a.B.c", "B.java", 1);
        let extra = Rc::new(RefCell::new(0));
        let mut sim = Simulator::new(SimConfig::default(), table);
        sim.add_probe(Box::new(Late {
            sampler: StackSampler::new(5 * MILLIS, 9, CostModel::default()),
            extra: extra.clone(),
        }));
        sim.schedule_action(
            SimTime::from_ms(1),
            ActionRequest {
                uid: ActionUid(1),
                name: "t".into(),
                events: vec![vec![
                    Step::Push(f),
                    Step::Cpu {
                        ns: 20 * MILLIS,
                        profile: MemProfile::ui(),
                    },
                    Step::Pop,
                ]],
            },
        );
        sim.run();
        assert_eq!(*extra.borrow(), 1);
    }

    #[test]
    fn dropped_and_truncated_samples_are_tallied() {
        use hd_faults::{FaultConfig, FaultPlan};
        struct F {
            sampler: StackSampler,
            faults: FaultPlan,
            out: Rc<RefCell<SampleWindow>>,
        }
        impl Probe for F {
            fn on_dispatch_begin(&mut self, ctx: &mut ProbeCtx<'_>, _info: &MessageInfo) {
                self.sampler.begin_with(ctx, &mut self.faults);
            }
            fn on_dispatch_end(
                &mut self,
                _ctx: &mut ProbeCtx<'_>,
                _info: &MessageInfo,
                _response_ns: u64,
            ) {
                *self.out.borrow_mut() = self.sampler.end_window();
            }
            fn on_timer(&mut self, ctx: &mut ProbeCtx<'_>, token: u64) {
                assert!(self.sampler.on_timer_with(ctx, token, &mut self.faults));
            }
        }
        let mut cfg = FaultConfig::none();
        cfg.rates.dropped_sample = 0.5;
        cfg.rates.truncated_sample = 0.5;
        let mut table = FrameTable::new();
        let handler = table.intern_new("app.Main.onOpen", "Main.java", 12);
        let api = table.intern_new("org.HtmlCleaner.clean", "HtmlCleaner.java", 25);
        let out = Rc::new(RefCell::new(SampleWindow::default()));
        let mut sim = Simulator::new(SimConfig::default(), table);
        sim.add_probe(Box::new(F {
            sampler: StackSampler::new(10 * MILLIS, 1, CostModel::default()),
            faults: FaultPlan::new(cfg, 17),
            out: out.clone(),
        }));
        sim.schedule_action(
            SimTime::from_ms(1),
            ActionRequest {
                uid: ActionUid(1),
                name: "open".into(),
                events: vec![vec![
                    Step::Push(handler),
                    Step::Push(api),
                    Step::Cpu {
                        ns: 300 * MILLIS,
                        profile: MemProfile::memory_heavy(),
                    },
                    Step::Pop,
                    Step::Pop,
                ]],
            },
        );
        sim.run();
        let window = out.borrow();
        assert!(window.dropped > 0, "half the samples should drop");
        assert!(window.truncated > 0, "some samples should truncate");
        assert!(!window.samples.is_empty());
        assert!(window.loss_fraction() > 0.1 && window.loss_fraction() < 0.9);
        // Truncated samples lost their innermost (API) frame.
        assert!(window.samples.iter().any(|s| s.frames.len() == 1));
        // Attempt accounting: cost counts attempts, window counts both.
        let cost = sim.monitor_cost();
        assert_eq!(
            cost.stack_samples as usize,
            window.samples.len() + window.dropped
        );
    }

    #[test]
    fn sampler_latency_skips_the_immediate_sample() {
        use hd_faults::{FaultCategory, FaultConfig, FaultPlan};
        struct L {
            sampler: StackSampler,
            faults: FaultPlan,
            first_at: Rc<RefCell<Option<SimTime>>>,
            begun_at: Rc<RefCell<Option<SimTime>>>,
        }
        impl Probe for L {
            fn on_dispatch_begin(&mut self, ctx: &mut ProbeCtx<'_>, _info: &MessageInfo) {
                *self.begun_at.borrow_mut() = Some(ctx.now());
                self.sampler.begin_with(ctx, &mut self.faults);
                assert!(self.sampler.is_empty(), "late start takes no sample");
            }
            fn on_timer(&mut self, ctx: &mut ProbeCtx<'_>, token: u64) {
                assert!(self.sampler.on_timer_with(ctx, token, &mut self.faults));
                if self.first_at.borrow().is_none() && !self.sampler.is_empty() {
                    *self.first_at.borrow_mut() = Some(ctx.now());
                }
            }
            fn on_dispatch_end(
                &mut self,
                _ctx: &mut ProbeCtx<'_>,
                _info: &MessageInfo,
                _response_ns: u64,
            ) {
                // Stop the window so the timer chain does not outlive
                // the dispatch.
                let _ = self.sampler.end_window();
            }
        }
        let first_at = Rc::new(RefCell::new(None));
        let begun_at = Rc::new(RefCell::new(None));
        let mut table = FrameTable::new();
        let f = table.intern_new("a.B.c", "B.java", 1);
        let mut sim = Simulator::new(SimConfig::default(), table);
        sim.add_probe(Box::new(L {
            sampler: StackSampler::new(10 * MILLIS, 1, CostModel::default()),
            faults: FaultPlan::new(FaultConfig::only(FaultCategory::SamplerLatency, 1.0), 4),
            first_at: first_at.clone(),
            begun_at: begun_at.clone(),
        }));
        sim.schedule_action(
            SimTime::from_ms(1),
            ActionRequest {
                uid: ActionUid(1),
                name: "t".into(),
                events: vec![vec![
                    Step::Push(f),
                    Step::Cpu {
                        ns: 200 * MILLIS,
                        profile: MemProfile::compute(),
                    },
                    Step::Pop,
                ]],
            },
        );
        sim.run();
        let begun = begun_at.borrow().expect("dispatch began");
        let first = first_at.borrow().expect("a delayed sample arrived");
        // First sample must be at least one period late, plus latency.
        assert!(
            first.as_ns() > begun.as_ns() + 10 * MILLIS,
            "first sample at {first:?}, begun {begun:?}"
        );
    }

    #[test]
    fn wrong_token_is_rejected() {
        let mut s = StackSampler::new(MILLIS, 3, CostModel::default());
        // No ctx needed: token mismatch short-circuits.
        assert!(!s.active);
        assert_eq!(s.token, 3);
        // Direct check of the guard clause via a fake mismatched token is
        // covered in the integration above; here verify bookkeeping.
        assert!(s.is_empty());
        assert_eq!(s.end().len(), 0);
    }
}
