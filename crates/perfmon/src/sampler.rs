//! Periodic main-thread stack sampling.
//!
//! The Diagnoser's Trace Collector "collects stack traces of the main
//! thread until the end of the soft hang". [`StackSampler`] packages the
//! timer bookkeeping: arm it when a hang is detected, feed it the probe's
//! timer callbacks, and stop it at dispatch end to get the samples.

use hd_simrt::{FrameId, ProbeCtx, SimTime};
use serde::{Deserialize, Serialize};

use crate::config::CostModel;

/// One collected stack sample.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StackSample {
    /// When the sample was taken.
    pub at: SimTime,
    /// Main-thread stack, outermost frame first.
    pub frames: Vec<FrameId>,
}

/// Periodic stack-trace collector driven by probe timers.
#[derive(Clone, Debug)]
pub struct StackSampler {
    period_ns: u64,
    token: u64,
    active: bool,
    armed_token: u64,
    samples: Vec<StackSample>,
    costs: CostModel,
}

impl StackSampler {
    /// Creates an idle sampler with the given period and timer-token
    /// namespace tag (so one probe can multiplex several samplers).
    pub fn new(period_ns: u64, token: u64, costs: CostModel) -> StackSampler {
        StackSampler {
            period_ns,
            token,
            active: false,
            armed_token: 0,
            samples: Vec::new(),
            costs,
        }
    }

    /// Returns whether sampling is currently active.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Starts a collection window: takes an immediate sample and arms the
    /// periodic timer.
    pub fn begin(&mut self, ctx: &mut ProbeCtx<'_>) {
        self.samples.clear();
        self.active = true;
        self.take_sample(ctx);
        self.arm(ctx);
    }

    /// Handles a probe timer callback. Returns `true` if the token
    /// belonged to this sampler.
    pub fn on_timer(&mut self, ctx: &mut ProbeCtx<'_>, token: u64) -> bool {
        if token != self.token {
            return false;
        }
        if !self.active {
            // A stale timer from a window that already ended.
            return true;
        }
        self.take_sample(ctx);
        self.arm(ctx);
        true
    }

    /// Ends the window and returns the collected samples.
    pub fn end(&mut self) -> Vec<StackSample> {
        self.active = false;
        std::mem::take(&mut self.samples)
    }

    /// Number of samples collected so far in this window.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns whether no samples were collected yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn take_sample(&mut self, ctx: &mut ProbeCtx<'_>) {
        ctx.charge_cpu(self.costs.stack_sample_ns);
        ctx.charge_mem(self.costs.stack_sample_bytes);
        ctx.note_stack_sample();
        self.samples.push(StackSample {
            at: ctx.now(),
            frames: ctx.main_stack(),
        });
    }

    fn arm(&mut self, ctx: &mut ProbeCtx<'_>) {
        self.armed_token = self.token;
        let at = ctx.now() + self.period_ns;
        ctx.set_timer(at, self.token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    use hd_simrt::{
        ActionRequest, ActionUid, FrameTable, MemProfile, MessageInfo, Probe, SimConfig, SimTime,
        Simulator, Step, MILLIS,
    };

    struct P {
        sampler: StackSampler,
        out: Rc<RefCell<Vec<StackSample>>>,
    }

    impl Probe for P {
        fn on_dispatch_begin(&mut self, ctx: &mut ProbeCtx<'_>, _info: &MessageInfo) {
            self.sampler.begin(ctx);
        }
        fn on_dispatch_end(
            &mut self,
            _ctx: &mut ProbeCtx<'_>,
            _info: &MessageInfo,
            _response_ns: u64,
        ) {
            self.out.borrow_mut().extend(self.sampler.end());
        }
        fn on_timer(&mut self, ctx: &mut ProbeCtx<'_>, token: u64) {
            assert!(self.sampler.on_timer(ctx, token));
        }
    }

    #[test]
    fn samples_cover_the_dispatch_window() {
        let mut table = FrameTable::new();
        let handler = table.intern_new("app.Main.onOpen", "Main.java", 12);
        let api = table.intern_new("org.HtmlCleaner.clean", "HtmlCleaner.java", 25);
        let out = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(SimConfig::default(), table);
        sim.add_probe(Box::new(P {
            sampler: StackSampler::new(10 * MILLIS, 1, CostModel::default()),
            out: out.clone(),
        }));
        sim.schedule_action(
            SimTime::from_ms(1),
            ActionRequest {
                uid: ActionUid(1),
                name: "open email".into(),
                events: vec![vec![
                    Step::Push(handler),
                    Step::Push(api),
                    Step::Cpu {
                        ns: 300 * MILLIS,
                        profile: MemProfile::memory_heavy(),
                    },
                    Step::Pop,
                    Step::Pop,
                ]],
            },
        );
        sim.run();
        let samples = out.borrow();
        // ~300ms of hang sampled every 10ms, plus dilation: ≥ 25 samples.
        assert!(samples.len() >= 25, "got {} samples", samples.len());
        // Nearly all samples show the blocking API on top of the stack.
        let with_api = samples.iter().filter(|s| s.frames.len() == 2).count();
        assert!(with_api as f64 / samples.len() as f64 > 0.9);
        let cost = sim.monitor_cost();
        assert_eq!(cost.stack_samples as usize, samples.len());
    }

    #[test]
    fn stale_timers_after_end_are_ignored() {
        // A sampler that is ended while a timer is still in flight must
        // swallow the late callback without sampling.
        struct Late {
            sampler: StackSampler,
            extra: Rc<RefCell<usize>>,
        }
        impl Probe for Late {
            fn on_dispatch_begin(&mut self, ctx: &mut ProbeCtx<'_>, _info: &MessageInfo) {
                self.sampler.begin(ctx);
                // End immediately: the armed timer becomes stale.
                let n = self.sampler.end().len();
                assert_eq!(n, 1);
            }
            fn on_timer(&mut self, ctx: &mut ProbeCtx<'_>, token: u64) {
                assert!(self.sampler.on_timer(ctx, token));
                *self.extra.borrow_mut() += 1;
                assert!(self.sampler.is_empty());
            }
        }
        let mut table = FrameTable::new();
        let f = table.intern_new("a.B.c", "B.java", 1);
        let extra = Rc::new(RefCell::new(0));
        let mut sim = Simulator::new(SimConfig::default(), table);
        sim.add_probe(Box::new(Late {
            sampler: StackSampler::new(5 * MILLIS, 9, CostModel::default()),
            extra: extra.clone(),
        }));
        sim.schedule_action(
            SimTime::from_ms(1),
            ActionRequest {
                uid: ActionUid(1),
                name: "t".into(),
                events: vec![vec![
                    Step::Push(f),
                    Step::Cpu {
                        ns: 20 * MILLIS,
                        profile: MemProfile::ui(),
                    },
                    Step::Pop,
                ]],
            },
        );
        sim.run();
        assert_eq!(*extra.borrow(), 1);
    }

    #[test]
    fn wrong_token_is_rejected() {
        let mut s = StackSampler::new(MILLIS, 3, CostModel::default());
        // No ctx needed: token mismatch short-circuits.
        assert!(!s.active);
        assert_eq!(s.token, 3);
        // Direct check of the guard clause via a fake mismatched token is
        // covered in the integration above; here verify bookkeeping.
        assert!(s.is_empty());
        assert_eq!(s.end().len(), 0);
    }
}
