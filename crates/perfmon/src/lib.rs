//! # hd-perfmon — simulated performance-event monitoring stack
//!
//! The observation layer between the simulated runtime (`hd-simrt`) and
//! the detectors. It models what simpleperf and `/proc` give Hang Doctor
//! on a real device:
//!
//! * [`PerfSession`] — start/stop counting of selected events on selected
//!   threads, with exact kernel software events and PMU register
//!   multiplexing (6 registers vs up to 37 hardware events);
//! * [`StackSampler`] — periodic main-thread stack-trace collection for
//!   the Diagnoser's Trace Collector;
//! * [`ResourceUsage`] — coarse utilization polls for the UT baselines;
//! * [`CostModel`] — the shared price list that makes overhead
//!   comparisons across detectors meaningful (Figure 8c).
//!
//! Both observation primitives have fault-aware variants
//! ([`PerfSession::read_with`], [`StackSampler::begin_with`]) that
//! thread an `hd_faults::FaultPlan` through every read and sample so
//! counter errors, sample loss, and timer skew can be injected
//! deterministically.

pub mod config;
pub mod sampler;
pub mod session;
pub mod usage;

pub use config::{CostModel, MULTIPLEX_NOISE};
pub use sampler::{SampleWindow, StackSample, StackSampler};
pub use session::PerfSession;
pub use usage::ResourceUsage;
