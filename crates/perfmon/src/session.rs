//! Perf-event counting sessions (the simpleperf analog).
//!
//! Hang Doctor "exploits this executable to start and stop the monitoring
//! of performance events during a user action" (Section 3.5). A
//! [`PerfSession`] snapshots baselines at start and returns per-event
//! deltas at read time. Kernel software events are exact; PMU events
//! suffer register multiplexing when more are enabled than the 6
//! available registers, modeled as a scaled estimate with noise
//! proportional to the lost duty cycle.

use std::collections::HashMap;

use hd_faults::FaultPlan;
use hd_simrt::{HwEvent, ProbeCtx, ThreadId, PMU_REGISTERS};

use crate::config::{CostModel, MULTIPLEX_NOISE};

/// An active counting session over a set of threads and events.
#[derive(Clone, Debug)]
pub struct PerfSession {
    events: Vec<HwEvent>,
    threads: Vec<ThreadId>,
    baselines: HashMap<(ThreadId, HwEvent), f64>,
    duty: f64,
    costs: CostModel,
}

impl PerfSession {
    /// Starts counting `events` on `threads`, charging the session-start
    /// cost and snapshotting baselines.
    pub fn start(
        ctx: &mut ProbeCtx<'_>,
        threads: &[ThreadId],
        events: &[HwEvent],
        costs: CostModel,
    ) -> PerfSession {
        ctx.charge_cpu(costs.session_start_ns);
        let pmu_events = events.iter().filter(|e| e.is_pmu()).count();
        let duty = if pmu_events <= PMU_REGISTERS {
            1.0
        } else {
            PMU_REGISTERS as f64 / pmu_events as f64
        };
        let mut baselines = HashMap::new();
        for &tid in threads {
            for &ev in events {
                baselines.insert((tid, ev), ctx.counter(tid, ev));
            }
        }
        PerfSession {
            events: events.to_vec(),
            threads: threads.to_vec(),
            baselines,
            duty,
            costs,
        }
    }

    /// The multiplexing duty cycle of this session's PMU events.
    pub fn duty(&self) -> f64 {
        self.duty
    }

    /// The events this session counts.
    pub fn events(&self) -> &[HwEvent] {
        &self.events
    }

    /// The threads this session observes.
    pub fn threads(&self) -> &[ThreadId] {
        &self.threads
    }

    /// Reads the measured delta of `event` on `tid` since session start.
    ///
    /// # Panics
    ///
    /// Panics if `(tid, event)` was not part of the session.
    pub fn read(&self, ctx: &mut ProbeCtx<'_>, tid: ThreadId, event: HwEvent) -> f64 {
        self.charge_and_measure(ctx, tid, event)
    }

    /// Fault-aware read: the attempt is charged like [`read`], but the
    /// fault plan may fail it outright (`None`, modelling a
    /// `perf_event_open`/read error under PMU contention) or serve a
    /// stale snapshot that misses the tail of the window.
    ///
    /// [`read`]: PerfSession::read
    pub fn read_with(
        &self,
        ctx: &mut ProbeCtx<'_>,
        faults: &mut FaultPlan,
        tid: ThreadId,
        event: HwEvent,
    ) -> Option<f64> {
        if faults.counter_read_fails() {
            // The failed syscall still costs the caller.
            ctx.charge_cpu(self.costs.counter_read_ns);
            ctx.note_counter_read();
            return None;
        }
        let value = self.charge_and_measure(ctx, tid, event);
        match faults.stale_fraction() {
            Some(fraction) => Some(value * fraction),
            None => Some(value),
        }
    }

    fn charge_and_measure(&self, ctx: &mut ProbeCtx<'_>, tid: ThreadId, event: HwEvent) -> f64 {
        let base = *self
            .baselines
            .get(&(tid, event))
            .expect("reading an event that was not enabled");
        ctx.charge_cpu(self.costs.counter_read_ns);
        ctx.charge_mem(self.costs.counter_read_bytes);
        ctx.note_counter_read();
        let truth = (ctx.counter(tid, event) - base).max(0.0);
        if event.is_kernel() || self.duty >= 1.0 {
            truth
        } else {
            // Scaled estimate: observed/duty, with error growing as the
            // duty cycle shrinks (perf's "scaled from x%" behaviour).
            let err = MULTIPLEX_NOISE * (1.0 - self.duty);
            (truth * ctx.jitter(err)).max(0.0)
        }
    }

    /// Reads the main-minus-render difference of `event`.
    ///
    /// This is the quantity the S-Checker thresholds: a positive value
    /// means the main thread saw more of the event than the render
    /// thread over the session window.
    pub fn read_diff(
        &self,
        ctx: &mut ProbeCtx<'_>,
        main: ThreadId,
        render: ThreadId,
        event: HwEvent,
    ) -> f64 {
        self.read(ctx, main, event) - self.read(ctx, render, event)
    }

    /// Reads every `(thread, event)` pair, in declaration order.
    pub fn read_all(&self, ctx: &mut ProbeCtx<'_>) -> Vec<(ThreadId, HwEvent, f64)> {
        let mut out = Vec::with_capacity(self.threads.len() * self.events.len());
        for &tid in &self.threads {
            for &ev in &self.events {
                out.push((tid, ev, self.read(ctx, tid, ev)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    use hd_simrt::{
        ActionRequest, ActionUid, FrameTable, MemProfile, MessageInfo, Probe, SimConfig, SimTime,
        Simulator, Step, MILLIS,
    };

    /// Runs one compute-heavy action with a probe that opens a session at
    /// dispatch begin and reads it at dispatch end.
    fn run_with_events(events: Vec<HwEvent>) -> Vec<(HwEvent, f64, f64)> {
        struct P {
            events: Vec<HwEvent>,
            session: Option<PerfSession>,
            out: Rc<RefCell<Vec<(HwEvent, f64, f64)>>>,
        }
        impl Probe for P {
            fn on_dispatch_begin(&mut self, ctx: &mut ProbeCtx<'_>, _info: &MessageInfo) {
                let threads = [ctx.main_tid(), ctx.render_tid()];
                self.session = Some(PerfSession::start(
                    ctx,
                    &threads,
                    &self.events,
                    CostModel::default(),
                ));
            }
            fn on_dispatch_end(
                &mut self,
                ctx: &mut ProbeCtx<'_>,
                _info: &MessageInfo,
                _response_ns: u64,
            ) {
                let s = self.session.take().unwrap();
                let main = ctx.main_tid();
                let render = ctx.render_tid();
                for &ev in s.events() {
                    let m = s.read(ctx, main, ev);
                    let r = s.read(ctx, render, ev);
                    self.out.borrow_mut().push((ev, m, r));
                }
            }
        }
        let mut table = FrameTable::new();
        let f = table.intern_new("app.Main.work", "Main.java", 1);
        let mut sim = Simulator::new(SimConfig::default(), table);
        let out = Rc::new(RefCell::new(Vec::new()));
        sim.add_probe(Box::new(P {
            events,
            session: None,
            out: out.clone(),
        }));
        sim.schedule_action(
            SimTime::from_ms(1),
            ActionRequest {
                uid: ActionUid(1),
                name: "work".into(),
                events: vec![vec![
                    Step::Push(f),
                    Step::Cpu {
                        ns: 200 * MILLIS,
                        profile: MemProfile::compute(),
                    },
                    Step::Pop,
                ]],
            },
        );
        sim.run();
        let reads = out.borrow().clone();
        reads
    }

    #[test]
    fn kernel_events_are_exact_deltas() {
        let reads = run_with_events(vec![HwEvent::TaskClock]);
        let (_, main, render) = reads[0];
        // Main ran ~200ms of CPU during the window; render did nothing.
        assert!(main >= 200.0 * MILLIS as f64, "main task-clock {main}");
        assert!(main < 260.0 * MILLIS as f64, "main task-clock {main}");
        assert_eq!(render, 0.0);
    }

    #[test]
    fn small_pmu_sets_are_unscaled() {
        let reads = run_with_events(vec![HwEvent::Instructions, HwEvent::CacheMisses]);
        for (ev, main, _render) in reads {
            assert!(main > 0.0, "{} should have counted", ev.name());
        }
    }

    #[test]
    fn oversubscribed_pmu_sets_lose_accuracy() {
        // Two identical-seed runs, one with 3 PMU events, one with 20:
        // the 3-event read of instructions is (nearly) the truth, the
        // 20-event one deviates noticeably more.
        let small = run_with_events(vec![
            HwEvent::Instructions,
            HwEvent::CacheMisses,
            HwEvent::CacheReferences,
        ]);
        let big_events: Vec<HwEvent> = HwEvent::ALL
            .iter()
            .copied()
            .filter(|e| e.is_pmu())
            .take(20)
            .collect();
        let big = run_with_events(big_events);
        let small_instr = small
            .iter()
            .find(|(e, _, _)| *e == HwEvent::Instructions)
            .unwrap()
            .1;
        let big_instr = big
            .iter()
            .find(|(e, _, _)| *e == HwEvent::Instructions)
            .unwrap()
            .1;
        // Both in the right ballpark...
        assert!(small_instr > 0.0 && big_instr > 0.0);
        // ...but the oversubscribed estimate differs from the small-set
        // one by more than the small set's own jitter would explain.
        let rel = (big_instr - small_instr).abs() / small_instr;
        assert!(rel > 0.001, "rel deviation {rel}");
    }

    #[test]
    fn duty_cycle_computation() {
        // Only kernel events: no PMU pressure regardless of count.
        let kernel: Vec<HwEvent> = HwEvent::ALL
            .iter()
            .copied()
            .filter(|e| e.is_kernel())
            .collect();
        let reads = run_with_events(kernel.clone());
        assert_eq!(reads.len(), kernel.len());
    }

    #[test]
    fn faulty_reads_fail_and_stale_reads_shrink() {
        use hd_faults::{FaultCategory, FaultConfig, FaultPlan};
        type ReadTriple = (Option<f64>, Option<f64>, f64);
        struct P {
            session: Option<PerfSession>,
            out: Rc<RefCell<Vec<ReadTriple>>>,
        }
        impl Probe for P {
            fn on_dispatch_begin(&mut self, ctx: &mut ProbeCtx<'_>, _info: &MessageInfo) {
                let threads = [ctx.main_tid()];
                self.session = Some(PerfSession::start(
                    ctx,
                    &threads,
                    &[HwEvent::TaskClock],
                    CostModel::default(),
                ));
            }
            fn on_dispatch_end(
                &mut self,
                ctx: &mut ProbeCtx<'_>,
                _info: &MessageInfo,
                _response_ns: u64,
            ) {
                let s = self.session.take().unwrap();
                let mut failing =
                    FaultPlan::new(FaultConfig::only(FaultCategory::CounterRead, 1.0), 1);
                let mut stale =
                    FaultPlan::new(FaultConfig::only(FaultCategory::StaleCounter, 1.0), 2);
                let failed = s.read_with(ctx, &mut failing, ctx.main_tid(), HwEvent::TaskClock);
                let staled = s.read_with(ctx, &mut stale, ctx.main_tid(), HwEvent::TaskClock);
                let truth = s.read(ctx, ctx.main_tid(), HwEvent::TaskClock);
                assert_eq!(failing.tally().counter_read_failures, 1);
                assert_eq!(stale.tally().stale_snapshots, 1);
                self.out.borrow_mut().push((failed, staled, truth));
            }
        }
        let mut table = FrameTable::new();
        let f = table.intern_new("a.B.c", "B.java", 1);
        let mut sim = Simulator::new(SimConfig::default(), table);
        let out = Rc::new(RefCell::new(Vec::new()));
        sim.add_probe(Box::new(P {
            session: None,
            out: out.clone(),
        }));
        sim.schedule_action(
            SimTime::from_ms(1),
            ActionRequest {
                uid: ActionUid(1),
                name: "t".into(),
                events: vec![vec![
                    Step::Push(f),
                    Step::Cpu {
                        ns: 50 * MILLIS,
                        profile: MemProfile::compute(),
                    },
                    Step::Pop,
                ]],
            },
        );
        sim.run();
        let reads = out.borrow();
        let (failed, staled, truth) = reads[0];
        assert_eq!(failed, None, "rate-1.0 counter faults must fail the read");
        let staled = staled.expect("stale reads still return a value");
        assert!(truth > 0.0);
        assert!(
            staled < truth && staled >= truth * 0.39,
            "stale {staled} vs truth {truth}"
        );
    }

    #[test]
    fn disabled_fault_plan_reads_match_plain_reads() {
        use hd_faults::FaultPlan;
        struct P;
        impl Probe for P {
            fn on_dispatch_end(
                &mut self,
                ctx: &mut ProbeCtx<'_>,
                _info: &MessageInfo,
                _response_ns: u64,
            ) {
                let threads = [ctx.main_tid()];
                let s = PerfSession::start(
                    ctx,
                    &threads,
                    &[HwEvent::ContextSwitches],
                    CostModel::default(),
                );
                let mut faults = FaultPlan::disabled();
                let a = s.read_with(ctx, &mut faults, ctx.main_tid(), HwEvent::ContextSwitches);
                let b = s.read(ctx, ctx.main_tid(), HwEvent::ContextSwitches);
                assert_eq!(a, Some(b), "kernel events are exact: reads must agree");
                assert!(faults.tally().is_empty());
            }
        }
        let mut table = FrameTable::new();
        let f = table.intern_new("a.B.c", "B.java", 1);
        let mut sim = Simulator::new(SimConfig::default(), table);
        sim.add_probe(Box::new(P));
        sim.schedule_action(
            SimTime::from_ms(1),
            ActionRequest {
                uid: ActionUid(1),
                name: "t".into(),
                events: vec![vec![
                    Step::Push(f),
                    Step::Cpu {
                        ns: 20 * MILLIS,
                        profile: MemProfile::io_stub(),
                    },
                    Step::Pop,
                ]],
            },
        );
        sim.run();
    }

    #[test]
    fn reads_charge_costs() {
        struct P;
        impl Probe for P {
            fn on_dispatch_end(
                &mut self,
                ctx: &mut ProbeCtx<'_>,
                _info: &MessageInfo,
                _response_ns: u64,
            ) {
                let threads = [ctx.main_tid()];
                let s = PerfSession::start(
                    ctx,
                    &threads,
                    &[HwEvent::ContextSwitches],
                    CostModel::default(),
                );
                let _ = s.read(ctx, ctx.main_tid(), HwEvent::ContextSwitches);
            }
        }
        let mut table = FrameTable::new();
        let f = table.intern_new("a.B.c", "B.java", 1);
        let mut sim = Simulator::new(SimConfig::default(), table);
        sim.add_probe(Box::new(P));
        sim.schedule_action(
            SimTime::from_ms(1),
            ActionRequest {
                uid: ActionUid(1),
                name: "t".into(),
                events: vec![vec![
                    Step::Push(f),
                    Step::Cpu {
                        ns: 5 * MILLIS,
                        profile: MemProfile::ui(),
                    },
                    Step::Pop,
                ]],
            },
        );
        sim.run();
        let cost = sim.monitor_cost();
        let model = CostModel::default();
        assert_eq!(cost.counter_reads, 1);
        assert_eq!(cost.cpu_ns, model.session_start_ns + model.counter_read_ns);
        assert_eq!(cost.mem_bytes, model.counter_read_bytes);
    }
}
