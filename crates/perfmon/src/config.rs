//! Cost model for monitoring activity.
//!
//! Every observation a detector makes on a real phone costs CPU and
//! memory; the paper's overhead comparison (Figure 8c) is entirely about
//! these costs. All detectors in this reproduction — Hang Doctor and the
//! baselines — use the same cost model so the comparison is apples to
//! apples: what differs is *how often* each detector pays each cost.

use serde::{Deserialize, Serialize};

use hd_simrt::MICROS;

/// Costs charged against the app process per monitoring operation.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Starting/stopping a perf-event counting session (simpleperf
    /// spawn + ioctl setup), per session.
    pub session_start_ns: u64,
    /// Reading one event counter of one thread.
    pub counter_read_ns: u64,
    /// Memory traffic of one counter read, in bytes.
    pub counter_read_bytes: u64,
    /// Collecting one main-thread stack trace (ptrace attach + unwind).
    pub stack_sample_ns: u64,
    /// Memory traffic of one stack sample, in bytes.
    pub stack_sample_bytes: u64,
    /// One resource-utilization poll (read of `/proc/<pid>/stat` + `io`).
    pub util_poll_ns: u64,
    /// Memory traffic of one utilization poll, in bytes.
    pub util_poll_bytes: u64,
    /// Reading the response time of one dispatched message (the
    /// `setMessageLogging` hook body).
    pub response_hook_ns: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            session_start_ns: 150 * MICROS,
            counter_read_ns: 25 * MICROS,
            counter_read_bytes: 512,
            stack_sample_ns: 900 * MICROS,
            stack_sample_bytes: 24 * 1024,
            util_poll_ns: 1_200 * MICROS,
            util_poll_bytes: 6 * 1024,
            response_hook_ns: 4 * MICROS,
        }
    }
}

/// Relative error scale of multiplexed PMU counters.
///
/// When more PMU events are enabled than registers exist, each event is
/// counted only a fraction of the time and scaled up; the estimate's
/// error grows as the duty cycle shrinks.
pub const MULTIPLEX_NOISE: f64 = 0.8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_order_sensibly() {
        let c = CostModel::default();
        // A stack sample is far more expensive than a counter read,
        // which is more expensive than the response hook.
        assert!(c.stack_sample_ns > 10 * c.counter_read_ns);
        assert!(c.counter_read_ns > c.response_hook_ns);
        // A /proc poll costs more than a perf counter read.
        assert!(c.util_poll_ns > c.counter_read_ns);
    }
}
