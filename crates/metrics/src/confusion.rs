//! Ground-truth scoring of detector output.
//!
//! Every action execution is classified from the sampled ground truth
//! and the observed responses:
//!
//! * **BugHang** — a bug call blocked the main thread ≥ the perceivable
//!   delay and the action indeed hung;
//! * **UiHang** — the action hung but only UI work ran (flagging it is a
//!   false positive);
//! * **NoHang** — nothing perceivable happened.
//!
//! A detector's flagged executions are then counted into a
//! [`Confusion`] matrix; per-bug roll-ups give the "bugs detected"
//! numbers of Tables 2, 5 and 6.

use std::collections::{BTreeSet, HashSet};

use hd_appmodel::ExecTruth;
use hd_simrt::{ActionRecord, ExecId, MILLIS};
use serde::{Deserialize, Serialize};

/// Ground-truth class of one execution.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecClass {
    /// A soft hang caused by the named bug.
    BugHang(String),
    /// A soft hang caused by UI work only.
    UiHang,
    /// No perceivable hang.
    NoHang,
}

/// Confusion counts over flagged executions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Confusion {
    /// Flagged bug-hangs.
    pub tp: usize,
    /// Flagged UI-hangs or hang-free executions.
    pub fp: usize,
    /// Unflagged bug-hangs.
    pub fn_: usize,
    /// Unflagged non-bug executions.
    pub tn: usize,
}

impl Confusion {
    /// Recall over bug-hang occurrences.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            return 1.0;
        }
        self.tp as f64 / (self.tp + self.fn_) as f64
    }

    /// Precision over flagged occurrences.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            return 1.0;
        }
        self.tp as f64 / (self.tp + self.fp) as f64
    }
}

/// The default perceivable-delay threshold (100 ms).
pub const PERCEIVABLE_NS: u64 = 100 * MILLIS;

/// Classifies one execution.
pub fn classify(record: &ActionRecord, truth: &ExecTruth) -> ExecClass {
    debug_assert_eq!(record.uid, truth.uid);
    let hung = record.has_soft_hang(PERCEIVABLE_NS);
    match truth.culprit(PERCEIVABLE_NS) {
        Some(bug) if hung => ExecClass::BugHang(bug.to_string()),
        _ if hung => ExecClass::UiHang,
        _ => ExecClass::NoHang,
    }
}

/// Classifies every completed execution (`truths[exec_id - 1]` layout).
pub fn classify_all(records: &[ActionRecord], truths: &[ExecTruth]) -> Vec<(ExecId, ExecClass)> {
    records
        .iter()
        .map(|r| {
            let truth = &truths[(r.exec_id.0 - 1) as usize];
            (r.exec_id, classify(r, truth))
        })
        .collect()
}

/// Scores a detector's flagged executions against ground truth.
pub fn score(
    records: &[ActionRecord],
    truths: &[ExecTruth],
    flagged: &HashSet<ExecId>,
) -> Confusion {
    let mut c = Confusion::default();
    for (exec, class) in classify_all(records, truths) {
        let hit = flagged.contains(&exec);
        match (class, hit) {
            (ExecClass::BugHang(_), true) => c.tp += 1,
            (ExecClass::BugHang(_), false) => c.fn_ += 1,
            (_, true) => c.fp += 1,
            (_, false) => c.tn += 1,
        }
    }
    c
}

/// Distinct ground-truth bugs among the flagged bug-hang executions.
pub fn bugs_flagged(
    records: &[ActionRecord],
    truths: &[ExecTruth],
    flagged: &HashSet<ExecId>,
) -> BTreeSet<String> {
    classify_all(records, truths)
        .into_iter()
        .filter(|(exec, _)| flagged.contains(exec))
        .filter_map(|(_, class)| match class {
            ExecClass::BugHang(bug) => Some(bug),
            _ => None,
        })
        .collect()
}

/// Distinct ground-truth bugs that manifested at least once.
pub fn bugs_manifested(records: &[ActionRecord], truths: &[ExecTruth]) -> BTreeSet<String> {
    classify_all(records, truths)
        .into_iter()
        .filter_map(|(_, class)| match class {
            ExecClass::BugHang(bug) => Some(bug),
            _ => None,
        })
        .collect()
}

/// Distinct action names among flagged non-bug executions (the
/// false-positive roll-up of Table 2).
pub fn ui_actions_flagged(
    records: &[ActionRecord],
    truths: &[ExecTruth],
    flagged: &HashSet<ExecId>,
) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (exec, class) in classify_all(records, truths) {
        if !flagged.contains(&exec) {
            continue;
        }
        if !matches!(class, ExecClass::BugHang(_)) {
            // Records carry interned name ids; the ground truth has the
            // resolved name of the same execution (`truths[exec_id - 1]`).
            names.insert(truths[(exec.0 - 1) as usize].action_name.clone());
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use hd_simrt::{ActionUid, NameId, SimTime};

    fn record(exec: u64, uid: u64, resp_ms: u64) -> ActionRecord {
        ActionRecord {
            exec_id: ExecId(exec),
            uid: ActionUid(uid),
            name: NameId(uid as u32),
            posted: SimTime::ZERO,
            began: SimTime::ZERO,
            ended: SimTime::from_ms(resp_ms),
            event_responses: vec![resp_ms * MILLIS],
        }
    }

    fn truth(uid: u64, name: &str, bug: Option<(&str, u64)>) -> ExecTruth {
        ExecTruth {
            uid: ActionUid(uid),
            action_name: name.into(),
            bug_ns: bug
                .map(|(id, ms)| vec![(id.to_string(), ms * MILLIS)])
                .unwrap_or_default(),
            other_main_ns: 0,
        }
    }

    fn fixture() -> (Vec<ActionRecord>, Vec<ExecTruth>) {
        let records = vec![
            record(1, 0, 400), // bug hang
            record(2, 1, 150), // ui hang
            record(3, 2, 30),  // no hang
            record(4, 0, 350), // bug hang
        ];
        let truths = vec![
            truth(0, "open", Some(("b1", 300))),
            truth(1, "view", None),
            truth(2, "tap", None),
            truth(0, "open", Some(("b2", 280))),
        ];
        (records, truths)
    }

    #[test]
    fn classification_rules() {
        let (records, truths) = fixture();
        let classes = classify_all(&records, &truths);
        assert_eq!(classes[0].1, ExecClass::BugHang("b1".into()));
        assert_eq!(classes[1].1, ExecClass::UiHang);
        assert_eq!(classes[2].1, ExecClass::NoHang);
    }

    #[test]
    fn bug_below_threshold_with_hang_is_ui() {
        // A 50 ms bug inside a 150 ms UI hang: the hang is not the bug's.
        let records = vec![record(1, 0, 150)];
        let truths = vec![truth(0, "open", Some(("tiny", 50)))];
        assert_eq!(classify_all(&records, &truths)[0].1, ExecClass::UiHang);
    }

    #[test]
    fn scoring_counts_all_quadrants() {
        let (records, truths) = fixture();
        let flagged: HashSet<ExecId> = [ExecId(1), ExecId(2)].into_iter().collect();
        let c = score(&records, &truths, &flagged);
        assert_eq!(
            c,
            Confusion {
                tp: 1,
                fp: 1,
                fn_: 1,
                tn: 1
            }
        );
        assert!((c.recall() - 0.5).abs() < 1e-12);
        assert!((c.precision() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bug_rollups() {
        let (records, truths) = fixture();
        assert_eq!(
            bugs_manifested(&records, &truths),
            ["b1".to_string(), "b2".to_string()].into_iter().collect()
        );
        let flagged: HashSet<ExecId> = [ExecId(4)].into_iter().collect();
        assert_eq!(
            bugs_flagged(&records, &truths, &flagged),
            ["b2".to_string()].into_iter().collect()
        );
    }

    #[test]
    fn ui_rollup_names_actions() {
        let (records, truths) = fixture();
        let flagged: HashSet<ExecId> = [ExecId(2), ExecId(3)].into_iter().collect();
        let names = ui_actions_flagged(&records, &truths, &flagged);
        assert_eq!(
            names,
            ["view".to_string(), "tap".to_string()]
                .into_iter()
                .collect()
        );
    }

    #[test]
    fn empty_confusion_degenerates_gracefully() {
        let c = Confusion::default();
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.precision(), 1.0);
    }
}
