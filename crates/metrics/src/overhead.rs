//! Monitoring overhead accounting (Figure 8c methodology).
//!
//! The paper measures CPU and memory usage of a trace with and without
//! each detector and reports the average of the two percentage
//! increases. The simulator charges every monitoring operation against
//! the app process, so the overhead is the charged cost relative to the
//! app's own resource consumption over the same trace.

use hd_simrt::Simulator;
use serde::{Deserialize, Serialize};

/// Bytes of memory traffic represented by one counted access.
const BYTES_PER_ACCESS: f64 = 8.0;

/// Resource overhead of a detector over one trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct OverheadReport {
    /// Extra CPU relative to the app's CPU time, in percent.
    pub cpu_pct: f64,
    /// Extra memory traffic relative to the app's, in percent.
    pub mem_pct: f64,
}

impl OverheadReport {
    /// The paper's headline number: the average of the CPU and memory
    /// percentage increases.
    pub fn avg_pct(&self) -> f64 {
        (self.cpu_pct + self.mem_pct) / 2.0
    }

    /// Computes the report from a finished simulation.
    pub fn from_sim(sim: &Simulator) -> OverheadReport {
        let cost = sim.monitor_cost();
        let app_cpu = sim.app_cpu_ns() as f64;
        let app_mem = sim.app_mem_accesses() * BYTES_PER_ACCESS;
        OverheadReport {
            cpu_pct: if app_cpu > 0.0 {
                100.0 * cost.cpu_ns as f64 / app_cpu
            } else {
                0.0
            },
            mem_pct: if app_mem > 0.0 {
                100.0 * cost.mem_bytes as f64 / app_mem
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hd_appmodel::corpus::table1;
    use hd_appmodel::{build_run, round_robin_schedule, CompiledApp};
    use hd_simrt::{MessageInfo, Probe, ProbeCtx, SimConfig};

    struct FixedCost;
    impl Probe for FixedCost {
        fn on_dispatch_end(
            &mut self,
            ctx: &mut ProbeCtx<'_>,
            _info: &MessageInfo,
            _response_ns: u64,
        ) {
            ctx.charge_cpu(1_000_000);
            ctx.charge_mem(10_000);
        }
    }

    #[test]
    fn overhead_scales_with_charges() {
        let compiled = CompiledApp::new(table1::websms());
        let sched = round_robin_schedule(compiled.app(), 2, 2_000);
        let mut run = build_run(&compiled, &sched, SimConfig::default(), 3);
        run.sim.add_probe(Box::new(FixedCost));
        run.sim.run();
        let report = OverheadReport::from_sim(&run.sim);
        assert!(report.cpu_pct > 0.0);
        assert!(report.mem_pct > 0.0);
        assert!(report.avg_pct() > 0.0);
        // Sanity: a 1 ms charge per dispatch on a multi-second trace is
        // small but visible.
        assert!(report.cpu_pct < 10.0, "cpu {:.2}%", report.cpu_pct);
    }

    #[test]
    fn no_probe_means_zero_overhead() {
        let compiled = CompiledApp::new(table1::websms());
        let sched = round_robin_schedule(compiled.app(), 1, 2_000);
        let mut run = build_run(&compiled, &sched, SimConfig::default(), 4);
        run.sim.run();
        let report = OverheadReport::from_sim(&run.sim);
        assert_eq!(report.cpu_pct, 0.0);
        assert_eq!(report.mem_pct, 0.0);
    }
}
