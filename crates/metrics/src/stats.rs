//! Descriptive statistics helpers.

/// Arithmetic mean (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation (0 for fewer than two values).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Linear-interpolated percentile (`p` in `[0, 100]`).
///
/// # Panics
///
/// Panics if `xs` is empty or `p` is out of range.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Nearest-rank percentile over integer samples (`p` in `[0, 100]`),
/// for latency tallies measured in whole nanoseconds where
/// interpolation would invent values nobody observed.
///
/// # Panics
///
/// Panics if `xs` is empty or `p` is out of range.
pub fn percentile_u64(xs: &[u64], p: f64) -> u64 {
    assert!(!xs.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    let mut sorted = xs.to_vec();
    sorted.sort_unstable();
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank]
}

/// Fraction of values strictly above `threshold`.
pub fn frac_above(xs: &[f64], threshold: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().filter(|&&x| x > threshold).count() as f64 / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
        // Unsorted input is handled.
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    fn percentile_u64_is_nearest_rank() {
        let xs = [40, 10, 30, 20];
        assert_eq!(percentile_u64(&xs, 0.0), 10);
        assert_eq!(percentile_u64(&xs, 50.0), 30);
        assert_eq!(percentile_u64(&xs, 100.0), 40);
        assert_eq!(percentile_u64(&[7], 99.0), 7);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_u64_empty_panics() {
        percentile_u64(&[], 50.0);
    }

    #[test]
    fn frac_above_counts_strictly() {
        let xs = [1.0, 2.0, 3.0];
        assert!((frac_above(&xs, 2.0) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(frac_above(&[], 0.0), 0.0);
    }
}
