//! Async (wait-edge) differential accounting.
//!
//! Async hangs stress a different axis than the static↔runtime
//! differential: *blame placement*. A counter-only runtime detector
//! still notices the stalled main thread — the join block shows up in
//! the context-switch symptom — but without a causal walk across the
//! wait edge its diagnosis lands on the join site (`Future.get`), not
//! on the worker-side API actually holding the future. Offline
//! analysis never sees the hang at all: the submitted body is not part
//! of any main-thread call chain.
//!
//! This module scores three arms against the async ground truth:
//!
//! * **causal** — the fleet with the causal blame walk on;
//! * **baseline** — the same fleet with the walk off (naive join-site
//!   diagnosis);
//! * **static** — the offline scanner.
//!
//! Per bug we record both *detection* (the arm diagnosed something for
//! the hanging action) and *blame* (the diagnosis named the
//! ground-truth culprit), so "detects but mis-blames" is a first-class
//! outcome rather than a footnote. Like [`crate::differential`], this
//! is pure arithmetic over plain data — symbols and classes are
//! strings, keeping the metrology layer decoupled from the analyzer
//! and fleet crates.

use serde::{Deserialize, Serialize};

use crate::differential::ArmPrecision;

/// Schema tag of the serialized async differential, bumped on
/// incompatible changes.
pub const ASYNC_DIFFERENTIAL_SCHEMA: &str = "hang-doctor/async-differential/v1";

/// One ground-truth async bug and how each arm handled it.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsyncBugOutcome {
    /// Ground-truth bug id.
    pub id: String,
    /// Offline-failure-mode class (normally `"async-hang"`).
    pub class: String,
    /// Ground-truth culprit symbol (the worker-side API).
    pub culprit: String,
    /// The join-site symbol the naive diagnosis lands on.
    pub join_site: String,
    /// Causal fleet diagnosed the hanging action.
    pub causal_detected: bool,
    /// Causal fleet named the culprit.
    pub causal_blamed_culprit: bool,
    /// Baseline fleet diagnosed the hanging action.
    pub baseline_detected: bool,
    /// Baseline fleet named the culprit.
    pub baseline_blamed_culprit: bool,
    /// Baseline fleet named the join site instead (the mis-blame).
    pub baseline_blamed_join_site: bool,
    /// The static scanner flagged the bug.
    pub static_found: bool,
}

/// Detection/blame rollup of one runtime arm over the async ground
/// truth.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsyncArm {
    /// Bugs whose hanging action the arm diagnosed at all.
    pub detected: usize,
    /// Bugs whose diagnosis named the ground-truth culprit.
    pub blamed_culprit: usize,
    /// Bugs whose diagnosis named the join site instead.
    pub blamed_join_site: usize,
}

impl AsyncArm {
    /// Fraction of bugs detected (1.0 when there are none).
    pub fn detection_recall(&self, total: usize) -> f64 {
        if total == 0 {
            return 1.0;
        }
        self.detected as f64 / total as f64
    }

    /// Fraction of bugs blamed on the right API.
    pub fn blame_recall(&self, total: usize) -> f64 {
        if total == 0 {
            return 1.0;
        }
        self.blamed_culprit as f64 / total as f64
    }
}

/// Async differential outcome for one app.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AsyncAppDifferential {
    /// App name.
    pub app: String,
    /// Per-bug outcomes, ground-truth order (empty for the negative
    /// control apps).
    pub outcomes: Vec<AsyncBugOutcome>,
    /// Causal-arm precision over this app's flagged executions.
    pub causal_precision: ArmPrecision,
    /// Baseline-arm precision over this app's flagged executions.
    pub baseline_precision: ArmPrecision,
    /// Static-arm precision over this app's findings.
    pub static_precision: ArmPrecision,
    /// Report rows either fleet emitted for this app even though it has
    /// no ground-truth bug (nonzero on a failing negative control).
    pub control_entries: usize,
}

/// The full three-arm async differential over a corpus.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AsyncDifferential {
    /// Schema tag ([`ASYNC_DIFFERENTIAL_SCHEMA`]).
    pub schema: String,
    /// Vintage of the blocking-API database the static arm used.
    pub db_year: u16,
    /// Per-app outcomes, corpus order.
    pub apps: Vec<AsyncAppDifferential>,
    /// Ground-truth async bugs scored.
    pub total_bugs: usize,
    /// Causal-fleet rollup.
    pub causal: AsyncArm,
    /// Baseline-fleet rollup.
    pub baseline: AsyncArm,
    /// Bugs the static scanner flagged (structurally 0 for wait-edge
    /// hangs).
    pub static_found: usize,
    /// Causal-arm precision summed over the corpus.
    pub causal_precision: ArmPrecision,
    /// Baseline-arm precision summed over the corpus.
    pub baseline_precision: ArmPrecision,
    /// Static-arm precision summed over the corpus.
    pub static_precision: ArmPrecision,
    /// Report rows emitted for bug-free apps, summed (must stay 0).
    pub control_entries: usize,
}

impl AsyncDifferential {
    /// Rolls per-app outcomes up into the full differential.
    pub fn build(db_year: u16, apps: Vec<AsyncAppDifferential>) -> AsyncDifferential {
        let mut causal = AsyncArm::default();
        let mut baseline = AsyncArm::default();
        let mut static_found = 0;
        let mut causal_precision = ArmPrecision::default();
        let mut baseline_precision = ArmPrecision::default();
        let mut static_precision = ArmPrecision::default();
        let mut total_bugs = 0;
        let mut control_entries = 0;
        for app in &apps {
            causal_precision.add(&app.causal_precision);
            baseline_precision.add(&app.baseline_precision);
            static_precision.add(&app.static_precision);
            control_entries += app.control_entries;
            for o in &app.outcomes {
                total_bugs += 1;
                causal.detected += o.causal_detected as usize;
                causal.blamed_culprit += o.causal_blamed_culprit as usize;
                baseline.detected += o.baseline_detected as usize;
                baseline.blamed_culprit += o.baseline_blamed_culprit as usize;
                baseline.blamed_join_site += o.baseline_blamed_join_site as usize;
                static_found += o.static_found as usize;
            }
        }
        AsyncDifferential {
            schema: ASYNC_DIFFERENTIAL_SCHEMA.to_string(),
            db_year,
            apps,
            total_bugs,
            causal,
            baseline,
            static_found,
            causal_precision,
            baseline_precision,
            static_precision,
            control_entries,
        }
    }

    /// Blame recall gained by the causal walk over the naive diagnosis.
    pub fn blame_delta(&self) -> f64 {
        self.causal.blame_recall(self.total_bugs) - self.baseline.blame_recall(self.total_bugs)
    }

    /// Blame precision gained by the causal walk (flag-level).
    pub fn precision_delta(&self) -> f64 {
        self.causal_precision.precision() - self.baseline_precision.precision()
    }

    /// Static-arm recall over the async ground truth (structurally 0).
    pub fn static_recall(&self) -> f64 {
        if self.total_bugs == 0 {
            return 1.0;
        }
        self.static_found as f64 / self.total_bugs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(id: &str, causal_ok: bool, baseline_misblames: bool) -> AsyncBugOutcome {
        AsyncBugOutcome {
            id: id.into(),
            class: "async-hang".into(),
            culprit: "com.example.Worker.run".into(),
            join_site: "java.util.concurrent.FutureTask.get".into(),
            causal_detected: true,
            causal_blamed_culprit: causal_ok,
            baseline_detected: baseline_misblames,
            baseline_blamed_culprit: false,
            baseline_blamed_join_site: baseline_misblames,
            static_found: false,
        }
    }

    fn diff() -> AsyncDifferential {
        AsyncDifferential::build(
            2017,
            vec![
                AsyncAppDifferential {
                    app: "A".into(),
                    outcomes: vec![outcome("a-1", true, true), outcome("a-2", true, true)],
                    causal_precision: ArmPrecision {
                        flagged: 8,
                        true_flags: 8,
                    },
                    baseline_precision: ArmPrecision {
                        flagged: 8,
                        true_flags: 0,
                    },
                    static_precision: ArmPrecision::default(),
                    control_entries: 0,
                },
                AsyncAppDifferential {
                    app: "B".into(),
                    outcomes: vec![outcome("b-1", false, true)],
                    causal_precision: ArmPrecision {
                        flagged: 4,
                        true_flags: 2,
                    },
                    baseline_precision: ArmPrecision {
                        flagged: 4,
                        true_flags: 0,
                    },
                    static_precision: ArmPrecision::default(),
                    control_entries: 0,
                },
            ],
        )
    }

    #[test]
    fn rollups_count_detection_and_blame_separately() {
        let d = diff();
        assert_eq!(d.total_bugs, 3);
        assert_eq!(d.causal.detected, 3);
        assert_eq!(d.causal.blamed_culprit, 2);
        assert_eq!(d.baseline.detected, 3);
        assert_eq!(d.baseline.blamed_culprit, 0);
        assert_eq!(d.baseline.blamed_join_site, 3);
        assert_eq!(d.static_found, 0);
        assert!((d.static_recall()).abs() < 1e-9);
        assert!((d.causal.blame_recall(3) - 2.0 / 3.0).abs() < 1e-9);
        assert!((d.baseline.detection_recall(3) - 1.0).abs() < 1e-9);
        assert!((d.blame_delta() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn precisions_sum_over_apps() {
        let d = diff();
        assert_eq!(d.causal_precision.flagged, 12);
        assert_eq!(d.causal_precision.true_flags, 10);
        assert_eq!(d.baseline_precision.true_flags, 0);
        assert!((d.precision_delta() - 10.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn empty_differential_is_vacuously_perfect() {
        let d = AsyncDifferential::build(2017, Vec::new());
        assert_eq!(d.total_bugs, 0);
        assert!((d.causal.blame_recall(0) - 1.0).abs() < 1e-9);
        assert!((d.static_recall() - 1.0).abs() < 1e-9);
        assert!(d.blame_delta().abs() < 1e-9);
        assert_eq!(d.control_entries, 0);
    }

    #[test]
    fn serde_round_trip_keeps_schema() {
        let d = diff();
        let json = serde_json::to_string(&d).unwrap();
        assert!(json.contains(ASYNC_DIFFERENTIAL_SCHEMA));
        let back: AsyncDifferential = serde_json::from_str(&json).unwrap();
        assert_eq!(back.total_bugs, d.total_bugs);
        assert_eq!(back.causal, d.causal);
        assert_eq!(back.baseline, d.baseline);
    }
}
