//! Three-arm static-precision differential.
//!
//! The context-sensitivity tentpole makes a falsifiable claim: the
//! contextual arm removes shared-wrapper false positives *without
//! losing a single true positive*. This module scores the three rule
//! profiles (`full`, `contextual`, `perfchecker-compat`) against
//! fleet-confirmed ground truth and materializes that claim as data:
//! Δfalse-positives versus the `full` baseline, the (required-empty)
//! set of true positives the refinement lost, and the recall the
//! contextual arm keeps over the legacy per-chain scanner — per bug
//! class, so the precision story lines up with the recall taxonomy of
//! [`crate::differential`].
//!
//! Like its sibling, this is pure arithmetic over plain data — profiles
//! and bug classes are strings, so the metrology layer stays decoupled
//! from the analyzer crate.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::differential::ArmPrecision;

/// Schema tag of the serialized precision differential.
pub const PRECISION_SCHEMA: &str = "hang-doctor/sast-precision/v1";

/// One scanner arm's outcome on one app.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppArm {
    /// Rule profile name (`"full"`, `"contextual"`,
    /// `"perfchecker-compat"`).
    pub profile: String,
    /// Findings the arm raised on this app.
    pub flagged: usize,
    /// Of those, findings on a fleet-confirmed ground-truth bug.
    pub true_flags: usize,
    /// Distinct fleet-confirmed bugs the arm covered.
    pub bugs_found: BTreeSet<String>,
}

/// Ground truth and per-arm outcomes for one app.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppPrecision {
    /// App name.
    pub app: String,
    /// Ground-truth bug id → offline-failure-mode class.
    pub bug_classes: BTreeMap<String, String>,
    /// Bugs the runtime fleet confirmed on this app (the ground truth
    /// the arms are scored against).
    pub fleet_confirmed: BTreeSet<String>,
    /// One entry per scanner arm.
    pub arms: Vec<AppArm>,
}

/// One arm rolled up over the corpus.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArmReport {
    /// Rule profile name.
    pub profile: String,
    /// Flag-level precision (flagged / true flags).
    pub precision: ArmPrecision,
    /// Flags not on any fleet-confirmed bug — the false positives.
    pub false_flags: usize,
    /// Distinct fleet-confirmed bugs covered.
    pub bugs_found: BTreeSet<String>,
    /// Fleet-confirmed bugs covered, counted per bug class.
    pub per_class_found: BTreeMap<String, usize>,
}

/// Per-class population of the scored ground truth.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassTotal {
    /// Bug class name.
    pub class: String,
    /// Fleet-confirmed bugs in the class.
    pub confirmed: usize,
}

/// The three-arm precision differential over a corpus.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PrecisionDifferential {
    /// Schema tag ([`PRECISION_SCHEMA`]).
    pub schema: String,
    /// Vintage of the blocking-API database all arms used.
    pub db_year: u16,
    /// Per-app outcomes, corpus order.
    pub apps: Vec<AppPrecision>,
    /// Per-arm rollups, input-arm order.
    pub arms: Vec<ArmReport>,
    /// Fleet-confirmed ground truth per class, class-name order.
    pub classes: Vec<ClassTotal>,
    /// False positives the contextual arm removed versus the `full`
    /// baseline (the tentpole's headline number; must be positive on a
    /// corpus with shared wrappers).
    pub removed_false_positives: usize,
    /// Fleet-confirmed bugs the `full` arm covered but the contextual
    /// arm lost. The refinement's soundness claim: MUST be empty.
    pub lost_true_positives: BTreeSet<String>,
    /// Fleet-confirmed bugs the contextual arm covers beyond the legacy
    /// `perfchecker-compat` scanner (interprocedural recall kept).
    pub gained_over_compat: BTreeSet<String>,
    /// All fleet-confirmed bugs across the corpus.
    pub fleet_confirmed: BTreeSet<String>,
}

impl PrecisionDifferential {
    /// Rolls per-app outcomes up into the full differential.
    ///
    /// Arm identity is by profile name; the headline deltas compare the
    /// `"contextual"` arm against `"full"` and `"perfchecker-compat"`,
    /// which therefore must all be present in every app entry.
    pub fn build(db_year: u16, apps: Vec<AppPrecision>) -> PrecisionDifferential {
        let mut arms: BTreeMap<String, ArmReport> = BTreeMap::new();
        let mut order: Vec<String> = Vec::new();
        let mut classes: BTreeMap<String, ClassTotal> = BTreeMap::new();
        let mut fleet_confirmed = BTreeSet::new();
        for app in &apps {
            for bug in &app.fleet_confirmed {
                fleet_confirmed.insert(bug.clone());
                let class = app
                    .bug_classes
                    .get(bug)
                    .cloned()
                    .unwrap_or_else(|| "unclassified".to_string());
                let total = classes.entry(class.clone()).or_insert_with(|| ClassTotal {
                    class,
                    confirmed: 0,
                });
                total.confirmed += 1;
            }
            for arm in &app.arms {
                if !arms.contains_key(&arm.profile) {
                    order.push(arm.profile.clone());
                }
                let report = arms
                    .entry(arm.profile.clone())
                    .or_insert_with(|| ArmReport {
                        profile: arm.profile.clone(),
                        precision: ArmPrecision::default(),
                        false_flags: 0,
                        bugs_found: BTreeSet::new(),
                        per_class_found: BTreeMap::new(),
                    });
                report.precision.add(&ArmPrecision {
                    flagged: arm.flagged,
                    true_flags: arm.true_flags,
                });
                report.false_flags += arm.flagged - arm.true_flags;
                for bug in &arm.bugs_found {
                    if report.bugs_found.insert(bug.clone()) {
                        let class = app
                            .bug_classes
                            .get(bug)
                            .cloned()
                            .unwrap_or_else(|| "unclassified".to_string());
                        *report.per_class_found.entry(class).or_insert(0) += 1;
                    }
                }
            }
        }
        let arms: Vec<ArmReport> = order
            .into_iter()
            .map(|p| arms.remove(&p).unwrap())
            .collect();
        let arm = |profile: &str| arms.iter().find(|a| a.profile == profile);
        let (removed_false_positives, lost_true_positives) = match (arm("full"), arm("contextual"))
        {
            (Some(full), Some(ctx)) => (
                full.false_flags.saturating_sub(ctx.false_flags),
                full.bugs_found
                    .difference(&ctx.bugs_found)
                    .cloned()
                    .collect(),
            ),
            _ => (0, BTreeSet::new()),
        };
        let gained_over_compat = match (arm("contextual"), arm("perfchecker-compat")) {
            (Some(ctx), Some(compat)) => ctx
                .bugs_found
                .difference(&compat.bugs_found)
                .cloned()
                .collect(),
            _ => BTreeSet::new(),
        };
        PrecisionDifferential {
            schema: PRECISION_SCHEMA.to_string(),
            db_year,
            apps,
            arms,
            classes: classes.into_values().collect(),
            removed_false_positives,
            lost_true_positives,
            gained_over_compat,
            fleet_confirmed,
        }
    }

    /// The rollup for `profile`, if present.
    pub fn arm(&self, profile: &str) -> Option<&ArmReport> {
        self.arms.iter().find(|a| a.profile == profile)
    }

    /// Whether the refinement held: false positives removed, zero true
    /// positives lost.
    pub fn refinement_holds(&self) -> bool {
        self.removed_false_positives > 0 && self.lost_true_positives.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arm(profile: &str, flagged: usize, true_flags: usize, bugs: &[&str]) -> AppArm {
        AppArm {
            profile: profile.into(),
            flagged,
            true_flags,
            bugs_found: bugs.iter().map(|b| b.to_string()).collect(),
        }
    }

    fn diff() -> PrecisionDifferential {
        PrecisionDifferential::build(
            2017,
            vec![
                AppPrecision {
                    app: "SharedLib".into(),
                    bug_classes: BTreeMap::from([("s-1".to_string(), "known".to_string())]),
                    fleet_confirmed: BTreeSet::from(["s-1".to_string()]),
                    arms: vec![
                        arm("full", 3, 1, &["s-1"]),
                        arm("contextual", 1, 1, &["s-1"]),
                        arm("perfchecker-compat", 1, 1, &["s-1"]),
                    ],
                },
                AppPrecision {
                    app: "Nested".into(),
                    bug_classes: BTreeMap::from([("n-1".to_string(), "unknown-api".to_string())]),
                    fleet_confirmed: BTreeSet::from(["n-1".to_string()]),
                    arms: vec![
                        arm("full", 2, 1, &["n-1"]),
                        arm("contextual", 1, 1, &["n-1"]),
                        arm("perfchecker-compat", 0, 0, &[]),
                    ],
                },
            ],
        )
    }

    #[test]
    fn headline_deltas_compare_the_right_arms() {
        let d = diff();
        // full: 5 flagged / 2 true → 3 false; contextual: 2 / 2 → 0.
        assert_eq!(d.removed_false_positives, 3);
        assert!(d.lost_true_positives.is_empty());
        assert_eq!(d.gained_over_compat, BTreeSet::from(["n-1".to_string()]));
        assert!(d.refinement_holds());
    }

    #[test]
    fn arm_rollups_sum_and_classify() {
        let d = diff();
        let full = d.arm("full").unwrap();
        assert_eq!(full.precision.flagged, 5);
        assert_eq!(full.precision.true_flags, 2);
        assert_eq!(full.false_flags, 3);
        assert_eq!(full.per_class_found.get("known"), Some(&1));
        assert_eq!(full.per_class_found.get("unknown-api"), Some(&1));
        let ctx = d.arm("contextual").unwrap();
        assert!((ctx.precision.precision() - 1.0).abs() < 1e-9);
        assert!(d.arm("missing").is_none());
    }

    #[test]
    fn classes_partition_the_confirmed_ground_truth() {
        let d = diff();
        let confirmed: usize = d.classes.iter().map(|c| c.confirmed).sum();
        assert_eq!(confirmed, d.fleet_confirmed.len());
        assert_eq!(d.classes.len(), 2);
    }

    #[test]
    fn lost_true_positives_surface_recall_regressions() {
        let d = PrecisionDifferential::build(
            2017,
            vec![AppPrecision {
                app: "X".into(),
                bug_classes: BTreeMap::from([("x-1".to_string(), "known".to_string())]),
                fleet_confirmed: BTreeSet::from(["x-1".to_string()]),
                arms: vec![
                    arm("full", 2, 1, &["x-1"]),
                    arm("contextual", 0, 0, &[]),
                    arm("perfchecker-compat", 0, 0, &[]),
                ],
            }],
        );
        assert_eq!(d.lost_true_positives, BTreeSet::from(["x-1".to_string()]));
        assert!(!d.refinement_holds());
    }

    #[test]
    fn serde_round_trip_keeps_schema() {
        let d = diff();
        let json = serde_json::to_string(&d).unwrap();
        assert!(json.contains(PRECISION_SCHEMA));
        let back: PrecisionDifferential = serde_json::from_str(&json).unwrap();
        assert_eq!(back.removed_false_positives, d.removed_false_positives);
        assert_eq!(back.arms, d.arms);
    }
}
