//! Chaos-vs-clean differential accounting.
//!
//! A chaos run degrades the observation layer; the question the
//! differential answers is *how much science that costs*: for each fault
//! category, the precision and recall of a faulted fleet are compared
//! against the clean fleet on the identical `(corpus, seeds)` matrix.
//! Because the fault schedule is the only difference between the two
//! runs, any delta is attributable to that category (and to how
//! gracefully the detector degraded under it).
//!
//! This module is pure arithmetic over [`Confusion`] counts — categories
//! are plain strings so the metrology layer stays decoupled from the
//! fault-injection crate.

use serde::{Deserialize, Serialize};

use crate::confusion::Confusion;

/// Precision/recall movement of one fault category relative to the clean
/// run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChaosDelta {
    /// Fault category name (kebab-case, e.g. `"counter-read"`), or
    /// `"all"` for the everything-at-once chaos row.
    pub category: String,
    /// Injection rate the faulted run used.
    pub rate: f64,
    /// Confusion of the faulted run.
    pub faulted: Confusion,
    /// Faults actually injected in the faulted run.
    pub injected: u64,
    /// Graceful-degradation actions the detector took in response.
    pub recovered: u64,
}

/// The full differential: one clean baseline and one delta per category.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChaosDifferential {
    /// Confusion of the clean (fault-free) run.
    pub clean: Confusion,
    /// Per-category deltas, in injection-category order.
    pub deltas: Vec<ChaosDelta>,
}

impl ChaosDelta {
    /// Precision lost to this category (positive = worse than clean).
    pub fn precision_loss(&self, clean: &Confusion) -> f64 {
        clean.precision() - self.faulted.precision()
    }

    /// Recall lost to this category (positive = worse than clean).
    pub fn recall_loss(&self, clean: &Confusion) -> f64 {
        clean.recall() - self.faulted.recall()
    }
}

impl ChaosDifferential {
    /// The delta for `category`, if it was measured.
    pub fn delta(&self, category: &str) -> Option<&ChaosDelta> {
        self.deltas.iter().find(|d| d.category == category)
    }

    /// Worst recall loss across all measured categories (0.0 when no
    /// category lost recall).
    pub fn worst_recall_loss(&self) -> f64 {
        self.deltas
            .iter()
            .map(|d| d.recall_loss(&self.clean))
            .fold(0.0, f64::max)
    }

    /// Worst precision loss across all measured categories.
    pub fn worst_precision_loss(&self) -> f64 {
        self.deltas
            .iter()
            .map(|d| d.precision_loss(&self.clean))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn confusion(tp: usize, fp: usize, fn_: usize, tn: usize) -> Confusion {
        Confusion { tp, fp, fn_, tn }
    }

    #[test]
    fn losses_are_relative_to_clean() {
        let clean = confusion(9, 1, 1, 9); // precision 0.9, recall 0.9
        let delta = ChaosDelta {
            category: "counter-read".into(),
            rate: 0.1,
            faulted: confusion(6, 2, 4, 8), // precision 0.75, recall 0.6
            injected: 100,
            recovered: 40,
        };
        assert!((delta.precision_loss(&clean) - 0.15).abs() < 1e-9);
        assert!((delta.recall_loss(&clean) - 0.3).abs() < 1e-9);
    }

    #[test]
    fn a_faultless_category_loses_nothing() {
        let clean = confusion(5, 0, 0, 5);
        let delta = ChaosDelta {
            category: "clock-jitter".into(),
            rate: 0.1,
            faulted: clean,
            injected: 12,
            recovered: 0,
        };
        assert_eq!(delta.precision_loss(&clean), 0.0);
        assert_eq!(delta.recall_loss(&clean), 0.0);
    }

    #[test]
    fn worst_losses_scan_all_categories() {
        let clean = confusion(10, 0, 0, 10);
        let diff = ChaosDifferential {
            clean,
            deltas: vec![
                ChaosDelta {
                    category: "a".into(),
                    rate: 0.1,
                    faulted: confusion(8, 0, 2, 10), // recall 0.8
                    injected: 1,
                    recovered: 0,
                },
                ChaosDelta {
                    category: "b".into(),
                    rate: 0.1,
                    faulted: confusion(10, 5, 0, 5), // precision 2/3
                    injected: 1,
                    recovered: 0,
                },
            ],
        };
        assert!((diff.worst_recall_loss() - 0.2).abs() < 1e-9);
        assert!((diff.worst_precision_loss() - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(diff.delta("a").unwrap().faulted.tp, 8);
        assert!(diff.delta("missing").is_none());
    }

    #[test]
    fn an_improvement_reads_as_negative_loss() {
        // Chaos occasionally helps by chance (e.g. jitter fires the
        // watchdog earlier); the differential must show that as a
        // negative loss, not clamp it away.
        let clean = confusion(8, 2, 2, 8);
        let delta = ChaosDelta {
            category: "clock-jitter".into(),
            rate: 0.1,
            faulted: confusion(10, 2, 0, 8),
            injected: 3,
            recovered: 0,
        };
        assert!(delta.recall_loss(&clean) < 0.0);
    }
}
