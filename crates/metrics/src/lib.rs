//! # hd-metrics — evaluation metrology
//!
//! Scoring machinery shared by every experiment: ground-truth
//! classification of action executions and confusion counting
//! ([`confusion`]), monitoring-overhead accounting per the paper's
//! with/without methodology ([`overhead`]), and descriptive statistics
//! ([`stats`]).

pub mod chaos;
pub mod confusion;
pub mod overhead;
pub mod stats;

pub use chaos::{ChaosDelta, ChaosDifferential};
pub use confusion::{
    bugs_flagged, bugs_manifested, classify, classify_all, score, ui_actions_flagged, Confusion,
    ExecClass, PERCEIVABLE_NS,
};
pub use overhead::OverheadReport;
pub use stats::{frac_above, mean, percentile, std_dev};
