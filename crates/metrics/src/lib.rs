//! # hd-metrics — evaluation metrology
//!
//! Scoring machinery shared by every experiment: ground-truth
//! classification of action executions and confusion counting
//! ([`confusion`]), monitoring-overhead accounting per the paper's
//! with/without methodology ([`overhead`]), descriptive statistics
//! ([`stats`]), the chaos-vs-clean ([`chaos`]) and static↔runtime
//! ([`differential`]) differentials, and the three-arm static-precision
//! differential ([`precision`]).

pub mod async_diff;
pub mod chaos;
pub mod confusion;
pub mod differential;
pub mod overhead;
pub mod precision;
pub mod stats;

pub use async_diff::{
    AsyncAppDifferential, AsyncArm, AsyncBugOutcome, AsyncDifferential, ASYNC_DIFFERENTIAL_SCHEMA,
};
pub use chaos::{ChaosDelta, ChaosDifferential};
pub use confusion::{
    bugs_flagged, bugs_manifested, classify, classify_all, score, ui_actions_flagged, Confusion,
    ExecClass, PERCEIVABLE_NS,
};
pub use differential::{
    AppDifferential, ArmPrecision, BugOutcome, ClassDelta, SastDifferential, DIFFERENTIAL_SCHEMA,
};
pub use overhead::OverheadReport;
pub use precision::{
    AppArm, AppPrecision, ArmReport, ClassTotal, PrecisionDifferential, PRECISION_SCHEMA,
};
pub use stats::{frac_above, mean, percentile, percentile_u64, std_dev};
