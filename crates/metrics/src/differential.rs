//! Static↔runtime differential accounting.
//!
//! The paper's core argument is that offline (static) detection and
//! runtime detection are *complementary*: static analysis finds known
//! blocking calls without ever running the app, but structurally misses
//! unknown APIs, closed-source libraries, and self-developed lengthy
//! operations — exactly what runtime detection catches. This module
//! scores both arms against ground truth per app and per bug class and
//! quantifies the complement: Δrecall per class, Δprecision per arm, and
//! the overlap/complement bug sets.
//!
//! Like [`crate::chaos`], this is pure arithmetic over plain data — bug
//! classes are strings (the analyzer's kebab-case class names), so the
//! metrology layer stays decoupled from the static-analysis crate.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

/// Schema tag of the serialized differential, bumped on incompatible
/// changes.
pub const DIFFERENTIAL_SCHEMA: &str = "hang-doctor/sast-differential/v1";

/// One ground-truth bug and which arms found it.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BugOutcome {
    /// Ground-truth bug id.
    pub id: String,
    /// Offline-failure-mode class of the bug (kebab-case, e.g.
    /// `"known"`, `"unknown-api"`, `"closed-source"`, `"self-developed"`).
    pub class: String,
    /// The static analyzer flagged it.
    pub static_found: bool,
    /// The runtime fleet reported it.
    pub runtime_found: bool,
}

/// Flag-level precision of one arm: how much of what it raised was real.
///
/// The two arms flag different units (static: call-site findings;
/// runtime: action executions), so precisions are comparable as rates
/// but the raw counts are not.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArmPrecision {
    /// Flags the arm raised.
    pub flagged: usize,
    /// Of those, flags on a real ground-truth bug.
    pub true_flags: usize,
}

impl ArmPrecision {
    /// Fraction of flags that were real (1.0 when nothing was flagged).
    pub fn precision(&self) -> f64 {
        if self.flagged == 0 {
            return 1.0;
        }
        self.true_flags as f64 / self.flagged as f64
    }

    /// Accumulates another arm's counts into this one.
    pub fn add(&mut self, other: &ArmPrecision) {
        self.flagged += other.flagged;
        self.true_flags += other.true_flags;
    }
}

/// Differential outcome for one app.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AppDifferential {
    /// App name.
    pub app: String,
    /// Per-bug outcomes, ground-truth order.
    pub outcomes: Vec<BugOutcome>,
    /// Static-arm precision over this app's findings.
    pub static_precision: ArmPrecision,
    /// Runtime-arm precision over this app's flagged executions.
    pub runtime_precision: ArmPrecision,
}

/// Recall movement of one bug class between the two arms.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassDelta {
    /// Bug class name.
    pub class: String,
    /// Ground-truth bugs in the class.
    pub total: usize,
    /// Found by the static arm.
    pub static_found: usize,
    /// Found by the runtime arm.
    pub runtime_found: usize,
    /// Found by both arms (overlap).
    pub both: usize,
    /// Found only statically (static complement).
    pub static_only: usize,
    /// Found only at runtime (runtime complement).
    pub runtime_only: usize,
    /// Found by neither arm.
    pub neither: usize,
}

impl ClassDelta {
    /// Static-arm recall over this class (1.0 when the class is empty).
    pub fn static_recall(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        self.static_found as f64 / self.total as f64
    }

    /// Runtime-arm recall over this class.
    pub fn runtime_recall(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        self.runtime_found as f64 / self.total as f64
    }

    /// Recall gained by running over scanning (positive = runtime wins).
    pub fn recall_delta(&self) -> f64 {
        self.runtime_recall() - self.static_recall()
    }
}

/// The full static↔runtime differential over a corpus.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SastDifferential {
    /// Schema tag ([`DIFFERENTIAL_SCHEMA`]).
    pub schema: String,
    /// Vintage of the blocking-API database the static arm used.
    pub db_year: u16,
    /// Per-app outcomes, corpus order.
    pub apps: Vec<AppDifferential>,
    /// Per-class rollups, class-name order.
    pub classes: Vec<ClassDelta>,
    /// Static-arm precision summed over the corpus.
    pub static_precision: ArmPrecision,
    /// Runtime-arm precision summed over the corpus.
    pub runtime_precision: ArmPrecision,
    /// Bugs found by both arms.
    pub both: BTreeSet<String>,
    /// Bugs only the static arm found.
    pub static_only: BTreeSet<String>,
    /// Bugs only the runtime arm found.
    pub runtime_only: BTreeSet<String>,
    /// Bugs neither arm found.
    pub neither: BTreeSet<String>,
}

impl SastDifferential {
    /// Rolls per-app outcomes up into the full differential.
    pub fn build(db_year: u16, apps: Vec<AppDifferential>) -> SastDifferential {
        let mut classes: BTreeMap<String, ClassDelta> = BTreeMap::new();
        let mut static_precision = ArmPrecision::default();
        let mut runtime_precision = ArmPrecision::default();
        let mut both = BTreeSet::new();
        let mut static_only = BTreeSet::new();
        let mut runtime_only = BTreeSet::new();
        let mut neither = BTreeSet::new();
        for app in &apps {
            static_precision.add(&app.static_precision);
            runtime_precision.add(&app.runtime_precision);
            for outcome in &app.outcomes {
                let delta = classes
                    .entry(outcome.class.clone())
                    .or_insert_with(|| ClassDelta {
                        class: outcome.class.clone(),
                        ..ClassDelta::default()
                    });
                delta.total += 1;
                delta.static_found += outcome.static_found as usize;
                delta.runtime_found += outcome.runtime_found as usize;
                let set = match (outcome.static_found, outcome.runtime_found) {
                    (true, true) => {
                        delta.both += 1;
                        &mut both
                    }
                    (true, false) => {
                        delta.static_only += 1;
                        &mut static_only
                    }
                    (false, true) => {
                        delta.runtime_only += 1;
                        &mut runtime_only
                    }
                    (false, false) => {
                        delta.neither += 1;
                        &mut neither
                    }
                };
                set.insert(outcome.id.clone());
            }
        }
        SastDifferential {
            schema: DIFFERENTIAL_SCHEMA.to_string(),
            db_year,
            apps,
            classes: classes.into_values().collect(),
            static_precision,
            runtime_precision,
            both,
            static_only,
            runtime_only,
            neither,
        }
    }

    /// The rollup for `class`, if any bug carried it.
    pub fn class(&self, class: &str) -> Option<&ClassDelta> {
        self.classes.iter().find(|c| c.class == class)
    }

    /// Precision gained by running over scanning (positive = runtime is
    /// more precise).
    pub fn precision_delta(&self) -> f64 {
        self.runtime_precision.precision() - self.static_precision.precision()
    }

    /// Recall gained by running over scanning, across all classes.
    pub fn recall_delta(&self) -> f64 {
        let total: usize = self.classes.iter().map(|c| c.total).sum();
        if total == 0 {
            return 0.0;
        }
        let runtime: usize = self.classes.iter().map(|c| c.runtime_found).sum();
        let stat: usize = self.classes.iter().map(|c| c.static_found).sum();
        (runtime as f64 - stat as f64) / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(id: &str, class: &str, s: bool, r: bool) -> BugOutcome {
        BugOutcome {
            id: id.into(),
            class: class.into(),
            static_found: s,
            runtime_found: r,
        }
    }

    fn diff() -> SastDifferential {
        SastDifferential::build(
            2017,
            vec![
                AppDifferential {
                    app: "A".into(),
                    outcomes: vec![
                        outcome("a-1", "known", true, true),
                        outcome("a-2", "unknown-api", false, true),
                    ],
                    static_precision: ArmPrecision {
                        flagged: 2,
                        true_flags: 1,
                    },
                    runtime_precision: ArmPrecision {
                        flagged: 10,
                        true_flags: 9,
                    },
                },
                AppDifferential {
                    app: "B".into(),
                    outcomes: vec![
                        outcome("b-1", "closed-source", false, true),
                        outcome("b-2", "known", true, false),
                        outcome("b-3", "self-developed", false, false),
                    ],
                    static_precision: ArmPrecision {
                        flagged: 2,
                        true_flags: 2,
                    },
                    runtime_precision: ArmPrecision {
                        flagged: 10,
                        true_flags: 9,
                    },
                },
            ],
        )
    }

    #[test]
    fn class_rollups_partition_the_bugs() {
        let d = diff();
        let total: usize = d.classes.iter().map(|c| c.total).sum();
        assert_eq!(total, 5);
        let known = d.class("known").unwrap();
        assert_eq!(known.total, 2);
        assert_eq!(known.both, 1);
        assert_eq!(known.static_only, 1);
        assert!((known.static_recall() - 1.0).abs() < 1e-9);
        assert!((known.recall_delta() + 0.5).abs() < 1e-9);
        let unknown = d.class("unknown-api").unwrap();
        assert_eq!(unknown.static_found, 0);
        assert!((unknown.recall_delta() - 1.0).abs() < 1e-9);
        assert!(d.class("missing").is_none());
    }

    #[test]
    fn overlap_and_complement_sets_are_disjoint_and_complete() {
        let d = diff();
        assert_eq!(d.both.len(), 1);
        assert!(d.both.contains("a-1"));
        assert_eq!(d.static_only.len(), 1);
        assert!(d.static_only.contains("b-2"));
        assert_eq!(
            d.runtime_only,
            ["a-2", "b-1"].iter().map(|s| s.to_string()).collect()
        );
        assert_eq!(d.neither.len(), 1);
        assert!(d.neither.contains("b-3"));
        let mut all = BTreeSet::new();
        for set in [&d.both, &d.static_only, &d.runtime_only, &d.neither] {
            for id in set {
                assert!(all.insert(id.clone()), "{id} in two sets");
            }
        }
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn precisions_sum_over_apps() {
        let d = diff();
        assert_eq!(d.static_precision.flagged, 4);
        assert_eq!(d.static_precision.true_flags, 3);
        assert!((d.static_precision.precision() - 0.75).abs() < 1e-9);
        assert!((d.runtime_precision.precision() - 0.9).abs() < 1e-9);
        assert!((d.precision_delta() - 0.15).abs() < 1e-9);
        // 3 runtime-found vs 2 static-found over 5 bugs.
        assert!((d.recall_delta() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn empty_arm_has_perfect_precision() {
        assert!((ArmPrecision::default().precision() - 1.0).abs() < 1e-9);
        let empty = ClassDelta::default();
        assert!((empty.static_recall() - 1.0).abs() < 1e-9);
        assert!((empty.recall_delta()).abs() < 1e-9);
    }

    #[test]
    fn serde_round_trip_keeps_schema() {
        let d = diff();
        let json = serde_json::to_string(&d).unwrap();
        assert!(json.contains(DIFFERENTIAL_SCHEMA));
        let back: SastDifferential = serde_json::from_str(&json).unwrap();
        assert_eq!(back.both, d.both);
        assert_eq!(back.classes, d.classes);
    }
}
