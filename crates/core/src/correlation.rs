//! Correlation analysis and filter construction (Section 3.3.1).
//!
//! The S-Checker's design procedure: collect per-soft-hang samples of all
//! 46 performance events (as main−render differences and as main-only
//! values), compute each event's Pearson correlation with the hang-bug
//! label, rank them (Table 3), check ranking stability under training-set
//! subsampling (Table 4), then greedily pick thresholds starting from the
//! most correlated event until every training bug is caught by at least
//! one condition (Figure 4).

use hd_simrt::{HwEvent, SimRng};

#[cfg(test)]
use hd_simrt::NUM_EVENTS;
use serde::{Deserialize, Serialize};

/// One labeled soft-hang sample.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainingSample {
    /// `true` = the hang was caused by a soft hang bug, `false` = UI.
    pub label: bool,
    /// Accumulated main−render difference of every event over the
    /// action window (length [`NUM_EVENTS`]).
    pub diff: Vec<f64>,
    /// Accumulated main-thread-only value of every event (length
    /// [`NUM_EVENTS`]).
    pub main_only: Vec<f64>,
    /// Provenance (app/action) for bookkeeping.
    pub source: String,
}

/// Which measurement the analysis runs over.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DiffMode {
    /// Main thread minus render thread (Table 3(a)).
    MainMinusRender,
    /// Main thread only (Table 3(b)).
    MainOnly,
}

impl TrainingSample {
    /// Returns the value vector for the requested mode.
    pub fn values(&self, mode: DiffMode) -> &[f64] {
        match mode {
            DiffMode::MainMinusRender => &self.diff,
            DiffMode::MainOnly => &self.main_only,
        }
    }
}

/// Pearson correlation coefficient of two equal-length series.
///
/// Returns 0 when either series is constant (undefined correlation).
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "series lengths differ");
    let n = x.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (a, b) in x.iter().zip(y) {
        cov += (a - mx) * (b - my);
        vx += (a - mx).powi(2);
        vy += (b - my).powi(2);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Correlation of every event with the hang-bug label, sorted by
/// descending coefficient (a Table 3 column).
pub fn rank_events(samples: &[TrainingSample], mode: DiffMode) -> Vec<(HwEvent, f64)> {
    let labels: Vec<f64> = samples
        .iter()
        .map(|s| if s.label { 1.0 } else { 0.0 })
        .collect();
    let mut ranked: Vec<(HwEvent, f64)> = HwEvent::ALL
        .iter()
        .map(|&ev| {
            let xs: Vec<f64> = samples.iter().map(|s| s.values(mode)[ev.index()]).collect();
            (ev, pearson(&xs, &labels))
        })
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    ranked
}

/// Draws a random subsample of `fraction` of the samples (sensitivity
/// analysis, Table 4).
pub fn subsample(
    samples: &[TrainingSample],
    fraction: f64,
    rng: &mut SimRng,
) -> Vec<TrainingSample> {
    let keep = ((samples.len() as f64) * fraction).round().max(2.0) as usize;
    let mut idx: Vec<usize> = (0..samples.len()).collect();
    // Fisher-Yates prefix shuffle.
    for i in 0..keep.min(samples.len()) {
        let j = i + rng.index(samples.len() - i);
        idx.swap(i, j);
    }
    idx.truncate(keep.min(samples.len()));
    idx.into_iter().map(|i| samples[i].clone()).collect()
}

/// One threshold condition: `value > threshold` ⇒ hang-bug symptom.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Condition {
    /// Event tested.
    pub event: HwEvent,
    /// Strict lower threshold.
    pub threshold: f64,
}

/// A disjunctive filter: suspicious iff any condition fires.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize, Default)]
pub struct Filter {
    /// Conditions, in selection order.
    pub conditions: Vec<Condition>,
}

impl Filter {
    /// Whether a sample (in the filter's mode) shows symptoms.
    ///
    /// `values` is indexed by [`HwEvent::index`] (length [`NUM_EVENTS`]).
    pub fn matches(&self, values: &[f64]) -> bool {
        self.conditions
            .iter()
            .any(|c| values[c.event.index()] > c.threshold)
    }

    /// Confusion counts over labeled samples: `(tp, fp, fn, tn)`.
    pub fn evaluate(
        &self,
        samples: &[TrainingSample],
        mode: DiffMode,
    ) -> (usize, usize, usize, usize) {
        let mut tp = 0;
        let mut fp = 0;
        let mut fneg = 0;
        let mut tn = 0;
        for s in samples {
            match (s.label, self.matches(s.values(mode))) {
                (true, true) => tp += 1,
                (false, true) => fp += 1,
                (true, false) => fneg += 1,
                (false, false) => tn += 1,
            }
        }
        (tp, fp, fneg, tn)
    }
}

/// Finds the threshold for `event` minimizing `FN + FP` over the given
/// samples (the greedy selection loop, not the per-event threshold,
/// enforces the paper's primary goal of eliminating false negatives by
/// adding further events).
pub fn best_threshold(samples: &[TrainingSample], event: HwEvent, mode: DiffMode) -> Condition {
    let mut values: Vec<f64> = samples
        .iter()
        .map(|s| s.values(mode)[event.index()])
        .collect();
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    values.dedup();
    // Candidates: below everything, midpoints, above everything.
    let mut candidates = Vec::with_capacity(values.len() + 1);
    if let (Some(first), Some(last)) = (values.first(), values.last()) {
        candidates.push(first - 1.0);
        for w in values.windows(2) {
            candidates.push((w[0] + w[1]) / 2.0);
        }
        candidates.push(last + 1.0);
    } else {
        candidates.push(0.0);
    }
    let mut best = Condition {
        event,
        threshold: candidates[0],
    };
    let mut best_cost = usize::MAX;
    for &t in &candidates {
        let mut fp = 0;
        let mut fneg = 0;
        for s in samples {
            let fired = s.values(mode)[event.index()] > t;
            match (s.label, fired) {
                (false, true) => fp += 1,
                (true, false) => fneg += 1,
                _ => {}
            }
        }
        let cost = fneg + fp;
        if cost < best_cost {
            best_cost = cost;
            best = Condition {
                event,
                threshold: t,
            };
        }
    }
    best
}

/// Greedy filter construction: take events in ranked order, thresholding
/// each on the still-uncovered bugs, until every training bug is caught
/// by at least one condition (or `max_events` is reached).
pub fn select_filter(
    samples: &[TrainingSample],
    ranked: &[(HwEvent, f64)],
    mode: DiffMode,
    max_events: usize,
) -> Filter {
    let mut filter = Filter::default();
    // Events whose names differ but whose counts are near-duplicates
    // (cpu-clock vs task-clock) add nothing; skip an event whose
    // correlation with an already-selected one is ~1.
    let mut used: Vec<HwEvent> = Vec::new();
    for &(event, _) in ranked {
        if filter.conditions.len() >= max_events {
            break;
        }
        let uncovered: Vec<TrainingSample> = samples
            .iter()
            .filter(|s| !s.label || !filter.matches(s.values(mode)))
            .cloned()
            .collect();
        let (_, _, fneg, _) = filter.evaluate(samples, mode);
        if !filter.conditions.is_empty() && fneg == 0 {
            break;
        }
        // Skip near-duplicate events.
        let xs: Vec<f64> = samples
            .iter()
            .map(|s| s.values(mode)[event.index()])
            .collect();
        let dup = used.iter().any(|&u| {
            let ys: Vec<f64> = samples.iter().map(|s| s.values(mode)[u.index()]).collect();
            pearson(&xs, &ys) > 0.995
        });
        if dup {
            continue;
        }
        let cond = best_threshold(&uncovered, event, mode);
        used.push(event);
        filter.conditions.push(cond);
    }
    filter
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(label: bool, assign: &[(HwEvent, f64)]) -> TrainingSample {
        let mut diff = vec![0.0; NUM_EVENTS];
        for &(ev, v) in assign {
            diff[ev.index()] = v;
        }
        TrainingSample {
            label,
            diff: diff.clone(),
            main_only: diff,
            source: "test".into(),
        }
    }

    #[test]
    fn pearson_basics() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let z = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &z) + 1.0).abs() < 1e-12);
        let c = [5.0, 5.0, 5.0, 5.0];
        assert_eq!(pearson(&x, &c), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
    }

    #[test]
    fn ranking_puts_separating_event_first() {
        let mut samples = Vec::new();
        for i in 0..20 {
            let bug = i % 2 == 0;
            samples.push(sample(
                bug,
                &[
                    // Context switches separate perfectly.
                    (HwEvent::ContextSwitches, if bug { 50.0 } else { -20.0 }),
                    // Instructions are noise.
                    (HwEvent::Instructions, (i % 5) as f64),
                ],
            ));
        }
        let ranked = rank_events(&samples, DiffMode::MainMinusRender);
        assert_eq!(ranked[0].0, HwEvent::ContextSwitches);
        assert!(ranked[0].1 > 0.95);
    }

    #[test]
    fn best_threshold_separates_cleanly() {
        let samples = vec![
            sample(true, &[(HwEvent::PageFaults, 900.0)]),
            sample(true, &[(HwEvent::PageFaults, 700.0)]),
            sample(false, &[(HwEvent::PageFaults, 100.0)]),
            sample(false, &[(HwEvent::PageFaults, 250.0)]),
        ];
        let cond = best_threshold(&samples, HwEvent::PageFaults, DiffMode::MainMinusRender);
        assert!(cond.threshold > 250.0 && cond.threshold < 700.0);
        let filter = Filter {
            conditions: vec![cond],
        };
        let (tp, fp, fneg, tn) = filter.evaluate(&samples, DiffMode::MainMinusRender);
        assert_eq!((tp, fp, fneg, tn), (2, 0, 0, 2));
    }

    #[test]
    fn select_filter_adds_events_until_no_false_negatives() {
        // Bug type A: high context switches; bug type B: page-fault
        // bound, with context switches interleaved among the UI samples
        // so no single cs threshold can cover both types cheaply.
        let mut samples = Vec::new();
        for i in 0..8 {
            samples.push(sample(
                true,
                &[
                    (HwEvent::ContextSwitches, 40.0 + i as f64),
                    (HwEvent::PageFaults, 100.0),
                ],
            ));
        }
        for i in 0..4 {
            samples.push(sample(
                true,
                &[
                    (HwEvent::ContextSwitches, -42.0 - 3.0 * i as f64),
                    (HwEvent::PageFaults, 800.0 + i as f64),
                ],
            ));
        }
        for i in 0..12 {
            samples.push(sample(
                false,
                &[
                    (HwEvent::ContextSwitches, -40.0 - i as f64),
                    (HwEvent::PageFaults, 150.0),
                ],
            ));
        }
        let ranked = rank_events(&samples, DiffMode::MainMinusRender);
        let filter = select_filter(&samples, &ranked, DiffMode::MainMinusRender, 6);
        let (_, fp, fneg, _) = filter.evaluate(&samples, DiffMode::MainMinusRender);
        assert_eq!(fneg, 0, "filter {filter:?}");
        assert_eq!(fp, 0);
        assert!(filter.conditions.len() >= 2);
        let events: Vec<HwEvent> = filter.conditions.iter().map(|c| c.event).collect();
        assert!(events.contains(&HwEvent::ContextSwitches));
        assert!(events.contains(&HwEvent::PageFaults));
    }

    #[test]
    fn subsample_sizes_and_determinism() {
        let samples: Vec<TrainingSample> = (0..40).map(|i| sample(i % 2 == 0, &[])).collect();
        let mut rng = SimRng::seed_from_u64(5);
        let s75 = subsample(&samples, 0.75, &mut rng);
        assert_eq!(s75.len(), 30);
        let mut rng2 = SimRng::seed_from_u64(5);
        let again = subsample(&samples, 0.75, &mut rng2);
        assert_eq!(
            s75.iter().map(|s| s.label).collect::<Vec<_>>(),
            again.iter().map(|s| s.label).collect::<Vec<_>>()
        );
    }

    #[test]
    fn near_duplicate_events_are_skipped() {
        // cpu-clock duplicates task-clock exactly; selection must not
        // pick both (the paper omits cpu-clock for the same reason).
        let mut samples = Vec::new();
        for i in 0..10 {
            let bug = i % 2 == 0;
            let v = if bug { 2e8 + i as f64 } else { 0.5e8 };
            samples.push(sample(
                bug,
                &[(HwEvent::TaskClock, v), (HwEvent::CpuClock, v)],
            ));
        }
        // Force a situation where one event cannot cover everything by
        // marking one bug sample low on task-clock but high on faults.
        samples.push(sample(
            true,
            &[
                (HwEvent::TaskClock, 0.4e8),
                (HwEvent::CpuClock, 0.4e8),
                (HwEvent::PageFaults, 900.0),
            ],
        ));
        let ranked = rank_events(&samples, DiffMode::MainMinusRender);
        let filter = select_filter(&samples, &ranked, DiffMode::MainMinusRender, 6);
        let picked: Vec<HwEvent> = filter.conditions.iter().map(|c| c.event).collect();
        assert!(
            !(picked.contains(&HwEvent::TaskClock) && picked.contains(&HwEvent::CpuClock)),
            "picked both clocks: {picked:?}"
        );
    }
}
