//! The Hang Doctor runtime probe: two-phase detection and diagnosis.
//!
//! Installed into the app process like the real system (a lightweight
//! in-app component, no OS modification), it:
//!
//! 1. tracks every input event's response time via the Looper dispatch
//!    hook (Response Time Monitor);
//! 2. for *Uncategorized* actions, counts the three selected performance
//!    events on the main and render threads and applies the S-Checker
//!    filter at the end of any execution whose response exceeded 100 ms;
//! 3. for *Suspicious* and *HangBug* actions, arms a 100 ms watchdog per
//!    input event and, if it fires mid-dispatch, collects main-thread
//!    stack traces until the hang ends, then runs the Trace Analyzer;
//! 4. maintains the per-action state machine, the Hang Bug Report, and
//!    the shared known-blocking-API database.

use std::cell::RefCell;
use std::rc::Rc;

use hd_faults::{FaultPlan, FaultTally};
use hd_perfmon::{PerfSession, StackSampler};
use hd_simrt::{
    ActionInfo, ActionRecord, ActionUid, ExecId, HwEvent, MessageInfo, Probe, ProbeCtx, SimTime,
    ThreadId,
};
use serde::{Deserialize, Serialize};

use crate::analysis::{analyze, RootCause, RootKind};
use crate::apidb::SharedApiDb;
use crate::config::HangDoctorConfig;
use crate::report::HangBugReport;
use crate::schecker::{PartialCounterDiffs, SChecker, SymptomVerdict};
use crate::state::{ActionState, StateTable};

/// Token reserved for the stack sampler's periodic timer.
const SAMPLER_TOKEN: u64 = 1;
/// Watch-dog tokens start here and increase per dispatch.
const WATCH_TOKEN_BASE: u64 = 1_000;

/// One deep analysis performed by the Diagnoser (a traced soft hang).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// Execution during which the hang was traced.
    pub exec_id: ExecId,
    /// Action kind.
    pub uid: ActionUid,
    /// Action name.
    pub action_name: String,
    /// Input event index within the action.
    pub event_index: usize,
    /// Response time of the hanging input event, ns.
    pub response_ns: u64,
    /// When the dispatch ended.
    pub at: SimTime,
    /// Number of stack traces collected.
    pub samples: usize,
    /// Diagnosis (None only if no sample could be collected).
    pub root: Option<RootCause>,
}

impl Detection {
    /// Whether the Diagnoser concluded this hang is a soft hang bug.
    pub fn is_bug(&self) -> bool {
        self.root.as_ref().map(|r| r.is_bug()).unwrap_or(false)
    }
}

/// A network-on-main-thread warning (footnote-2 extension).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkWarning {
    /// Action whose handler used the network on the main thread.
    pub uid: ActionUid,
    /// Action name.
    pub action_name: String,
    /// Execution where it was first observed.
    pub exec_id: ExecId,
    /// Bytes transferred during that execution.
    pub bytes: u64,
}

/// Everything Hang Doctor produced during a run.
#[derive(Clone, Debug, Default)]
pub struct HdOutput {
    /// Deep analyses, in order.
    pub detections: Vec<Detection>,
    /// S-Checker verdicts that marked an action Suspicious.
    pub suspicious_marks: u64,
    /// Total S-Checker filter evaluations.
    pub schecker_checks: u64,
    /// Soft hangs observed (any action state).
    pub hangs_observed: u64,
    /// The developer-facing report.
    pub report: HangBugReport,
    /// Final action states (snapshot at simulation end).
    pub states: StateTable,
    /// All S-Checker verdicts with their diffs (for adaptation studies).
    pub verdicts: Vec<(ActionUid, SymptomVerdict)>,
    /// Network-on-main warnings (one per offending action), when the
    /// extension is enabled.
    pub network_warnings: Vec<NetworkWarning>,
    /// Per-category fault and recovery counts (all-zero unless a fault
    /// plan was injected with [`HangDoctor::inject_faults`]).
    pub faults: FaultTally,
}

// Fleet workers hand finished outputs back across threads; keep every
// field of the run artifact thread-transferable.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<HdOutput>();
};

struct CurrentAction {
    uid: ActionUid,
    name: hd_simrt::NameId,
    state_at_begin: ActionState,
    session: Option<PerfSession>,
    had_hang: bool,
    net_bytes_at_begin: u64,
}

struct CurrentDispatch {
    exec_id: ExecId,
    event_index: usize,
    watch_token: u64,
    sampling: bool,
}

/// The Hang Doctor probe.
pub struct HangDoctor {
    cfg: HangDoctorConfig,
    checker: SChecker,
    device: u32,
    app_package: String,
    states: StateTable,
    sampler: StackSampler,
    current: Option<CurrentAction>,
    dispatch: Option<CurrentDispatch>,
    next_watch_token: u64,
    apidb: Option<SharedApiDb>,
    net_warned: std::collections::HashSet<ActionUid>,
    faults: FaultPlan,
    out: Rc<RefCell<HdOutput>>,
}

impl HangDoctor {
    /// Creates a Hang Doctor instance for one app on one device.
    ///
    /// Returns the probe (install with `Simulator::add_probe`) and a
    /// handle to its output, readable after the run.
    pub fn new(
        cfg: HangDoctorConfig,
        app_name: &str,
        app_package: &str,
        device: u32,
        apidb: Option<SharedApiDb>,
    ) -> (HangDoctor, Rc<RefCell<HdOutput>>) {
        let out = Rc::new(RefCell::new(HdOutput {
            report: HangBugReport::new(app_name),
            ..Default::default()
        }));
        let sampler = StackSampler::new(cfg.sample_period_ns, SAMPLER_TOKEN, cfg.costs)
            .causal(cfg.causal_blame);
        let checker = SChecker::new(cfg.thresholds);
        (
            HangDoctor {
                cfg,
                checker,
                device,
                app_package: format!("{}.", app_package.trim_end_matches('.')),
                states: StateTable::new(),
                sampler,
                current: None,
                dispatch: None,
                next_watch_token: WATCH_TOKEN_BASE,
                apidb,
                net_warned: Default::default(),
                faults: FaultPlan::disabled(),
                out: out.clone(),
            },
            out,
        )
    }

    /// A snapshot of everything produced so far — the same data the
    /// handle returned by [`HangDoctor::new`] reads.
    pub fn output(&self) -> HdOutput {
        self.out.borrow().clone()
    }

    /// Pre-seeds an action's state (e.g. restoring a persisted table).
    pub fn preset_state(&mut self, uid: ActionUid, state: ActionState) {
        self.states.transition(uid, state, "preset");
    }

    /// Restores a previous session's state table and report (see
    /// [`crate::persistence::DeviceSnapshot`]).
    pub fn restore(&mut self, states: crate::state::StateTable, report: HangBugReport) {
        self.states = states;
        self.out.borrow_mut().report = report;
    }

    /// Arms the doctor with a fault-injection plan (chaos mode).
    ///
    /// Call before the run starts; the default plan is disabled and
    /// injects nothing, making the fault layer behaviorally invisible.
    pub fn inject_faults(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// Reads one counter with the bounded retry-with-backoff policy:
    /// each failed attempt is retried up to `counter_retries` times,
    /// charging `retry_backoff_ns << (attempt - 1)` of monitoring CPU
    /// before each retry. Returns `None` when the budget runs out.
    fn read_counter(
        &mut self,
        ctx: &mut ProbeCtx<'_>,
        session: &PerfSession,
        tid: ThreadId,
        event: HwEvent,
    ) -> Option<f64> {
        let mut attempt = 0u32;
        loop {
            match session.read_with(ctx, &mut self.faults, tid, event) {
                Some(value) => {
                    if attempt > 0 {
                        self.faults.tally.counter_reads_recovered += 1;
                    }
                    return Some(value);
                }
                None if attempt >= self.cfg.counter_retries => {
                    self.faults.tally.counter_reads_lost += 1;
                    return None;
                }
                None => {
                    attempt += 1;
                    self.faults.tally.counter_read_retries += 1;
                    ctx.charge_cpu(self.cfg.retry_backoff_ns << (attempt - 1));
                }
            }
        }
    }

    /// Main-minus-render difference of one event; `None` if either
    /// thread's counter could not be read even after retries.
    fn read_diff(
        &mut self,
        ctx: &mut ProbeCtx<'_>,
        session: &PerfSession,
        main: ThreadId,
        render: ThreadId,
        event: HwEvent,
    ) -> Option<f64> {
        let main_value = self.read_counter(ctx, session, main, event)?;
        let render_value = self.read_counter(ctx, session, render, event)?;
        Some(main_value - render_value)
    }

    fn finish_diagnosis(&mut self, ctx: &mut ProbeCtx<'_>, info: &MessageInfo, response_ns: u64) {
        let window = self.sampler.end_window();
        if window.dropped > 0
            && (window.samples.len() < self.cfg.min_diagnosis_samples
                || window.loss_fraction() > self.cfg.max_sample_loss)
        {
            // The Trace Collector lost too much: rather than emit a
            // low-confidence root cause, abort the session and leave the
            // action's state untouched — the watchdog re-arms on its
            // next hang.
            self.faults.tally.sessions_aborted += 1;
            return;
        }
        let samples = window.samples;
        let root = analyze(
            &samples,
            self.cfg.occurrence_threshold,
            Some(&self.app_package),
            |id| ctx.frame(id).clone(),
        );
        let detection = Detection {
            exec_id: info.exec_id,
            uid: info.action_uid,
            action_name: ctx.action_name(info.action_name).to_string(),
            event_index: info.event_index,
            response_ns,
            at: ctx.now(),
            samples: samples.len(),
            root: root.clone(),
        };
        let mut out = self.out.borrow_mut();
        match &root {
            Some(r) if r.is_bug() => {
                self.states
                    .transition(info.action_uid, ActionState::HangBug, "Diagnoser");
                out.report
                    .record_bug(self.device, info.action_uid, r, response_ns);
                if r.kind == RootKind::BlockingApi {
                    if let Some(db) = &self.apidb {
                        db.lock().add_discovered(&r.symbol, &out.report.app.clone());
                    }
                }
            }
            Some(_) => {
                // A UI operation: clear the action so future executions
                // are not traced (Path B of Figure 3).
                self.states
                    .transition(info.action_uid, ActionState::Normal, "Diagnoser");
            }
            None => {}
        }
        out.detections.push(detection);
    }
}

impl Probe for HangDoctor {
    fn on_action_begin(&mut self, ctx: &mut ProbeCtx<'_>, info: &ActionInfo) {
        let state = self.states.state(info.uid);
        self.out.borrow_mut().report.note_execution(
            self.device,
            info.uid,
            ctx.action_name(info.name),
        );
        let session = if state == ActionState::Uncategorized {
            let threads = [ctx.main_tid(), ctx.render_tid()];
            Some(PerfSession::start(
                ctx,
                &threads,
                &crate::config::SymptomThresholds::EVENTS,
                self.cfg.costs,
            ))
        } else {
            None
        };
        let net_bytes_at_begin = if self.cfg.monitor_network {
            ctx.net_bytes(ctx.main_tid())
        } else {
            0
        };
        self.current = Some(CurrentAction {
            uid: info.uid,
            name: info.name,
            state_at_begin: state,
            session,
            had_hang: false,
            net_bytes_at_begin,
        });
    }

    fn on_dispatch_begin(&mut self, ctx: &mut ProbeCtx<'_>, info: &MessageInfo) {
        ctx.charge_cpu(self.cfg.costs.response_hook_ns);
        let state = self.states.state(info.action_uid);
        if matches!(state, ActionState::Suspicious | ActionState::HangBug) {
            self.next_watch_token += 1;
            let token = self.next_watch_token;
            // The watchdog deadline is subject to clock jitter: a skewed
            // monotonic clock fires the 100 ms alarm early or late.
            let deadline = self.faults.jitter_deadline(ctx.now() + self.cfg.timeout_ns);
            ctx.set_timer(deadline, token);
            self.dispatch = Some(CurrentDispatch {
                exec_id: info.exec_id,
                event_index: info.event_index,
                watch_token: token,
                sampling: false,
            });
        }
    }

    fn on_timer(&mut self, ctx: &mut ProbeCtx<'_>, token: u64) {
        if token == SAMPLER_TOKEN {
            self.sampler.on_timer_with(ctx, token, &mut self.faults);
            return;
        }
        let Some(dispatch) = &mut self.dispatch else {
            return; // Stale watchdog: the event finished in time.
        };
        if token != dispatch.watch_token || dispatch.sampling {
            return;
        }
        // The input event has been running for 100 ms: a soft hang is in
        // progress — start the Trace Collector.
        dispatch.sampling = true;
        self.sampler.begin_with(ctx, &mut self.faults);
    }

    fn on_dispatch_end(&mut self, ctx: &mut ProbeCtx<'_>, info: &MessageInfo, response_ns: u64) {
        ctx.charge_cpu(self.cfg.costs.response_hook_ns);
        if response_ns > self.cfg.timeout_ns {
            self.out.borrow_mut().hangs_observed += 1;
            if let Some(cur) = &mut self.current {
                cur.had_hang = true;
            }
        }
        if let Some(dispatch) = self.dispatch.take() {
            debug_assert_eq!(dispatch.exec_id, info.exec_id);
            debug_assert_eq!(dispatch.event_index, info.event_index);
            if dispatch.sampling {
                self.finish_diagnosis(ctx, info, response_ns);
            }
        }
    }

    fn on_action_end(&mut self, ctx: &mut ProbeCtx<'_>, record: &ActionRecord) {
        let Some(cur) = self.current.take() else {
            return;
        };
        debug_assert_eq!(cur.uid, record.uid);
        if self.cfg.monitor_network && !self.net_warned.contains(&cur.uid) {
            let bytes = ctx
                .net_bytes(ctx.main_tid())
                .saturating_sub(cur.net_bytes_at_begin);
            if bytes > 0 {
                self.net_warned.insert(cur.uid);
                let action_name = ctx.action_name(cur.name).to_string();
                self.out.borrow_mut().network_warnings.push(NetworkWarning {
                    uid: cur.uid,
                    action_name,
                    exec_id: record.exec_id,
                    bytes,
                });
            }
        }
        match cur.state_at_begin {
            ActionState::Uncategorized => {
                if cur.had_hang {
                    let session = cur.session.expect("uncategorized action has a session");
                    let main = ctx.main_tid();
                    let render = ctx.render_tid();
                    let partial = PartialCounterDiffs {
                        context_switches: self.read_diff(
                            ctx,
                            &session,
                            main,
                            render,
                            HwEvent::ContextSwitches,
                        ),
                        task_clock: self.read_diff(ctx, &session, main, render, HwEvent::TaskClock),
                        page_faults: self.read_diff(
                            ctx,
                            &session,
                            main,
                            render,
                            HwEvent::PageFaults,
                        ),
                    };
                    match self.checker.check_partial(partial) {
                        Some(verdict) => {
                            if verdict.degraded {
                                self.faults.tally.degraded_verdicts += 1;
                            }
                            let mut out = self.out.borrow_mut();
                            out.schecker_checks += 1;
                            if verdict.suspicious {
                                out.suspicious_marks += 1;
                                self.states.transition(
                                    cur.uid,
                                    ActionState::Suspicious,
                                    "S-Checker",
                                );
                            } else {
                                self.states
                                    .transition(cur.uid, ActionState::Normal, "S-Checker");
                            }
                            out.verdicts.push((cur.uid, verdict));
                        }
                        None => {
                            // Every counter read was lost: there is no
                            // evidence either way, so the check is
                            // abandoned and the action stays
                            // Uncategorized for the next execution.
                            self.faults.tally.checks_abandoned += 1;
                        }
                    }
                }
                // Without a hang the action stays Uncategorized and will
                // be monitored again next time.
            }
            ActionState::Normal => {
                self.states
                    .note_normal_execution(cur.uid, self.cfg.normal_reset_executions);
            }
            ActionState::Suspicious | ActionState::HangBug => {
                // Transitions were handled at dispatch end.
            }
        }
    }

    fn on_sim_end(&mut self, _ctx: &mut ProbeCtx<'_>) {
        let mut out = self.out.borrow_mut();
        out.states = self.states.clone();
        out.faults = self.faults.tally();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hd_appmodel::corpus::{table1, table5};
    use hd_appmodel::{build_run, round_robin_schedule, CompiledApp};
    use hd_simrt::{SimConfig, MILLIS};

    fn run_doctor(
        app: hd_appmodel::App,
        reps: usize,
        seed: u64,
    ) -> (Rc<RefCell<HdOutput>>, Vec<hd_appmodel::ExecTruth>) {
        let compiled = CompiledApp::new(app);
        let sched = round_robin_schedule(compiled.app(), reps, 3_000);
        let mut run = build_run(&compiled, &sched, SimConfig::default(), seed);
        let (probe, out) = HangDoctor::new(
            HangDoctorConfig::default(),
            &compiled.app().name,
            &compiled.app().package,
            1,
            None,
        );
        run.sim.add_probe(Box::new(probe));
        run.sim.run();
        (out, run.truths)
    }

    fn run_doctor_faulted(
        app: hd_appmodel::App,
        reps: usize,
        seed: u64,
        faults: hd_faults::FaultConfig,
    ) -> Rc<RefCell<HdOutput>> {
        let compiled = CompiledApp::new(app);
        let sched = round_robin_schedule(compiled.app(), reps, 3_000);
        let mut run = build_run(&compiled, &sched, SimConfig::default(), seed);
        let (mut probe, out) = HangDoctor::new(
            HangDoctorConfig::default(),
            &compiled.app().name,
            &compiled.app().package,
            1,
            None,
        );
        probe.inject_faults(FaultPlan::for_job(faults, seed, 0));
        run.sim.add_probe(Box::new(probe));
        run.sim.run();
        out
    }

    #[test]
    fn k9_clean_bug_is_detected_and_diagnosed() {
        let (out, _) = run_doctor(table5::k9mail(), 4, 11);
        let out = out.borrow();
        // The open-email action must end in the HangBug state.
        let bug_actions = out.states.in_state(ActionState::HangBug);
        assert!(!bug_actions.is_empty(), "no HangBug actions");
        // HtmlCleaner.clean must be among the diagnosed root causes.
        let syms: Vec<&str> = out
            .detections
            .iter()
            .filter(|d| d.is_bug())
            .filter_map(|d| d.root.as_ref())
            .map(|r| r.symbol.as_str())
            .collect();
        assert!(
            syms.contains(&"org.htmlcleaner.HtmlCleaner.clean"),
            "diagnosed: {syms:?}"
        );
        // And appear in the developer report.
        let rows = out.report.entries();
        assert!(rows.iter().any(|r| r.symbol.contains("HtmlCleaner.clean")));
    }

    #[test]
    fn first_hang_only_marks_suspicious_no_traces() {
        // A single execution of each action: the Diagnoser never gets a
        // second chance, so zero stack traces are collected.
        let (out, _) = run_doctor(table5::k9mail(), 1, 3);
        let out = out.borrow();
        assert!(out.detections.is_empty());
        assert!(out.suspicious_marks > 0);
    }

    #[test]
    fn heavy_render_ui_actions_become_normal_without_tracing() {
        // K9's folder/inbox UI actions hang (> 100 ms) but are render
        // dominant: the S-Checker filters them straight to Normal.
        let (out, _) = run_doctor(table5::k9mail(), 3, 7);
        let out = out.borrow();
        let normal = out.states.in_state(ActionState::Normal);
        assert!(!normal.is_empty(), "expected Normal UI actions");
        // No UI action may end in HangBug.
        for d in &out.detections {
            if d.is_bug() {
                assert!(
                    !d.root.as_ref().unwrap().symbol.contains("android.widget"),
                    "UI API misdiagnosed: {:?}",
                    d.root
                );
            }
        }
    }

    #[test]
    fn tricky_map_ui_is_pruned_by_diagnoser() {
        // CycleStreets map panning is main-thread heavy: it trips the
        // S-Checker (false positive) but the Diagnoser's stack analysis
        // recognizes the MapView class and clears it.
        let (out, _) = run_doctor(table5::cyclestreets(), 4, 19);
        let out = out.borrow();
        let ui_detections: Vec<&Detection> = out
            .detections
            .iter()
            .filter(|d| d.root.as_ref().map(|r| !r.is_bug()).unwrap_or(false))
            .collect();
        assert!(
            !ui_detections.is_empty(),
            "expected at least one pruned UI diagnosis"
        );
        for d in ui_detections {
            assert_eq!(out.states.state(d.uid), ActionState::Normal);
        }
    }

    #[test]
    fn unknown_api_is_added_to_shared_db() {
        let db = crate::apidb::shared(crate::apidb::BlockingApiDb::documented(2017));
        let compiled = CompiledApp::new(table5::k9mail());
        let sched = round_robin_schedule(compiled.app(), 4, 3_000);
        let mut run = build_run(&compiled, &sched, SimConfig::default(), 11);
        let (probe, _out) = HangDoctor::new(
            HangDoctorConfig::default(),
            "K9-mail",
            "com.fsck.k9",
            1,
            Some(db.clone()),
        );
        run.sim.add_probe(Box::new(probe));
        run.sim.run();
        let db = db.lock();
        assert!(db.contains("org.htmlcleaner.HtmlCleaner.clean"));
        assert!(db
            .discovered()
            .iter()
            .any(|(s, app)| s.contains("HtmlCleaner") && *app == "K9-mail"));
    }

    #[test]
    fn self_developed_bug_not_added_to_db_but_reported() {
        let db = crate::apidb::shared(crate::apidb::BlockingApiDb::documented(2017));
        let compiled = CompiledApp::new(table5::qksms());
        let sched = round_robin_schedule(compiled.app(), 5, 3_000);
        let mut run = build_run(&compiled, &sched, SimConfig::default(), 23);
        let (probe, out) = HangDoctor::new(
            HangDoctorConfig::default(),
            "QKSMS",
            "com.moez.QKSMS",
            1,
            Some(db.clone()),
        );
        run.sim.add_probe(Box::new(probe));
        run.sim.run();
        let out = out.borrow();
        let self_dev: Vec<&Detection> = out
            .detections
            .iter()
            .filter(|d| d.root.as_ref().map(|r| r.kind) == Some(RootKind::SelfDeveloped))
            .collect();
        assert!(
            !self_dev.is_empty(),
            "expected the SearchIndexer self-developed bug"
        );
        // Self-developed operations are reported to the developer only,
        // never to the shared API database.
        assert!(!db
            .lock()
            .contains("com.moez.QKSMS.util.SearchIndexer.buildIndex"));
        assert!(out
            .report
            .entries()
            .iter()
            .any(|e| e.symbol.contains("SearchIndexer")));
    }

    #[test]
    fn diagnosis_response_time_is_plausible() {
        let (out, truths) = run_doctor(table5::k9mail(), 4, 31);
        let out = out.borrow();
        for d in out.detections.iter().filter(|d| d.is_bug()) {
            assert!(d.response_ns > 100 * MILLIS);
            assert!(d.samples >= 5, "too few samples: {}", d.samples);
            let truth = &truths[(d.exec_id.0 - 1) as usize];
            assert!(
                truth.is_buggy(90 * MILLIS),
                "diagnosed a non-buggy exec as bug"
            );
        }
    }

    #[test]
    fn abc_resume_detects_camera_open() {
        let (out, _) = run_doctor(table1::a_better_camera(), 4, 41);
        let out = out.borrow();
        let syms: Vec<&str> = out
            .detections
            .iter()
            .filter(|d| d.is_bug())
            .filter_map(|d| d.root.as_ref())
            .map(|r| r.symbol.as_str())
            .collect();
        assert!(
            syms.contains(&"android.hardware.Camera.open"),
            "diagnosed: {syms:?}"
        );
    }

    #[test]
    fn occasional_bug_dwells_in_suspicious_until_it_hangs_again() {
        // An action whose bug manifests only sometimes: the S-Checker
        // marks it Suspicious on its first hang; executions without a
        // hang leave it Suspicious (Figure 3, Path B/C waiting loop);
        // the next hang is traced and diagnosed.
        use hd_appmodel::{
            ActionSpec, ApiId, ApiKind, ApiSpec, App, BugSpec, Call, CostSpec, Dist, EventSpec,
            ProfileKind,
        };
        use hd_simrt::ActionUid;
        let apis = vec![
            ApiSpec::new(
                "android.widget.TextView.setText",
                1,
                ApiKind::Ui,
                CostSpec::ui(Dist::fixed(6 * MILLIS), Dist::fixed(4), 4 * MILLIS),
            ),
            ApiSpec::new(
                "org.occ.Lib.parse",
                9,
                ApiKind::Blocking { known_since: None },
                CostSpec::cpu(Dist::fixed(400 * MILLIS), ProfileKind::MemoryHeavy)
                    .occasional(0.5, 0.05),
            ),
        ];
        let app = App {
            name: "Occ".into(),
            package: "org.occ".into(),
            category: "Tools".into(),
            downloads: 10,
            commit: "c".into(),
            apis,
            actions: vec![ActionSpec::new(
                0,
                "open",
                vec![EventSpec::new(
                    "org.occ.Main.onOpen",
                    5,
                    vec![Call::direct(ApiId(0)), Call::direct(ApiId(1)).bug("occ-1")],
                )],
            )],
            bugs: vec![BugSpec {
                id: "occ-1".into(),
                issue: 1,
                api: ApiId(1),
                action: ActionUid(0),
                description: "occasional parse".into(),
            }],
            executors: vec![],
        };
        let (out, truths) = run_doctor(app, 12, 97);
        let out = out.borrow();
        // The bug manifested several times and was eventually diagnosed.
        assert!(out
            .states
            .in_state(ActionState::HangBug)
            .contains(&ActionUid(0)));
        let bug_detections = out.detections.iter().filter(|d| d.is_bug()).count();
        assert!(bug_detections >= 1, "{:?}", out.detections);
        // There was at least one Suspicious-state execution without a
        // hang (light path) before the diagnosis: the number of hangs
        // observed is strictly smaller than executions.
        let manifested = truths.iter().filter(|t| t.is_buggy(100 * MILLIS)).count();
        assert!(manifested < truths.len(), "all executions manifested");
        assert!(manifested >= 2, "need at least two hangs for diagnosis");
        // Every detection targeted a manifesting execution.
        for d in out.detections.iter().filter(|d| d.is_bug()) {
            assert!(truths[(d.exec_id.0 - 1) as usize].is_buggy(100 * MILLIS));
        }
    }

    #[test]
    fn network_on_main_extension_flags_offenders_once() {
        use hd_appmodel::registry;
        use hd_appmodel::{
            ActionSpec, ApiId, ApiKind, ApiSpec, App, BugSpec, Call, CostSpec, Dist, EventSpec,
        };
        use hd_simrt::ActionUid;
        let apis = vec![
            ApiSpec::new(
                "android.widget.TextView.setText",
                1,
                ApiKind::Ui,
                CostSpec::ui(Dist::fixed(6 * MILLIS), Dist::fixed(4), 4 * MILLIS),
            ),
            registry::http_fetch(),
        ];
        let app = App {
            name: "Legacy".into(),
            package: "org.legacy".into(),
            category: "Tools".into(),
            downloads: 10,
            commit: "c".into(),
            apis,
            actions: vec![
                ActionSpec::new(
                    0,
                    "refresh feed",
                    vec![EventSpec::new(
                        "org.legacy.Main.onRefresh",
                        5,
                        vec![
                            Call::direct(ApiId(0)),
                            Call::direct(ApiId(1)).bug("legacy-net"),
                        ],
                    )],
                ),
                ActionSpec::new(
                    1,
                    "open settings",
                    vec![EventSpec::new(
                        "org.legacy.Main.onSettings",
                        9,
                        vec![Call::direct(ApiId(0))],
                    )],
                ),
            ],
            bugs: vec![BugSpec {
                id: "legacy-net".into(),
                issue: 1,
                api: ApiId(1),
                action: ActionUid(0),
                description: "HTTP on the main thread".into(),
            }],
            executors: vec![],
        };
        let compiled = CompiledApp::new(app.clone());
        let sched = round_robin_schedule(&app, 3, 3_000);
        let mut run = build_run(&compiled, &sched, SimConfig::default(), 61);
        let cfg = HangDoctorConfig::builder()
            .monitor_network(true)
            .build()
            .unwrap();
        let (probe, out) = HangDoctor::new(cfg, &app.name, &app.package, 1, None);
        run.sim.add_probe(Box::new(probe));
        run.sim.run();
        let out = out.borrow();
        // Exactly one warning, for the offending action, despite three
        // executions.
        assert_eq!(out.network_warnings.len(), 1, "{:?}", out.network_warnings);
        let w = &out.network_warnings[0];
        assert_eq!(w.action_name, "refresh feed");
        assert!(w.bytes > 1_000, "bytes {}", w.bytes);
        // The ordinary pipeline also catches the hang itself (the HTTP
        // call blocks for ~350 ms).
        assert!(out
            .detections
            .iter()
            .any(|d| d.is_bug() && d.action_name == "refresh feed"));
    }

    #[test]
    fn network_monitoring_is_off_by_default() {
        let (out, _) = run_doctor(table5::k9mail(), 2, 5);
        assert!(out.borrow().network_warnings.is_empty());
    }

    #[test]
    fn disabled_fault_plan_is_behaviorally_invisible() {
        use hd_faults::FaultConfig;
        let (clean, _) = run_doctor(table5::k9mail(), 4, 11);
        let faulted = run_doctor_faulted(table5::k9mail(), 4, 11, FaultConfig::none());
        let (clean, faulted) = (clean.borrow(), faulted.borrow());
        assert_eq!(clean.detections, faulted.detections);
        assert_eq!(clean.verdicts, faulted.verdicts);
        assert_eq!(
            clean.states.in_state(ActionState::HangBug),
            faulted.states.in_state(ActionState::HangBug)
        );
        assert!(faulted.faults.is_empty());
    }

    #[test]
    fn aborted_diagnosis_rearms_suspicious_action() {
        // Every stack sample drops: each traced session is abandoned, so
        // no detection is ever emitted and the action must stay armed in
        // Suspicious — never leaking to Normal or HangBug on partial
        // evidence.
        use hd_faults::{FaultCategory, FaultConfig};
        let out = run_doctor_faulted(
            table5::k9mail(),
            4,
            11,
            FaultConfig::only(FaultCategory::DroppedSample, 1.0),
        );
        let out = out.borrow();
        assert!(out.detections.is_empty(), "{:?}", out.detections);
        assert!(out.faults.sessions_aborted > 0);
        assert!(out.states.in_state(ActionState::HangBug).is_empty());
        assert!(!out.states.in_state(ActionState::Suspicious).is_empty());
        assert!(out.states.transitions().iter().all(|t| t.by != "Diagnoser"));
    }

    #[test]
    fn all_counters_failing_leaves_action_uncategorized() {
        // Every counter read fails, even after retries: the S-Checker has
        // no evidence at all, abandons every check, and the action stays
        // Uncategorized for re-examination.
        use hd_faults::{FaultCategory, FaultConfig};
        let out = run_doctor_faulted(
            table5::k9mail(),
            3,
            7,
            FaultConfig::only(FaultCategory::CounterRead, 1.0),
        );
        let out = out.borrow();
        assert!(out.faults.checks_abandoned > 0);
        assert_eq!(out.schecker_checks, 0);
        assert!(out.verdicts.is_empty());
        assert_eq!(out.suspicious_marks, 0);
        assert!(out.states.in_state(ActionState::Suspicious).is_empty());
        assert!(out.states.in_state(ActionState::Normal).is_empty());
        assert!(out.states.in_state(ActionState::HangBug).is_empty());
        // With the default budget of 2 retries, each lost read burns the
        // whole budget.
        assert_eq!(
            out.faults.counter_read_failures,
            out.faults.counter_read_retries + out.faults.counter_reads_lost
        );
        assert!(out.faults.counter_reads_recovered == 0);
    }

    #[test]
    fn moderate_read_failures_are_mostly_recovered_by_retries() {
        use hd_faults::{FaultCategory, FaultConfig};
        let out = run_doctor_faulted(
            table5::k9mail(),
            4,
            11,
            FaultConfig::only(FaultCategory::CounterRead, 0.35),
        );
        let out = out.borrow();
        assert!(out.faults.counter_read_failures > 0);
        assert!(out.faults.counter_reads_recovered > 0, "{:?}", out.faults);
        // Retry accounting: every failed attempt is either retried or
        // terminal.
        assert_eq!(
            out.faults.counter_read_failures,
            out.faults.counter_read_retries + out.faults.counter_reads_lost
        );
        // The filter still ran on whatever survived.
        assert!(out.schecker_checks > 0);
    }

    #[test]
    fn chaos_run_completes_and_tallies_every_injection() {
        use hd_faults::FaultConfig;
        let out = run_doctor_faulted(table5::k9mail(), 4, 19, FaultConfig::chaos(0.1));
        let out = out.borrow();
        assert!(out.faults.injected() > 0);
        assert!(out.hangs_observed > 0);
    }

    #[test]
    fn async_hangs_blame_the_worker_side_culprit() {
        // Every annotated async hang app (serial convoy, pool
        // starvation, slow-worker join) must be diagnosed with exactly
        // its ground-truth culprit API — never the innocent join site
        // the main thread happens to be parked in.
        use hd_appmodel::corpus::async_hangs;
        for app in [
            async_hangs::chatrelay(),
            async_hangs::pixelpress(),
            async_hangs::newsflash(),
        ] {
            let name = app.name.clone();
            let culprit = app.api(app.bugs[0].api).symbol.clone();
            let (out, _) = run_doctor(app, 5, 77);
            let out = out.borrow();
            let syms: Vec<&str> = out
                .detections
                .iter()
                .filter(|d| d.is_bug())
                .filter_map(|d| d.root.as_ref())
                .map(|r| r.symbol.as_str())
                .collect();
            assert!(
                syms.contains(&culprit.as_str()),
                "{name}: expected culprit '{culprit}', diagnosed {syms:?}"
            );
            assert!(
                !syms.iter().any(|s| s.contains("FutureTask.get")),
                "{name}: blamed the join site: {syms:?}"
            );
            assert!(!out.states.in_state(ActionState::HangBug).is_empty());
        }
    }

    #[test]
    fn baseline_diagnosis_names_the_join_site() {
        // With causal blame off, the sampler sees only the main thread's
        // own frames: the top of every hang stack is the join API, so
        // the naive diagnosis mis-blames `FutureTask.get`.
        use hd_appmodel::corpus::async_hangs;
        let app = async_hangs::newsflash();
        let culprit = app.api(app.bugs[0].api).symbol.clone();
        let compiled = CompiledApp::new(app);
        let sched = round_robin_schedule(compiled.app(), 5, 3_000);
        let mut run = build_run(&compiled, &sched, SimConfig::default(), 77);
        let cfg = HangDoctorConfig::builder()
            .causal_blame(false)
            .build()
            .unwrap();
        let (probe, out) =
            HangDoctor::new(cfg, &compiled.app().name, &compiled.app().package, 1, None);
        run.sim.add_probe(Box::new(probe));
        run.sim.run();
        let out = out.borrow();
        let syms: Vec<&str> = out
            .detections
            .iter()
            .filter(|d| d.is_bug())
            .filter_map(|d| d.root.as_ref())
            .map(|r| r.symbol.as_str())
            .collect();
        assert!(
            syms.contains(&"java.util.concurrent.FutureTask.get"),
            "baseline should blame the join site, diagnosed {syms:?}"
        );
        assert!(
            !syms.contains(&culprit.as_str()),
            "baseline must not see the worker culprit: {syms:?}"
        );
    }

    #[test]
    fn timely_join_is_never_blamed() {
        // Negative control: the joined draft persist completes well
        // inside the 100 ms budget, so no hang is traced and nothing is
        // blamed — with or without causal blame.
        use hd_appmodel::corpus::async_hangs;
        let (out, _) = run_doctor(async_hangs::quicknote(), 5, 77);
        let out = out.borrow();
        assert!(
            out.detections.iter().all(|d| !d.is_bug()),
            "{:?}",
            out.detections
        );
        assert!(out.states.in_state(ActionState::HangBug).is_empty());
        assert!(out.report.entries().is_empty());
    }

    #[test]
    fn aborted_async_diagnosis_rearms_and_never_misblames() {
        // Chaos: every stack sample drops during async hangs. Each
        // traced session must abort (re-arming Suspicious) rather than
        // emit any diagnosis — in particular never a join-site blame
        // built from partial evidence.
        use hd_appmodel::corpus::async_hangs;
        use hd_faults::{FaultCategory, FaultConfig};
        let out = run_doctor_faulted(
            async_hangs::newsflash(),
            5,
            77,
            FaultConfig::only(FaultCategory::DroppedSample, 1.0),
        );
        let out = out.borrow();
        assert!(out.detections.is_empty(), "{:?}", out.detections);
        assert!(out.faults.sessions_aborted > 0);
        assert!(out.states.in_state(ActionState::HangBug).is_empty());
        assert!(!out.states.in_state(ActionState::Suspicious).is_empty());
        assert!(out.report.entries().is_empty());
    }

    #[test]
    fn async_chaos_run_degrades_gracefully() {
        // Full chaos over the async corpus: blame walks may lose
        // samples, but the pipeline must neither panic nor blame the
        // join site.
        use hd_appmodel::corpus::async_hangs;
        use hd_faults::FaultConfig;
        for app in async_hangs::apps() {
            let out = run_doctor_faulted(app, 5, 19, FaultConfig::chaos(0.1));
            let out = out.borrow();
            for d in out.detections.iter().filter(|d| d.is_bug()) {
                assert!(
                    !d.root.as_ref().unwrap().symbol.contains("FutureTask.get"),
                    "join site blamed under chaos: {:?}",
                    d.root
                );
            }
        }
    }

    #[test]
    fn normal_actions_are_reset_for_reexamination() {
        let cfg = HangDoctorConfig::builder()
            .normal_reset_executions(3)
            .build()
            .unwrap();
        let compiled = CompiledApp::new(table5::k9mail());
        let sched = round_robin_schedule(compiled.app(), 8, 2_500);
        let mut run = build_run(&compiled, &sched, SimConfig::default(), 13);
        let (probe, out) = HangDoctor::new(cfg, "K9-mail", "com.fsck.k9", 1, None);
        run.sim.add_probe(Box::new(probe));
        run.sim.run();
        let out = out.borrow();
        let resets = out
            .states
            .transitions()
            .iter()
            .filter(|t| t.by == "reset")
            .count();
        assert!(resets > 0, "expected Normal→Uncategorized resets");
    }
}
