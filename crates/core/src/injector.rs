//! The App Injector (Figure 2(a), offline component).
//!
//! "Android apps handle user actions by implementing special listeners,
//! handlers, and callback functions [...] App Injector assigns a Unique
//! ID (UID) to every action. Then, at runtime, a look-up table is created
//! to save various information about the actions" (Section 3.5). The
//! injector walks an app's handler entry points, assigns each action a
//! stable UID derived from its position among the instrumented handlers,
//! and reports what it instrumented — this is what a build-time bytecode
//! pass does on a real APK.

use std::collections::HashMap;

use hd_appmodel::App;
use hd_simrt::ActionUid;
use serde::{Deserialize, Serialize};

/// One instrumented handler.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectedAction {
    /// UID assigned to the action.
    pub uid: u64,
    /// The action's name.
    pub action: String,
    /// Handler symbols the action's input events enter through.
    pub handlers: Vec<String>,
}

/// Result of injecting one app.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct InjectionReport {
    /// App name.
    pub app: String,
    /// Instrumented actions, in UID order.
    pub actions: Vec<InjectedAction>,
}

impl InjectionReport {
    /// Number of instrumented actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Whether nothing was instrumented.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }
}

/// Build-time injector: assigns UIDs and builds the handler→UID map.
#[derive(Clone, Debug, Default)]
pub struct AppInjector {
    by_handler: HashMap<String, ActionUid>,
}

impl AppInjector {
    /// Creates an empty injector.
    pub fn new() -> AppInjector {
        AppInjector::default()
    }

    /// Instruments `app`: assigns dense UIDs in declaration order (the
    /// deterministic order a bytecode pass visits handlers), rewrites
    /// the app's action/bug UID references, and returns the report.
    ///
    /// Injection is idempotent: instrumenting an already-instrumented
    /// app yields the same UIDs.
    pub fn inject(&mut self, app: &mut App) -> InjectionReport {
        let mut report = InjectionReport {
            app: app.name.clone(),
            actions: Vec::with_capacity(app.actions.len()),
        };
        let mut remap: HashMap<ActionUid, ActionUid> = HashMap::new();
        for (i, action) in app.actions.iter_mut().enumerate() {
            let uid = ActionUid(i as u64);
            remap.insert(action.uid, uid);
            action.uid = uid;
            let handlers: Vec<String> = action.events.iter().map(|e| e.handler.clone()).collect();
            for h in &handlers {
                self.by_handler.insert(h.clone(), uid);
            }
            report.actions.push(InjectedAction {
                uid: uid.0,
                action: action.name.clone(),
                handlers,
            });
        }
        for bug in &mut app.bugs {
            if let Some(&new) = remap.get(&bug.action) {
                bug.action = new;
            }
        }
        report
    }

    /// Runtime look-up: which action does a handler belong to?
    pub fn lookup(&self, handler_symbol: &str) -> Option<ActionUid> {
        self.by_handler.get(handler_symbol).copied()
    }

    /// Number of instrumented handler entry points.
    pub fn handlers_instrumented(&self) -> usize {
        self.by_handler.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hd_appmodel::corpus::table5;
    use hd_appmodel::CompiledApp;

    #[test]
    fn injection_assigns_dense_uids_and_remaps_bugs() {
        // Scramble the UIDs as if the model came from elsewhere; the
        // injector must re-derive a dense, deterministic numbering.
        let mut app = table5::k9mail();
        for a in &mut app.actions {
            a.uid = ActionUid(5000 + a.uid.0);
        }
        for bug in &mut app.bugs {
            bug.action = ActionUid(5000 + bug.action.0);
        }
        let mut injector = AppInjector::new();
        let report = injector.inject(&mut app);
        assert_eq!(report.len(), app.actions.len());
        for (i, a) in app.actions.iter().enumerate() {
            assert_eq!(a.uid, ActionUid(i as u64));
        }
        // Bug references were rewritten consistently.
        assert!(app.validate().is_empty(), "{:?}", app.validate());
        // The instrumented app still compiles and runs.
        let _ = CompiledApp::new(app.clone());
    }

    #[test]
    fn runtime_lookup_resolves_handlers() {
        let mut app = table5::qksms();
        let mut injector = AppInjector::new();
        injector.inject(&mut app);
        for action in &app.actions {
            for ev in &action.events {
                assert_eq!(
                    injector.lookup(&ev.handler),
                    Some(action.uid),
                    "{}",
                    ev.handler
                );
            }
        }
        assert!(injector.lookup("com.unknown.Main.onNothing").is_none());
        assert!(injector.handlers_instrumented() >= app.actions.len());
    }

    #[test]
    fn injection_is_idempotent() {
        let mut app = table5::merchant();
        let mut injector = AppInjector::new();
        let first = injector.inject(&mut app);
        let again = injector.inject(&mut app);
        assert_eq!(first.actions, again.actions);
    }
}
