//! Second phase: the Trace Analyzer (Section 3.4.1).
//!
//! Given the stack traces collected during one soft hang, the analyzer
//! computes each frame's *occurrence factor* — the fraction of traces
//! containing it — and determines the root cause:
//!
//! * a single API with a high occurrence factor is the root cause (e.g.
//!   `camera.open` in ~60% of Figure 1's traces, `clean` in 96% of
//!   Figure 6's);
//! * a low top occurrence factor means many light calls inside one
//!   self-developed operation: the most common *caller* function is
//!   reported instead;
//! * UI-class root causes (View/Widget classes — recognizable by class
//!   name even for previously unseen APIs) are classified as legitimate
//!   UI work, not bugs.

use std::collections::HashMap;

use hd_perfmon::StackSample;
use hd_simrt::{Frame, FrameId};
use serde::{Deserialize, Serialize};

/// Framework scaffolding present in every trace, never a root cause.
const SCAFFOLDING: [&str; 2] = [
    "android.os.Looper.loop",
    "android.os.Handler.dispatchMessage",
];

/// Classification of a diagnosed root cause.
///
/// `Ord` follows declaration order and is used by the report merge to
/// resolve classification conflicts deterministically.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RootKind {
    /// Legitimate UI work that must stay on the main thread.
    UiApi,
    /// A blocking API that should move to a worker thread.
    BlockingApi,
    /// A self-developed lengthy operation (reported via its caller).
    SelfDeveloped,
}

/// The diagnosed root cause of one soft hang.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RootCause {
    /// Fully qualified symbol of the culprit.
    pub symbol: String,
    /// Source file.
    pub file: String,
    /// Line number.
    pub line: u32,
    /// Occurrence factor of the culprit across the collected traces.
    pub occurrence_factor: f64,
    /// Classification.
    pub kind: RootKind,
}

impl RootCause {
    /// Whether this diagnosis is a soft hang bug (not UI work).
    pub fn is_bug(&self) -> bool {
        self.kind != RootKind::UiApi
    }
}

/// Returns whether a frame belongs to a UI class.
///
/// UI APIs "are grouped in a few classes (e.g., View and Widget
/// classes)"; new UI APIs are recognizable from the class name alone.
pub fn is_ui_frame(frame: &Frame) -> bool {
    const UI_PACKAGES: [&str; 7] = [
        "android.view.",
        "android.widget.",
        "android.webkit.",
        "android.animation.",
        "android.app.",
        "android.support.",
        "androidx.",
    ];
    if UI_PACKAGES.iter().any(|p| frame.class_name.starts_with(p)) {
        return true;
    }
    // New UI classes outside the framework: recognize View/Widget/Layout
    // naming (e.g. org.osmdroid.views.MapView).
    let class_leaf = frame
        .class_name
        .rsplit('.')
        .next()
        .unwrap_or(&frame.class_name);
    ["View", "Widget", "Layout", "Canvas"]
        .iter()
        .any(|m| class_leaf.contains(m))
}

fn is_scaffolding(symbol: &str) -> bool {
    SCAFFOLDING.contains(&symbol)
}

/// Analyzes the stack traces collected during one soft hang.
///
/// `resolve` maps a frame id to its frame (normally backed by the
/// simulator's frame table); `app_package` is the app's own package
/// prefix — a root cause inside it is the app's own code, i.e. a
/// self-developed lengthy operation rather than a blocking API. Returns
/// `None` when no traces were collected (nothing to diagnose).
pub fn analyze(
    samples: &[StackSample],
    occurrence_threshold: f64,
    app_package: Option<&str>,
    mut resolve: impl FnMut(FrameId) -> Frame,
) -> Option<RootCause> {
    if samples.is_empty() {
        return None;
    }
    let n = samples.len() as f64;

    // Occurrence factor per frame id and per-leaf/caller tallies.
    let mut present: HashMap<FrameId, usize> = HashMap::new();
    let mut leaf_count: HashMap<FrameId, usize> = HashMap::new();
    let mut caller_count: HashMap<FrameId, usize> = HashMap::new();
    for s in samples {
        let mut seen = std::collections::HashSet::new();
        for &f in &s.frames {
            if seen.insert(f) {
                *present.entry(f).or_default() += 1;
            }
        }
        if let Some(&leaf) = s.frames.last() {
            *leaf_count.entry(leaf).or_default() += 1;
            if s.frames.len() >= 2 {
                *caller_count
                    .entry(s.frames[s.frames.len() - 2])
                    .or_default() += 1;
            }
        }
    }

    // Candidate root cause: the leaf frame with the highest occurrence
    // factor (ties broken deterministically by id).
    let mut leaves: Vec<(FrameId, usize)> =
        leaf_count.iter().map(|(&f, _)| (f, present[&f])).collect();
    leaves.sort_by_key(|&(f, c)| (std::cmp::Reverse(c), f));
    let (top_leaf, top_present) = *leaves.first()?;
    let top_frame = resolve(top_leaf);
    let top_occurrence = top_present as f64 / n;

    let in_app = |frame: &Frame| {
        app_package
            .map(|p| frame.symbol.starts_with(p))
            .unwrap_or(false)
    };

    if top_occurrence >= occurrence_threshold && !is_scaffolding(&top_frame.symbol) {
        // A single heavy API dominates the hang.
        let kind = if is_ui_frame(&top_frame) {
            RootKind::UiApi
        } else if in_app(&top_frame) {
            RootKind::SelfDeveloped
        } else {
            RootKind::BlockingApi
        };
        return Some(RootCause {
            symbol: top_frame.symbol,
            file: top_frame.file,
            line: top_frame.line,
            occurrence_factor: top_occurrence,
            kind,
        });
    }

    // Many light APIs: find the most common caller function with a high
    // occurrence factor — the self-developed operation to move off the
    // main thread.
    let mut callers: Vec<(FrameId, usize)> = caller_count
        .iter()
        .map(|(&f, _)| (f, present[&f]))
        .collect();
    callers.sort_by_key(|&(f, c)| (std::cmp::Reverse(c), f));
    for (caller, count) in callers {
        let frame = resolve(caller);
        if is_scaffolding(&frame.symbol) {
            continue;
        }
        let occurrence = count as f64 / n;
        if occurrence < occurrence_threshold {
            break;
        }
        let kind = if is_ui_frame(&frame) {
            RootKind::UiApi
        } else {
            RootKind::SelfDeveloped
        };
        return Some(RootCause {
            symbol: frame.symbol,
            file: frame.file,
            line: frame.line,
            occurrence_factor: occurrence,
            kind,
        });
    }

    // Fall back to the top leaf even below the threshold.
    let kind = if is_ui_frame(&top_frame) {
        RootKind::UiApi
    } else {
        RootKind::SelfDeveloped
    };
    Some(RootCause {
        symbol: top_frame.symbol,
        file: top_frame.file,
        line: top_frame.line,
        occurrence_factor: top_occurrence,
        kind,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hd_simrt::{FrameTable, SimTime};

    fn sample(at_ms: u64, frames: Vec<FrameId>) -> StackSample {
        StackSample {
            at: SimTime::from_ms(at_ms),
            frames,
        }
    }

    fn table() -> (FrameTable, Vec<FrameId>) {
        let mut t = FrameTable::new();
        let ids = vec![
            t.intern_new("android.os.Looper.loop", "Looper.java", 193), // 0
            t.intern_new("android.os.Handler.dispatchMessage", "Handler.java", 105), // 1
            t.intern_new("com.app.Main.onOpen", "Main.java", 12),       // 2
            t.intern_new("org.htmlcleaner.HtmlCleaner.clean", "HtmlCleaner.java", 25), // 3
            t.intern_new("android.widget.TextView.setText", "TextView.java", 4100), // 4
            t.intern_new("com.app.Main.buildIndex", "Main.java", 57),   // 5
            t.intern_new("java.lang.String.indexOf", "String.java", 1), // 6
            t.intern_new("java.util.HashMap.put", "HashMap.java", 2),   // 7
            t.intern_new(
                "org.osmdroid.views.MapView.dispatchDraw",
                "MapView.java",
                990,
            ), // 8
        ];
        (t, ids)
    }

    #[test]
    fn dominant_blocking_api_is_root_cause() {
        let (t, f) = table();
        let base = vec![f[0], f[1], f[2]];
        let mut samples = Vec::new();
        for i in 0..60 {
            let mut frames = base.clone();
            frames.push(f[3]); // clean on top
            samples.push(sample(i, frames));
        }
        // A couple of UI samples at the edges.
        for i in 60..62 {
            let mut frames = base.clone();
            frames.push(f[4]);
            samples.push(sample(i, frames));
        }
        let root = analyze(&samples, 0.5, None, |id| t.get(id).clone()).unwrap();
        assert_eq!(root.symbol, "org.htmlcleaner.HtmlCleaner.clean");
        assert_eq!(root.kind, RootKind::BlockingApi);
        assert!(root.occurrence_factor > 0.9);
        assert!(root.is_bug());
        assert_eq!(root.file, "HtmlCleaner.java");
        assert_eq!(root.line, 25);
    }

    #[test]
    fn ui_api_root_cause_is_not_a_bug() {
        let (t, f) = table();
        let samples: Vec<StackSample> = (0..40)
            .map(|i| sample(i, vec![f[0], f[1], f[2], f[4]]))
            .collect();
        let root = analyze(&samples, 0.5, None, |id| t.get(id).clone()).unwrap();
        assert_eq!(root.kind, RootKind::UiApi);
        assert!(!root.is_bug());
    }

    #[test]
    fn new_ui_class_recognized_by_name() {
        let (t, f) = table();
        let samples: Vec<StackSample> = (0..40)
            .map(|i| sample(i, vec![f[0], f[1], f[2], f[8]]))
            .collect();
        let root = analyze(&samples, 0.5, None, |id| t.get(id).clone()).unwrap();
        // osmdroid MapView is not an android.* class but is a View.
        assert_eq!(root.kind, RootKind::UiApi);
    }

    #[test]
    fn self_developed_operation_reported_via_caller() {
        let (t, f) = table();
        // buildIndex (frame 5) calls many light APIs; no single leaf
        // dominates, but the caller is always buildIndex.
        let mut samples = Vec::new();
        for i in 0..30 {
            let leaf = if i % 2 == 0 { f[6] } else { f[7] };
            samples.push(sample(i, vec![f[0], f[1], f[2], f[5], leaf]));
        }
        let root = analyze(&samples, 0.7, Some("com.app."), |id| t.get(id).clone()).unwrap();
        assert_eq!(root.symbol, "com.app.Main.buildIndex");
        assert_eq!(root.kind, RootKind::SelfDeveloped);
        assert!(root.is_bug());
        assert!(root.occurrence_factor > 0.9);
    }

    #[test]
    fn in_app_dominant_leaf_is_self_developed() {
        let (t, f) = table();
        // buildIndex itself dominates the traces (a pure heavy loop).
        let samples: Vec<StackSample> = (0..30)
            .map(|i| sample(i, vec![f[0], f[1], f[2], f[5]]))
            .collect();
        let root = analyze(&samples, 0.5, Some("com.app."), |id| t.get(id).clone()).unwrap();
        assert_eq!(root.symbol, "com.app.Main.buildIndex");
        assert_eq!(root.kind, RootKind::SelfDeveloped);
    }

    #[test]
    fn empty_samples_yield_nothing() {
        let (t, _) = table();
        assert_eq!(analyze(&[], 0.5, None, |id| t.get(id).clone()), None);
    }

    #[test]
    fn ui_frame_heuristics() {
        assert!(is_ui_frame(&Frame::new(
            "android.widget.ListView.layoutChildren",
            "ListView.java",
            1
        )));
        assert!(is_ui_frame(&Frame::new(
            "org.osmdroid.views.MapView.dispatchDraw",
            "MapView.java",
            1
        )));
        assert!(!is_ui_frame(&Frame::new(
            "android.graphics.BitmapFactory.decodeFile",
            "BitmapFactory.java",
            1
        )));
        assert!(!is_ui_frame(&Frame::new(
            "android.hardware.Camera.open",
            "Camera.java",
            1
        )));
        assert!(!is_ui_frame(&Frame::new(
            "com.google.gson.Gson.toJson",
            "Gson.java",
            1
        )));
    }
}
