//! Hang Doctor configuration.

use hd_perfmon::CostModel;
use hd_simrt::{HwEvent, MILLIS};
use serde::{Deserialize, Serialize};

/// The three soft-hang-bug symptom thresholds of Section 3.3.1.
///
/// Each applies to the *main-minus-render* accumulated difference of one
/// performance event over the action window; if at least one fires, the
/// action has hang-bug symptoms.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SymptomThresholds {
    /// Context-switch difference must exceed this (paper: positive, > 0).
    pub context_switch_diff: f64,
    /// Task-clock difference must exceed this (paper: > 1.7e8 ns).
    pub task_clock_diff: f64,
    /// Page-fault difference must exceed this (paper: > 500).
    pub page_fault_diff: f64,
}

impl Default for SymptomThresholds {
    fn default() -> Self {
        SymptomThresholds {
            context_switch_diff: 0.0,
            task_clock_diff: 1.7e8,
            page_fault_diff: 500.0,
        }
    }
}

impl SymptomThresholds {
    /// The event monitored by each threshold, in threshold order.
    pub const EVENTS: [HwEvent; 3] = [
        HwEvent::ContextSwitches,
        HwEvent::TaskClock,
        HwEvent::PageFaults,
    ];

    /// Returns the threshold for `event`, if it is one of the three.
    pub fn threshold_for(&self, event: HwEvent) -> Option<f64> {
        match event {
            HwEvent::ContextSwitches => Some(self.context_switch_diff),
            HwEvent::TaskClock => Some(self.task_clock_diff),
            HwEvent::PageFaults => Some(self.page_fault_diff),
            _ => None,
        }
    }
}

/// Full Hang Doctor configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HangDoctorConfig {
    /// The minimum human-perceivable delay (100 ms).
    pub timeout_ns: u64,
    /// Symptom thresholds used by the S-Checker.
    pub thresholds: SymptomThresholds,
    /// Stack sampling period of the Trace Collector.
    pub sample_period_ns: u64,
    /// Minimum occurrence factor for a single API to be named root cause
    /// (below it, the Trace Analyzer reports the most common caller —
    /// a self-developed operation).
    pub occurrence_threshold: f64,
    /// Executions after which a Normal action is reset to Uncategorized
    /// (paper: e.g. every 20 executions).
    pub normal_reset_executions: u32,
    /// Whether to also monitor the main thread's network activity
    /// (footnote 2 of the paper: network-on-main-thread bugs are
    /// well-known; the extension flags any action whose handler
    /// transfers bytes on the main thread).
    pub monitor_network: bool,
    /// Shared monitoring cost model.
    pub costs: CostModel,
}

impl Default for HangDoctorConfig {
    fn default() -> Self {
        HangDoctorConfig {
            timeout_ns: 100 * MILLIS,
            thresholds: SymptomThresholds::default(),
            sample_period_ns: 10 * MILLIS,
            occurrence_threshold: 0.5,
            normal_reset_executions: 20,
            monitor_network: false,
            costs: CostModel::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = HangDoctorConfig::default();
        assert_eq!(cfg.timeout_ns, 100 * MILLIS);
        assert_eq!(cfg.thresholds.context_switch_diff, 0.0);
        assert_eq!(cfg.thresholds.task_clock_diff, 1.7e8);
        assert_eq!(cfg.thresholds.page_fault_diff, 500.0);
        assert_eq!(cfg.normal_reset_executions, 20);
    }

    #[test]
    fn threshold_lookup() {
        let t = SymptomThresholds::default();
        assert_eq!(t.threshold_for(HwEvent::ContextSwitches), Some(0.0));
        assert_eq!(t.threshold_for(HwEvent::TaskClock), Some(1.7e8));
        assert_eq!(t.threshold_for(HwEvent::PageFaults), Some(500.0));
        assert_eq!(t.threshold_for(HwEvent::Instructions), None);
    }
}
