//! Hang Doctor configuration.

use hd_perfmon::CostModel;
use hd_simrt::{HwEvent, MILLIS};
use serde::{Deserialize, Serialize};

/// The three soft-hang-bug symptom thresholds of Section 3.3.1.
///
/// Each applies to the *main-minus-render* accumulated difference of one
/// performance event over the action window; if at least one fires, the
/// action has hang-bug symptoms.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SymptomThresholds {
    /// Context-switch difference must exceed this (paper: positive, > 0).
    pub context_switch_diff: f64,
    /// Task-clock difference must exceed this (paper: > 1.7e8 ns).
    pub task_clock_diff: f64,
    /// Page-fault difference must exceed this (paper: > 500).
    pub page_fault_diff: f64,
}

impl Default for SymptomThresholds {
    fn default() -> Self {
        SymptomThresholds {
            context_switch_diff: 0.0,
            task_clock_diff: 1.7e8,
            page_fault_diff: 500.0,
        }
    }
}

impl SymptomThresholds {
    /// The event monitored by each threshold, in threshold order.
    pub const EVENTS: [HwEvent; 3] = [
        HwEvent::ContextSwitches,
        HwEvent::TaskClock,
        HwEvent::PageFaults,
    ];

    /// Returns the threshold for `event`, if it is one of the three.
    pub fn threshold_for(&self, event: HwEvent) -> Option<f64> {
        match event {
            HwEvent::ContextSwitches => Some(self.context_switch_diff),
            HwEvent::TaskClock => Some(self.task_clock_diff),
            HwEvent::PageFaults => Some(self.page_fault_diff),
            _ => None,
        }
    }
}

/// Full Hang Doctor configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HangDoctorConfig {
    /// The minimum human-perceivable delay (100 ms).
    pub timeout_ns: u64,
    /// Symptom thresholds used by the S-Checker.
    pub thresholds: SymptomThresholds,
    /// Stack sampling period of the Trace Collector.
    pub sample_period_ns: u64,
    /// Minimum occurrence factor for a single API to be named root cause
    /// (below it, the Trace Analyzer reports the most common caller —
    /// a self-developed operation).
    pub occurrence_threshold: f64,
    /// Executions after which a Normal action is reset to Uncategorized
    /// (paper: e.g. every 20 executions).
    pub normal_reset_executions: u32,
    /// Whether to also monitor the main thread's network activity
    /// (footnote 2 of the paper: network-on-main-thread bugs are
    /// well-known; the extension flags any action whose handler
    /// transfers bytes on the main thread).
    pub monitor_network: bool,
    /// Graceful-degradation policy: how many times a failed counter read
    /// is retried before the counter is given up for the window.
    pub counter_retries: u32,
    /// Base backoff charged (as monitoring CPU) before each counter-read
    /// retry; doubles per attempt.
    pub retry_backoff_ns: u64,
    /// Minimum surviving stack samples a lossy diagnosis session needs;
    /// below it the session is aborted and the action re-armed.
    pub min_diagnosis_samples: usize,
    /// Maximum tolerated fraction of dropped samples in a diagnosis
    /// session; above it the session is aborted and the action re-armed.
    pub max_sample_loss: f64,
    /// Whether the Trace Collector walks wait edges when the main thread
    /// is blocked on a future join: the sample then extends across the
    /// join into the worker (or queued task) holding it up, so the Trace
    /// Analyzer blames the worker-side culprit API instead of the join
    /// site. Disabling this reproduces the naive join-site diagnosis.
    pub causal_blame: bool,
    /// Shared monitoring cost model.
    pub costs: CostModel,
}

impl Default for HangDoctorConfig {
    fn default() -> Self {
        HangDoctorConfig {
            timeout_ns: 100 * MILLIS,
            thresholds: SymptomThresholds::default(),
            sample_period_ns: 10 * MILLIS,
            occurrence_threshold: 0.5,
            normal_reset_executions: 20,
            monitor_network: false,
            counter_retries: 2,
            retry_backoff_ns: 100_000, // 0.1 ms, doubling per attempt
            min_diagnosis_samples: 3,
            max_sample_loss: 0.5,
            causal_blame: true,
            costs: CostModel::default(),
        }
    }
}

impl HangDoctorConfig {
    /// Starts a validating builder seeded with the paper defaults.
    pub fn builder() -> HangDoctorConfigBuilder {
        HangDoctorConfigBuilder {
            cfg: HangDoctorConfig::default(),
        }
    }
}

/// A configuration rejected by [`HangDoctorConfigBuilder::build`].
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// `timeout_ns` was zero: every dispatch would count as a hang.
    ZeroTimeout,
    /// `sample_period_ns` was zero: the Trace Collector would sample at
    /// an infinite rate.
    ZeroSamplePeriod,
    /// The sampling period exceeded the hang timeout, so a traced hang
    /// could finish with no samples at all.
    SamplePeriodAboveTimeout {
        /// Offending period.
        sample_period_ns: u64,
        /// The configured timeout.
        timeout_ns: u64,
    },
    /// A symptom threshold was negative or NaN (named field).
    InvalidThreshold(&'static str),
    /// `occurrence_threshold` was outside `(0, 1]`.
    InvalidOccurrenceThreshold(f64),
    /// `normal_reset_executions` was zero: Normal actions would be reset
    /// on every execution, i.e. tracing would never stop.
    ZeroNormalReset,
    /// `min_diagnosis_samples` was zero: a session that lost every
    /// sample would still be analyzed.
    ZeroMinDiagnosisSamples,
    /// `max_sample_loss` was outside `[0, 1]` or NaN.
    InvalidSampleLoss(f64),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroTimeout => write!(f, "timeout_ns must be positive"),
            ConfigError::ZeroSamplePeriod => write!(f, "sample_period_ns must be positive"),
            ConfigError::SamplePeriodAboveTimeout {
                sample_period_ns,
                timeout_ns,
            } => write!(
                f,
                "sample_period_ns ({sample_period_ns}) must not exceed timeout_ns ({timeout_ns})"
            ),
            ConfigError::InvalidThreshold(name) => {
                write!(f, "threshold {name} must be a non-negative number")
            }
            ConfigError::InvalidOccurrenceThreshold(v) => {
                write!(f, "occurrence_threshold {v} must be in (0, 1]")
            }
            ConfigError::ZeroNormalReset => {
                write!(f, "normal_reset_executions must be positive")
            }
            ConfigError::ZeroMinDiagnosisSamples => {
                write!(f, "min_diagnosis_samples must be positive")
            }
            ConfigError::InvalidSampleLoss(v) => {
                write!(f, "max_sample_loss {v} must be in [0, 1]")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Builder for [`HangDoctorConfig`] that validates on [`build`].
///
/// [`build`]: HangDoctorConfigBuilder::build
#[derive(Clone, Debug)]
pub struct HangDoctorConfigBuilder {
    cfg: HangDoctorConfig,
}

impl HangDoctorConfigBuilder {
    /// Sets the hang timeout (minimum human-perceivable delay).
    pub fn timeout_ns(mut self, v: u64) -> Self {
        self.cfg.timeout_ns = v;
        self
    }

    /// Sets all three symptom thresholds at once.
    pub fn thresholds(mut self, t: SymptomThresholds) -> Self {
        self.cfg.thresholds = t;
        self
    }

    /// Sets the Trace Collector's stack sampling period.
    pub fn sample_period_ns(mut self, v: u64) -> Self {
        self.cfg.sample_period_ns = v;
        self
    }

    /// Sets the Trace Analyzer's occurrence-factor threshold.
    pub fn occurrence_threshold(mut self, v: f64) -> Self {
        self.cfg.occurrence_threshold = v;
        self
    }

    /// Sets how many executions pass before a Normal action is
    /// re-examined.
    pub fn normal_reset_executions(mut self, v: u32) -> Self {
        self.cfg.normal_reset_executions = v;
        self
    }

    /// Enables or disables the network-on-main-thread extension.
    pub fn monitor_network(mut self, v: bool) -> Self {
        self.cfg.monitor_network = v;
        self
    }

    /// Sets the counter-read retry budget (0 = never retry).
    pub fn counter_retries(mut self, v: u32) -> Self {
        self.cfg.counter_retries = v;
        self
    }

    /// Sets the base retry backoff (doubles per attempt).
    pub fn retry_backoff_ns(mut self, v: u64) -> Self {
        self.cfg.retry_backoff_ns = v;
        self
    }

    /// Sets the minimum surviving samples a lossy diagnosis session
    /// needs to be analyzed.
    pub fn min_diagnosis_samples(mut self, v: usize) -> Self {
        self.cfg.min_diagnosis_samples = v;
        self
    }

    /// Sets the maximum tolerated dropped-sample fraction.
    pub fn max_sample_loss(mut self, v: f64) -> Self {
        self.cfg.max_sample_loss = v;
        self
    }

    /// Enables or disables causal cross-thread blame (wait-edge walks).
    pub fn causal_blame(mut self, v: bool) -> Self {
        self.cfg.causal_blame = v;
        self
    }

    /// Sets the monitoring cost model.
    pub fn costs(mut self, v: CostModel) -> Self {
        self.cfg.costs = v;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<HangDoctorConfig, ConfigError> {
        let c = self.cfg;
        if c.timeout_ns == 0 {
            return Err(ConfigError::ZeroTimeout);
        }
        if c.sample_period_ns == 0 {
            return Err(ConfigError::ZeroSamplePeriod);
        }
        if c.sample_period_ns > c.timeout_ns {
            return Err(ConfigError::SamplePeriodAboveTimeout {
                sample_period_ns: c.sample_period_ns,
                timeout_ns: c.timeout_ns,
            });
        }
        for (name, v) in [
            ("context_switch_diff", c.thresholds.context_switch_diff),
            ("task_clock_diff", c.thresholds.task_clock_diff),
            ("page_fault_diff", c.thresholds.page_fault_diff),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(ConfigError::InvalidThreshold(name));
            }
        }
        if !(c.occurrence_threshold > 0.0 && c.occurrence_threshold <= 1.0) {
            return Err(ConfigError::InvalidOccurrenceThreshold(
                c.occurrence_threshold,
            ));
        }
        if c.normal_reset_executions == 0 {
            return Err(ConfigError::ZeroNormalReset);
        }
        if c.min_diagnosis_samples == 0 {
            return Err(ConfigError::ZeroMinDiagnosisSamples);
        }
        if !c.max_sample_loss.is_finite() || !(0.0..=1.0).contains(&c.max_sample_loss) {
            return Err(ConfigError::InvalidSampleLoss(c.max_sample_loss));
        }
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = HangDoctorConfig::default();
        assert_eq!(cfg.timeout_ns, 100 * MILLIS);
        assert_eq!(cfg.thresholds.context_switch_diff, 0.0);
        assert_eq!(cfg.thresholds.task_clock_diff, 1.7e8);
        assert_eq!(cfg.thresholds.page_fault_diff, 500.0);
        assert_eq!(cfg.normal_reset_executions, 20);
    }

    #[test]
    fn builder_defaults_equal_default() {
        let built = HangDoctorConfig::builder().build().unwrap();
        let def = HangDoctorConfig::default();
        assert_eq!(built.timeout_ns, def.timeout_ns);
        assert_eq!(built.sample_period_ns, def.sample_period_ns);
        assert_eq!(built.thresholds, def.thresholds);
        assert_eq!(built.occurrence_threshold, def.occurrence_threshold);
        assert_eq!(built.normal_reset_executions, def.normal_reset_executions);
        assert_eq!(built.monitor_network, def.monitor_network);
    }

    #[test]
    fn builder_rejects_invalid_values() {
        assert_eq!(
            HangDoctorConfig::builder()
                .timeout_ns(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroTimeout
        );
        assert_eq!(
            HangDoctorConfig::builder()
                .sample_period_ns(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroSamplePeriod
        );
        assert_eq!(
            HangDoctorConfig::builder()
                .sample_period_ns(200 * MILLIS)
                .build()
                .unwrap_err(),
            ConfigError::SamplePeriodAboveTimeout {
                sample_period_ns: 200 * MILLIS,
                timeout_ns: 100 * MILLIS,
            }
        );
        assert_eq!(
            HangDoctorConfig::builder()
                .thresholds(SymptomThresholds {
                    task_clock_diff: -1.0,
                    ..Default::default()
                })
                .build()
                .unwrap_err(),
            ConfigError::InvalidThreshold("task_clock_diff")
        );
        assert_eq!(
            HangDoctorConfig::builder()
                .thresholds(SymptomThresholds {
                    page_fault_diff: f64::NAN,
                    ..Default::default()
                })
                .build()
                .unwrap_err(),
            ConfigError::InvalidThreshold("page_fault_diff")
        );
        assert_eq!(
            HangDoctorConfig::builder()
                .occurrence_threshold(0.0)
                .build()
                .unwrap_err(),
            ConfigError::InvalidOccurrenceThreshold(0.0)
        );
        assert_eq!(
            HangDoctorConfig::builder()
                .occurrence_threshold(1.5)
                .build()
                .unwrap_err(),
            ConfigError::InvalidOccurrenceThreshold(1.5)
        );
        assert_eq!(
            HangDoctorConfig::builder()
                .normal_reset_executions(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroNormalReset
        );
        assert_eq!(
            HangDoctorConfig::builder()
                .min_diagnosis_samples(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroMinDiagnosisSamples
        );
        assert_eq!(
            HangDoctorConfig::builder()
                .max_sample_loss(1.5)
                .build()
                .unwrap_err(),
            ConfigError::InvalidSampleLoss(1.5)
        );
        assert!(matches!(
            HangDoctorConfig::builder()
                .max_sample_loss(f64::NAN)
                .build()
                .unwrap_err(),
            ConfigError::InvalidSampleLoss(_)
        ));
    }

    #[test]
    fn builder_accepts_and_applies_custom_values() {
        let cfg = HangDoctorConfig::builder()
            .timeout_ns(150 * MILLIS)
            .sample_period_ns(5 * MILLIS)
            .occurrence_threshold(0.7)
            .normal_reset_executions(5)
            .monitor_network(true)
            .counter_retries(4)
            .retry_backoff_ns(50_000)
            .min_diagnosis_samples(2)
            .max_sample_loss(0.25)
            .causal_blame(false)
            .build()
            .unwrap();
        assert_eq!(cfg.timeout_ns, 150 * MILLIS);
        assert_eq!(cfg.sample_period_ns, 5 * MILLIS);
        assert_eq!(cfg.occurrence_threshold, 0.7);
        assert_eq!(cfg.normal_reset_executions, 5);
        assert!(cfg.monitor_network);
        assert_eq!(cfg.counter_retries, 4);
        assert_eq!(cfg.retry_backoff_ns, 50_000);
        assert_eq!(cfg.min_diagnosis_samples, 2);
        assert_eq!(cfg.max_sample_loss, 0.25);
        assert!(!cfg.causal_blame);
    }

    #[test]
    fn causal_blame_defaults_on() {
        assert!(HangDoctorConfig::default().causal_blame);
    }

    #[test]
    fn config_error_display() {
        let e = HangDoctorConfig::builder()
            .timeout_ns(0)
            .build()
            .unwrap_err();
        assert!(e.to_string().contains("timeout_ns"));
    }

    #[test]
    fn threshold_lookup() {
        let t = SymptomThresholds::default();
        assert_eq!(t.threshold_for(HwEvent::ContextSwitches), Some(0.0));
        assert_eq!(t.threshold_for(HwEvent::TaskClock), Some(1.7e8));
        assert_eq!(t.threshold_for(HwEvent::PageFaults), Some(500.0));
        assert_eq!(t.threshold_for(HwEvent::Instructions), None);
    }
}
