//! Sample collection for the correlation analysis.
//!
//! Training uses 10 well-known soft hang bugs (from the Table 5 apps,
//! all detectable offline) and 11 UI-APIs; validation uses the 23
//! previously unknown bugs (Section 3.3.1 / Table 6). Each labeled
//! action is executed repeatedly in the lab; every execution that shows
//! a soft hang contributes one sample of all 46 event differences.

use std::cell::RefCell;
use std::rc::Rc;

use hd_appmodel::corpus::{is_offline_missed, table5};
use hd_appmodel::{build_run, App, CompiledApp, Schedule};
use hd_perfmon::{CostModel, PerfSession};
use hd_simrt::{
    ActionInfo, ActionRecord, ActionUid, HwEvent, MessageInfo, Probe, ProbeCtx, SimConfig, SimTime,
    MILLIS, NUM_EVENTS,
};

use crate::correlation::TrainingSample;

/// One labeled action to collect samples from.
#[derive(Clone, Debug)]
pub struct LabeledAction {
    /// The app containing the action.
    pub app: App,
    /// The action to execute.
    pub action: ActionUid,
    /// `true` = hangs of this action are soft hang bugs.
    pub label: bool,
    /// Human-readable name (for sample provenance).
    pub name: String,
}

fn labeled(app: App, action_name: &str, label: bool) -> LabeledAction {
    let action = app
        .actions
        .iter()
        .find(|a| a.name == action_name)
        .unwrap_or_else(|| panic!("{} has no action '{action_name}'", app.name))
        .uid;
    let name = format!("{}/{}", app.name, action_name);
    LabeledAction {
        app,
        action,
        label,
        name,
    }
}

/// The training set: 10 well-known bugs + 11 UI-API actions.
pub fn training_set() -> Vec<LabeledAction> {
    vec![
        // 10 known soft hang bugs (offline-detectable).
        labeled(table5::andstatus(), "scroll timeline", true),
        labeled(table5::dashclock(), "save widget config", true),
        labeled(table5::cyclestreets(), "open itinerary", true),
        labeled(table5::owntracks(), "export config", true),
        labeled(table5::stickercamera(), "open camera", true),
        labeled(table5::stickercamera(), "edit photo", true),
        labeled(table5::stickercamera(), "save sticker", true),
        labeled(table5::antennapod(), "mark episode played", true),
        labeled(table5::sagemath(), "open worksheet list", true),
        labeled(table5::radiodroid(), "load playlist", true),
        // 11 UI-API actions.
        labeled(table5::k9mail(), "open folders", false),
        labeled(table5::k9mail(), "open inbox", false),
        labeled(table5::cyclestreets(), "pan map", false),
        labeled(table5::cyclestreets(), "zoom map", false),
        labeled(table5::andstatus(), "open timeline", false),
        labeled(table5::omninotes(), "open editor", false),
        labeled(table5::qksms(), "open conversation list", false),
        labeled(table5::merchant(), "open catalog", false),
        labeled(table5::skytube(), "browse channel", false),
        labeled(table5::uoitdc(), "open booking form", false),
        labeled(table5::gitosc(), "open commits", false),
    ]
}

/// The validation set: every Table 5 bug missed by offline detection
/// (the 23 previously unknown bugs), labeled via its containing action.
pub fn validation_set() -> Vec<LabeledAction> {
    let mut out = Vec::new();
    for app in table5::apps() {
        for bug in &app.bugs {
            if !is_offline_missed(&app, bug) {
                continue;
            }
            let action = app
                .action(bug.action)
                .expect("bug references existing action");
            out.push(LabeledAction {
                app: app.clone(),
                action: action.uid,
                label: true,
                name: format!("{}/{}", app.name, bug.id),
            });
        }
    }
    out
}

struct Collector {
    label: bool,
    name: String,
    timeout_ns: u64,
    session: Option<PerfSession>,
    had_hang: bool,
    out: Rc<RefCell<Vec<TrainingSample>>>,
}

impl Probe for Collector {
    fn on_action_begin(&mut self, ctx: &mut ProbeCtx<'_>, _info: &ActionInfo) {
        // Counting all 46 events means 37 PMU events share 6 registers:
        // the collected hardware events carry multiplexing error, exactly
        // like a simpleperf collection on the LG V10 — this is why the
        // exactly-counted kernel events end up most correlated (Table 3).
        let threads = [ctx.main_tid(), ctx.render_tid()];
        self.session = Some(PerfSession::start(
            ctx,
            &threads,
            &HwEvent::ALL,
            CostModel::default(),
        ));
        self.had_hang = false;
    }

    fn on_dispatch_end(&mut self, _ctx: &mut ProbeCtx<'_>, _info: &MessageInfo, response_ns: u64) {
        if response_ns > self.timeout_ns {
            self.had_hang = true;
        }
    }

    fn on_action_end(&mut self, ctx: &mut ProbeCtx<'_>, _record: &ActionRecord) {
        let Some(session) = self.session.take() else {
            return;
        };
        if !self.had_hang {
            return;
        }
        let main = ctx.main_tid();
        let render = ctx.render_tid();
        let mut diff = vec![0.0; NUM_EVENTS];
        let mut main_only = vec![0.0; NUM_EVENTS];
        for ev in HwEvent::ALL {
            let dm = session.read(ctx, main, ev);
            let dr = session.read(ctx, render, ev);
            diff[ev.index()] = dm - dr;
            main_only[ev.index()] = dm;
        }
        self.out.borrow_mut().push(TrainingSample {
            label: self.label,
            diff,
            main_only,
            source: self.name.clone(),
        });
    }
}

/// Executes each labeled action `executions` times and collects one
/// sample per observed soft hang.
pub fn collect_samples(set: &[LabeledAction], executions: usize, seed: u64) -> Vec<TrainingSample> {
    let mut samples = Vec::new();
    for (i, spec) in set.iter().enumerate() {
        let compiled = CompiledApp::new(spec.app.clone());
        let mut arrivals = Vec::with_capacity(executions);
        let mut t = SimTime::from_ms(300);
        for _ in 0..executions {
            arrivals.push((t, spec.action));
            t += 2_500 * MILLIS;
        }
        let schedule = Schedule { arrivals };
        let mut run = build_run(
            &compiled,
            &schedule,
            SimConfig::default(),
            seed.wrapping_add(i as u64 * 7919),
        );
        let out = Rc::new(RefCell::new(Vec::new()));
        run.sim.add_probe(Box::new(Collector {
            label: spec.label,
            name: spec.name.clone(),
            timeout_ns: 100 * MILLIS,
            session: None,
            had_hang: false,
            out: out.clone(),
        }));
        run.sim.run();
        samples.extend(out.borrow().iter().cloned());
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::{rank_events, DiffMode};

    #[test]
    fn set_sizes_match_paper() {
        let train = training_set();
        assert_eq!(train.iter().filter(|s| s.label).count(), 10);
        assert_eq!(train.iter().filter(|s| !s.label).count(), 11);
        let valid = validation_set();
        assert_eq!(valid.len(), 23, "validation = the 23 unknown bugs");
        assert!(valid.iter().all(|s| s.label));
    }

    #[test]
    fn training_and_validation_do_not_share_bugs() {
        let train = training_set();
        let valid = validation_set();
        for v in &valid {
            assert!(
                !train.iter().any(|t| t.label && t.name == v.name),
                "{} in both sets",
                v.name
            );
        }
    }

    #[test]
    fn collection_yields_labeled_hang_samples() {
        // A small collection run: one bug action and one UI action.
        let set = vec![
            labeled(table5::k9mail(), "open email", true),
            labeled(table5::k9mail(), "open folders", false),
        ];
        let samples = collect_samples(&set, 6, 42);
        let bugs = samples.iter().filter(|s| s.label).count();
        let uis = samples.iter().filter(|s| !s.label).count();
        assert!(bugs >= 4, "bug samples {bugs}");
        assert!(uis >= 4, "ui samples {uis}");
        // Bug samples must show higher cs difference than UI samples on
        // average.
        let avg = |label: bool| {
            let v: Vec<f64> = samples
                .iter()
                .filter(|s| s.label == label)
                .map(|s| s.diff[HwEvent::ContextSwitches.index()])
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(avg(true) > 0.0, "bug cs diff should be positive");
        assert!(avg(false) < 0.0, "ui cs diff should be negative");
    }

    #[test]
    fn full_training_ranking_matches_table3_shape() {
        // Table 3: context-switches is the most correlated event and
        // monitoring main+render beats monitoring only the main thread.
        let samples = collect_samples(&training_set(), 6, 42);
        assert!(samples.len() > 60, "only {} samples", samples.len());
        let ranked = rank_events(&samples, DiffMode::MainMinusRender);
        assert_eq!(
            ranked[0].0,
            HwEvent::ContextSwitches,
            "top: {:?}",
            &ranked[..5]
        );
        let ranked_main = rank_events(&samples, DiffMode::MainOnly);
        let avg = |r: &[(HwEvent, f64)]| r.iter().take(10).map(|(_, c)| c).sum::<f64>() / 10.0;
        assert!(
            avg(&ranked) > avg(&ranked_main),
            "diff avg {:.3} vs main-only avg {:.3}",
            avg(&ranked),
            avg(&ranked_main)
        );
    }
}
