//! Persistence of Hang Doctor's per-device state across app sessions.
//!
//! The runtime look-up table (action UID → state) and the accumulated
//! Hang Bug Report outlive one app session on a real device: an action
//! diagnosed as a Hang Bug yesterday is deeply analyzed again today
//! without re-learning. A [`DeviceSnapshot`] captures both and restores
//! them into a fresh [`HangDoctor`].

use serde::{Deserialize, Serialize};

use hd_simrt::ActionUid;

use crate::doctor::{HangDoctor, HdOutput};
use crate::report::HangBugReport;
use crate::state::{ActionState, StateTable};

/// Serialized per-device Hang Doctor state.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DeviceSnapshot {
    /// App the snapshot belongs to.
    pub app: String,
    /// Device id.
    pub device: u32,
    /// `(uid, state, normal-execution count)` triples.
    pub states: Vec<(u64, ActionState, u32)>,
    /// The report accumulated so far.
    pub report: HangBugReport,
}

impl DeviceSnapshot {
    /// Captures the end-of-session output of a Hang Doctor run.
    pub fn capture(out: &HdOutput, device: u32) -> DeviceSnapshot {
        DeviceSnapshot {
            app: out.report.app.clone(),
            device,
            states: out
                .states
                .export()
                .into_iter()
                .map(|(uid, s, n)| (uid.0, s, n))
                .collect(),
            report: out.report.clone(),
        }
    }

    /// The state table encoded in this snapshot.
    pub fn state_table(&self) -> StateTable {
        let entries: Vec<(ActionUid, ActionState, u32)> = self
            .states
            .iter()
            .map(|&(uid, s, n)| (ActionUid(uid), s, n))
            .collect();
        StateTable::import(&entries)
    }

    /// Restores the snapshot into a fresh probe for the next session.
    pub fn restore_into(&self, doctor: &mut HangDoctor) {
        doctor.restore(self.state_table(), self.report.clone());
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serializes")
    }

    /// Deserializes from JSON.
    pub fn from_json(json: &str) -> Result<DeviceSnapshot, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HangDoctorConfig;
    use hd_appmodel::corpus::table5;
    use hd_appmodel::{build_run, round_robin_schedule, CompiledApp};
    use hd_simrt::SimConfig;

    #[test]
    fn state_survives_a_session_restart() {
        let app = table5::k9mail();
        let compiled = CompiledApp::new(app.clone());

        // Session 1: learn (the clean bug needs two hangs to diagnose).
        let sched = round_robin_schedule(&app, 3, 3_000);
        let mut run = build_run(&compiled, &sched, SimConfig::default(), 21);
        let (probe, out) = HangDoctor::new(
            HangDoctorConfig::default(),
            &app.name,
            &app.package,
            1,
            None,
        );
        run.sim.add_probe(Box::new(probe));
        run.sim.run();
        let snapshot = DeviceSnapshot::capture(&out.borrow(), 1);
        let json = snapshot.to_json();
        let hangbug_actions = snapshot
            .states
            .iter()
            .filter(|(_, s, _)| *s == ActionState::HangBug)
            .count();
        assert!(hangbug_actions >= 1, "session 1 learned nothing");

        // Session 2 (app restarted): the restored doctor goes straight to
        // the Diagnoser on the first hang of the known HangBug action.
        let restored = DeviceSnapshot::from_json(&json).unwrap();
        let sched2 = round_robin_schedule(&app, 1, 3_000);
        let mut run2 = build_run(&compiled, &sched2, SimConfig::default(), 22);
        let (mut probe2, out2) = HangDoctor::new(
            HangDoctorConfig::default(),
            &app.name,
            &app.package,
            1,
            None,
        );
        restored.restore_into(&mut probe2);
        run2.sim.add_probe(Box::new(probe2));
        run2.sim.run();
        let out2 = out2.borrow();
        // With one repetition per action a fresh doctor could not have
        // produced a diagnosis (first hang only marks Suspicious); the
        // restored one does.
        assert!(
            out2.detections.iter().any(|d| d.is_bug()),
            "restored doctor should diagnose on the first hang"
        );
        // The report keeps accumulating on top of session 1's counts.
        let clean_row = out2
            .report
            .entries()
            .into_iter()
            .find(|e| e.symbol.contains("HtmlCleaner"))
            .expect("clean in restored report");
        let session1_row = snapshot
            .report
            .entries()
            .into_iter()
            .find(|e| e.symbol.contains("HtmlCleaner"))
            .expect("clean in session-1 report");
        assert!(clean_row.hangs > session1_row.hangs);
    }

    #[test]
    fn populated_snapshot_round_trip_preserves_everything() {
        use crate::analysis::{RootCause, RootKind};

        // A state table covering every state, with distinct
        // normal-execution counts, plus a non-empty report.
        let entries = vec![
            (ActionUid(1), ActionState::Normal, 12),
            (ActionUid(2), ActionState::Suspicious, 3),
            (ActionUid(3), ActionState::HangBug, 7),
            (ActionUid(4), ActionState::Uncategorized, 0),
        ];
        let mut report = HangBugReport::new("roundtrip-app");
        for _ in 0..9 {
            report.note_execution(5, ActionUid(3), "sync inbox");
        }
        let root = RootCause {
            symbol: "java.net.Socket.connect".to_string(),
            file: "Sync.java".to_string(),
            line: 88,
            occurrence_factor: 1.0,
            kind: RootKind::BlockingApi,
        };
        report.record_bug(5, ActionUid(3), &root, 220_000_000);
        report.record_bug(5, ActionUid(3), &root, 180_000_000);
        let out = HdOutput {
            report,
            states: StateTable::import(&entries),
            ..Default::default()
        };

        let snap = DeviceSnapshot::capture(&out, 5);
        let back = DeviceSnapshot::from_json(&snap.to_json()).unwrap();

        // Canonical serialization: re-serializing the restored snapshot
        // is byte-identical.
        assert_eq!(back.to_json(), snap.to_json());
        // The state table survives with states and normal-execution
        // counts intact (export is uid-sorted).
        assert_eq!(back.state_table().export(), entries);
        // The report survives: same rows, same bytes.
        assert_eq!(back.report.entries(), snap.report.entries());
        let row = &back.report.entries()[0];
        assert_eq!(row.hangs, 2);
        assert_eq!(row.action_executions, 9);
        assert_eq!(row.mean_hang_ns, 200_000_000);
        assert_eq!(row.action, "sync inbox");
    }

    #[test]
    fn snapshot_json_round_trip() {
        let out = HdOutput {
            report: HangBugReport::new("X"),
            ..Default::default()
        };
        let snap = DeviceSnapshot::capture(&out, 3);
        let back = DeviceSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back.app, "X");
        assert_eq!(back.device, 3);
        assert!(back.states.is_empty());
    }
}
