//! Automatic filter adaptation (Section 3.3.1, "Automatic Adaptation of
//! the Filter").
//!
//! Deployed devices keep collecting labeled samples in the background
//! (periodic extra data collection whose period makes its overhead
//! negligible). When the current filter shows false negatives or
//! excessive false positives on fresh data:
//!
//! * **light adaptation** (cheap, on-device): keep the same events,
//!   re-fit each condition's threshold;
//! * **heavy adaptation** (expensive, server-side): redo the full
//!   correlation ranking and greedy event selection, possibly choosing
//!   different events.

use serde::{Deserialize, Serialize};

use crate::correlation::{
    best_threshold, rank_events, select_filter, Condition, DiffMode, Filter, TrainingSample,
};

/// Result of an adaptation pass.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AdaptationOutcome {
    /// Confusion before: `(tp, fp, fn, tn)`.
    pub before: (usize, usize, usize, usize),
    /// Confusion after.
    pub after: (usize, usize, usize, usize),
    /// The adapted filter.
    pub filter: Filter,
    /// Whether a heavy adaptation is still recommended (light pass could
    /// not eliminate false negatives).
    pub needs_heavy: bool,
}

/// Light adaptation: re-fits thresholds of the existing conditions on
/// fresh labeled samples, keeping the event set fixed.
pub fn light_adaptation(
    filter: &Filter,
    samples: &[TrainingSample],
    mode: DiffMode,
) -> AdaptationOutcome {
    let before = filter.evaluate(samples, mode);
    let mut adapted = Filter::default();
    for cond in &filter.conditions {
        // Fit each event's threshold against the bugs not yet covered by
        // the previously re-fitted conditions.
        let uncovered: Vec<TrainingSample> = samples
            .iter()
            .filter(|s| !s.label || !adapted.matches(s.values(mode)))
            .cloned()
            .collect();
        let refit = if uncovered.is_empty() {
            *cond
        } else {
            best_threshold(&uncovered, cond.event, mode)
        };
        adapted.conditions.push(refit);
    }
    let after = adapted.evaluate(samples, mode);
    // Keep the better of (old, refit) by FN + FP.
    let cost = |(_, fp, fneg, _): (usize, usize, usize, usize)| fneg + fp;
    let (filter, after) = if cost(after) <= cost(before) {
        (adapted, after)
    } else {
        (filter.clone(), before)
    };
    AdaptationOutcome {
        before,
        after,
        needs_heavy: after.2 > 0,
        filter,
    }
}

/// Heavy adaptation: full re-ranking and re-selection on the fresh
/// samples (run server-side in the paper's design).
pub fn heavy_adaptation(
    samples: &[TrainingSample],
    mode: DiffMode,
    max_events: usize,
) -> AdaptationOutcome {
    let ranked = rank_events(samples, mode);
    let filter = select_filter(samples, &ranked, mode, max_events);
    let after = filter.evaluate(samples, mode);
    AdaptationOutcome {
        before: after,
        after,
        needs_heavy: false,
        filter,
    }
}

/// Projects an adapted [`Filter`] back onto the S-Checker's fixed
/// three-event thresholds, starting from `base` for any event the filter
/// does not constrain. Re-fitted thresholds can come out negative (the
/// candidate set includes `first - 1.0`); the config builder rejects
/// negatives, so they clamp to zero — "always suspicious on this event",
/// the most conservative deployable value.
pub fn thresholds_from_filter(
    filter: &Filter,
    base: crate::config::SymptomThresholds,
) -> crate::config::SymptomThresholds {
    let mut t = base;
    for c in &filter.conditions {
        match c.event {
            hd_simrt::HwEvent::ContextSwitches => t.context_switch_diff = c.threshold.max(0.0),
            hd_simrt::HwEvent::TaskClock => t.task_clock_diff = c.threshold.max(0.0),
            hd_simrt::HwEvent::PageFaults => t.page_fault_diff = c.threshold.max(0.0),
            _ => {}
        }
    }
    t
}

/// Converts the paper's fixed three-event thresholds into a [`Filter`].
pub fn paper_filter(t: crate::config::SymptomThresholds) -> Filter {
    Filter {
        conditions: vec![
            Condition {
                event: hd_simrt::HwEvent::ContextSwitches,
                threshold: t.context_switch_diff,
            },
            Condition {
                event: hd_simrt::HwEvent::TaskClock,
                threshold: t.task_clock_diff,
            },
            Condition {
                event: hd_simrt::HwEvent::PageFaults,
                threshold: t.page_fault_diff,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hd_simrt::{HwEvent, NUM_EVENTS};

    fn sample(label: bool, cs: f64, pf: f64) -> TrainingSample {
        let mut diff = vec![0.0; NUM_EVENTS];
        diff[HwEvent::ContextSwitches.index()] = cs;
        diff[HwEvent::PageFaults.index()] = pf;
        TrainingSample {
            label,
            diff: diff.clone(),
            main_only: diff,
            source: "t".into(),
        }
    }

    #[test]
    fn light_adaptation_fixes_threshold_drift() {
        // A device where UI ops have slightly positive cs diffs: the
        // paper's cs > 0 threshold produces false positives that a
        // nudged threshold eliminates.
        let filter = Filter {
            conditions: vec![Condition {
                event: HwEvent::ContextSwitches,
                threshold: 0.0,
            }],
        };
        let mut samples = Vec::new();
        for i in 0..10 {
            samples.push(sample(true, 40.0 + i as f64, 0.0));
            samples.push(sample(false, 3.0 + (i % 3) as f64, 0.0));
        }
        let out = light_adaptation(&filter, &samples, DiffMode::MainMinusRender);
        assert!(out.before.1 > 0, "expected initial false positives");
        assert_eq!(out.after.1, 0, "light adaptation should remove FPs");
        assert_eq!(out.after.2, 0);
        assert!(!out.needs_heavy);
        assert!(out.filter.conditions[0].threshold > 5.0);
    }

    #[test]
    fn light_adaptation_flags_need_for_heavy() {
        // A bug class invisible to the filter's events: threshold
        // tweaking cannot fix it.
        let filter = Filter {
            conditions: vec![Condition {
                event: HwEvent::ContextSwitches,
                threshold: 0.0,
            }],
        };
        // Bug context switches sit strictly below the UI range: any
        // threshold catching them triggers on every UI sample too.
        let mut samples = vec![sample(true, -70.0, 900.0), sample(true, -65.0, 800.0)];
        for i in 0..6 {
            samples.push(sample(false, -60.0 + 2.0 * i as f64, 100.0 + i as f64));
        }
        let out = light_adaptation(&filter, &samples, DiffMode::MainMinusRender);
        assert!(out.needs_heavy);
        let heavy = heavy_adaptation(&samples, DiffMode::MainMinusRender, 6);
        assert_eq!(heavy.after.2, 0, "heavy adaptation must cover the bugs");
        assert!(heavy
            .filter
            .conditions
            .iter()
            .any(|c| c.event == HwEvent::PageFaults));
    }

    #[test]
    fn light_adaptation_never_regresses() {
        // If refitting would be worse (degenerate fresh data), keep the
        // original filter.
        let filter = Filter {
            conditions: vec![Condition {
                event: HwEvent::ContextSwitches,
                threshold: 10.0,
            }],
        };
        let samples = vec![sample(true, 40.0, 0.0), sample(false, -10.0, 0.0)];
        let out = light_adaptation(&filter, &samples, DiffMode::MainMinusRender);
        let cost_before = out.before.2 + out.before.1;
        let cost_after = out.after.2 + out.after.1;
        assert!(cost_after <= cost_before);
    }

    #[test]
    fn thresholds_round_trip_through_filter_and_back() {
        let base = crate::config::SymptomThresholds::default();
        let round = thresholds_from_filter(&paper_filter(base), base);
        assert_eq!(round, base);
        // Negative re-fits clamp to zero so the builder accepts them.
        let negative = Filter {
            conditions: vec![Condition {
                event: HwEvent::TaskClock,
                threshold: -5.0,
            }],
        };
        let t = thresholds_from_filter(&negative, base);
        assert_eq!(t.task_clock_diff, 0.0);
        assert_eq!(t.page_fault_diff, base.page_fault_diff);
    }

    #[test]
    fn paper_filter_matches_thresholds() {
        let f = paper_filter(crate::config::SymptomThresholds::default());
        assert_eq!(f.conditions.len(), 3);
        let mut diff = vec![0.0; NUM_EVENTS];
        diff[HwEvent::PageFaults.index()] = 501.0;
        assert!(f.matches(&diff));
        diff[HwEvent::PageFaults.index()] = 499.0;
        assert!(!f.matches(&diff));
    }
}
