//! The known-blocking-API database shared with offline detectors.
//!
//! Offline tools find soft hang bugs by name-matching against this
//! database. Hang Doctor closes the loop: every previously unknown
//! blocking API it diagnoses in the wild is added, "so that also
//! developers of other apps can be warned" (Section 3.2).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Provenance of a database entry.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DbOrigin {
    /// Present in the vendor documentation as of the given year.
    Documented(u16),
    /// Added at runtime by Hang Doctor, discovered in the named app.
    HangDoctor {
        /// App where the API was first diagnosed.
        app: String,
    },
    /// Added by the static analyzer: a confirmed finding proved that the
    /// named entry symbol (typically a library wrapper) blocks the main
    /// thread in the named app.
    StaticAnalysis {
        /// App whose analysis confirmed the symbol.
        app: String,
    },
}

/// The blocking-API database.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct BlockingApiDb {
    entries: HashMap<String, DbOrigin>,
}

impl BlockingApiDb {
    /// Creates an empty database.
    pub fn new() -> BlockingApiDb {
        BlockingApiDb::default()
    }

    /// The database as it stood at study time: every API documented as
    /// blocking by `year` in the shared catalog.
    pub fn documented(year: u16) -> BlockingApiDb {
        let mut db = BlockingApiDb::new();
        for api in hd_appmodel::registry::all_known_blocking_apis() {
            if let hd_appmodel::ApiKind::Blocking {
                known_since: Some(y),
            } = api.kind
            {
                if y <= year {
                    db.entries.insert(api.symbol, DbOrigin::Documented(y));
                }
            }
        }
        db
    }

    /// Whether `symbol` is known blocking.
    pub fn contains(&self, symbol: &str) -> bool {
        self.entries.contains_key(symbol)
    }

    /// Adds a runtime-discovered blocking API; returns `true` if it was
    /// new.
    pub fn add_discovered(&mut self, symbol: &str, app: &str) -> bool {
        if self.entries.contains_key(symbol) {
            return false;
        }
        self.entries.insert(
            symbol.to_string(),
            DbOrigin::HangDoctor {
                app: app.to_string(),
            },
        );
        true
    }

    /// Adds a symbol confirmed blocking by static analysis; returns
    /// `true` if it was new.
    pub fn add_from_static(&mut self, symbol: &str, app: &str) -> bool {
        if self.entries.contains_key(symbol) {
            return false;
        }
        self.entries.insert(
            symbol.to_string(),
            DbOrigin::StaticAnalysis {
                app: app.to_string(),
            },
        );
        true
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Merges another database into this one (fleet aggregation).
    ///
    /// Deduplicates by symbol. On conflicting provenance the resolution
    /// is deterministic and order-independent: documentation beats a
    /// runtime discovery, which beats a static-analysis confirmation;
    /// earlier documentation years beat later ones, and within a tier
    /// the lexicographically smallest app name wins. `merge` is
    /// therefore associative, commutative, and idempotent.
    pub fn merge(&mut self, other: &BlockingApiDb) {
        fn rank(origin: &DbOrigin) -> (u8, u16, &str) {
            match origin {
                DbOrigin::Documented(year) => (0, *year, ""),
                DbOrigin::HangDoctor { app } => (1, 0, app.as_str()),
                DbOrigin::StaticAnalysis { app } => (2, 0, app.as_str()),
            }
        }
        for (sym, origin) in &other.entries {
            match self.entries.entry(sym.clone()) {
                std::collections::hash_map::Entry::Occupied(mut occupied) => {
                    if rank(origin) < rank(occupied.get()) {
                        occupied.insert(origin.clone());
                    }
                }
                std::collections::hash_map::Entry::Vacant(vacant) => {
                    vacant.insert(origin.clone());
                }
            }
        }
    }

    /// Entries discovered at runtime by Hang Doctor, sorted by symbol.
    pub fn discovered(&self) -> Vec<(&str, &str)> {
        let mut v: Vec<(&str, &str)> = self
            .entries
            .iter()
            .filter_map(|(sym, origin)| match origin {
                DbOrigin::HangDoctor { app } => Some((sym.as_str(), app.as_str())),
                DbOrigin::Documented(_) | DbOrigin::StaticAnalysis { .. } => None,
            })
            .collect();
        v.sort();
        v
    }
}

/// A database handle shareable across app runs (the fleet-wide DB).
pub type SharedApiDb = Arc<Mutex<BlockingApiDb>>;

/// Creates a shared handle over a database.
pub fn shared(db: BlockingApiDb) -> SharedApiDb {
    Arc::new(Mutex::new(db))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn documented_db_matches_catalog_years() {
        let db2017 = BlockingApiDb::documented(2017);
        assert!(db2017.contains("android.hardware.Camera.open"));
        assert!(db2017.contains("android.graphics.BitmapFactory.decodeFile"));
        assert!(!db2017.contains("org.htmlcleaner.HtmlCleaner.clean"));

        // In 2010 camera.open was not yet documented as blocking.
        let db2010 = BlockingApiDb::documented(2010);
        assert!(!db2010.contains("android.hardware.Camera.open"));
        assert!(db2010.contains("java.io.FileInputStream.read"));
        assert!(db2010.len() < db2017.len());
    }

    #[test]
    fn runtime_discoveries_accumulate_once() {
        let mut db = BlockingApiDb::documented(2017);
        let before = db.len();
        assert!(db.add_discovered("org.htmlcleaner.HtmlCleaner.clean", "K9-mail"));
        assert!(!db.add_discovered("org.htmlcleaner.HtmlCleaner.clean", "Other"));
        assert_eq!(db.len(), before + 1);
        assert_eq!(
            db.discovered(),
            vec![("org.htmlcleaner.HtmlCleaner.clean", "K9-mail")]
        );
    }

    #[test]
    fn documented_entries_are_not_rediscovered() {
        let mut db = BlockingApiDb::documented(2017);
        assert!(!db.add_discovered("android.hardware.Camera.open", "App"));
        assert!(db.discovered().is_empty());
    }

    #[test]
    fn merge_dedups_and_resolves_conflicts_order_independently() {
        let mut a = BlockingApiDb::new();
        a.add_discovered("x.Y.z", "Zulip");
        a.add_discovered("p.Q.r", "K9-mail");
        let mut b = BlockingApiDb::new();
        b.add_discovered("x.Y.z", "AndStatus");
        b.entries
            .insert("p.Q.r".to_string(), DbOrigin::Documented(2015));

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);

        for db in [&ab, &ba] {
            assert_eq!(db.len(), 2);
            // Smallest app name wins between discoveries.
            assert_eq!(
                db.entries["x.Y.z"],
                DbOrigin::HangDoctor {
                    app: "AndStatus".to_string()
                }
            );
            // Documentation beats discovery.
            assert_eq!(db.entries["p.Q.r"], DbOrigin::Documented(2015));
        }

        // Idempotent.
        let snapshot = serde_json::to_string(&ab).unwrap();
        ab.merge(&b);
        ab.merge(&a);
        assert_eq!(serde_json::to_string(&ab).unwrap(), snapshot);
    }

    #[test]
    fn static_confirmations_rank_below_runtime_discoveries() {
        let mut a = BlockingApiDb::new();
        a.add_from_static("w.W.f", "Zulip");
        assert!(!a.add_from_static("w.W.f", "Other"));
        assert!(a.contains("w.W.f"));
        // Static confirmations are not runtime discoveries.
        assert!(a.discovered().is_empty());

        let mut b = BlockingApiDb::new();
        b.add_discovered("w.W.f", "K9-mail");
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        for db in [&ab, &ba] {
            assert_eq!(
                db.entries["w.W.f"],
                DbOrigin::HangDoctor {
                    app: "K9-mail".to_string()
                },
                "runtime provenance beats static"
            );
        }
    }

    #[test]
    fn serde_round_trip() {
        let mut db = BlockingApiDb::documented(2017);
        db.add_discovered("com.google.gson.Gson.toJson", "Sage Math");
        let json = serde_json::to_string(&db).unwrap();
        let back: BlockingApiDb = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), db.len());
        assert!(back.contains("com.google.gson.Gson.toJson"));
    }

    #[test]
    fn shared_handle_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>(_: &T) {}
        let h = shared(BlockingApiDb::new());
        assert_send_sync(&h);
        h.lock().add_discovered("a.B.c", "App");
        assert_eq!(h.lock().len(), 1);
    }
}
