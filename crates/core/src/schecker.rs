//! First phase: the S-Checker's soft hang filter.
//!
//! The filter reads the three selected performance-event differences
//! (main thread minus render thread, accumulated over the whole action
//! execution — Section 3.3.1 explains why sampling only the beginning of
//! the action misleads) and reports hang-bug symptoms when at least one
//! threshold fires.

use hd_simrt::HwEvent;
use serde::{Deserialize, Serialize};

use crate::config::SymptomThresholds;

/// The three differences the filter examines.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CounterDiffs {
    /// Context-switch difference (main − render).
    pub context_switches: f64,
    /// Task-clock difference, ns.
    pub task_clock: f64,
    /// Page-fault difference.
    pub page_faults: f64,
}

impl CounterDiffs {
    /// Returns the difference for one of the three monitored events.
    ///
    /// # Panics
    ///
    /// Panics if `event` is not one of the monitored three.
    pub fn get(&self, event: HwEvent) -> f64 {
        match event {
            HwEvent::ContextSwitches => self.context_switches,
            HwEvent::TaskClock => self.task_clock,
            HwEvent::PageFaults => self.page_faults,
            other => panic!("{} is not an S-Checker event", other.name()),
        }
    }
}

/// The three differences when counter reads can fail: `None` means the
/// counter could not be read (even after retries) on at least one of the
/// two threads, so no difference exists for it this window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PartialCounterDiffs {
    /// Context-switch difference (main − render), if both reads survived.
    pub context_switches: Option<f64>,
    /// Task-clock difference, ns, if both reads survived.
    pub task_clock: Option<f64>,
    /// Page-fault difference, if both reads survived.
    pub page_faults: Option<f64>,
}

impl PartialCounterDiffs {
    /// A partial view with every counter present.
    pub fn complete(diffs: CounterDiffs) -> PartialCounterDiffs {
        PartialCounterDiffs {
            context_switches: Some(diffs.context_switches),
            task_clock: Some(diffs.task_clock),
            page_faults: Some(diffs.page_faults),
        }
    }

    /// How many of the three counters survived.
    pub fn surviving(&self) -> usize {
        [
            self.context_switches.is_some(),
            self.task_clock.is_some(),
            self.page_faults.is_some(),
        ]
        .iter()
        .filter(|&&p| p)
        .count()
    }

    /// Whether every counter was lost.
    pub fn is_empty(&self) -> bool {
        self.surviving() == 0
    }

    /// Whether at least one counter was lost.
    pub fn is_degraded(&self) -> bool {
        self.surviving() < 3
    }
}

/// The S-Checker's verdict for one soft hang.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SymptomVerdict {
    /// Whether any symptom fired (action becomes Suspicious).
    pub suspicious: bool,
    /// Which events fired their thresholds.
    pub triggered: Vec<HwEvent>,
    /// The examined differences (kept for reports/adaptation). Counters
    /// lost to read failures appear as `0.0` here; `degraded` records
    /// that they were not examined.
    pub diffs: CounterDiffs,
    /// Whether the verdict was issued from a partial counter set (at
    /// least one counter read was lost, so unfired symptoms may simply
    /// have been unobservable).
    pub degraded: bool,
}

/// Stateless symptom filter.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize, Default)]
pub struct SChecker {
    /// Thresholds in force.
    pub thresholds: SymptomThresholds,
}

impl SChecker {
    /// Creates a filter with the given thresholds.
    pub fn new(thresholds: SymptomThresholds) -> SChecker {
        SChecker { thresholds }
    }

    /// Applies the filter to one action's accumulated differences.
    pub fn check(&self, diffs: CounterDiffs) -> SymptomVerdict {
        let mut triggered = Vec::new();
        if diffs.context_switches > self.thresholds.context_switch_diff {
            triggered.push(HwEvent::ContextSwitches);
        }
        if diffs.task_clock > self.thresholds.task_clock_diff {
            triggered.push(HwEvent::TaskClock);
        }
        if diffs.page_faults > self.thresholds.page_fault_diff {
            triggered.push(HwEvent::PageFaults);
        }
        SymptomVerdict {
            suspicious: !triggered.is_empty(),
            triggered,
            diffs,
            degraded: false,
        }
    }

    /// Applies the filter to whatever counters survived their reads.
    ///
    /// Missing counters are simply not examined (they cannot fire), and
    /// the verdict is flagged `degraded` so downstream consumers know a
    /// clean verdict might have seen more. Returns `None` when every
    /// counter was lost — there is no evidence to judge, so the check is
    /// abandoned and the action stays Uncategorized for the next window.
    pub fn check_partial(&self, partial: PartialCounterDiffs) -> Option<SymptomVerdict> {
        if partial.is_empty() {
            return None;
        }
        let mut triggered = Vec::new();
        if partial
            .context_switches
            .is_some_and(|d| d > self.thresholds.context_switch_diff)
        {
            triggered.push(HwEvent::ContextSwitches);
        }
        if partial
            .task_clock
            .is_some_and(|d| d > self.thresholds.task_clock_diff)
        {
            triggered.push(HwEvent::TaskClock);
        }
        if partial
            .page_faults
            .is_some_and(|d| d > self.thresholds.page_fault_diff)
        {
            triggered.push(HwEvent::PageFaults);
        }
        Some(SymptomVerdict {
            suspicious: !triggered.is_empty(),
            triggered,
            diffs: CounterDiffs {
                context_switches: partial.context_switches.unwrap_or(0.0),
                task_clock: partial.task_clock.unwrap_or(0.0),
                page_faults: partial.page_faults.unwrap_or(0.0),
            },
            degraded: partial.is_degraded(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checker() -> SChecker {
        SChecker::new(SymptomThresholds::default())
    }

    #[test]
    fn ui_operation_pattern_is_clean() {
        // Render-dominant UI work: all differences negative.
        let v = checker().check(CounterDiffs {
            context_switches: -25.0,
            task_clock: -1.2e8,
            page_faults: -220.0,
        });
        assert!(!v.suspicious);
        assert!(v.triggered.is_empty());
    }

    #[test]
    fn io_bug_trips_context_switches_only() {
        let v = checker().check(CounterDiffs {
            context_switches: 9.0,
            task_clock: 0.3e8,
            page_faults: 60.0,
        });
        assert!(v.suspicious);
        assert_eq!(v.triggered, vec![HwEvent::ContextSwitches]);
    }

    #[test]
    fn compute_bug_trips_cs_and_task_clock() {
        let v = checker().check(CounterDiffs {
            context_switches: 120.0,
            task_clock: 4.0e8,
            page_faults: 250.0,
        });
        assert_eq!(
            v.triggered,
            vec![HwEvent::ContextSwitches, HwEvent::TaskClock]
        );
    }

    #[test]
    fn memory_bug_in_render_heavy_action_trips_page_faults_only() {
        let v = checker().check(CounterDiffs {
            context_switches: -30.0,
            task_clock: -0.8e8,
            page_faults: 700.0,
        });
        assert!(v.suspicious);
        assert_eq!(v.triggered, vec![HwEvent::PageFaults]);
    }

    #[test]
    fn thresholds_are_strict_inequalities() {
        let v = checker().check(CounterDiffs {
            context_switches: 0.0,
            task_clock: 1.7e8,
            page_faults: 500.0,
        });
        assert!(!v.suspicious, "boundary values must not trigger");
    }

    #[test]
    fn partial_check_with_all_counters_matches_full_check() {
        let diffs = CounterDiffs {
            context_switches: 120.0,
            task_clock: 4.0e8,
            page_faults: 250.0,
        };
        let full = checker().check(diffs);
        let partial = checker()
            .check_partial(PartialCounterDiffs::complete(diffs))
            .unwrap();
        assert_eq!(full, partial);
        assert!(!partial.degraded);
    }

    #[test]
    fn partial_check_judges_only_surviving_counters() {
        // Task-clock would have fired, but its read was lost: only the
        // surviving page-fault counter is examined.
        let v = checker()
            .check_partial(PartialCounterDiffs {
                context_switches: None,
                task_clock: None,
                page_faults: Some(700.0),
            })
            .unwrap();
        assert!(v.suspicious);
        assert!(v.degraded);
        assert_eq!(v.triggered, vec![HwEvent::PageFaults]);
        assert_eq!(v.diffs.task_clock, 0.0);
    }

    #[test]
    fn partial_check_with_no_counters_is_abandoned() {
        assert_eq!(
            checker().check_partial(PartialCounterDiffs::default()),
            None
        );
        assert!(PartialCounterDiffs::default().is_empty());
    }

    #[test]
    fn custom_thresholds_apply() {
        let c = SChecker::new(SymptomThresholds {
            context_switch_diff: 50.0,
            task_clock_diff: 5.0e8,
            page_fault_diff: 2_000.0,
        });
        let v = c.check(CounterDiffs {
            context_switches: 40.0,
            task_clock: 4.0e8,
            page_faults: 1_500.0,
        });
        assert!(!v.suspicious);
    }
}
