//! The Hang Bug Report (Figure 2(b)).
//!
//! Per app, the report aggregates diagnosed soft hang bugs across user
//! devices: for each root cause it tracks how many devices saw it and in
//! what percentage of the affected action's executions it manifested,
//! sorted by occurrence.

use std::collections::{HashMap, HashSet};

use hd_simrt::ActionUid;
use serde::{Deserialize, Serialize};

use crate::analysis::{RootCause, RootKind};

/// One aggregated report row.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReportEntry {
    /// Root-cause symbol (e.g. `org.andstatus.app.util.MyHtml.transform`).
    pub symbol: String,
    /// Source location of the culprit.
    pub file: String,
    /// Line number.
    pub line: u32,
    /// Classification (blocking API vs self-developed operation).
    pub kind: RootKind,
    /// Action the bug manifests in.
    pub action: String,
    /// Devices that reported this bug.
    pub devices: usize,
    /// Soft hangs attributed to this root cause.
    pub hangs: u64,
    /// Executions of the affected action observed (for the percentage).
    pub action_executions: u64,
    /// Mean hang duration, ns.
    pub mean_hang_ns: u64,
}

impl ReportEntry {
    /// Percentage of the action's executions that hung on this bug.
    pub fn occurrence_pct(&self) -> f64 {
        if self.action_executions == 0 {
            return 0.0;
        }
        100.0 * self.hangs as f64 / self.action_executions as f64
    }
}

#[derive(Clone, Debug, Default, Serialize, Deserialize)]
struct EntryAcc {
    file: String,
    line: u32,
    kind: Option<RootKind>,
    action: String,
    devices: HashSet<u32>,
    hangs: u64,
    total_hang_ns: u64,
}

/// Aggregated per-app hang bug report maintained for the developer.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct HangBugReport {
    /// App the report belongs to.
    pub app: String,
    entries: HashMap<String, EntryAcc>,
    action_executions: HashMap<ActionUid, u64>,
    action_names: HashMap<ActionUid, String>,
    bug_actions: HashMap<String, ActionUid>,
}

impl HangBugReport {
    /// Creates an empty report for `app`.
    pub fn new(app: &str) -> HangBugReport {
        HangBugReport {
            app: app.to_string(),
            ..Default::default()
        }
    }

    /// Notes one execution of an action (denominator of the occurrence
    /// percentage).
    pub fn note_execution(&mut self, uid: ActionUid, name: &str) {
        *self.action_executions.entry(uid).or_default() += 1;
        self.action_names
            .entry(uid)
            .or_insert_with(|| name.to_string());
    }

    /// Records one diagnosed soft hang bug occurrence from `device`.
    pub fn record_bug(&mut self, device: u32, uid: ActionUid, root: &RootCause, hang_ns: u64) {
        debug_assert!(root.is_bug(), "UI diagnoses must not be reported");
        let acc = self.entries.entry(root.symbol.clone()).or_default();
        acc.file = root.file.clone();
        acc.line = root.line;
        acc.kind = Some(root.kind);
        acc.devices.insert(device);
        acc.hangs += 1;
        acc.total_hang_ns += hang_ns;
        self.bug_actions.insert(root.symbol.clone(), uid);
    }

    /// Merges another device's report into this one (fleet aggregation).
    pub fn merge(&mut self, other: &HangBugReport) {
        for (uid, n) in &other.action_executions {
            *self.action_executions.entry(*uid).or_default() += n;
        }
        for (uid, name) in &other.action_names {
            self.action_names
                .entry(*uid)
                .or_insert_with(|| name.clone());
        }
        for (sym, acc) in &other.entries {
            let mine = self.entries.entry(sym.clone()).or_default();
            mine.file = acc.file.clone();
            mine.line = acc.line;
            mine.kind = acc.kind;
            mine.devices.extend(&acc.devices);
            mine.hangs += acc.hangs;
            mine.total_hang_ns += acc.total_hang_ns;
        }
        for (sym, uid) in &other.bug_actions {
            self.bug_actions.entry(sym.clone()).or_insert(*uid);
        }
    }

    /// Report rows ordered by occurrence percentage (Figure 2(b)).
    pub fn entries(&self) -> Vec<ReportEntry> {
        let mut rows: Vec<ReportEntry> = self
            .entries
            .iter()
            .map(|(sym, acc)| {
                let uid = self.bug_actions.get(sym);
                let action_executions = uid
                    .and_then(|u| self.action_executions.get(u))
                    .copied()
                    .unwrap_or(0);
                let action = uid
                    .and_then(|u| self.action_names.get(u))
                    .cloned()
                    .unwrap_or_default();
                ReportEntry {
                    symbol: sym.clone(),
                    file: acc.file.clone(),
                    line: acc.line,
                    kind: acc.kind.unwrap_or(RootKind::BlockingApi),
                    action,
                    devices: acc.devices.len(),
                    hangs: acc.hangs,
                    action_executions,
                    mean_hang_ns: acc.total_hang_ns.checked_div(acc.hangs).unwrap_or(0),
                }
            })
            .collect();
        rows.sort_by(|a, b| {
            b.occurrence_pct()
                .partial_cmp(&a.occurrence_pct())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.symbol.cmp(&b.symbol))
        });
        rows
    }

    /// Renders a developer-facing text table.
    pub fn render(&self) -> String {
        let mut out = format!("Hang Bug Report — {}\n", self.app);
        out.push_str(&format!(
            "{:<55} {:>8} {:>7} {:>9}  {}\n",
            "root cause", "devices", "occur%", "mean(ms)", "action"
        ));
        for e in self.entries() {
            out.push_str(&format!(
                "{:<55} {:>8} {:>6.1}% {:>9.1}  {}\n",
                format!("{} ({}:{})", e.symbol, e.file, e.line),
                e.devices,
                e.occurrence_pct(),
                e.mean_hang_ns as f64 / 1e6,
                e.action,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root(symbol: &str) -> RootCause {
        RootCause {
            symbol: symbol.to_string(),
            file: "X.java".into(),
            line: 10,
            occurrence_factor: 0.9,
            kind: RootKind::BlockingApi,
        }
    }

    #[test]
    fn occurrence_percentage_over_action_executions() {
        let mut r = HangBugReport::new("AndStatus");
        for _ in 0..100 {
            r.note_execution(ActionUid(1), "open conversation");
        }
        for _ in 0..75 {
            r.record_bug(1, ActionUid(1), &root("a.b.transform"), 200_000_000);
        }
        let rows = r.entries();
        assert_eq!(rows.len(), 1);
        assert!((rows[0].occurrence_pct() - 75.0).abs() < 1e-9);
        assert_eq!(rows[0].mean_hang_ns, 200_000_000);
        assert_eq!(rows[0].action, "open conversation");
    }

    #[test]
    fn rows_sorted_by_occurrence() {
        let mut r = HangBugReport::new("App");
        for _ in 0..10 {
            r.note_execution(ActionUid(1), "a1");
            r.note_execution(ActionUid(2), "a2");
        }
        for _ in 0..2 {
            r.record_bug(1, ActionUid(1), &root("low.occurrence"), 1);
        }
        for _ in 0..9 {
            r.record_bug(1, ActionUid(2), &root("high.occurrence"), 1);
        }
        let rows = r.entries();
        assert_eq!(rows[0].symbol, "high.occurrence");
        assert_eq!(rows[1].symbol, "low.occurrence");
    }

    #[test]
    fn merge_unions_devices_and_sums_hangs() {
        let mut a = HangBugReport::new("App");
        a.note_execution(ActionUid(1), "act");
        a.record_bug(1, ActionUid(1), &root("x.y.z"), 100);
        let mut b = HangBugReport::new("App");
        b.note_execution(ActionUid(1), "act");
        b.record_bug(2, ActionUid(1), &root("x.y.z"), 300);
        a.merge(&b);
        let rows = a.entries();
        assert_eq!(rows[0].devices, 2);
        assert_eq!(rows[0].hangs, 2);
        assert_eq!(rows[0].action_executions, 2);
        assert_eq!(rows[0].mean_hang_ns, 200);
    }

    #[test]
    fn render_contains_figure_2b_columns() {
        let mut r = HangBugReport::new("AndStatus");
        r.note_execution(ActionUid(1), "open conversation");
        r.record_bug(
            7,
            ActionUid(1),
            &root("org.andstatus.app.util.MyHtml.transform"),
            1_000_000,
        );
        let text = r.render();
        assert!(text.contains("devices"));
        assert!(text.contains("occur%"));
        assert!(text.contains("MyHtml.transform"));
    }

    #[test]
    fn serde_round_trip() {
        let mut r = HangBugReport::new("App");
        r.note_execution(ActionUid(1), "act");
        r.record_bug(1, ActionUid(1), &root("x.y.z"), 5);
        let json = serde_json::to_string(&r).unwrap();
        let back: HangBugReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.entries(), r.entries());
    }
}
