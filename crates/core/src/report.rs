//! The Hang Bug Report (Figure 2(b)).
//!
//! Per app, the report aggregates diagnosed soft hang bugs across user
//! devices: for each root cause it tracks how many devices saw it and in
//! what percentage of the affected action's executions it manifested,
//! sorted by occurrence.
//!
//! All evidence is kept **per device**, and [`HangBugReport::merge`] is
//! a join-semilattice join: for every (root cause, device) and (action,
//! device) cell it takes the element-wise maximum of the two counters.
//! Two snapshots of the same device's monotonically growing state merge
//! to the later snapshot, and reports from different devices union.
//! That makes `merge` associative, commutative, and idempotent, so the
//! fleet engine can combine shard results in any grouping/order — and
//! retry a shard — without changing the outcome.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use hd_simrt::ActionUid;
use serde::{Deserialize, Serialize};

use crate::analysis::{RootCause, RootKind};

/// One aggregated report row.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReportEntry {
    /// Root-cause symbol (e.g. `org.andstatus.app.util.MyHtml.transform`).
    pub symbol: String,
    /// Source location of the culprit.
    pub file: String,
    /// Line number.
    pub line: u32,
    /// Classification (blocking API vs self-developed operation).
    pub kind: RootKind,
    /// Action the bug manifests in.
    pub action: String,
    /// Devices that reported this bug.
    pub devices: usize,
    /// Soft hangs attributed to this root cause.
    pub hangs: u64,
    /// Executions of the affected action observed (for the percentage).
    pub action_executions: u64,
    /// Mean hang duration, ns.
    pub mean_hang_ns: u64,
}

impl ReportEntry {
    /// Percentage of the action's executions that hung on this bug.
    pub fn occurrence_pct(&self) -> f64 {
        if self.action_executions == 0 {
            return 0.0;
        }
        100.0 * self.hangs as f64 / self.action_executions as f64
    }
}

/// What one device contributed to one root cause. Merging takes the
/// field-wise-lexicographic maximum (`Ord` derive), treating the larger
/// record as the later snapshot of the same device.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
struct DeviceEvidence {
    hangs: u64,
    total_hang_ns: u64,
}

#[derive(Clone, Debug, Default, Serialize, Deserialize)]
struct EntryAcc {
    file: String,
    line: u32,
    kind: Option<RootKind>,
    devices: HashMap<u32, DeviceEvidence>,
}

impl EntryAcc {
    fn hangs(&self) -> u64 {
        self.devices.values().map(|e| e.hangs).sum()
    }

    fn total_hang_ns(&self) -> u64 {
        self.devices.values().map(|e| e.total_hang_ns).sum()
    }

    /// Semilattice join with another accumulator for the same symbol.
    fn join(&mut self, other: &EntryAcc) {
        // Location conflicts (same symbol diagnosed at two sites) resolve
        // to the smallest (file, line) so that merge order cannot matter.
        if !other.file.is_empty()
            && (self.file.is_empty() || (&other.file, other.line) < (&self.file, self.line))
        {
            self.file = other.file.clone();
            self.line = other.line;
        }
        self.kind = match (self.kind, other.kind) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        for (device, evidence) in &other.devices {
            let mine = self.devices.entry(*device).or_default();
            *mine = (*mine).max(*evidence);
        }
    }
}

/// Aggregated per-app hang bug report maintained for the developer.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct HangBugReport {
    /// App the report belongs to.
    pub app: String,
    entries: HashMap<String, EntryAcc>,
    action_executions: HashMap<ActionUid, HashMap<u32, u64>>,
    action_names: HashMap<ActionUid, String>,
    bug_actions: HashMap<String, ActionUid>,
}

impl HangBugReport {
    /// Creates an empty report for `app`.
    pub fn new(app: &str) -> HangBugReport {
        HangBugReport {
            app: app.to_string(),
            ..Default::default()
        }
    }

    /// Notes one execution of an action on `device` (denominator of the
    /// occurrence percentage).
    pub fn note_execution(&mut self, device: u32, uid: ActionUid, name: &str) {
        *self
            .action_executions
            .entry(uid)
            .or_default()
            .entry(device)
            .or_default() += 1;
        self.action_names
            .entry(uid)
            .or_insert_with(|| name.to_string());
    }

    /// Records one diagnosed soft hang bug occurrence from `device`.
    pub fn record_bug(&mut self, device: u32, uid: ActionUid, root: &RootCause, hang_ns: u64) {
        debug_assert!(root.is_bug(), "UI diagnoses must not be reported");
        let acc = self.entries.entry(root.symbol.clone()).or_default();
        acc.file = root.file.clone();
        acc.line = root.line;
        acc.kind = Some(root.kind);
        let evidence = acc.devices.entry(device).or_default();
        evidence.hangs += 1;
        evidence.total_hang_ns += hang_ns;
        self.bug_actions.insert(root.symbol.clone(), uid);
    }

    /// Merges another report for the same app into this one (fleet
    /// aggregation). Associative, commutative, and idempotent: every
    /// per-device counter joins by maximum, and tie-breaks (names,
    /// locations, classifications) resolve to the smallest value.
    pub fn merge(&mut self, other: &HangBugReport) {
        for (uid, devices) in &other.action_executions {
            let mine = self.action_executions.entry(*uid).or_default();
            for (device, count) in devices {
                let cell = mine.entry(*device).or_default();
                *cell = (*cell).max(*count);
            }
        }
        for (uid, name) in &other.action_names {
            match self.action_names.entry(*uid) {
                Entry::Occupied(mut occupied) => {
                    if name < occupied.get() {
                        occupied.insert(name.clone());
                    }
                }
                Entry::Vacant(vacant) => {
                    vacant.insert(name.clone());
                }
            }
        }
        for (sym, acc) in &other.entries {
            match self.entries.entry(sym.clone()) {
                Entry::Occupied(mut occupied) => occupied.get_mut().join(acc),
                Entry::Vacant(vacant) => {
                    vacant.insert(acc.clone());
                }
            }
        }
        for (sym, uid) in &other.bug_actions {
            match self.bug_actions.entry(sym.clone()) {
                Entry::Occupied(mut occupied) => {
                    if uid.0 < occupied.get().0 {
                        occupied.insert(*uid);
                    }
                }
                Entry::Vacant(vacant) => {
                    vacant.insert(*uid);
                }
            }
        }
    }

    /// Report rows ordered by occurrence percentage (Figure 2(b)).
    pub fn entries(&self) -> Vec<ReportEntry> {
        let mut rows: Vec<ReportEntry> = self
            .entries
            .iter()
            .map(|(sym, acc)| {
                let uid = self.bug_actions.get(sym);
                let action_executions = uid
                    .and_then(|u| self.action_executions.get(u))
                    .map(|devices| devices.values().sum())
                    .unwrap_or(0);
                let action = uid
                    .and_then(|u| self.action_names.get(u))
                    .cloned()
                    .unwrap_or_default();
                let hangs = acc.hangs();
                ReportEntry {
                    symbol: sym.clone(),
                    file: acc.file.clone(),
                    line: acc.line,
                    kind: acc.kind.unwrap_or(RootKind::BlockingApi),
                    action,
                    devices: acc.devices.len(),
                    hangs,
                    action_executions,
                    mean_hang_ns: acc.total_hang_ns().checked_div(hangs).unwrap_or(0),
                }
            })
            .collect();
        rows.sort_by(|a, b| {
            b.occurrence_pct()
                .partial_cmp(&a.occurrence_pct())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.symbol.cmp(&b.symbol))
        });
        rows
    }

    /// Renders a developer-facing text table.
    pub fn render(&self) -> String {
        let mut out = format!("Hang Bug Report — {}\n", self.app);
        out.push_str(&format!(
            "{:<55} {:>8} {:>7} {:>9}  {}\n",
            "root cause", "devices", "occur%", "mean(ms)", "action"
        ));
        for e in self.entries() {
            out.push_str(&format!(
                "{:<55} {:>8} {:>6.1}% {:>9.1}  {}\n",
                format!("{} ({}:{})", e.symbol, e.file, e.line),
                e.devices,
                e.occurrence_pct(),
                e.mean_hang_ns as f64 / 1e6,
                e.action,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root(symbol: &str) -> RootCause {
        RootCause {
            symbol: symbol.to_string(),
            file: "X.java".into(),
            line: 10,
            occurrence_factor: 0.9,
            kind: RootKind::BlockingApi,
        }
    }

    #[test]
    fn occurrence_percentage_over_action_executions() {
        let mut r = HangBugReport::new("AndStatus");
        for _ in 0..100 {
            r.note_execution(1, ActionUid(1), "open conversation");
        }
        for _ in 0..75 {
            r.record_bug(1, ActionUid(1), &root("a.b.transform"), 200_000_000);
        }
        let rows = r.entries();
        assert_eq!(rows.len(), 1);
        assert!((rows[0].occurrence_pct() - 75.0).abs() < 1e-9);
        assert_eq!(rows[0].mean_hang_ns, 200_000_000);
        assert_eq!(rows[0].action, "open conversation");
    }

    #[test]
    fn rows_sorted_by_occurrence() {
        let mut r = HangBugReport::new("App");
        for _ in 0..10 {
            r.note_execution(1, ActionUid(1), "a1");
            r.note_execution(1, ActionUid(2), "a2");
        }
        for _ in 0..2 {
            r.record_bug(1, ActionUid(1), &root("low.occurrence"), 1);
        }
        for _ in 0..9 {
            r.record_bug(1, ActionUid(2), &root("high.occurrence"), 1);
        }
        let rows = r.entries();
        assert_eq!(rows[0].symbol, "high.occurrence");
        assert_eq!(rows[1].symbol, "low.occurrence");
    }

    #[test]
    fn merge_unions_devices_and_sums_hangs() {
        let mut a = HangBugReport::new("App");
        a.note_execution(1, ActionUid(1), "act");
        a.record_bug(1, ActionUid(1), &root("x.y.z"), 100);
        let mut b = HangBugReport::new("App");
        b.note_execution(2, ActionUid(1), "act");
        b.record_bug(2, ActionUid(1), &root("x.y.z"), 300);
        a.merge(&b);
        let rows = a.entries();
        assert_eq!(rows[0].devices, 2);
        assert_eq!(rows[0].hangs, 2);
        assert_eq!(rows[0].action_executions, 2);
        assert_eq!(rows[0].mean_hang_ns, 200);
    }

    #[test]
    fn merge_is_idempotent_per_device() {
        let mut a = HangBugReport::new("App");
        a.note_execution(1, ActionUid(1), "act");
        a.note_execution(1, ActionUid(1), "act");
        a.record_bug(1, ActionUid(1), &root("x.y.z"), 100);
        let snapshot = a.clone();
        // Merging a report with itself (same device) must change nothing:
        // it is the same evidence, not new evidence.
        a.merge(&snapshot);
        a.merge(&snapshot);
        let rows = a.entries();
        assert_eq!(rows[0].devices, 1);
        assert_eq!(rows[0].hangs, 1);
        assert_eq!(rows[0].action_executions, 2);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&snapshot).unwrap()
        );
    }

    #[test]
    fn merge_takes_later_snapshot_of_same_device() {
        let mut early = HangBugReport::new("App");
        early.note_execution(3, ActionUid(1), "act");
        early.record_bug(3, ActionUid(1), &root("x.y.z"), 100);
        let mut late = early.clone();
        late.note_execution(3, ActionUid(1), "act");
        late.record_bug(3, ActionUid(1), &root("x.y.z"), 300);
        // Merge in either order: the later snapshot wins, nothing doubles.
        let mut ab = early.clone();
        ab.merge(&late);
        let mut ba = late.clone();
        ba.merge(&early);
        assert_eq!(
            serde_json::to_string(&ab).unwrap(),
            serde_json::to_string(&ba).unwrap()
        );
        let rows = ab.entries();
        assert_eq!(rows[0].hangs, 2);
        assert_eq!(rows[0].action_executions, 2);
        assert_eq!(rows[0].mean_hang_ns, 200);
    }

    #[test]
    fn render_contains_figure_2b_columns() {
        let mut r = HangBugReport::new("AndStatus");
        r.note_execution(7, ActionUid(1), "open conversation");
        r.record_bug(
            7,
            ActionUid(1),
            &root("org.andstatus.app.util.MyHtml.transform"),
            1_000_000,
        );
        let text = r.render();
        assert!(text.contains("devices"));
        assert!(text.contains("occur%"));
        assert!(text.contains("MyHtml.transform"));
    }

    #[test]
    fn serde_round_trip() {
        let mut r = HangBugReport::new("App");
        r.note_execution(1, ActionUid(1), "act");
        r.record_bug(1, ActionUid(1), &root("x.y.z"), 5);
        let json = serde_json::to_string(&r).unwrap();
        let back: HangBugReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.entries(), r.entries());
    }
}
