//! Per-action state machine (Figure 3).
//!
//! Every user action moves between four states. `Uncategorized` actions
//! are analyzed by the cheap S-Checker; `Suspicious` and `HangBug`
//! actions by the expensive Diagnoser; `Normal` actions are not analyzed
//! at all (minimum overhead), but are periodically reset to
//! `Uncategorized` so occasionally-manifesting bugs get re-examined.

use std::collections::HashMap;

use hd_simrt::ActionUid;
use serde::{Deserialize, Serialize};

/// State of one action kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ActionState {
    /// Never analyzed (or reset): S-Checker territory.
    #[default]
    Uncategorized,
    /// S-Checker saw no hang-bug symptoms (or Diagnoser cleared it).
    Normal,
    /// Symptoms seen; awaiting in-depth diagnosis on the next hang.
    Suspicious,
    /// Diagnosed soft hang bug; always deeply analyzed.
    HangBug,
}

/// One transition, kept for audit/novelty tests.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transition {
    /// The action.
    pub uid: ActionUid,
    /// State before.
    pub from: ActionState,
    /// State after.
    pub to: ActionState,
    /// Which component caused it (`"S-Checker"`, `"Diagnoser"`,
    /// `"reset"`).
    pub by: &'static str,
}

#[derive(Clone, Debug, Default)]
struct Entry {
    state: ActionState,
    normal_executions: u32,
}

/// The runtime look-up table created by the App Injector: UID → state.
#[derive(Clone, Debug, Default)]
pub struct StateTable {
    entries: HashMap<ActionUid, Entry>,
    transitions: Vec<Transition>,
}

impl StateTable {
    /// Creates an empty table.
    pub fn new() -> StateTable {
        StateTable::default()
    }

    /// Current state of `uid` (actions start `Uncategorized`).
    pub fn state(&self, uid: ActionUid) -> ActionState {
        self.entries.get(&uid).map(|e| e.state).unwrap_or_default()
    }

    /// Records a state transition caused by `by`.
    pub fn transition(&mut self, uid: ActionUid, to: ActionState, by: &'static str) {
        let entry = self.entries.entry(uid).or_default();
        let from = entry.state;
        entry.state = to;
        if to == ActionState::Normal && from != ActionState::Normal {
            entry.normal_executions = 0;
        }
        self.transitions.push(Transition { uid, from, to, by });
    }

    /// Notes one execution of a `Normal` action; after the configured
    /// number, the action resets to `Uncategorized` (paper Section 3.2).
    ///
    /// Returns `true` if a reset happened.
    pub fn note_normal_execution(&mut self, uid: ActionUid, reset_after: u32) -> bool {
        let entry = self.entries.entry(uid).or_default();
        if entry.state != ActionState::Normal {
            return false;
        }
        entry.normal_executions += 1;
        if entry.normal_executions >= reset_after {
            self.transition(uid, ActionState::Uncategorized, "reset");
            true
        } else {
            false
        }
    }

    /// All transitions, in order.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Exports `(uid, state, normal-execution count)` triples, sorted by
    /// uid, for persistence across app sessions.
    pub fn export(&self) -> Vec<(ActionUid, ActionState, u32)> {
        let mut v: Vec<(ActionUid, ActionState, u32)> = self
            .entries
            .iter()
            .map(|(&uid, e)| (uid, e.state, e.normal_executions))
            .collect();
        v.sort_by_key(|(uid, _, _)| *uid);
        v
    }

    /// Rebuilds a table from exported triples (the transition log starts
    /// fresh).
    pub fn import(entries: &[(ActionUid, ActionState, u32)]) -> StateTable {
        let mut t = StateTable::new();
        for &(uid, state, normal_executions) in entries {
            t.entries.insert(
                uid,
                Entry {
                    state,
                    normal_executions,
                },
            );
        }
        t
    }

    /// Actions currently in a given state.
    pub fn in_state(&self, state: ActionState) -> Vec<ActionUid> {
        let mut v: Vec<ActionUid> = self
            .entries
            .iter()
            .filter(|(_, e)| e.state == state)
            .map(|(&uid, _)| uid)
            .collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actions_start_uncategorized() {
        let t = StateTable::new();
        assert_eq!(t.state(ActionUid(5)), ActionState::Uncategorized);
    }

    #[test]
    fn transitions_are_recorded() {
        let mut t = StateTable::new();
        t.transition(ActionUid(1), ActionState::Suspicious, "S-Checker");
        t.transition(ActionUid(1), ActionState::HangBug, "Diagnoser");
        assert_eq!(t.state(ActionUid(1)), ActionState::HangBug);
        assert_eq!(t.transitions().len(), 2);
        assert_eq!(t.transitions()[0].from, ActionState::Uncategorized);
        assert_eq!(t.transitions()[1].by, "Diagnoser");
    }

    #[test]
    fn normal_resets_after_n_executions() {
        let mut t = StateTable::new();
        t.transition(ActionUid(2), ActionState::Normal, "S-Checker");
        for _ in 0..19 {
            assert!(!t.note_normal_execution(ActionUid(2), 20));
        }
        assert!(t.note_normal_execution(ActionUid(2), 20));
        assert_eq!(t.state(ActionUid(2)), ActionState::Uncategorized);
    }

    #[test]
    fn reset_counter_restarts_on_reentry() {
        let mut t = StateTable::new();
        t.transition(ActionUid(3), ActionState::Normal, "S-Checker");
        for _ in 0..10 {
            t.note_normal_execution(ActionUid(3), 20);
        }
        // Re-entering Normal (e.g. via Diagnoser) restarts the counter.
        t.transition(ActionUid(3), ActionState::Suspicious, "S-Checker");
        t.transition(ActionUid(3), ActionState::Normal, "Diagnoser");
        for _ in 0..19 {
            assert!(!t.note_normal_execution(ActionUid(3), 20));
        }
        assert!(t.note_normal_execution(ActionUid(3), 20));
    }

    #[test]
    fn non_normal_actions_do_not_reset() {
        let mut t = StateTable::new();
        t.transition(ActionUid(4), ActionState::HangBug, "Diagnoser");
        for _ in 0..100 {
            assert!(!t.note_normal_execution(ActionUid(4), 20));
        }
        assert_eq!(t.state(ActionUid(4)), ActionState::HangBug);
    }

    #[test]
    fn export_import_round_trip() {
        let mut t = StateTable::new();
        t.transition(ActionUid(1), ActionState::HangBug, "Diagnoser");
        t.transition(ActionUid(2), ActionState::Normal, "S-Checker");
        for _ in 0..7 {
            t.note_normal_execution(ActionUid(2), 20);
        }
        let exported = t.export();
        let back = StateTable::import(&exported);
        assert_eq!(back.state(ActionUid(1)), ActionState::HangBug);
        assert_eq!(back.state(ActionUid(2)), ActionState::Normal);
        // The reset counter survives: 13 more executions trigger reset.
        let mut back = back;
        for _ in 0..12 {
            assert!(!back.note_normal_execution(ActionUid(2), 20));
        }
        assert!(back.note_normal_execution(ActionUid(2), 20));
        // The transition log starts fresh after import.
        assert_eq!(StateTable::import(&exported).transitions().len(), 0);
    }

    #[test]
    fn in_state_lists_sorted() {
        let mut t = StateTable::new();
        t.transition(ActionUid(9), ActionState::Normal, "S-Checker");
        t.transition(ActionUid(2), ActionState::Normal, "S-Checker");
        assert_eq!(
            t.in_state(ActionState::Normal),
            vec![ActionUid(2), ActionUid(9)]
        );
        assert!(t.in_state(ActionState::HangBug).is_empty());
    }
}
