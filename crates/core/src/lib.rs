//! # hangdoctor — runtime detection and diagnosis of soft hangs
//!
//! Reproduction of *Hang Doctor: Runtime Detection and Diagnosis of Soft
//! Hangs for Smartphone Apps* (Brocanelli & Wang, EuroSys '18) over the
//! simulated Android-like runtime of `hd-simrt`.
//!
//! The system is a two-phase per-action pipeline:
//!
//! * **Phase 1 — S-Checker** ([`schecker`]): on every soft hang of an
//!   *Uncategorized* action, three performance-event differences (main
//!   thread minus render thread) are tested against thresholds derived
//!   from correlation analysis ([`correlation`], [`trainer`]): positive
//!   context-switch difference, task-clock difference above 1.7e8 ns, or
//!   page-fault difference above 500. Symptomatic actions become
//!   *Suspicious*; clean ones *Normal* ([`state`]).
//! * **Phase 2 — Diagnoser** ([`doctor`], [`analysis`]): on the next
//!   soft hang of a Suspicious/HangBug action, main-thread stack traces
//!   are collected until the hang ends and analyzed by occurrence
//!   factor; UI-class root causes are pruned, blocking APIs and
//!   self-developed operations are reported ([`report`]) and previously
//!   unknown blocking APIs feed the shared offline database ([`apidb`]).
//!
//! [`adaptation`] implements the paper's threshold/event adaptation
//! discussion (light on-device refit, heavy server-side re-selection).

pub mod adaptation;
pub mod analysis;
pub mod apidb;
pub mod config;
pub mod correlation;
pub mod doctor;
pub mod injector;
pub mod persistence;
pub mod report;
pub mod schecker;
pub mod state;
pub mod trainer;

pub use adaptation::{
    heavy_adaptation, light_adaptation, paper_filter, thresholds_from_filter, AdaptationOutcome,
};
pub use analysis::{analyze, is_ui_frame, RootCause, RootKind};
pub use apidb::{shared, BlockingApiDb, DbOrigin, SharedApiDb};
pub use config::{ConfigError, HangDoctorConfig, HangDoctorConfigBuilder, SymptomThresholds};
pub use correlation::{
    best_threshold, pearson, rank_events, select_filter, subsample, Condition, DiffMode, Filter,
    TrainingSample,
};
pub use doctor::{Detection, HangDoctor, HdOutput};
pub use hd_faults::{
    ctrl_fault_seed, fault_seed, net_fault_seed, BatchFaults, CtrlFaultCategory, CtrlFaultConfig,
    CtrlFaultPlan, CtrlFaultRates, CtrlFaultTally, FaultCategory, FaultConfig, FaultPlan,
    FaultRates, FaultTally, FrameFaults, NetFaultCategory, NetFaultConfig, NetFaultPlan,
    NetFaultRates, NetFaultTally,
};
pub use injector::{AppInjector, InjectionReport};
pub use persistence::DeviceSnapshot;
pub use report::{HangBugReport, ReportEntry};
pub use schecker::{CounterDiffs, PartialCounterDiffs, SChecker, SymptomVerdict};
pub use state::{ActionState, StateTable, Transition};
pub use trainer::{collect_samples, training_set, validation_set, LabeledAction};
