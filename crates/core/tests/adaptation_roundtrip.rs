//! Round-trip guarantees the control plane relies on: any thresholds an
//! adaptation pass produces must survive projection onto
//! `SymptomThresholds` and pass the config builder's validation (that is
//! how a device applies a pushed retrain), and re-applying an adapted
//! filter to the same data must be a fixed point.

use hangdoctor::{
    collect_samples, heavy_adaptation, light_adaptation, paper_filter, thresholds_from_filter,
    training_set, DiffMode, HangDoctorConfig, SymptomThresholds,
};

/// Seeds swept by every test: distinct fleets, same guarantees.
const SEEDS: [u64; 4] = [7, 42, 1234, 0xDEAD_BEEF];

#[test]
fn light_adaptation_thresholds_always_pass_builder_validation() {
    for seed in SEEDS {
        let samples = collect_samples(&training_set(), 2, seed);
        let out = light_adaptation(
            &paper_filter(SymptomThresholds::default()),
            &samples,
            DiffMode::MainMinusRender,
        );
        let t = thresholds_from_filter(&out.filter, SymptomThresholds::default());
        let cfg = HangDoctorConfig::builder()
            .thresholds(t)
            .build()
            .unwrap_or_else(|e| panic!("seed {seed}: light thresholds rejected: {e}"));
        assert_eq!(cfg.thresholds, t);
    }
}

#[test]
fn heavy_adaptation_thresholds_always_pass_builder_validation() {
    for seed in SEEDS {
        let samples = collect_samples(&training_set(), 2, seed);
        let out = heavy_adaptation(&samples, DiffMode::MainMinusRender, 3);
        let t = thresholds_from_filter(&out.filter, SymptomThresholds::default());
        let cfg = HangDoctorConfig::builder()
            .thresholds(t)
            .build()
            .unwrap_or_else(|e| panic!("seed {seed}: heavy thresholds rejected: {e}"));
        assert_eq!(cfg.thresholds, t);
    }
}

#[test]
fn light_adaptation_is_idempotent_on_the_same_samples() {
    for seed in SEEDS {
        let samples = collect_samples(&training_set(), 2, seed);
        let first = light_adaptation(
            &paper_filter(SymptomThresholds::default()),
            &samples,
            DiffMode::MainMinusRender,
        );
        // A second pass from the adapted filter cannot cost more (it may
        // keep the filter as-is; the keep-the-better rule guarantees no
        // regression) and the cost must already be at its fixed point.
        let second = light_adaptation(&first.filter, &samples, DiffMode::MainMinusRender);
        let cost = |c: (usize, usize, usize, usize)| c.1 + c.2;
        assert_eq!(
            cost(second.after),
            cost(first.after),
            "seed {seed}: second light pass changed the cost"
        );
    }
}

#[test]
fn reapplying_projected_thresholds_is_a_fixed_point() {
    for seed in SEEDS {
        let samples = collect_samples(&training_set(), 2, seed);
        let out = heavy_adaptation(&samples, DiffMode::MainMinusRender, 3);
        let t1 = thresholds_from_filter(&out.filter, SymptomThresholds::default());
        // Projecting the projection through paper_filter again changes
        // nothing: project ∘ lift is the identity on valid thresholds.
        let t2 = thresholds_from_filter(&paper_filter(t1), t1);
        assert_eq!(t1, t2, "seed {seed}: projection is not a fixed point");
    }
}
