//! Table 4: sensitivity of the correlation analysis to the training set.
//!
//! Re-run the ranking on random 75% and 50% subsamples; the analysis is
//! robust if the top-correlated events stay (largely) the same.

use hangdoctor::{rank_events, subsample, DiffMode, TrainingSample};
use hd_simrt::SimRng;
use serde::{Deserialize, Serialize};

use crate::common::render_table;
use crate::table3;

/// The sensitivity-analysis result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table4 {
    /// Full-set top events.
    pub full: Vec<(String, f64)>,
    /// 75%-subsample top events.
    pub seventy_five: Vec<(String, f64)>,
    /// 50%-subsample top events.
    pub fifty: Vec<(String, f64)>,
}

fn top(samples: &[TrainingSample], k: usize) -> Vec<(String, f64)> {
    rank_events(samples, DiffMode::MainMinusRender)
        .into_iter()
        .take(k)
        .map(|(e, c)| (e.name().to_string(), c))
        .collect()
}

/// Overlap size between the top-`k` event name sets of two rankings.
pub fn top_overlap(a: &[(String, f64)], b: &[(String, f64)], k: usize) -> usize {
    let sa: std::collections::HashSet<&str> = a.iter().take(k).map(|(n, _)| n.as_str()).collect();
    b.iter()
        .take(k)
        .filter(|(n, _)| sa.contains(n.as_str()))
        .count()
}

impl Table4 {
    /// Renders the three rankings side by side.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = (0..self.full.len())
            .map(|i| {
                let cell = |v: &Vec<(String, f64)>| {
                    v.get(i)
                        .map(|(n, c)| format!("{n} {c:.3}"))
                        .unwrap_or_default()
                };
                vec![
                    cell(&self.full),
                    cell(&self.seventy_five),
                    cell(&self.fifty),
                ]
            })
            .collect();
        format!(
            "Table 4 — Training-set sensitivity (top-5 overlap: 75% = {}/5, 50% = {}/5)\n{}",
            top_overlap(&self.full, &self.seventy_five, 5),
            top_overlap(&self.full, &self.fifty, 5),
            render_table(&["full set", "75% set", "50% set"], &rows)
        )
    }
}

/// Runs the sensitivity analysis on fresh training samples.
pub fn run(seed: u64, executions: usize) -> Table4 {
    let samples = table3::samples(seed, executions);
    let mut rng = SimRng::seed_from_u64(seed ^ 0x5e5e);
    let s75 = subsample(&samples, 0.75, &mut rng);
    let s50 = subsample(&samples, 0.50, &mut rng);
    Table4 {
        full: top(&samples, 10),
        seventy_five: top(&s75, 10),
        fifty: top(&s50, 10),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rankings_are_stable_under_subsampling() {
        // 12 executions per action: halving the training set must leave
        // enough samples that near-tied events don't swap into the top 5.
        let t = run(42, 12);
        // The paper's claim: the top-5 events keep their standing across
        // training sets. Require strong (not necessarily perfect)
        // overlap.
        assert!(
            top_overlap(&t.full, &t.seventy_five, 5) >= 4,
            "75%: {:?} vs {:?}",
            &t.full[..5],
            &t.seventy_five[..5]
        );
        assert!(
            top_overlap(&t.full, &t.fifty, 5) >= 3,
            "50%: {:?} vs {:?}",
            &t.full[..5],
            &t.fifty[..5]
        );
    }

    #[test]
    fn overlap_helper() {
        let a = vec![("x".to_string(), 1.0), ("y".to_string(), 0.5)];
        let b = vec![("y".to_string(), 0.4), ("z".to_string(), 0.3)];
        assert_eq!(top_overlap(&a, &b, 2), 1);
        assert_eq!(top_overlap(&a, &b, 1), 0);
    }

    #[test]
    fn render_shows_overlaps() {
        let t = run(7, 4);
        assert!(t.render().contains("top-5 overlap"));
    }
}
