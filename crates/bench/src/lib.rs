//! # hd-bench — experiment harness for every table and figure
//!
//! One module per experiment in the paper's evaluation, each with a
//! `run(...)` driver returning a serializable result and a `render()`
//! text table matching the paper's presentation:
//!
//! | module   | reproduces |
//! |----------|------------|
//! | [`table1`] | the motivation apps and their bug inventory |
//! | [`fig1`]   | A Better Camera buggy/fixed trace |
//! | [`fig2b`]  | the AndStatus fleet report |
//! | [`table2`] | timeout sweep of TI |
//! | [`table3`] | correlation ranking (main−render vs main-only) |
//! | [`table4`] | training-set sensitivity |
//! | [`fig4`]   | symptom thresholds over the training set |
//! | [`fig5`]   | context-switch time series |
//! | [`table5`] | 114-app field study |
//! | [`fig6`]   | K9-mail walk-through |
//! | [`fig7`]   | state transitions minimizing trace collection |
//! | [`table6`] | per-counter recognition of the 23 validation bugs |
//! | [`fig8`]   | detection performance and overhead comparison |
//! | [`generality`] | the unchanged filter on three device profiles |
//!
//! [`ablation`] adds studies of the design choices (phase-2-only,
//! single-counter filters, begin-of-action sampling, threshold and
//! sampling-period sweeps), and [`chaos`] the chaos-vs-clean
//! differential quantifying precision/recall loss per injected fault
//! category. [`sast`] runs the interprocedural static analyzer over the
//! corpus and the static↔runtime differential scoring both detection
//! arms per offline-failure-mode bug class. [`async_diff`] races the
//! causal blame walk against the naive join-site diagnosis and the
//! static scanner over the wait-edge hang corpus. [`control`] proves a
//! threshold pushed through the `hang-doctor/control/v1` dialect
//! (staged canary rollout included) reproduces the locally-configured
//! detection outcome byte-for-byte, and benches control round trips
//! under full ingest load. The `repro` binary drives everything from
//! the command line.

pub mod ablation;
pub mod async_diff;
pub mod chaos;
pub mod common;
pub mod control;
pub mod fig1;
pub mod fig2b;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod generality;
pub mod sast;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;

pub use common::{render_table, run_detector, run_detector_compiled, DetectorKind, RunOutcome};
