//! Command-line driver regenerating every table and figure of the
//! Hang Doctor evaluation.
//!
//! ```text
//! repro [--seed N] [--quick|--full] [--chaos RATE] [--json [path]] <experiment>...
//! repro all
//! ```
//!
//! Experiments: `fig1 table2 table3 table4 fig4 fig5 table5 fig6 fig7
//! table6 fig8 chaos sast` (or `all`); `sast-compat` reruns the scan
//! under the perfchecker-compat rule profile and `sast-diff` scores the
//! static↔runtime differential per bug class. `--quick` shrinks trace
//! lengths;
//! `--full` runs the field study over the whole 114-app corpus.
//! `--chaos RATE` injects deterministic observation faults at the given
//! per-category rate into the `fleet`/`bench-summary` experiments and
//! sets the rate of the `chaos` differential (default 0.05).
//!
//! `--json` prints results as JSON; `--json <path>` writes them to
//! `<path>` instead. `bench-summary` runs the fleet and writes the
//! machine-readable perf snapshot `BENCH_fleet.json` (throughput, wall
//! time, per-shard busy time, job count) — the repo's perf trajectory.

use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    seed: u64,
    quick: bool,
    full: bool,
    json: bool,
    json_path: Option<PathBuf>,
    devices: u32,
    threads: usize,
    chaos: Option<f64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: repro [--seed N] [--quick|--full] [--chaos RATE] [--json [path]] [--devices N] [--threads N] <experiment>...\n\
         experiments: fig1 table1 fig2b table2 table3 table4 fig4 fig5 table5 fig6 fig7
         table6 fig8 generality ablations chaos sast sast-compat sast-diff fleet bench-summary all\n\
         --devices/--threads apply to the fleet and bench-summary experiments (defaults 8/1)\n\
         --chaos RATE injects observation faults into fleet/bench-summary and sets the\n\
         rate of the chaos differential (RATE in [0,1], default 0.05)\n\
         bench-summary writes BENCH_fleet.json (override the path with --json <path>)"
    );
    std::process::exit(2);
}

fn is_experiment(name: &str) -> bool {
    ALL.contains(&name)
        || matches!(
            name,
            "fleet" | "generality" | "bench-summary" | "sast-compat" | "sast-diff" | "all"
        )
}

fn emit<T: serde::Serialize>(opts: &Opts, value: &T, text: String) {
    if opts.json {
        let json = serde_json::to_string_pretty(value).expect("serializable result");
        match &opts.json_path {
            Some(path) => {
                std::fs::write(path, format!("{json}\n"))
                    .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
                println!("wrote {}", path.display());
            }
            None => println!("{json}"),
        }
    } else {
        println!("{text}");
    }
}

/// Runs the fleet study (honouring `--quick/--devices/--threads/--chaos`).
fn fleet_report(opts: &Opts, seed: u64) -> hd_fleet::FleetReport {
    let mut spec = hd_fleet::FleetSpec::study(opts.devices, opts.threads, seed);
    if opts.quick {
        spec.executions_per_action = 2;
    }
    if let Some(rate) = opts.chaos {
        spec.faults = hangdoctor::FaultConfig::chaos(rate);
    }
    hd_fleet::run_fleet(&spec)
}

fn run_one(name: &str, opts: &Opts) -> Result<(), String> {
    let seed = opts.seed;
    let (e_small, e_mid, e_big) = if opts.quick { (4, 4, 6) } else { (6, 8, 12) };
    match name {
        "fig1" => {
            let r = hd_bench::fig1::run(seed);
            emit(opts, &r, r.render());
        }
        "table1" => {
            let r = hd_bench::table1::run(seed);
            emit(opts, &r, r.render());
        }
        "fig2b" => {
            let r = hd_bench::fig2b::run(seed, 6);
            emit(opts, &r, r.render());
        }
        "table2" => {
            let r = hd_bench::table2::run(seed, e_big.max(6));
            emit(opts, &r, r.render());
        }
        "table3" => {
            let r = hd_bench::table3::run(seed, e_small);
            emit(opts, &r, r.render());
        }
        "table4" => {
            let r = hd_bench::table4::run(seed, e_small);
            emit(opts, &r, r.render());
        }
        "fig4" => {
            let r = hd_bench::fig4::run(seed, e_small);
            emit(opts, &r, r.render());
        }
        "fig5" => {
            let r = hd_bench::fig5::run(seed);
            emit(opts, &r, r.render());
        }
        "table5" => {
            let r = if opts.full {
                hd_bench::table5::run(seed, e_mid)
            } else {
                hd_bench::table5::run_study_apps(seed, e_mid.max(8))
            };
            emit(opts, &r, r.render());
        }
        "fig6" => {
            let r = hd_bench::fig6::run(seed);
            emit(opts, &r, r.render());
        }
        "fig7" => {
            let r = hd_bench::fig7::run(seed);
            emit(opts, &r, r.render());
        }
        "table6" => {
            let r = hd_bench::table6::run(seed, e_mid);
            emit(opts, &r, r.render());
        }
        "fig8" => {
            let r = hd_bench::fig8::run(seed, e_big);
            emit(opts, &r, r.render());
        }
        "generality" => {
            let r = hd_bench::generality::run(seed, e_mid);
            emit(opts, &r, r.render());
        }
        "chaos" => {
            let rate = opts.chaos.unwrap_or(0.05);
            let r = hd_bench::chaos::run(seed, rate, e_small);
            emit(opts, &r, r.render());
        }
        "sast" => {
            let r = hd_bench::sast::run_scan(hd_sast::RuleProfile::Full, 2017);
            emit(opts, &r, r.render());
        }
        "sast-compat" => {
            let r = hd_bench::sast::run_scan(hd_sast::RuleProfile::PerfCheckerCompat, 2017);
            emit(opts, &r, r.render());
        }
        "sast-diff" => {
            let r = hd_bench::sast::run_differential(seed, e_small, 2017);
            emit(opts, &r, hd_bench::sast::render_differential(&r));
        }
        "fleet" => {
            let r = fleet_report(opts, seed);
            emit(opts, &r, r.render());
        }
        "bench-summary" => {
            let r = fleet_report(opts, seed);
            let summary = r.bench_summary();
            let path = opts
                .json_path
                .clone()
                .unwrap_or_else(|| PathBuf::from("BENCH_fleet.json"));
            let json = serde_json::to_string_pretty(&summary).expect("serializable bench summary");
            std::fs::write(&path, format!("{json}\n"))
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            println!(
                "wrote {}: {} jobs on {} thread(s), wall {} ms, {:.2} device-hours/s",
                path.display(),
                summary.jobs,
                summary.threads,
                summary.wall_ms,
                summary.device_hours_per_wall_second,
            );
        }
        "ablations" => {
            let r = hd_bench::ablation::phase2_only(seed, e_mid);
            emit(opts, &r, r.render());
            let r = hd_bench::ablation::single_counter(seed, e_mid);
            emit(opts, &r, r.render());
            let r = hd_bench::ablation::early_sampling(seed, e_mid.max(8));
            emit(opts, &r, r.render());
            let r = hd_bench::ablation::occurrence_sweep(seed, e_small);
            emit(opts, &r, r.render());
            let r = hd_bench::ablation::period_sweep(seed, e_small);
            emit(opts, &r, r.render());
        }
        other => return Err(format!("unknown experiment '{other}'")),
    }
    Ok(())
}

const ALL: [&str; 16] = [
    "fig1",
    "table1",
    "fig2b",
    "table2",
    "table3",
    "table4",
    "fig4",
    "fig5",
    "table5",
    "fig6",
    "fig7",
    "table6",
    "fig8",
    "ablations",
    "chaos",
    "sast",
];

fn main() -> ExitCode {
    let mut opts = Opts {
        seed: 42,
        quick: false,
        full: false,
        json: false,
        json_path: None,
        devices: 8,
        threads: 1,
        chaos: None,
    };
    let mut experiments: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                let Some(v) = args.next().and_then(|s| s.parse().ok()) else {
                    usage()
                };
                opts.seed = v;
            }
            "--devices" => {
                let Some(v) = args.next().and_then(|s| s.parse().ok()).filter(|v| *v > 0) else {
                    usage()
                };
                opts.devices = v;
            }
            "--threads" => {
                let Some(v) = args.next().and_then(|s| s.parse().ok()).filter(|v| *v > 0) else {
                    usage()
                };
                opts.threads = v;
            }
            "--chaos" => {
                let Some(v) = args
                    .next()
                    .and_then(|s| s.parse::<f64>().ok())
                    .filter(|v| (0.0..=1.0).contains(v))
                else {
                    usage()
                };
                opts.chaos = Some(v);
            }
            "--quick" => opts.quick = true,
            "--full" => opts.full = true,
            "--json" => {
                opts.json = true;
                // An optional operand: `--json out.json` writes to the
                // file; a following experiment name or flag means stdout.
                if let Some(next) = args.peek() {
                    if !next.starts_with('-') && !is_experiment(next) {
                        opts.json_path = Some(PathBuf::from(args.next().expect("peeked")));
                    }
                }
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => experiments.push(other.to_string()),
        }
    }
    if experiments.is_empty() {
        usage();
    }
    if experiments.iter().any(|e| e == "all") {
        experiments = ALL.iter().map(|s| s.to_string()).collect();
    }
    for (i, name) in experiments.iter().enumerate() {
        if i > 0 && !opts.json {
            println!("\n{}\n", "=".repeat(72));
        }
        if let Err(e) = run_one(name, &opts) {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    }
    ExitCode::SUCCESS
}
