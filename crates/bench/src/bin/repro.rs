//! Command-line driver regenerating every table and figure of the
//! Hang Doctor evaluation.
//!
//! ```text
//! repro [--seed N] [--quick|--full] [--chaos RATE] [--json [path]] <experiment>...
//! repro all
//! ```
//!
//! Experiments: `fig1 table2 table3 table4 fig4 fig5 table5 fig6 fig7
//! table6 fig8 chaos sast` (or `all`); `sast` scans the corpus under the
//! context-sensitive profile (`--threads N` shards the scan; the report
//! is byte-identical at every thread count), `sast-full`/`sast-compat`
//! rerun it under the context-insensitive and perfchecker-compat
//! profiles, `sast-diff` scores the static↔runtime differential per bug
//! class, `sast-prec-diff` scores all three rule profiles against
//! fleet-confirmed ground truth (and fails unless the contextual arm
//! removes false positives with zero recall loss), `sast-bench` sweeps
//! the strided parallel scanner over the replicated study corpus and
//! writes `BENCH_sast.json`, and `async-diff` races the causal blame
//! walk against the naive join-site diagnosis and the static scanner
//! over the async hang corpus. `--quick` shrinks trace lengths;
//! `--full` runs the field study over the whole 114-app corpus.
//! `--chaos RATE` injects deterministic observation faults at the given
//! per-category rate into the `fleet`/`bench-summary` experiments and
//! sets the rate of the `chaos` differential (default 0.05).
//!
//! `--json` prints results as JSON; `--json <path>` writes them to
//! `<path>` instead. `bench-summary` sweeps the fleet workload over
//! 1/2/4/8/16 worker threads plus an accrual-kernel microbenchmark and
//! writes the machine-readable `hang-doctor/fleet-bench/v2` snapshot
//! `BENCH_fleet.json` (per-thread-count rows, accrue ns/call, best
//! throughput vs. the PR 2 baseline) — the repo's perf trajectory.
//!
//! Telemetry commands: `serve` runs the TCP ingestion server on
//! `--addr` until a client sends a shutdown frame (add `--wal DIR
//! --node-id N` for durable ingest that survives a crash); `upload`
//! runs the fleet and uploads every job's report to a running server,
//! then queries the top-N aggregation; `telemetry-bench` hammers a
//! loopback server with pipelined clients and writes
//! `BENCH_telemetry.json`; `cluster` runs the N-node differential
//! (`--nodes`, `--crash` kills and WAL-restarts a node mid-upload);
//! `replay` folds the WALs under `--wal DIR` offline and prints the
//! recovered aggregate. `fleet --telemetry` routes the whole fleet
//! through a loopback server and differentially checks the networked
//! aggregation against the in-process merge.
//!
//! Control commands (the `hang-doctor/control/v1` dialect): `control`
//! live-probes a running server — syncs real per-device Hang Doctor
//! runs, queries `--device N`'s S-Checker state table, pulls an
//! on-demand stack dump, toggles per-app diagnosis, and reports rollout
//! status; `push-thresholds` retrains symptom thresholds on the labeled
//! training set (`--heavy` for the exhaustive pass) and pushes them as
//! a canaried 1% → 25% → 100% rollout, exiting nonzero if the canary
//! cohort regresses and the push rolls back; `control-diff` writes
//! `CONTROL_differential.json` and exits nonzero unless a pushed
//! threshold reproduces the locally-configured detection outcome
//! byte-for-byte (clean and under `--chaos` control-frame loss, delay,
//! and duplication); `control-bench` writes `BENCH_control.json` —
//! control round-trip percentiles measured while pipelined ingest runs
//! at full rate.

use std::net::ToSocketAddrs;
use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    seed: u64,
    quick: bool,
    full: bool,
    json: bool,
    json_path: Option<PathBuf>,
    devices: u32,
    threads: usize,
    chaos: Option<f64>,
    telemetry: bool,
    addr: String,
    shards: usize,
    queue: usize,
    top: usize,
    shutdown: bool,
    nodes: usize,
    wal: Option<String>,
    node_id: u64,
    crash: bool,
    device: u32,
    heavy: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: repro [--seed N] [--quick|--full] [--chaos RATE] [--json [path]] [--devices N] [--threads N] <experiment>...\n\
         experiments: fig1 table1 fig2b table2 table3 table4 fig4 fig5 table5 fig6 fig7
         table6 fig8 generality ablations chaos sast sast-full sast-compat sast-diff\n\
         sast-prec-diff sast-bench async-diff fleet bench-summary all\n\
         telemetry commands: serve upload telemetry-bench cluster replay (plus fleet --telemetry)\n\
         control commands: control push-thresholds control-diff control-bench\n\
         --devices/--threads apply to the fleet and bench-summary experiments (defaults 8/1);\n\
         --threads also shards the sast scan (byte-identical at any count)\n\
         --chaos RATE injects observation faults into fleet/bench-summary and sets the\n\
         rate of the chaos differential (RATE in [0,1], default 0.05); with --telemetry\n\
         (or upload) it also enables transport faults at the same rate\n\
         --telemetry routes the fleet through a loopback TCP server and checks the\n\
         networked aggregation byte-for-byte against the in-process merge\n\
         --addr HOST:PORT for serve/upload (default 127.0.0.1:7077)\n\
         --shards N / --queue N size the serve ingest pool (defaults 4/64)\n\
         --wal DIR / --node-id N make serve durable (WAL + snapshots under DIR);\n\
         replay --wal DIR folds those logs offline into the recovered aggregate\n\
         --nodes N sizes the cluster differential (default 3); --crash kills one\n\
         node mid-upload and restarts it from its WAL\n\
         --top N bounds exported hang groups (default 25); upload --shutdown stops the server\n\
         control probes a running server in the hang-doctor/control/v1 dialect (state-table\n\
         query + stack pull on --device N, per-app diagnosis toggle, rollout status);\n\
         push-thresholds retrains on the labeled training set (--heavy for the exhaustive\n\
         pass) and pushes a canary → expanded → full rollout, failing on rollback;\n\
         control-diff writes CONTROL_differential.json and fails unless the pushed\n\
         thresholds reproduce the locally-configured run byte-for-byte (clean or --chaos);\n\
         control-bench writes BENCH_control.json (control latency under full ingest load)\n\
         bench-summary writes BENCH_fleet.json, telemetry-bench writes BENCH_telemetry.json,\n\
         sast-bench writes BENCH_sast.json (override any path with --json <path>)"
    );
    std::process::exit(2);
}

fn is_experiment(name: &str) -> bool {
    ALL.contains(&name)
        || matches!(
            name,
            "fleet"
                | "generality"
                | "bench-summary"
                | "sast-full"
                | "sast-compat"
                | "sast-diff"
                | "sast-prec-diff"
                | "sast-bench"
                | "async-diff"
                | "serve"
                | "upload"
                | "telemetry-bench"
                | "cluster"
                | "replay"
                | "control"
                | "push-thresholds"
                | "control-diff"
                | "control-bench"
                | "all"
        )
}

fn emit<T: serde::Serialize>(opts: &Opts, value: &T, text: String) {
    if opts.json {
        let json = serde_json::to_string_pretty(value).expect("serializable result");
        match &opts.json_path {
            Some(path) => {
                std::fs::write(path, format!("{json}\n"))
                    .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
                println!("wrote {}", path.display());
            }
            None => println!("{json}"),
        }
    } else {
        println!("{text}");
    }
}

/// The PR 2 fleet-throughput reference, device-hours per wall second on
/// the quick-fleet workload; `BENCH_fleet.json` tracks the multiple.
const PR2_BASELINE: f64 = 1.67;

/// Times `MemProfile::accrue` directly (ns/call, ui and memory-heavy
/// profiles) so the bench artifact carries the kernel floor rather than
/// inferring it from fleet wall time.
fn measure_accrue() -> hd_fleet::AccrueBench {
    use hd_simrt::{CounterBank, MemProfile, SimRng};
    fn ns_per_call(profile: &MemProfile) -> f64 {
        let mut bank = CounterBank::new();
        let mut rng = SimRng::seed_from_u64(7);
        // Warm up, then time a fixed batch; 200k calls keep the whole
        // measurement under ~10 ms.
        for _ in 0..10_000 {
            profile.accrue(&mut bank, 50_000, &mut rng);
        }
        let calls = 200_000u32;
        let started = std::time::Instant::now();
        for _ in 0..calls {
            profile.accrue(&mut bank, 50_000, &mut rng);
        }
        let elapsed = started.elapsed();
        std::hint::black_box(&bank);
        elapsed.as_nanos() as f64 / calls as f64
    }
    hd_fleet::AccrueBench {
        ui_ns_per_call: ns_per_call(&MemProfile::ui()),
        memory_heavy_ns_per_call: ns_per_call(&MemProfile::memory_heavy()),
    }
}

/// The fleet study spec (honouring `--quick/--devices/--threads/--chaos`).
fn study_spec(opts: &Opts, seed: u64) -> hd_fleet::FleetSpec {
    let mut spec = hd_fleet::FleetSpec::study(opts.devices, opts.threads, seed);
    if opts.quick {
        spec.executions_per_action = 2;
    }
    if let Some(rate) = opts.chaos {
        spec.faults = hangdoctor::FaultConfig::chaos(rate);
    }
    spec
}

/// Runs the fleet study in-process.
fn fleet_report(opts: &Opts, seed: u64) -> hd_fleet::FleetReport {
    hd_fleet::run_fleet(&study_spec(opts, seed))
}

/// Transport fault configuration: `--chaos RATE` also shakes the
/// telemetry path.
fn net_config(opts: &Opts) -> hangdoctor::NetFaultConfig {
    match opts.chaos {
        Some(rate) => hangdoctor::NetFaultConfig::chaos(rate),
        None => hangdoctor::NetFaultConfig::none(),
    }
}

fn run_one(name: &str, opts: &Opts) -> Result<(), String> {
    let seed = opts.seed;
    let (e_small, e_mid, e_big) = if opts.quick { (4, 4, 6) } else { (6, 8, 12) };
    match name {
        "fig1" => {
            let r = hd_bench::fig1::run(seed);
            emit(opts, &r, r.render());
        }
        "table1" => {
            let r = hd_bench::table1::run(seed);
            emit(opts, &r, r.render());
        }
        "fig2b" => {
            let r = hd_bench::fig2b::run(seed, 6);
            emit(opts, &r, r.render());
        }
        "table2" => {
            let r = hd_bench::table2::run(seed, e_big.max(6));
            emit(opts, &r, r.render());
        }
        "table3" => {
            let r = hd_bench::table3::run(seed, e_small);
            emit(opts, &r, r.render());
        }
        "table4" => {
            let r = hd_bench::table4::run(seed, e_small);
            emit(opts, &r, r.render());
        }
        "fig4" => {
            let r = hd_bench::fig4::run(seed, e_small);
            emit(opts, &r, r.render());
        }
        "fig5" => {
            let r = hd_bench::fig5::run(seed);
            emit(opts, &r, r.render());
        }
        "table5" => {
            let r = if opts.full {
                hd_bench::table5::run(seed, e_mid)
            } else {
                hd_bench::table5::run_study_apps(seed, e_mid.max(8))
            };
            emit(opts, &r, r.render());
        }
        "fig6" => {
            let r = hd_bench::fig6::run(seed);
            emit(opts, &r, r.render());
        }
        "fig7" => {
            let r = hd_bench::fig7::run(seed);
            emit(opts, &r, r.render());
        }
        "table6" => {
            let r = hd_bench::table6::run(seed, e_mid);
            emit(opts, &r, r.render());
        }
        "fig8" => {
            let r = hd_bench::fig8::run(seed, e_big);
            emit(opts, &r, r.render());
        }
        "generality" => {
            let r = hd_bench::generality::run(seed, e_mid);
            emit(opts, &r, r.render());
        }
        "chaos" => {
            let rate = opts.chaos.unwrap_or(0.05);
            let r = hd_bench::chaos::run(seed, rate, e_small);
            emit(opts, &r, r.render());
        }
        "sast" => {
            let r = hd_bench::sast::run_scan(hd_sast::RuleProfile::Contextual, 2017, opts.threads);
            emit(opts, &r, r.render());
        }
        "sast-full" => {
            let r = hd_bench::sast::run_scan(hd_sast::RuleProfile::Full, 2017, opts.threads);
            emit(opts, &r, r.render());
        }
        "sast-compat" => {
            let r = hd_bench::sast::run_scan(
                hd_sast::RuleProfile::PerfCheckerCompat,
                2017,
                opts.threads,
            );
            emit(opts, &r, r.render());
        }
        "sast-diff" => {
            let r = hd_bench::sast::run_differential(seed, e_small, 2017);
            emit(opts, &r, hd_bench::sast::render_differential(&r));
        }
        "sast-prec-diff" => {
            let r = hd_bench::sast::run_precision_differential(seed, e_small, 2017);
            let text = hd_bench::sast::render_precision(&r);
            if !r.refinement_holds() {
                return Err(format!(
                    "precision differential failed: the contextual arm must remove \
                     false positives without losing a true positive\n{text}"
                ));
            }
            emit(opts, &r, text);
        }
        "sast-bench" => {
            // The strided-scanner sweep over the replicated study corpus;
            // --quick trims the replica count so CI stays fast.
            let (sweep, replicas) = if opts.quick {
                (vec![1usize, 2, 4], 200)
            } else {
                (vec![1usize, 2, 4, 8, 16], 400)
            };
            let bench = hd_bench::sast::run_bench(seed, &sweep, replicas);
            let path = opts
                .json_path
                .clone()
                .unwrap_or_else(|| PathBuf::from("BENCH_sast.json"));
            let json = serde_json::to_string_pretty(&bench).expect("serializable sast bench");
            std::fs::write(&path, format!("{json}\n"))
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            println!(
                "wrote {}: {}",
                path.display(),
                hd_bench::sast::render_bench(&bench)
            );
        }
        "async-diff" => {
            let r = hd_bench::async_diff::run_async_differential(seed, e_small, 2017);
            emit(
                opts,
                &r,
                hd_bench::async_diff::render_async_differential(&r),
            );
        }
        "fleet" => {
            if opts.telemetry {
                let spec = study_spec(opts, seed);
                let outcome = hd_telemetry::run_fleet_telemetry(&spec, &net_config(opts), opts.top);
                if !outcome.byte_identical {
                    return Err("telemetry differential failed: the networked aggregation \
                         diverged from the in-process merge"
                        .to_string());
                }
                let text = format!(
                    "{}\ntelemetry differential: networked report is byte-identical \
                     to the in-process merge ({} batches, {} duplicates absorbed, {} NACKs)\n\n{}",
                    outcome.fleet.render(),
                    outcome.server.ingest.batches_applied,
                    outcome.server.ingest.duplicates_absorbed,
                    outcome.server.nacks_sent,
                    outcome.report.render(),
                );
                emit(opts, &outcome.report, text);
            } else {
                let r = fleet_report(opts, seed);
                emit(opts, &r, r.render());
            }
        }
        "serve" => {
            let mut builder = hd_telemetry::TelemetryServer::builder()
                .addr(&opts.addr)
                .shards(opts.shards)
                .queue_capacity(opts.queue)
                .node_id(opts.node_id);
            if let Some(dir) = &opts.wal {
                builder = builder.wal_dir(dir.clone());
            }
            let server = builder
                .start()
                .map_err(|e| format!("cannot start server on {}: {e}", opts.addr))?;
            let durability = match &opts.wal {
                Some(dir) => format!("WAL under {dir} as node {}", opts.node_id),
                None => "in-memory".to_string(),
            };
            println!(
                "hd-telemetry server listening on {} ({} shards, queue {}, {durability}); \
                 stop it with `repro upload --shutdown` or any shutdown frame",
                server.local_addr(),
                opts.shards,
                opts.queue
            );
            if server.stats().batches_recovered > 0 {
                println!(
                    "recovered {} batches from WAL replay",
                    server.stats().batches_recovered
                );
            }
            let stats = server.join();
            emit(
                opts,
                &stats,
                format!(
                    "server stopped: {} connections, {} batches applied \
                     ({} duplicates absorbed), {} NACKs sent, {} recovered from WAL",
                    stats.connections,
                    stats.ingest.batches_applied,
                    stats.ingest.duplicates_absorbed,
                    stats.nacks_sent,
                    stats.batches_recovered
                ),
            );
        }
        "cluster" => {
            let spec = study_spec(opts, seed);
            // --crash kills one node after the middle wave and restarts
            // it from its WAL; --chaos RATE additionally draws random
            // crash waves (plus transport faults) at that rate.
            let crash = if let Some(rate) = opts.chaos {
                hd_faults::NodeCrashPlan::for_cluster(rate, opts.nodes, 4, seed)
            } else if opts.crash {
                hd_faults::NodeCrashPlan::pinned(3, 1, 1 % opts.nodes)
            } else {
                hd_faults::NodeCrashPlan::none(1)
            };
            let outcome = hd_telemetry::run_cluster_telemetry(
                &spec,
                &net_config(opts),
                opts.nodes,
                opts.top,
                &crash,
            );
            let text = format!(
                "cluster differential: {} nodes, {} waves, {} kill-and-restart events, \
                 {} batches replayed from WALs\nreport byte-identical: {}  \
                 raw state identical: {}\n\n{}",
                outcome.nodes,
                outcome.waves,
                outcome.crashes.len(),
                outcome.batches_recovered,
                outcome.byte_identical,
                outcome.state_identical,
                outcome.report.render(),
            );
            let ok = outcome.byte_identical && outcome.state_identical;
            emit(opts, &outcome, text);
            if !ok {
                return Err("cluster differential failed: the coordinator fold \
                     diverged from the single-store reference"
                    .to_string());
            }
        }
        "replay" => {
            let root = PathBuf::from(opts.wal.clone().ok_or("replay needs --wal DIR")?);
            // Accept either one node's directory (shard-*.wal inside)
            // or a cluster root (node-*/ subdirectories).
            let mut dirs = vec![root.clone()];
            if let Ok(entries) = std::fs::read_dir(&root) {
                for entry in entries.flatten() {
                    let path = entry.path();
                    if path.is_dir()
                        && path
                            .file_name()
                            .and_then(|n| n.to_str())
                            .is_some_and(|n| n.starts_with("node-"))
                    {
                        dirs.push(path);
                    }
                }
            }
            dirs.sort();
            let mut store = hd_telemetry::AggregationStore::new();
            let mut shards_replayed = 0usize;
            let mut batches_replayed = 0usize;
            for dir in &dirs {
                for shard in 0.. {
                    let wal_file = hd_telemetry::wal::wal_path(dir, shard);
                    let snap_file = hd_telemetry::wal::snapshot_path(dir, shard);
                    if !wal_file.exists() && !snap_file.exists() {
                        break;
                    }
                    if let Some(snap) = hd_telemetry::wal::read_snapshot(&snap_file)
                        .map_err(|e| format!("{}: {e}", snap_file.display()))?
                    {
                        store.absorb(&snap);
                    }
                    if wal_file.exists() {
                        let bytes = std::fs::read(&wal_file)
                            .map_err(|e| format!("{}: {e}", wal_file.display()))?;
                        let replay = hd_telemetry::wal::scan_wal(&bytes)
                            .map_err(|e| format!("{}: {e}", wal_file.display()))?;
                        batches_replayed += replay.batches.len();
                        for rec in &replay.batches {
                            store.ingest_prehashed(&rec.batch, rec.fingerprint);
                        }
                    }
                    shards_replayed += 1;
                }
            }
            if shards_replayed == 0 {
                return Err(format!(
                    "no shard-*.wal or shard-*.snap files under {}",
                    root.display()
                ));
            }
            let report = store.report(opts.top);
            let text = format!(
                "replayed {batches_replayed} batches from {shards_replayed} shard log(s) \
                 under {}\n\n{}",
                root.display(),
                report.render()
            );
            emit(opts, &report, text);
        }
        "upload" => {
            let addr = opts
                .addr
                .to_socket_addrs()
                .ok()
                .and_then(|mut a| a.next())
                .ok_or_else(|| format!("cannot resolve {}", opts.addr))?;
            let spec = study_spec(opts, seed);
            let (_, jobs) = hd_fleet::run_fleet_with_reports(&spec);
            let net = net_config(opts);
            let mut tally = hangdoctor::NetFaultTally::default();
            for job in &jobs {
                let cfg = hd_telemetry::UploaderConfig {
                    net_faults: net,
                    ..Default::default()
                };
                let mut up = hd_telemetry::Uploader::new(addr, job.device as u64, seed, cfg);
                let batch = hd_telemetry::UploadBatch {
                    app: job.app.clone(),
                    device: job.device,
                    seq: 0,
                    items: vec![hd_telemetry::TelemetryItem::Report(job.report.clone())],
                };
                up.upload(&batch)
                    .map_err(|e| format!("device {} upload failed: {e}", job.device))?;
                tally.merge(&up.tally());
            }
            let mut client = hd_telemetry::Uploader::plain(addr);
            let report = client.query(opts.top).map_err(|e| e.to_string())?;
            let mut text = format!(
                "uploaded {} device reports to {addr}\n\n{}",
                jobs.len(),
                report.render()
            );
            if tally.injected() > 0 {
                text.push_str(&format!(
                    "\ntransport faults injected: {} connection drops, {} delayed \
                     deliveries, {} duplicate frames ({} absorbed by idempotent ingest)\n",
                    tally.connections_dropped,
                    tally.deliveries_delayed,
                    tally.frames_duplicated,
                    tally.duplicates_absorbed
                ));
            }
            if opts.shutdown {
                client.shutdown().map_err(|e| e.to_string())?;
                text.push_str("\nserver shutdown requested\n");
            }
            emit(opts, &report, text);
        }
        "control" => {
            let addr = opts
                .addr
                .to_socket_addrs()
                .ok()
                .and_then(|mut a| a.next())
                .ok_or_else(|| format!("cannot resolve {}", opts.addr))?;
            let executions = if opts.quick { 2 } else { 4 };
            let probe = hd_bench::control::run_control_probe(
                addr,
                seed,
                executions,
                opts.chaos,
                opts.device,
            )
            .map_err(|e| format!("control probe against {addr} failed: {e}"))?;
            let mut text = probe.render();
            if opts.shutdown {
                hd_telemetry::ControlClient::connect(addr)
                    .shutdown()
                    .map_err(|e| e.to_string())?;
                text.push_str("server shutdown requested\n");
            }
            emit(opts, &probe, text);
        }
        "push-thresholds" => {
            let addr = opts
                .addr
                .to_socket_addrs()
                .ok()
                .and_then(|mut a| a.next())
                .ok_or_else(|| format!("cannot resolve {}", opts.addr))?;
            let executions = if opts.quick { 2 } else { 3 };
            let push = hd_bench::control::run_push_thresholds(
                addr, seed, executions, opts.heavy, opts.chaos,
            )
            .map_err(|e| format!("threshold push to {addr} failed: {e}"))?;
            let rolled_back = push.statuses.iter().any(|s| s.rolled_back);
            emit(opts, &push, push.render());
            if rolled_back {
                return Err(
                    "threshold rollout rolled back: the canary cohort regressed \
                     against the rest of the fleet"
                        .to_string(),
                );
            }
        }
        "control-diff" => {
            let rate = opts.chaos.unwrap_or(0.0);
            let diff = hd_bench::control::run_control_diff(seed, rate);
            let path = opts
                .json_path
                .clone()
                .unwrap_or_else(|| PathBuf::from("CONTROL_differential.json"));
            let json = serde_json::to_string_pretty(&diff).expect("serializable differential");
            std::fs::write(&path, format!("{json}\n"))
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            println!("wrote {}: {}", path.display(), diff.render());
            if !diff.passed() {
                return Err(format!(
                    "control differential failed: pushed thresholds must reproduce the \
                     locally-configured detection outcome byte-for-byte on a \
                     detection-changing threshold (pushed_identical {}, baseline_differs {})",
                    diff.pushed_identical, diff.baseline_differs
                ));
            }
        }
        "control-bench" => {
            let (clients, batches, reports) = if opts.quick {
                (2, 64, 16)
            } else {
                (2, 256, 32)
            };
            let bench = hd_bench::control::run_control_bench(clients, batches, reports);
            let path = opts
                .json_path
                .clone()
                .unwrap_or_else(|| PathBuf::from("BENCH_control.json"));
            let json = serde_json::to_string_pretty(&bench).expect("serializable control bench");
            std::fs::write(&path, format!("{json}\n"))
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            println!("wrote {}: {}", path.display(), bench.render());
        }
        "telemetry-bench" => {
            let mut bench_spec = hd_telemetry::BenchSpec::default();
            if opts.quick {
                bench_spec.batches_per_client = 16;
            }
            let bench = hd_telemetry::run_telemetry_bench(&bench_spec);
            let path = opts
                .json_path
                .clone()
                .unwrap_or_else(|| PathBuf::from("BENCH_telemetry.json"));
            let json = serde_json::to_string_pretty(&bench).expect("serializable bench");
            std::fs::write(&path, format!("{json}\n"))
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            println!("wrote {}: {}", path.display(), bench.render());
        }
        "bench-summary" => {
            // The v2 sweep: the same workload at 1/2/4/8/16 threads plus
            // the accrual-kernel microbenchmark, so one artifact carries
            // the serial floor, the scaling curve, and the kernel cost.
            let accrue = measure_accrue();
            let mut rows = Vec::new();
            for threads in [1usize, 2, 4, 8, 16] {
                let mut spec = study_spec(opts, seed);
                spec.threads = threads;
                let r = hd_fleet::run_fleet(&spec);
                rows.push(r.bench_row());
            }
            let workload = format!(
                "table5 study corpus, {} devices/app, executions {}, seed {}{}",
                opts.devices,
                if opts.quick { 2 } else { 4 },
                seed,
                if opts.chaos.is_some() { ", chaos" } else { "" },
            );
            let bench = hd_fleet::FleetBench::new(&workload, PR2_BASELINE, accrue, rows);
            let path = opts
                .json_path
                .clone()
                .unwrap_or_else(|| PathBuf::from("BENCH_fleet.json"));
            let json = serde_json::to_string_pretty(&bench).expect("serializable bench summary");
            std::fs::write(&path, format!("{json}\n"))
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            println!(
                "wrote {}: best {:.2} device-hours/s over {} thread counts \
                 ({:.1}x the {:.2} baseline); accrue ui {:.1} ns, memory-heavy {:.1} ns",
                path.display(),
                bench.best_device_hours_per_wall_second,
                bench.rows.len(),
                bench.best_device_hours_per_wall_second / PR2_BASELINE,
                PR2_BASELINE,
                bench.accrue.ui_ns_per_call,
                bench.accrue.memory_heavy_ns_per_call,
            );
        }
        "ablations" => {
            let r = hd_bench::ablation::phase2_only(seed, e_mid);
            emit(opts, &r, r.render());
            let r = hd_bench::ablation::single_counter(seed, e_mid);
            emit(opts, &r, r.render());
            let r = hd_bench::ablation::early_sampling(seed, e_mid.max(8));
            emit(opts, &r, r.render());
            let r = hd_bench::ablation::occurrence_sweep(seed, e_small);
            emit(opts, &r, r.render());
            let r = hd_bench::ablation::period_sweep(seed, e_small);
            emit(opts, &r, r.render());
        }
        other => return Err(format!("unknown experiment '{other}'")),
    }
    Ok(())
}

const ALL: [&str; 16] = [
    "fig1",
    "table1",
    "fig2b",
    "table2",
    "table3",
    "table4",
    "fig4",
    "fig5",
    "table5",
    "fig6",
    "fig7",
    "table6",
    "fig8",
    "ablations",
    "chaos",
    "sast",
];

fn main() -> ExitCode {
    let mut opts = Opts {
        seed: 42,
        quick: false,
        full: false,
        json: false,
        json_path: None,
        devices: 8,
        threads: 1,
        chaos: None,
        telemetry: false,
        addr: "127.0.0.1:7077".to_string(),
        shards: 4,
        queue: 64,
        top: 25,
        shutdown: false,
        nodes: 3,
        wal: None,
        node_id: 0,
        crash: false,
        device: 1,
        heavy: false,
    };
    let mut experiments: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                let Some(v) = args.next().and_then(|s| s.parse().ok()) else {
                    usage()
                };
                opts.seed = v;
            }
            "--devices" => {
                let Some(v) = args.next().and_then(|s| s.parse().ok()).filter(|v| *v > 0) else {
                    usage()
                };
                opts.devices = v;
            }
            "--threads" => {
                let Some(v) = args.next().and_then(|s| s.parse().ok()).filter(|v| *v > 0) else {
                    usage()
                };
                opts.threads = v;
            }
            "--chaos" => {
                let Some(v) = args
                    .next()
                    .and_then(|s| s.parse::<f64>().ok())
                    .filter(|v| (0.0..=1.0).contains(v))
                else {
                    usage()
                };
                opts.chaos = Some(v);
            }
            "--quick" => opts.quick = true,
            "--full" => opts.full = true,
            "--telemetry" => opts.telemetry = true,
            "--shutdown" => opts.shutdown = true,
            "--crash" => opts.crash = true,
            "--heavy" => opts.heavy = true,
            "--device" => {
                let Some(v) = args.next().and_then(|s| s.parse().ok()).filter(|v| *v > 0) else {
                    usage()
                };
                opts.device = v;
            }
            "--nodes" => {
                let Some(v) = args.next().and_then(|s| s.parse().ok()).filter(|v| *v > 0) else {
                    usage()
                };
                opts.nodes = v;
            }
            "--wal" => {
                let Some(v) = args.next() else { usage() };
                opts.wal = Some(v);
            }
            "--node-id" => {
                let Some(v) = args.next().and_then(|s| s.parse().ok()) else {
                    usage()
                };
                opts.node_id = v;
            }
            "--addr" => {
                let Some(v) = args.next() else { usage() };
                opts.addr = v;
            }
            "--shards" => {
                let Some(v) = args.next().and_then(|s| s.parse().ok()).filter(|v| *v > 0) else {
                    usage()
                };
                opts.shards = v;
            }
            "--queue" => {
                let Some(v) = args.next().and_then(|s| s.parse().ok()).filter(|v| *v > 0) else {
                    usage()
                };
                opts.queue = v;
            }
            "--top" => {
                let Some(v) = args.next().and_then(|s| s.parse().ok()).filter(|v| *v > 0) else {
                    usage()
                };
                opts.top = v;
            }
            "--json" => {
                opts.json = true;
                // An optional operand: `--json out.json` writes to the
                // file; a following experiment name or flag means stdout.
                if let Some(next) = args.peek() {
                    if !next.starts_with('-') && !is_experiment(next) {
                        opts.json_path = Some(PathBuf::from(args.next().expect("peeked")));
                    }
                }
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => experiments.push(other.to_string()),
        }
    }
    if experiments.is_empty() {
        usage();
    }
    if experiments.iter().any(|e| e == "all") {
        experiments = ALL.iter().map(|s| s.to_string()).collect();
    }
    for (i, name) in experiments.iter().enumerate() {
        if i > 0 && !opts.json {
            println!("\n{}\n", "=".repeat(72));
        }
        if let Err(e) = run_one(name, &opts) {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    }
    ExitCode::SUCCESS
}
