//! Table 6: which performance event recognizes each previously unknown
//! bug.
//!
//! For every bug in the validation set (the 23 missed offline), execute
//! its action repeatedly, take the S-Checker's three counter differences
//! over each bug-manifesting soft hang, and record which conditions fire
//! in the majority of those hangs. The paper's shape: context-switches
//! catches the most (18/23), task-clock and page-faults 12 each, and
//! every bug is caught by at least one.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use hangdoctor::{validation_set, CounterDiffs, SChecker, SymptomThresholds};
use hd_appmodel::{build_run, CompiledApp, Schedule};
use hd_perfmon::{CostModel, PerfSession};
use hd_simrt::{
    ActionInfo, ActionRecord, HwEvent, MessageInfo, Probe, ProbeCtx, SimConfig, SimTime, MILLIS,
};
use serde::{Deserialize, Serialize};

use crate::common::render_table;

/// Per-bug detection signature.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BugSignature {
    /// App name.
    pub app: String,
    /// Bug id.
    pub bug: String,
    /// Caught by the context-switch condition (majority of hangs).
    pub by_cs: bool,
    /// Caught by the task-clock condition.
    pub by_tc: bool,
    /// Caught by the page-fault condition.
    pub by_pf: bool,
    /// Hang samples observed.
    pub hangs: usize,
}

impl BugSignature {
    /// Caught by at least one condition.
    pub fn recognized(&self) -> bool {
        self.by_cs || self.by_tc || self.by_pf
    }
}

/// The validation result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table6 {
    /// One signature per validation bug.
    pub signatures: Vec<BugSignature>,
}

impl Table6 {
    /// `(cs, tc, pf, recognized, total)` counts.
    pub fn totals(&self) -> (usize, usize, usize, usize, usize) {
        let cs = self.signatures.iter().filter(|s| s.by_cs).count();
        let tc = self.signatures.iter().filter(|s| s.by_tc).count();
        let pf = self.signatures.iter().filter(|s| s.by_pf).count();
        let rec = self.signatures.iter().filter(|s| s.recognized()).count();
        (cs, tc, pf, rec, self.signatures.len())
    }

    /// Renders the per-app roll-up like the paper's table.
    pub fn render(&self) -> String {
        let mut per_app: BTreeMap<&str, (usize, usize, usize, usize)> = BTreeMap::new();
        for s in &self.signatures {
            let e = per_app.entry(&s.app).or_default();
            e.0 += 1;
            if s.by_cs {
                e.1 += 1;
            }
            if s.by_tc {
                e.2 += 1;
            }
            if s.by_pf {
                e.3 += 1;
            }
        }
        let rows: Vec<Vec<String>> = per_app
            .iter()
            .map(|(app, (n, cs, tc, pf))| {
                let cell = |v: usize| {
                    if v == 0 {
                        "-".to_string()
                    } else {
                        v.to_string()
                    }
                };
                vec![
                    app.to_string(),
                    n.to_string(),
                    cell(*cs),
                    cell(*tc),
                    cell(*pf),
                ]
            })
            .collect();
        let (cs, tc, pf, rec, total) = self.totals();
        format!(
            "Table 6 — Validation bugs recognized per counter\n{}\nTotals: {total} new bugs, context-switches {cs}, task-clock {tc}, page-faults {pf}; recognized {rec}/{total}\n",
            render_table(
                &["App Name", "New Bugs", "Ctx-Switches", "Task-Clock", "Page-Faults"],
                &rows
            )
        )
    }
}

struct DiffCollector {
    session: Option<PerfSession>,
    had_hang: bool,
    timeout_ns: u64,
    out: Rc<RefCell<Vec<CounterDiffs>>>,
}

impl Probe for DiffCollector {
    fn on_action_begin(&mut self, ctx: &mut ProbeCtx<'_>, _info: &ActionInfo) {
        let threads = [ctx.main_tid(), ctx.render_tid()];
        self.session = Some(PerfSession::start(
            ctx,
            &threads,
            &SymptomThresholds::EVENTS,
            CostModel::default(),
        ));
        self.had_hang = false;
    }

    fn on_dispatch_end(&mut self, _ctx: &mut ProbeCtx<'_>, _info: &MessageInfo, response_ns: u64) {
        if response_ns > self.timeout_ns {
            self.had_hang = true;
        }
    }

    fn on_action_end(&mut self, ctx: &mut ProbeCtx<'_>, _record: &ActionRecord) {
        let Some(session) = self.session.take() else {
            return;
        };
        if !self.had_hang {
            return;
        }
        let main = ctx.main_tid();
        let render = ctx.render_tid();
        self.out.borrow_mut().push(CounterDiffs {
            context_switches: session.read_diff(ctx, main, render, HwEvent::ContextSwitches),
            task_clock: session.read_diff(ctx, main, render, HwEvent::TaskClock),
            page_faults: session.read_diff(ctx, main, render, HwEvent::PageFaults),
        });
    }
}

/// Runs the validation study.
pub fn run(seed: u64, executions: usize) -> Table6 {
    let checker = SChecker::new(SymptomThresholds::default());
    let mut signatures = Vec::new();
    for (i, spec) in validation_set().iter().enumerate() {
        let compiled = CompiledApp::new(spec.app.clone());
        let mut arrivals = Vec::new();
        let mut t = SimTime::from_ms(400);
        for _ in 0..executions {
            arrivals.push((t, spec.action));
            t += 2_800 * MILLIS;
        }
        let schedule = Schedule { arrivals };
        let mut run = build_run(
            &compiled,
            &schedule,
            SimConfig::default(),
            seed.wrapping_add(31 * i as u64),
        );
        let diffs = Rc::new(RefCell::new(Vec::new()));
        run.sim.add_probe(Box::new(DiffCollector {
            session: None,
            had_hang: false,
            timeout_ns: 100 * MILLIS,
            out: diffs.clone(),
        }));
        run.sim.run();
        let diffs = diffs.borrow();
        let n = diffs.len();
        let majority = |count: usize| n > 0 && 2 * count > n;
        let fired = |f: fn(&hangdoctor::SymptomVerdict) -> bool| {
            diffs.iter().map(|d| checker.check(*d)).filter(f).count()
        };
        signatures.push(BugSignature {
            app: spec.app.name.clone(),
            bug: spec.name.clone(),
            by_cs: majority(fired(|v| v.triggered.contains(&HwEvent::ContextSwitches))),
            by_tc: majority(fired(|v| v.triggered.contains(&HwEvent::TaskClock))),
            by_pf: majority(fired(|v| v.triggered.contains(&HwEvent::PageFaults))),
            hangs: n,
        });
    }
    Table6 { signatures }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_validation_bug_is_recognized() {
        let t = run(42, 8);
        let (cs, tc, pf, rec, total) = t.totals();
        assert_eq!(total, 23);
        assert_eq!(
            rec,
            total,
            "unrecognized: {:#?}",
            t.signatures
                .iter()
                .filter(|s| !s.recognized())
                .collect::<Vec<_>>()
        );
        // Paper shape: context-switches catches the most; task-clock and
        // page-faults each catch a strict subset; no single counter
        // suffices.
        assert!(cs >= tc && cs >= pf, "cs {cs}, tc {tc}, pf {pf}");
        assert!(cs >= 14, "cs {cs}");
        assert!(cs < total, "context-switches alone must miss some bugs");
        assert!((6..=18).contains(&tc), "tc {tc}");
        assert!((6..=18).contains(&pf), "pf {pf}");
    }

    #[test]
    fn omninotes_bugs_are_page_fault_only() {
        let t = run(42, 8);
        let omni: Vec<&BugSignature> = t
            .signatures
            .iter()
            .filter(|s| s.app == "Omni-Notes")
            .collect();
        assert_eq!(omni.len(), 3);
        for s in omni {
            assert!(s.by_pf, "{} not caught by page faults", s.bug);
            assert!(!s.by_cs, "{} unexpectedly cs-positive", s.bug);
        }
    }

    #[test]
    fn qksms_bugs_are_cs_and_tc() {
        let t = run(42, 8);
        let q: Vec<&BugSignature> = t.signatures.iter().filter(|s| s.app == "QKSMS").collect();
        assert_eq!(q.len(), 3);
        for s in q {
            assert!(
                s.by_cs && s.by_tc,
                "{}: cs={} tc={}",
                s.bug,
                s.by_cs,
                s.by_tc
            );
            assert!(!s.by_pf, "{} unexpectedly pf-positive", s.bug);
        }
    }
}
