//! Cross-device generality of the S-Checker filter (Section 3.3.1).
//!
//! The paper claims the selected events and thresholds "are generally
//! good also for other platforms" because the decisive counters come
//! from kernel scheduling decisions, and verifies this on an LG V10, a
//! Nexus 5, and a Galaxy S3. We replay the validation bugs and the
//! tricky UI actions on all three device profiles with the *unchanged*
//! filter and report recall and UI-pruning per device.

use std::cell::RefCell;
use std::rc::Rc;

use hangdoctor::{validation_set, CounterDiffs, SChecker, SymptomThresholds};
use hd_appmodel::corpus::table5;
use hd_appmodel::{build_run, App, CompiledApp, Schedule};
use hd_perfmon::{CostModel, PerfSession};
use hd_simrt::device::DeviceProfile;
use hd_simrt::{
    ActionInfo, ActionRecord, ActionUid, HwEvent, MessageInfo, Probe, ProbeCtx, SimTime, MILLIS,
};
use serde::{Deserialize, Serialize};

use crate::common::render_table;

/// Filter quality on one device.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DeviceRow {
    /// Device name.
    pub device: String,
    /// Validation bugs recognized by the unchanged filter.
    pub bugs_recognized: usize,
    /// Validation bugs total.
    pub bugs_total: usize,
    /// Render-dominant UI hangs (which the filter must pass through as
    /// clean) incorrectly marked suspicious.
    pub ui_false_positives: usize,
    /// UI hang executions examined.
    pub ui_total: usize,
}

/// The generality study.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Generality {
    /// One row per device.
    pub rows: Vec<DeviceRow>,
}

impl Generality {
    /// Renders the per-device table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.device.clone(),
                    format!("{}/{}", r.bugs_recognized, r.bugs_total),
                    format!("{}/{}", r.ui_false_positives, r.ui_total),
                ]
            })
            .collect();
        format!(
            "Cross-device generality — unchanged thresholds on all devices\n{}",
            render_table(&["device", "bugs recognized", "UI flagged (FP)"], &rows)
        )
    }
}

struct DiffProbe {
    session: Option<PerfSession>,
    had_hang: bool,
    out: Rc<RefCell<Vec<CounterDiffs>>>,
}

impl Probe for DiffProbe {
    fn on_action_begin(&mut self, ctx: &mut ProbeCtx<'_>, _info: &ActionInfo) {
        let threads = [ctx.main_tid(), ctx.render_tid()];
        self.session = Some(PerfSession::start(
            ctx,
            &threads,
            &SymptomThresholds::EVENTS,
            CostModel::default(),
        ));
        self.had_hang = false;
    }

    fn on_dispatch_end(&mut self, _ctx: &mut ProbeCtx<'_>, _info: &MessageInfo, response_ns: u64) {
        if response_ns > 100 * MILLIS {
            self.had_hang = true;
        }
    }

    fn on_action_end(&mut self, ctx: &mut ProbeCtx<'_>, _record: &ActionRecord) {
        let Some(session) = self.session.take() else {
            return;
        };
        if !self.had_hang {
            return;
        }
        let main = ctx.main_tid();
        let render = ctx.render_tid();
        self.out.borrow_mut().push(CounterDiffs {
            context_switches: session.read_diff(ctx, main, render, HwEvent::ContextSwitches),
            task_clock: session.read_diff(ctx, main, render, HwEvent::TaskClock),
            page_faults: session.read_diff(ctx, main, render, HwEvent::PageFaults),
        });
    }
}

/// Collects the per-hang counter diffs of one action on one device.
fn hang_diffs(
    app: &App,
    action: ActionUid,
    device: &DeviceProfile,
    executions: usize,
    seed: u64,
) -> Vec<CounterDiffs> {
    let compiled = CompiledApp::new(app.clone());
    let mut arrivals = Vec::new();
    let mut t = SimTime::from_ms(300);
    for _ in 0..executions {
        arrivals.push((t, action));
        t += 2_600 * MILLIS;
    }
    let schedule = Schedule { arrivals };
    let mut run = build_run(&compiled, &schedule, device.sim_config(seed), seed);
    let out = Rc::new(RefCell::new(Vec::new()));
    run.sim.add_probe(Box::new(DiffProbe {
        session: None,
        had_hang: false,
        out: out.clone(),
    }));
    run.sim.run();
    let diffs = out.borrow().clone();
    diffs
}

/// The render-dominant UI actions used as the must-stay-clean set.
fn ui_probes() -> Vec<(App, ActionUid)> {
    let pick = |app: App, name: &str| {
        let uid = app
            .actions
            .iter()
            .find(|a| a.name == name)
            .unwrap_or_else(|| panic!("no action {name}"))
            .uid;
        (app, uid)
    };
    vec![
        pick(table5::k9mail(), "open folders"),
        pick(table5::andstatus(), "open timeline"),
        pick(table5::omninotes(), "open editor"),
        pick(table5::qksms(), "open conversation list"),
    ]
}

/// Runs the generality study across all three devices.
pub fn run(seed: u64, executions: usize) -> Generality {
    let checker = SChecker::new(SymptomThresholds::default());
    let mut rows = Vec::new();
    for device in DeviceProfile::all() {
        // Bugs: majority of manifested hangs must trip at least one
        // condition (the Table 6 criterion, per device).
        let validation = validation_set();
        let mut recognized = 0;
        for (i, spec) in validation.iter().enumerate() {
            let diffs = hang_diffs(
                &spec.app,
                spec.action,
                &device,
                executions,
                seed.wrapping_add(17 * i as u64),
            );
            let hits = diffs
                .iter()
                .filter(|d| checker.check(**d).suspicious)
                .count();
            if !diffs.is_empty() && 2 * hits > diffs.len() {
                recognized += 1;
            }
        }
        // UI: render-dominant hangs stay clean.
        let mut ui_fp = 0;
        let mut ui_total = 0;
        for (j, (app, uid)) in ui_probes().into_iter().enumerate() {
            let diffs = hang_diffs(
                &app,
                uid,
                &device,
                executions,
                seed.wrapping_add(91 * j as u64),
            );
            ui_total += diffs.len();
            ui_fp += diffs
                .iter()
                .filter(|d| checker.check(**d).suspicious)
                .count();
        }
        rows.push(DeviceRow {
            device: device.name.to_string(),
            bugs_recognized: recognized,
            bugs_total: validation.len(),
            ui_false_positives: ui_fp,
            ui_total,
        });
    }
    Generality { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unchanged_filter_transfers_across_devices() {
        let g = run(42, 6);
        assert_eq!(g.rows.len(), 3);
        for row in &g.rows {
            // The paper's claim: the selected events/thresholds hold on
            // other platforms. Require ≥ 21/23 bugs per device and UI
            // false positives below a quarter of the UI hangs.
            assert!(
                row.bugs_recognized >= row.bugs_total - 2,
                "{}: {}/{}",
                row.device,
                row.bugs_recognized,
                row.bugs_total
            );
            assert!(row.ui_total > 0);
            assert!(
                (row.ui_false_positives as f64) < 0.25 * row.ui_total as f64,
                "{}: UI FPs {}/{}",
                row.device,
                row.ui_false_positives,
                row.ui_total
            );
        }
    }
}
