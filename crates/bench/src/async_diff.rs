//! The async (wait-edge) differential: causal vs naive blame vs static.
//!
//! Runs the ground-truthed async hang corpus through three arms — a
//! Hang Doctor fleet with the causal blame walk on, the same fleet with
//! it off (`causal_blame = false`, the naive join-site diagnosis), and
//! the full-profile static scanner — and scores detection and blame
//! placement separately against ground truth. The expected shape, and
//! what the `repro async-diff` artifact certifies:
//!
//! * both fleets *detect* every hang (the join block trips the
//!   context-switch symptom either way);
//! * only the causal fleet *blames* the worker-side culprit — the
//!   baseline lands on `FutureTask.get` at the join site;
//! * the static arm reports nothing: a submitted body is not part of
//!   any main-thread call chain ([`hd_sast::BugClass::AsyncHang`]).

use hangdoctor::{BlockingApiDb, FaultConfig, HangDoctorConfig};
use hd_appmodel::corpus::async_hang_apps;
use hd_appmodel::App;
use hd_fleet::{run_fleet, AppFleetSummary, DeviceProfile, FleetSpec};
use hd_metrics::{ArmPrecision, AsyncAppDifferential, AsyncBugOutcome, AsyncDifferential};
use hd_sast::{analyze_with_db, classify_bug, RuleProfile, SastConfig};

use crate::common::render_table;

/// How one fleet arm saw one app: report rows keyed for blame checks.
struct ArmView {
    entries: Vec<(String, String)>,
    precision: ArmPrecision,
}

/// Collapses an app's fleet summary into `(action, symbol)` rows plus
/// blame-level precision: a row is a true flag only when it names a
/// ground-truth culprit at its own action — a join-site diagnosis of a
/// real hang still counts as a false flag.
fn arm_view(summary: &AppFleetSummary, app: &App) -> ArmView {
    let entries: Vec<(String, String)> = summary
        .report
        .entries()
        .iter()
        .map(|e| (e.action.clone(), e.symbol.clone()))
        .collect();
    let true_flags = entries
        .iter()
        .filter(|(action, symbol)| {
            app.bugs.iter().any(|b| {
                &app.api(b.api).symbol == symbol
                    && app.action(b.action).is_some_and(|a| &a.name == action)
            })
        })
        .count();
    ArmView {
        precision: ArmPrecision {
            flagged: entries.len(),
            true_flags,
        },
        entries,
    }
}

impl ArmView {
    fn names(&self, action: &str, symbol: &str) -> bool {
        self.entries.iter().any(|(a, s)| a == action && s == symbol)
    }

    fn detected(&self, action: &str) -> bool {
        self.entries.iter().any(|(a, _)| a == action)
    }
}

/// The fleet spec both runtime arms share (they differ only in
/// `config.causal_blame`).
fn spec(seed: u64, executions: usize, db_year: u16, config: HangDoctorConfig) -> FleetSpec {
    FleetSpec {
        apps: async_hang_apps(),
        profiles: DeviceProfile::default_set(),
        devices_per_app: 3,
        executions_per_action: executions,
        root_seed: seed,
        threads: 2,
        config,
        apidb_year: db_year,
        faults: FaultConfig::none(),
    }
}

/// Runs the three-arm async differential over the async hang corpus.
pub fn run_async_differential(seed: u64, executions: usize, db_year: u16) -> AsyncDifferential {
    let corpus = async_hang_apps();
    let db = BlockingApiDb::documented(db_year);
    let sast_config = SastConfig {
        profile: RuleProfile::Full,
        db_year,
    };
    let causal_fleet = run_fleet(&spec(
        seed,
        executions,
        db_year,
        HangDoctorConfig::default(),
    ));
    let naive_config = HangDoctorConfig::builder()
        .causal_blame(false)
        .build()
        .expect("default config with the walk off is valid");
    let baseline_fleet = run_fleet(&spec(seed, executions, db_year, naive_config));
    let mut apps = Vec::new();
    for ((app, causal_summary), baseline_summary) in corpus
        .iter()
        .zip(&causal_fleet.merged.apps)
        .zip(&baseline_fleet.merged.apps)
    {
        debug_assert_eq!(app.name, causal_summary.app);
        debug_assert_eq!(app.name, baseline_summary.app);
        let causal = arm_view(causal_summary, app);
        let baseline = arm_view(baseline_summary, app);
        let report = analyze_with_db(app, &db, &sast_config);
        let statically_found = report.bug_ids();
        let control_entries = if app.bugs.is_empty() {
            causal.entries.len() + baseline.entries.len()
        } else {
            0
        };
        let outcomes = app
            .bugs
            .iter()
            .map(|bug| {
                let action = app.action(bug.action).expect("bug action exists");
                let culprit = app.api(bug.api).symbol.clone();
                // The join API of the bug's action — where the naive
                // diagnosis lands.
                let join_site = action
                    .calls()
                    .find_map(|c| c.async_op.as_ref().and_then(|o| o.join_api()))
                    .map(|api| app.api(api).symbol.clone())
                    .unwrap_or_default();
                AsyncBugOutcome {
                    id: bug.id.clone(),
                    class: classify_bug(app, bug, db_year).as_str().to_string(),
                    causal_detected: causal.detected(&action.name),
                    causal_blamed_culprit: causal.names(&action.name, &culprit),
                    baseline_detected: baseline.detected(&action.name),
                    baseline_blamed_culprit: baseline.names(&action.name, &culprit),
                    baseline_blamed_join_site: baseline.names(&action.name, &join_site),
                    static_found: statically_found.contains(&bug.id),
                    culprit,
                    join_site,
                }
            })
            .collect();
        apps.push(AsyncAppDifferential {
            app: app.name.clone(),
            outcomes,
            causal_precision: causal.precision,
            baseline_precision: baseline.precision,
            static_precision: ArmPrecision {
                flagged: report.findings.len(),
                true_flags: report
                    .findings
                    .iter()
                    .filter(|f| f.bug_id.is_some())
                    .count(),
            },
            control_entries,
        });
    }
    AsyncDifferential::build(db_year, apps)
}

/// Renders the per-bug async differential table.
pub fn render_async_differential(d: &AsyncDifferential) -> String {
    let verdict = |detected: bool, blamed: bool, join: bool| {
        if blamed {
            "culprit".to_string()
        } else if join {
            "join-site".to_string()
        } else if detected {
            "other".to_string()
        } else {
            "missed".to_string()
        }
    };
    let rows: Vec<Vec<String>> = d
        .apps
        .iter()
        .flat_map(|app| {
            app.outcomes.iter().map(|o| {
                vec![
                    app.app.clone(),
                    o.id.clone(),
                    o.class.clone(),
                    if o.static_found { "found" } else { "-" }.to_string(),
                    verdict(
                        o.baseline_detected,
                        o.baseline_blamed_culprit,
                        o.baseline_blamed_join_site,
                    ),
                    verdict(o.causal_detected, o.causal_blamed_culprit, false),
                    o.culprit.clone(),
                ]
            })
        })
        .collect();
    let total = d.total_bugs;
    format!(
        "Async differential — db {}, {} bugs over {} apps\n{}\n\
         detection: causal {:.2}, baseline {:.2}; blame: causal {:.2}, baseline {:.2} (Δ {:+.2})\n\
         blame precision: causal {:.3} ({}/{} rows), baseline {:.3} ({}/{} rows), Δ {:+.3}; static recall {:.2}\n\
         baseline join-site mis-blames: {}; control-app report rows: {}\n",
        d.db_year,
        total,
        d.apps.len(),
        render_table(
            &["app", "bug", "class", "static", "baseline", "causal", "culprit"],
            &rows
        ),
        d.causal.detection_recall(total),
        d.baseline.detection_recall(total),
        d.causal.blame_recall(total),
        d.baseline.blame_recall(total),
        d.blame_delta(),
        d.causal_precision.precision(),
        d.causal_precision.true_flags,
        d.causal_precision.flagged,
        d.baseline_precision.precision(),
        d.baseline_precision.true_flags,
        d.baseline_precision.flagged,
        d.precision_delta(),
        d.static_recall(),
        d.baseline.blamed_join_site,
        d.control_entries,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hd_metrics::ASYNC_DIFFERENTIAL_SCHEMA;

    #[test]
    fn async_differential_separates_detection_from_blame() {
        let d = run_async_differential(42, 4, 2017);
        assert_eq!(d.schema, ASYNC_DIFFERENTIAL_SCHEMA);
        assert_eq!(d.total_bugs, 3, "three ground-truthed async hangs");
        // Both fleets detect every hang; only the causal walk places the
        // blame on the worker-side culprit.
        assert_eq!(d.causal.detected, d.total_bugs, "{:?}", d.causal);
        assert_eq!(d.causal.blamed_culprit, d.total_bugs, "{:?}", d.causal);
        assert_eq!(d.baseline.detected, d.total_bugs, "{:?}", d.baseline);
        assert_eq!(d.baseline.blamed_culprit, 0, "{:?}", d.baseline);
        assert_eq!(
            d.baseline.blamed_join_site, d.total_bugs,
            "{:?}",
            d.baseline
        );
        // The static arm never sees a wait-edge hang.
        assert_eq!(d.static_found, 0);
        assert!(
            d.apps
                .iter()
                .all(|a| a.static_precision.flagged == 0
                    || a.outcomes.iter().all(|o| !o.static_found))
        );
        // Every scored bug carries the structural class.
        for app in &d.apps {
            for o in &app.outcomes {
                assert_eq!(o.class, "async-hang", "{}", o.id);
                assert_eq!(o.join_site, "java.util.concurrent.FutureTask.get");
            }
        }
        // Blame-level precision collapses without the walk.
        assert!((d.causal_precision.precision() - 1.0).abs() < 1e-9);
        assert!(d.baseline_precision.precision() < 1e-9);
        assert!((d.blame_delta() - 1.0).abs() < 1e-9);
        // The negative control stays silent in both fleets.
        assert_eq!(d.control_entries, 0);
        let text = render_async_differential(&d);
        assert!(text.contains("join-site"));
        assert!(text.contains("async-hang"));
    }
}
