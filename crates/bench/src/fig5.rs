//! Figure 5: context-switch traces over one action execution.
//!
//! Time series of the main and render threads' cumulative context
//! switches during (a) a soft-hang-bug action and (b) a UI-API action.
//! The UI action *looks* like a bug at the beginning — the handler runs
//! developer code before any render work is posted — which is why the
//! S-Checker must accumulate until the end of the action rather than
//! sample only its start (Section 3.3.1, Discussion).

use std::cell::RefCell;
use std::rc::Rc;

use hd_appmodel::corpus::table5;
use hd_appmodel::{build_run, CompiledApp, Schedule};
use hd_simrt::{ActionInfo, ActionRecord, HwEvent, Probe, ProbeCtx, SimConfig, SimTime, MILLIS};
use serde::{Deserialize, Serialize};

/// One sampled point.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CsPoint {
    /// Time since action begin, ms.
    pub t_ms: f64,
    /// Main thread cumulative context switches in the window.
    pub main: f64,
    /// Render thread cumulative context switches.
    pub render: f64,
}

/// One action's series.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CsTrace {
    /// Action label.
    pub label: String,
    /// Samples every `period_ms`.
    pub points: Vec<CsPoint>,
}

impl CsTrace {
    /// The main−render difference at the end of the series.
    pub fn final_diff(&self) -> f64 {
        self.points.last().map(|p| p.main - p.render).unwrap_or(0.0)
    }

    /// The earliest window (first ~30% of points) difference — the
    /// misleading beginning of the action.
    pub fn early_diff(&self) -> f64 {
        let k = (self.points.len() / 3).max(1);
        self.points
            .get(k - 1)
            .map(|p| p.main - p.render)
            .unwrap_or(0.0)
    }
}

/// The figure's two traces.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig5 {
    /// (a) the soft hang bug.
    pub bug: CsTrace,
    /// (b) the UI-API action.
    pub ui: CsTrace,
}

impl Fig5 {
    /// Renders both series.
    pub fn render(&self) -> String {
        let mut out = String::from("Figure 5 — context-switch traces (main vs render)\n");
        for trace in [&self.bug, &self.ui] {
            out.push_str(&format!(
                "\n[{}]\n  t(ms)   main  render  diff\n",
                trace.label
            ));
            for p in &trace.points {
                out.push_str(&format!(
                    "  {:>6.0} {:>6.0} {:>7.0} {:>5.0}\n",
                    p.t_ms,
                    p.main,
                    p.render,
                    p.main - p.render
                ));
            }
        }
        out
    }
}

struct CsSampler {
    period_ns: u64,
    token: u64,
    active: bool,
    began: SimTime,
    base_main: f64,
    base_render: f64,
    points: Rc<RefCell<Vec<CsPoint>>>,
}

impl CsSampler {
    fn push_point(&mut self, ctx: &mut ProbeCtx<'_>) {
        let main = ctx.counter(ctx.main_tid(), HwEvent::ContextSwitches) - self.base_main;
        let render = ctx.counter(ctx.render_tid(), HwEvent::ContextSwitches) - self.base_render;
        let t_ms = (ctx.now() - self.began) as f64 / MILLIS as f64;
        self.points
            .borrow_mut()
            .push(CsPoint { t_ms, main, render });
    }
}

impl Probe for CsSampler {
    fn on_action_begin(&mut self, ctx: &mut ProbeCtx<'_>, _info: &ActionInfo) {
        self.active = true;
        self.began = ctx.now();
        self.base_main = ctx.counter(ctx.main_tid(), HwEvent::ContextSwitches);
        self.base_render = ctx.counter(ctx.render_tid(), HwEvent::ContextSwitches);
        self.token += 1;
        ctx.set_timer(ctx.now() + self.period_ns, self.token);
    }

    fn on_timer(&mut self, ctx: &mut ProbeCtx<'_>, token: u64) {
        if !self.active || token != self.token {
            return;
        }
        self.push_point(ctx);
        self.token += 1;
        ctx.set_timer(ctx.now() + self.period_ns, self.token);
    }

    fn on_action_end(&mut self, ctx: &mut ProbeCtx<'_>, _record: &ActionRecord) {
        self.push_point(ctx);
        self.active = false;
    }
}

fn trace_action(app: hd_appmodel::App, action_name: &str, label: &str, seed: u64) -> CsTrace {
    let compiled = CompiledApp::new(app);
    let uid = compiled
        .app()
        .actions
        .iter()
        .find(|a| a.name == action_name)
        .unwrap_or_else(|| panic!("no action '{action_name}'"))
        .uid;
    let schedule = Schedule {
        arrivals: vec![(SimTime::from_ms(50), uid)],
    };
    let mut run = build_run(&compiled, &schedule, SimConfig::default(), seed);
    let points = Rc::new(RefCell::new(Vec::new()));
    run.sim.add_probe(Box::new(CsSampler {
        period_ns: 50 * MILLIS,
        token: 500,
        active: false,
        began: SimTime::ZERO,
        base_main: 0.0,
        base_render: 0.0,
        points: points.clone(),
    }));
    run.sim.run();
    let points = points.borrow().clone();
    CsTrace {
        label: label.to_string(),
        points,
    }
}

/// Runs the Figure 5 experiment: K9's clean bug vs a map UI action.
pub fn run(seed: u64) -> Fig5 {
    Fig5 {
        bug: trace_action(
            table5::k9mail(),
            "open email",
            "soft hang bug (HtmlCleaner.clean)",
            seed,
        ),
        ui: trace_action(
            table5::cyclestreets(),
            "pan map",
            "UI-API (MapView.dispatchDraw)",
            seed,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bug_trace_shows_positive_diff_throughout() {
        let f = run(42);
        assert!(f.bug.points.len() >= 5, "{} points", f.bug.points.len());
        assert!(f.bug.final_diff() > 0.0, "final {:.0}", f.bug.final_diff());
        assert!(f.bug.early_diff() >= 0.0);
    }

    #[test]
    fn ui_trace_begins_like_a_bug() {
        // Figure 5(b): the UI action's early window shows bug symptoms
        // (the main thread runs before posting render work).
        let f = run(42);
        assert!(
            f.ui.early_diff() >= 0.0,
            "early diff {:.0} should look buggy",
            f.ui.early_diff()
        );
    }

    #[test]
    fn series_are_monotone_in_time() {
        let f = run(7);
        for trace in [&f.bug, &f.ui] {
            for w in trace.points.windows(2) {
                assert!(w[0].t_ms <= w[1].t_ms);
                assert!(w[0].main <= w[1].main);
                assert!(w[0].render <= w[1].render);
            }
        }
    }
}
