//! Ablation studies of Hang Doctor's design choices.
//!
//! Each ablation isolates one design decision the paper argues for:
//!
//! * **phase-2-only** — skip the S-Checker and trace every hang of every
//!   action from its first occurrence. The paper argues this "would be
//!   similar to the Timeout baseline" (Section 4.1); our measurement
//!   refines that: it matches TI's recall exactly, but because the
//!   Diagnoser's verdicts still move actions to Normal it pays fewer
//!   repeated UI traces than TI — at a cost still above the full
//!   two-phase pipeline.
//! * **single-counter filters** — run the S-Checker with only one of the
//!   three conditions: the paper reports that context-switches alone
//!   would miss 5 of the 23 validation bugs (Section 4.4).
//! * **begin-of-action sampling** — read the counters after a fixed
//!   prefix of the action instead of at its end: the paper's Figure 5
//!   argument for accumulating to the end.
//! * **occurrence-threshold sweep** — how the Trace Analyzer's root-cause
//!   quality depends on the occurrence-factor threshold.
//! * **sampling-period sweep** — Diagnoser trace quality and cost versus
//!   the stack-sampling period.

use std::cell::RefCell;
use std::rc::Rc;

use hangdoctor::{ActionState, HangDoctor, HangDoctorConfig, SChecker, SymptomThresholds};
use hd_appmodel::corpus::table5;
use hd_appmodel::{build_run, generate_schedule, CompiledApp, Schedule, TraceParams};
use hd_metrics::score;
use hd_perfmon::{CostModel, PerfSession};
use hd_simrt::{
    ActionInfo, ActionRecord, HwEvent, Probe, ProbeCtx, SimConfig, SimRng, SimTime, MILLIS,
};
use serde::{Deserialize, Serialize};

use crate::common::{render_table, run_detector_compiled, DetectorKind};
use crate::table6;

// ---- phase-2-only --------------------------------------------------------

/// Comparison of full Hang Doctor, phase-2-only, and TI on one app.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Phase2OnlyResult {
    /// App used.
    pub app: String,
    /// `(tp, fp, overhead%)` for full Hang Doctor.
    pub full: (usize, usize, f64),
    /// Same for the phase-2-only variant.
    pub phase2_only: (usize, usize, f64),
    /// Same for TI(100 ms).
    pub ti: (usize, usize, f64),
}

impl Phase2OnlyResult {
    /// Renders the comparison.
    pub fn render(&self) -> String {
        let rows = vec![
            ("Hang Doctor", self.full),
            ("phase-2 only", self.phase2_only),
            ("TI(100ms)", self.ti),
        ]
        .into_iter()
        .map(|(n, (tp, fp, oh))| {
            vec![
                n.to_string(),
                tp.to_string(),
                fp.to_string(),
                format!("{oh:.2}%"),
            ]
        })
        .collect::<Vec<_>>();
        format!(
            "Ablation: phase-2-only vs full ({})\n{}",
            self.app,
            render_table(&["variant", "tp", "fp", "overhead"], &rows)
        )
    }
}

/// Runs the phase-2-only ablation.
pub fn phase2_only(seed: u64, executions_per_action: usize) -> Phase2OnlyResult {
    let app = table5::cyclestreets();
    let compiled = CompiledApp::new(app.clone());
    let mut rng = SimRng::seed_from_u64(seed ^ 0xab1);
    let schedule = generate_schedule(
        &app,
        TraceParams {
            actions: executions_per_action * app.actions.len(),
            think_min_ms: 1_500,
            think_max_ms: 3_000,
        },
        &mut rng,
    );
    let stat = |flagged: &std::collections::HashSet<hd_simrt::ExecId>,
                records: &[hd_simrt::ActionRecord],
                truths: &[hd_appmodel::ExecTruth],
                oh: f64| {
        let c = score(records, truths, flagged);
        (c.tp, c.fp, oh)
    };

    let full = run_detector_compiled(&compiled, &schedule, seed, DetectorKind::HangDoctor, None);
    let ti = run_detector_compiled(
        &compiled,
        &schedule,
        seed,
        DetectorKind::Ti(100 * MILLIS),
        None,
    );

    // Phase-2-only: preset every action to Suspicious so the Diagnoser
    // traces every hang from the first occurrence.
    let mut run = build_run(&compiled, &schedule, SimConfig::default(), seed);
    let (mut probe, out) = HangDoctor::new(
        HangDoctorConfig::default(),
        &app.name,
        &app.package,
        1,
        None,
    );
    for action in &app.actions {
        probe.preset_state(action.uid, ActionState::Suspicious);
    }
    run.sim.add_probe(Box::new(probe));
    run.sim.run();
    let hd_out = out.borrow();
    let flagged: std::collections::HashSet<_> =
        hd_out.detections.iter().map(|d| d.exec_id).collect();
    let p2 = stat(
        &flagged,
        run.sim.records(),
        &run.truths,
        hd_metrics::OverheadReport::from_sim(&run.sim).avg_pct(),
    );

    Phase2OnlyResult {
        app: app.name.clone(),
        full: stat(
            &full.flagged,
            &full.records,
            &full.truths,
            full.overhead.avg_pct(),
        ),
        phase2_only: p2,
        ti: stat(&ti.flagged, &ti.records, &ti.truths, ti.overhead.avg_pct()),
    }
}

// ---- single-counter filters ----------------------------------------------

/// Validation-bug coverage of restricted filters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SingleCounterResult {
    /// Bugs missed when only context-switches is used.
    pub missed_cs_only: Vec<String>,
    /// Bugs missed when only task-clock is used.
    pub missed_tc_only: Vec<String>,
    /// Bugs missed when only page-faults is used.
    pub missed_pf_only: Vec<String>,
    /// Bugs missed by the full three-condition filter.
    pub missed_full: Vec<String>,
}

impl SingleCounterResult {
    /// Renders the coverage table.
    pub fn render(&self) -> String {
        let row = |name: &str, missed: &[String]| {
            vec![
                name.to_string(),
                missed.len().to_string(),
                missed.join(", "),
            ]
        };
        format!(
            "Ablation: single-counter S-Checker (23 validation bugs)\n{}",
            render_table(
                &["filter", "missed", "which"],
                &[
                    row("cs only", &self.missed_cs_only),
                    row("tc only", &self.missed_tc_only),
                    row("pf only", &self.missed_pf_only),
                    row("cs|tc|pf", &self.missed_full),
                ]
            )
        )
    }
}

/// Runs the single-counter ablation over the Table 6 signatures.
pub fn single_counter(seed: u64, executions: usize) -> SingleCounterResult {
    let t6 = table6::run(seed, executions);
    let missed = |f: &dyn Fn(&table6::BugSignature) -> bool| {
        t6.signatures
            .iter()
            .filter(|s| !f(s))
            .map(|s| s.bug.clone())
            .collect()
    };
    SingleCounterResult {
        missed_cs_only: missed(&|s| s.by_cs),
        missed_tc_only: missed(&|s| s.by_tc),
        missed_pf_only: missed(&|s| s.by_pf),
        missed_full: missed(&|s| s.recognized()),
    }
}

// ---- begin-of-action sampling --------------------------------------------

/// A probe that applies the S-Checker filter to counters accumulated
/// over only the first `prefix_ns` of the action (the strategy the paper
/// rejects in Section 3.3.1's Discussion).
struct EarlyChecker {
    prefix_ns: u64,
    checker: SChecker,
    session: Option<PerfSession>,
    token: u64,
    expected: u64,
    verdict_taken: bool,
    suspicious_flags: Rc<RefCell<Vec<(hd_simrt::ActionUid, bool)>>>,
}

impl Probe for EarlyChecker {
    fn on_action_begin(&mut self, ctx: &mut ProbeCtx<'_>, info: &ActionInfo) {
        let threads = [ctx.main_tid(), ctx.render_tid()];
        self.session = Some(PerfSession::start(
            ctx,
            &threads,
            &SymptomThresholds::EVENTS,
            CostModel::default(),
        ));
        self.verdict_taken = false;
        self.token += 1;
        self.expected = self.token;
        ctx.set_timer(ctx.now() + self.prefix_ns, self.token);
        self.suspicious_flags.borrow_mut().push((info.uid, false));
    }

    fn on_timer(&mut self, ctx: &mut ProbeCtx<'_>, token: u64) {
        if token != self.expected || self.verdict_taken {
            return;
        }
        let Some(session) = &self.session else {
            return;
        };
        self.verdict_taken = true;
        let main = ctx.main_tid();
        let render = ctx.render_tid();
        let diffs = hangdoctor::CounterDiffs {
            context_switches: session.read_diff(ctx, main, render, HwEvent::ContextSwitches),
            task_clock: session.read_diff(ctx, main, render, HwEvent::TaskClock),
            page_faults: session.read_diff(ctx, main, render, HwEvent::PageFaults),
        };
        let verdict = self.checker.check(diffs);
        if let Some(last) = self.suspicious_flags.borrow_mut().last_mut() {
            last.1 = verdict.suspicious;
        }
    }

    fn on_action_end(&mut self, _ctx: &mut ProbeCtx<'_>, _record: &ActionRecord) {
        self.session = None;
    }
}

/// False-positive comparison: early-prefix vs end-of-action filtering.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EarlySamplingResult {
    /// UI-action executions flagged suspicious by the early checker.
    pub early_fp: usize,
    /// UI-action executions flagged suspicious by the end-of-action
    /// checker (full Hang Doctor semantics).
    pub end_fp: usize,
    /// UI executions examined.
    pub ui_execs: usize,
}

impl EarlySamplingResult {
    /// Renders the comparison.
    pub fn render(&self) -> String {
        format!(
            "Ablation: begin-of-action sampling\n  UI executions: {}\n  flagged by 150 ms-prefix filter: {}\n  flagged by end-of-action filter: {}\n",
            self.ui_execs, self.early_fp, self.end_fp
        )
    }
}

/// Runs the early-sampling ablation over K9's render-dominant UI action.
pub fn early_sampling(seed: u64, executions: usize) -> EarlySamplingResult {
    let app = table5::k9mail();
    let compiled = CompiledApp::new(app.clone());
    let folders = app
        .actions
        .iter()
        .find(|a| a.name == "open folders")
        .expect("k9 folders")
        .uid;
    let schedule = Schedule {
        arrivals: (0..executions as u64)
            .map(|i| (SimTime::from_ms(200 + i * 3_000), folders))
            .collect(),
    };

    // Early-prefix variant.
    let mut run = build_run(&compiled, &schedule, SimConfig::default(), seed);
    let flags = Rc::new(RefCell::new(Vec::new()));
    run.sim.add_probe(Box::new(EarlyChecker {
        prefix_ns: 150 * MILLIS,
        checker: SChecker::new(SymptomThresholds::default()),
        session: None,
        token: 40_000,
        expected: 0,
        verdict_taken: false,
        suspicious_flags: flags.clone(),
    }));
    run.sim.run();
    let early_fp = flags.borrow().iter().filter(|(_, s)| *s).count();
    let ui_execs = flags.borrow().len();

    // End-of-action variant: full Hang Doctor; suspicious marks on this
    // pure-UI trace are its false positives.
    let mut run = build_run(&compiled, &schedule, SimConfig::default(), seed);
    let (probe, out) = HangDoctor::new(
        HangDoctorConfig::default(),
        &app.name,
        &app.package,
        1,
        None,
    );
    run.sim.add_probe(Box::new(probe));
    run.sim.run();
    let end_fp = out.borrow().suspicious_marks as usize;

    EarlySamplingResult {
        early_fp,
        end_fp,
        ui_execs,
    }
}

// ---- occurrence-threshold sweep -------------------------------------------

/// Diagnosis outcomes per occurrence-factor threshold.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ThresholdSweepRow {
    /// Threshold value.
    pub threshold: f64,
    /// Diagnoses naming the correct ground-truth root cause.
    pub correct: usize,
    /// Diagnoses naming something else.
    pub incorrect: usize,
}

/// The occurrence-threshold sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OccurrenceSweep {
    /// One row per threshold.
    pub rows: Vec<ThresholdSweepRow>,
}

impl OccurrenceSweep {
    /// Renders the sweep.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    format!("{:.1}", r.threshold),
                    r.correct.to_string(),
                    r.incorrect.to_string(),
                ]
            })
            .collect();
        format!(
            "Ablation: Trace Analyzer occurrence threshold\n{}",
            render_table(&["threshold", "correct root cause", "incorrect"], &rows)
        )
    }
}

/// Sweeps the occurrence threshold over the K9 clean bug diagnosis.
pub fn occurrence_sweep(seed: u64, executions: usize) -> OccurrenceSweep {
    let app = table5::k9mail();
    let compiled = CompiledApp::new(app.clone());
    let open_email = app
        .actions
        .iter()
        .find(|a| a.name == "open email")
        .unwrap()
        .uid;
    let schedule = Schedule {
        arrivals: (0..executions as u64 + 1)
            .map(|i| (SimTime::from_ms(200 + i * 4_000), open_email))
            .collect(),
    };
    let mut rows = Vec::new();
    for &threshold in &[0.1, 0.3, 0.5, 0.7, 0.9] {
        let cfg = HangDoctorConfig::builder()
            .occurrence_threshold(threshold)
            .build()
            .unwrap();
        let mut run = build_run(&compiled, &schedule, SimConfig::default(), seed);
        let (probe, out) = HangDoctor::new(cfg, &app.name, &app.package, 1, None);
        run.sim.add_probe(Box::new(probe));
        run.sim.run();
        let out = out.borrow();
        let (mut correct, mut incorrect) = (0usize, 0usize);
        for d in out.detections.iter().filter(|d| d.is_bug()) {
            if d.root
                .as_ref()
                .map(|r| r.symbol.contains("HtmlCleaner.clean"))
                .unwrap_or(false)
            {
                correct += 1;
            } else {
                incorrect += 1;
            }
        }
        rows.push(ThresholdSweepRow {
            threshold,
            correct,
            incorrect,
        });
    }
    OccurrenceSweep { rows }
}

// ---- sampling-period sweep -------------------------------------------------

/// Diagnoser cost/quality per stack-sampling period.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PeriodSweepRow {
    /// Sampling period, ms.
    pub period_ms: u64,
    /// Stack samples collected in total.
    pub samples: u64,
    /// Correct diagnoses.
    pub correct: usize,
    /// Monitoring overhead, percent.
    pub overhead_pct: f64,
}

/// The sampling-period sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PeriodSweep {
    /// One row per period.
    pub rows: Vec<PeriodSweepRow>,
}

impl PeriodSweep {
    /// Renders the sweep.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    format!("{} ms", r.period_ms),
                    r.samples.to_string(),
                    r.correct.to_string(),
                    format!("{:.2}%", r.overhead_pct),
                ]
            })
            .collect();
        format!(
            "Ablation: Trace Collector sampling period\n{}",
            render_table(
                &["period", "samples", "correct diagnoses", "overhead"],
                &rows
            )
        )
    }
}

/// Sweeps the Diagnoser's sampling period on the K9 clean bug.
pub fn period_sweep(seed: u64, executions: usize) -> PeriodSweep {
    let app = table5::k9mail();
    let compiled = CompiledApp::new(app.clone());
    let open_email = app
        .actions
        .iter()
        .find(|a| a.name == "open email")
        .unwrap()
        .uid;
    let schedule = Schedule {
        arrivals: (0..executions as u64 + 1)
            .map(|i| (SimTime::from_ms(200 + i * 4_000), open_email))
            .collect(),
    };
    let mut rows = Vec::new();
    for &period_ms in &[2u64, 5, 10, 25, 50] {
        let cfg = HangDoctorConfig::builder()
            .sample_period_ns(period_ms * MILLIS)
            .build()
            .unwrap();
        let mut run = build_run(&compiled, &schedule, SimConfig::default(), seed);
        let (probe, out) = HangDoctor::new(cfg, &app.name, &app.package, 1, None);
        run.sim.add_probe(Box::new(probe));
        run.sim.run();
        let out = out.borrow();
        let correct = out
            .detections
            .iter()
            .filter(|d| {
                d.root
                    .as_ref()
                    .map(|r| r.symbol.contains("HtmlCleaner.clean"))
                    .unwrap_or(false)
            })
            .count();
        rows.push(PeriodSweepRow {
            period_ms,
            samples: run.sim.monitor_cost().stack_samples,
            correct,
            overhead_pct: hd_metrics::OverheadReport::from_sim(&run.sim).avg_pct(),
        });
    }
    PeriodSweep { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase2_only_sits_between_hang_doctor_and_ti() {
        let r = phase2_only(42, 8);
        // Without the S-Checker, every hang of every action is traced
        // from its first occurrence: true positives match TI exactly
        // (no phase-1 false negatives).
        assert_eq!(r.phase2_only.0, r.ti.0, "{r:?}");
        // The full pipeline loses only each bug's first manifestation.
        assert!(r.full.0 as f64 >= 0.8 * r.ti.0 as f64, "{r:?}");
        // Phase-2-only must trace each UI action at least once before
        // the Trace Analyzer can discard it, so it pays more false
        // positives and more overhead than the full pipeline...
        assert!(r.phase2_only.1 >= r.full.1, "{r:?}");
        assert!(r.phase2_only.2 > r.full.2, "{r:?}");
        // ...while TI, which never learns, traces every UI hang forever.
        assert!(r.ti.1 > 3 * r.phase2_only.1, "{r:?}");
    }

    #[test]
    fn context_switches_alone_misses_the_page_fault_bugs() {
        let r = single_counter(42, 8);
        // The paper: using only the context-switch counter would miss 5
        // bugs (1 AndStatus, 3 Omni-Notes, 1 RadioDroid).
        assert_eq!(r.missed_cs_only.len(), 5, "{:?}", r.missed_cs_only);
        assert!(r.missed_cs_only.iter().all(|b| b.contains("Omni-Notes")
            || b.contains("AndStatus")
            || b.contains("RadioDroid")));
        // The full filter misses nothing.
        assert!(r.missed_full.is_empty(), "{:?}", r.missed_full);
        // No single counter suffices.
        assert!(!r.missed_tc_only.is_empty());
        assert!(!r.missed_pf_only.is_empty());
    }

    #[test]
    fn early_sampling_inflates_false_positives() {
        let r = early_sampling(42, 10);
        assert!(r.ui_execs >= 10);
        // Figure 5(b)'s point: the beginning of a UI action looks like a
        // bug, so an early-prefix filter flags far more UI executions
        // than the end-of-action filter.
        assert!(
            r.early_fp > 2 * r.end_fp,
            "early {} vs end {}",
            r.early_fp,
            r.end_fp
        );
    }

    #[test]
    fn occurrence_threshold_is_forgiving_for_dominant_apis() {
        let s = occurrence_sweep(42, 4);
        // clean dominates its hang (~100% occurrence), so every
        // threshold ≤ 0.9 names it correctly.
        for row in &s.rows {
            assert!(
                row.correct >= 3 && row.incorrect == 0,
                "threshold {:.1}: {row:?}",
                row.threshold
            );
        }
    }

    #[test]
    fn coarser_sampling_is_cheaper_but_still_correct_for_long_hangs() {
        let s = period_sweep(42, 3);
        // Sample counts fall monotonically with the period...
        for w in s.rows.windows(2) {
            assert!(w[0].samples > w[1].samples, "{:?}", s.rows);
            assert!(w[0].overhead_pct > w[1].overhead_pct);
        }
        // ...while a 1.3 s hang still diagnoses correctly even at 50 ms.
        assert!(s.rows.last().unwrap().correct >= 2, "{:?}", s.rows);
    }
}
