//! Table 3: correlation analysis of performance events with soft hang
//! bugs — main−render differences (a) versus main-thread-only (b).

use hangdoctor::{collect_samples, rank_events, training_set, DiffMode, TrainingSample};
use hd_simrt::HwEvent;
use serde::{Deserialize, Serialize};

use crate::common::render_table;

/// One ranked column of Table 3.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RankedColumn {
    /// `(event name, Pearson coefficient)`, descending.
    pub top: Vec<(String, f64)>,
    /// Mean coefficient of the top 10.
    pub average_top10: f64,
}

fn column(samples: &[TrainingSample], mode: DiffMode, k: usize) -> RankedColumn {
    let ranked = rank_events(samples, mode);
    let top: Vec<(String, f64)> = ranked
        .iter()
        .take(k)
        .map(|(e, c)| (e.name().to_string(), *c))
        .collect();
    let average_top10 = ranked.iter().take(10).map(|(_, c)| c).sum::<f64>() / 10.0;
    RankedColumn { top, average_top10 }
}

/// The full Table 3 result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table3 {
    /// (a) main − render.
    pub diff: RankedColumn,
    /// (b) main only.
    pub main_only: RankedColumn,
    /// Samples used.
    pub samples: usize,
    /// Bug-labeled samples.
    pub bug_samples: usize,
}

impl Table3 {
    /// Renders both columns side by side.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = (0..self.diff.top.len())
            .map(|i| {
                let (de, dc) = &self.diff.top[i];
                let (me, mc) = self
                    .main_only
                    .top
                    .get(i)
                    .cloned()
                    .unwrap_or((String::new(), 0.0));
                vec![de.clone(), format!("{dc:.3}"), me, format!("{mc:.3}")]
            })
            .collect();
        format!(
            "Table 3 — Top correlated events ({} samples, {} bug-labeled)\n{}\nAverage top-10: main-render {:.3}, main-only {:.3}\n",
            self.samples,
            self.bug_samples,
            render_table(
                &["(a) main-render", "corr", "(b) main-only", "corr"],
                &rows
            ),
            self.diff.average_top10,
            self.main_only.average_top10,
        )
    }
}

/// Runs the correlation analysis over the paper's training set.
pub fn run(seed: u64, executions: usize) -> Table3 {
    let samples = collect_samples(&training_set(), executions, seed);
    let bug_samples = samples.iter().filter(|s| s.label).count();
    Table3 {
        diff: column(&samples, DiffMode::MainMinusRender, 10),
        main_only: column(&samples, DiffMode::MainOnly, 10),
        samples: samples.len(),
        bug_samples,
    }
}

/// Convenience: the collected samples themselves (reused by Table 4 and
/// Figure 4).
pub fn samples(seed: u64, executions: usize) -> Vec<TrainingSample> {
    collect_samples(&training_set(), executions, seed)
}

/// Whether an event is one of the paper's nine kernel software events.
pub fn is_kernel_name(name: &str) -> bool {
    HwEvent::from_name(name)
        .map(|e| e.is_kernel())
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_shape_matches_paper() {
        let t = run(42, 6);
        assert!(t.samples >= 80, "samples {}", t.samples);
        // Context switches must top the main-render ranking.
        assert_eq!(t.diff.top[0].0, "context-switches", "{:?}", t.diff.top);
        assert!(t.diff.top[0].1 > 0.4);
        // Monitoring main+render must beat main-only on average, as the
        // paper reports (~14% better).
        assert!(
            t.diff.average_top10 > t.main_only.average_top10,
            "diff {:.3} vs main {:.3}",
            t.diff.average_top10,
            t.main_only.average_top10
        );
        // Kernel scheduling events must be prominent in the top 10.
        let kernel_in_top = t
            .diff
            .top
            .iter()
            .filter(|(name, _)| is_kernel_name(name))
            .count();
        assert!(kernel_in_top >= 2, "top10 = {:?}", t.diff.top);
    }

    #[test]
    fn render_mentions_both_columns() {
        let t = run(7, 4);
        let s = t.render();
        assert!(s.contains("main-render"));
        assert!(s.contains("main-only"));
        assert!(s.contains("context-switches"));
    }
}
