//! Figure 1: the A Better Camera `resume` action, buggy vs fixed.
//!
//! The buggy main thread executes `setParameters`, `open` (the bug),
//! `setText`, `inflate`, `SeekBar.<init>` and `enable` for a ~423 ms
//! response; moving `open` to a worker thread cuts the response to
//! ~160 ms. We reconstruct the per-API occupancy of the main thread by
//! fine-grained stack sampling of one execution of each variant.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use hd_appmodel::corpus::table1;
use hd_appmodel::{build_run, CompiledApp, Schedule};
use hd_simrt::{MessageInfo, Probe, ProbeCtx, SimConfig, SimTime, MILLIS};
use serde::{Deserialize, Serialize};

use crate::common::render_table;

/// Occupancy of one API on the main thread.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ApiOccupancy {
    /// Method name (short form).
    pub api: String,
    /// Estimated main-thread time, ms.
    pub ms: f64,
}

/// One variant's trace summary.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VariantTrace {
    /// "buggy" or "fixed".
    pub variant: String,
    /// Response time of the resume input event, ms.
    pub response_ms: f64,
    /// Per-API occupancy, descending.
    pub occupancy: Vec<ApiOccupancy>,
}

/// The figure's data.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig1 {
    /// The buggy variant.
    pub buggy: VariantTrace,
    /// The fixed variant (camera.open offloaded).
    pub fixed: VariantTrace,
}

impl Fig1 {
    /// Renders both variants.
    pub fn render(&self) -> String {
        let mut out = String::from("Figure 1 — A Better Camera 'resume', buggy vs fixed\n");
        for v in [&self.buggy, &self.fixed] {
            out.push_str(&format!(
                "\n[{}] response = {:.0} ms\n",
                v.variant, v.response_ms
            ));
            let rows: Vec<Vec<String>> = v
                .occupancy
                .iter()
                .map(|o| vec![o.api.clone(), format!("{:.0}", o.ms)])
                .collect();
            out.push_str(&render_table(&["main-thread API", "ms"], &rows));
        }
        out
    }

    /// The response-time improvement factor of the fix.
    pub fn speedup(&self) -> f64 {
        self.buggy.response_ms / self.fixed.response_ms.max(1e-9)
    }
}

struct FineSampler {
    period_ns: u64,
    token: u64,
    active: bool,
    counts: Rc<RefCell<BTreeMap<String, u64>>>,
    response: Rc<RefCell<u64>>,
}

impl Probe for FineSampler {
    fn on_dispatch_begin(&mut self, ctx: &mut ProbeCtx<'_>, _info: &MessageInfo) {
        self.active = true;
        self.token += 1;
        ctx.set_timer(ctx.now() + self.period_ns, self.token);
    }

    fn on_timer(&mut self, ctx: &mut ProbeCtx<'_>, token: u64) {
        if !self.active || token != self.token {
            return;
        }
        if let Some(&leaf) = ctx.main_stack().last() {
            let frame = ctx.frame(leaf).clone();
            *self.counts.borrow_mut().entry(frame.symbol).or_default() += 1;
        }
        self.token += 1;
        ctx.set_timer(ctx.now() + self.period_ns, self.token);
    }

    fn on_dispatch_end(&mut self, _ctx: &mut ProbeCtx<'_>, _info: &MessageInfo, response_ns: u64) {
        self.active = false;
        *self.response.borrow_mut() = response_ns;
    }
}

fn trace_variant(app: hd_appmodel::App, variant: &str, seed: u64) -> VariantTrace {
    let compiled = CompiledApp::new(app);
    let resume = compiled
        .app()
        .actions
        .iter()
        .find(|a| a.name == "resume")
        .expect("A Better Camera has a resume action")
        .uid;
    let schedule = Schedule {
        arrivals: vec![(SimTime::from_ms(50), resume)],
    };
    let mut run = build_run(&compiled, &schedule, SimConfig::default(), seed);
    let period_ns = 2 * MILLIS;
    let counts = Rc::new(RefCell::new(BTreeMap::new()));
    let response = Rc::new(RefCell::new(0u64));
    run.sim.add_probe(Box::new(FineSampler {
        period_ns,
        token: 100,
        active: false,
        counts: counts.clone(),
        response: response.clone(),
    }));
    run.sim.run();
    let response_ns = *response.borrow();
    let mut occupancy: Vec<ApiOccupancy> = counts
        .borrow()
        .iter()
        .map(|(sym, n)| ApiOccupancy {
            api: sym
                .rsplit('.')
                .next()
                .map(|m| {
                    let class = sym.trim_end_matches(&format!(".{m}"));
                    let short_class = class.rsplit('.').next().unwrap_or(class);
                    format!("{short_class}.{m}")
                })
                .unwrap_or_else(|| sym.clone()),
            ms: (*n * period_ns) as f64 / MILLIS as f64,
        })
        .collect();
    occupancy.sort_by(|a, b| b.ms.partial_cmp(&a.ms).unwrap_or(std::cmp::Ordering::Equal));
    VariantTrace {
        variant: variant.to_string(),
        response_ms: response_ns as f64 / MILLIS as f64,
        occupancy,
    }
}

/// Runs the Figure 1 experiment.
pub fn run(seed: u64) -> Fig1 {
    let buggy = trace_variant(table1::a_better_camera(), "buggy", seed);
    let fixed = trace_variant(
        table1::a_better_camera().with_bugs_fixed(&["abc-open"]),
        "fixed",
        seed,
    );
    Fig1 { buggy, fixed }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buggy_resume_hangs_and_fix_restores_responsiveness() {
        let f = run(42);
        // Paper: 423 ms buggy vs 160 ms fixed; shape: a clear perceivable
        // hang that drops below ~200 ms once open moves off the main
        // thread.
        assert!(
            f.buggy.response_ms > 300.0,
            "buggy {:.0} ms",
            f.buggy.response_ms
        );
        assert!(
            f.fixed.response_ms < 200.0,
            "fixed {:.0} ms",
            f.fixed.response_ms
        );
        assert!(f.speedup() > 1.8, "speedup {:.2}", f.speedup());
    }

    #[test]
    fn camera_open_dominates_the_buggy_trace_only() {
        let f = run(42);
        let open_ms = |v: &VariantTrace| {
            v.occupancy
                .iter()
                .find(|o| o.api.contains("Camera.open"))
                .map(|o| o.ms)
                .unwrap_or(0.0)
        };
        // camera.open is the largest main-thread occupant when buggy...
        assert_eq!(
            f.buggy.occupancy[0].api, "Camera.open",
            "{:?}",
            f.buggy.occupancy
        );
        assert!(open_ms(&f.buggy) > 150.0);
        // ...and disappears from the main thread when fixed.
        assert!(open_ms(&f.fixed) < 20.0, "{:?}", f.fixed.occupancy);
    }

    #[test]
    fn ui_apis_remain_in_both_variants() {
        let f = run(42);
        for v in [&f.buggy, &f.fixed] {
            assert!(
                v.occupancy.iter().any(|o| o.api.contains("inflate")),
                "{}: {:?}",
                v.variant,
                v.occupancy
            );
        }
    }
}
