//! Static analysis experiments: the corpus-wide `hd-sast` scan and the
//! static↔runtime differential.
//!
//! The scan runs the interprocedural analyzer over every corpus app and
//! packages the per-app reports (the `repro sast` artifact). The
//! differential races the full-profile static scan against a Hang Doctor
//! fleet on the same corpus and scores both arms against ground truth
//! per bug class: the paper's three offline failure modes — unknown
//! APIs, closed-source libraries, self-developed lengthy operations —
//! must fall out as exactly the classes static analysis misses while
//! runtime detection catches them.

use hangdoctor::{BlockingApiDb, FaultConfig, HangDoctorConfig};
use hd_appmodel::corpus::differential_corpus;
use hd_fleet::{bugs_reported, run_fleet, DeviceProfile, FleetSpec};
use hd_metrics::{AppDifferential, ArmPrecision, BugOutcome, SastDifferential};
use hd_sast::{analyze_with_db, classify_bug, RuleProfile, SastConfig, SastReport, Severity};
use serde::{Deserialize, Serialize};

use crate::common::render_table;

/// The corpus-wide scan artifact `repro sast` emits: one analyzer
/// report per app (each carrying the `hang-doctor/sast/v1` schema tag).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SastScan {
    /// Rule profile the scan ran under.
    pub profile: String,
    /// Vintage of the blocking-API database.
    pub db_year: u16,
    /// Per-app reports, corpus order.
    pub reports: Vec<SastReport>,
}

impl SastScan {
    /// Total findings across the corpus.
    pub fn total_findings(&self) -> usize {
        self.reports.iter().map(|r| r.findings.len()).sum()
    }

    /// Findings tagged with a ground-truth bug id.
    pub fn confirmed(&self) -> usize {
        self.reports
            .iter()
            .flat_map(|r| &r.findings)
            .filter(|f| f.bug_id.is_some())
            .count()
    }

    /// Renders the per-app scan table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .reports
            .iter()
            .filter(|r| !r.findings.is_empty())
            .map(|r| {
                let errors = r
                    .findings
                    .iter()
                    .filter(|f| f.severity == Severity::Error)
                    .count();
                let nested = r.findings.iter().filter(|f| f.depth > 0).count();
                vec![
                    r.app.clone(),
                    r.findings.len().to_string(),
                    errors.to_string(),
                    nested.to_string(),
                    r.bug_ids().len().to_string(),
                ]
            })
            .collect();
        format!(
            "hd-sast scan — profile {}, db {} over {} apps\n{}\nTotal: {} findings, {} on ground-truth bugs\n",
            self.profile,
            self.db_year,
            self.reports.len(),
            render_table(&["app", "findings", "errors", "nested", "bugs"], &rows),
            self.total_findings(),
            self.confirmed(),
        )
    }
}

/// Scans the differential corpus under `profile` against a documented
/// database of the given vintage.
pub fn run_scan(profile: RuleProfile, db_year: u16) -> SastScan {
    let db = BlockingApiDb::documented(db_year);
    let config = SastConfig { profile, db_year };
    SastScan {
        profile: profile.as_str().to_string(),
        db_year,
        reports: differential_corpus()
            .iter()
            .map(|app| analyze_with_db(app, &db, &config))
            .collect(),
    }
}

/// Runs the static↔runtime differential: a full-profile scan and a Hang
/// Doctor fleet over the same corpus, scored per bug class.
pub fn run_differential(seed: u64, executions: usize, db_year: u16) -> SastDifferential {
    let corpus = differential_corpus();
    let db = BlockingApiDb::documented(db_year);
    let config = SastConfig {
        profile: RuleProfile::Full,
        db_year,
    };
    let fleet = run_fleet(&FleetSpec {
        apps: corpus.clone(),
        profiles: DeviceProfile::default_set(),
        devices_per_app: 3,
        executions_per_action: executions,
        root_seed: seed,
        threads: 2,
        config: HangDoctorConfig::default(),
        apidb_year: db_year,
        faults: FaultConfig::none(),
    });
    let mut apps = Vec::new();
    for (app, summary) in corpus.iter().zip(&fleet.merged.apps) {
        debug_assert_eq!(app.name, summary.app);
        let report = analyze_with_db(app, &db, &config);
        let statically_found = report.bug_ids();
        let runtime_found = bugs_reported(summary, app);
        let outcomes = app
            .bugs
            .iter()
            .map(|bug| BugOutcome {
                id: bug.id.clone(),
                class: classify_bug(app, bug, db_year).as_str().to_string(),
                static_found: statically_found.contains(&bug.id),
                runtime_found: runtime_found.contains(&bug.id),
            })
            .collect();
        apps.push(AppDifferential {
            app: app.name.clone(),
            outcomes,
            static_precision: ArmPrecision {
                flagged: report.findings.len(),
                true_flags: report
                    .findings
                    .iter()
                    .filter(|f| f.bug_id.is_some())
                    .count(),
            },
            runtime_precision: ArmPrecision {
                flagged: summary.confusion.tp + summary.confusion.fp,
                true_flags: summary.confusion.tp,
            },
        });
    }
    SastDifferential::build(db_year, apps)
}

/// Renders the per-class differential table.
pub fn render_differential(d: &SastDifferential) -> String {
    let rows: Vec<Vec<String>> = d
        .classes
        .iter()
        .map(|c| {
            vec![
                c.class.clone(),
                c.total.to_string(),
                format!("{:.2}", c.static_recall()),
                format!("{:.2}", c.runtime_recall()),
                c.both.to_string(),
                c.static_only.to_string(),
                c.runtime_only.to_string(),
                c.neither.to_string(),
                format!("{:+.2}", c.recall_delta()),
            ]
        })
        .collect();
    format!(
        "Static↔runtime differential — db {}\n{}\nprecision: static {:.3} ({}/{} findings), runtime {:.3} ({}/{} flags), Δ {:+.3}\noverall Δrecall {:+.3}; runtime-only bugs: {}\n",
        d.db_year,
        render_table(
            &[
                "class",
                "bugs",
                "static-recall",
                "runtime-recall",
                "both",
                "static-only",
                "runtime-only",
                "neither",
                "Δrecall",
            ],
            &rows
        ),
        d.static_precision.precision(),
        d.static_precision.true_flags,
        d.static_precision.flagged,
        d.runtime_precision.precision(),
        d.runtime_precision.true_flags,
        d.runtime_precision.flagged,
        d.precision_delta(),
        d.recall_delta(),
        d.runtime_only.len(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_covers_the_corpus_under_both_profiles() {
        let full = run_scan(RuleProfile::Full, 2017);
        let compat = run_scan(RuleProfile::PerfCheckerCompat, 2017);
        assert_eq!(full.reports.len(), compat.reports.len());
        assert!(full.total_findings() > 0);
        // The full profile subsumes the compat profile: the summary walk
        // sees at least every direct known-API call the legacy scan sees.
        assert!(
            full.confirmed() >= compat.confirmed(),
            "full {} < compat {}",
            full.confirmed(),
            compat.confirmed()
        );
        // The vendored closed-source bugs stay invisible to both.
        for scan in [&full, &compat] {
            let trackpro = scan.reports.iter().find(|r| r.app == "TrackPro").unwrap();
            let ids = trackpro.bug_ids();
            assert!(ids.contains("trackpro-3-commit"), "{ids:?}");
            assert!(!ids.contains("trackpro-7-flush"), "{ids:?}");
            assert!(!ids.contains("trackpro-9-preload"), "{ids:?}");
        }
        let text = full.render();
        assert!(text.contains("TrackPro"));
        assert!(text.contains("findings"));
    }

    #[test]
    fn differential_shows_the_three_failure_modes() {
        let d = run_differential(42, 4, 2017);
        // Known-API bugs: static analysis finds every one.
        let known = d.class("known").expect("known class present");
        assert!(
            (known.static_recall() - 1.0).abs() < 1e-9,
            "static must find all known bugs: {known:?}"
        );
        // The paper's three failure modes are exactly the classes static
        // analysis misses entirely while the runtime fleet catches them.
        for class in ["unknown-api", "closed-source", "self-developed"] {
            let c = d.class(class).expect(class);
            assert_eq!(c.static_found, 0, "{class} must be invisible statically");
            assert!(c.runtime_found > 0, "{class} must be caught at runtime");
        }
        // Complement sets agree: nothing static-only outside the known
        // class, and the runtime-only set is non-empty.
        assert!(!d.runtime_only.is_empty());
        let text = render_differential(&d);
        assert!(text.contains("closed-source"));
        assert!(text.contains("Δrecall"));
    }
}
