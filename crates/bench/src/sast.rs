//! Static analysis experiments: the corpus-wide `hd-sast` scan, the
//! static↔runtime differential, the three-arm precision differential,
//! and the threaded scan benchmark.
//!
//! The scan runs the interprocedural analyzer over every corpus app and
//! packages the per-app reports (the `repro sast` artifact). The
//! differential races the full-profile static scan against a Hang Doctor
//! fleet on the same corpus and scores both arms against ground truth
//! per bug class: the paper's three offline failure modes — unknown
//! APIs, closed-source libraries, self-developed lengthy operations —
//! must fall out as exactly the classes static analysis misses while
//! runtime detection catches them. The precision differential
//! (`repro sast-prec-diff`) scores all three rule profiles against
//! fleet-confirmed ground truth, materializing the context-sensitivity
//! claim: false positives removed versus the `full` baseline, zero true
//! positives lost. The benchmark (`repro sast-bench`) sweeps the strided
//! parallel scanner over the 114-app study corpus.

use hangdoctor::{BlockingApiDb, FaultConfig, HangDoctorConfig};
use hd_appmodel::corpus::{differential_corpus, full_corpus};
use hd_fleet::{bugs_reported, run_fleet, DeviceProfile, FleetSpec};
use hd_metrics::{
    AppArm, AppDifferential, AppPrecision, ArmPrecision, BugOutcome, PrecisionDifferential,
    SastDifferential,
};
use hd_sast::{
    analyze_with_db, bench_sweep, classify_bug, scan_corpus, RuleProfile, SastBench, SastConfig,
    SastReport, Severity,
};
use serde::{Deserialize, Serialize};

use crate::common::render_table;

/// The corpus-wide scan artifact `repro sast` emits: one analyzer
/// report per app (each carrying the `hang-doctor/sast/v1` schema tag).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SastScan {
    /// Rule profile the scan ran under.
    pub profile: String,
    /// Vintage of the blocking-API database.
    pub db_year: u16,
    /// Per-app reports, corpus order.
    pub reports: Vec<SastReport>,
}

impl SastScan {
    /// Total findings across the corpus.
    pub fn total_findings(&self) -> usize {
        self.reports.iter().map(|r| r.findings.len()).sum()
    }

    /// Findings tagged with a ground-truth bug id.
    pub fn confirmed(&self) -> usize {
        self.reports
            .iter()
            .flat_map(|r| &r.findings)
            .filter(|f| f.bug_id.is_some())
            .count()
    }

    /// Renders the per-app scan table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .reports
            .iter()
            .filter(|r| !r.findings.is_empty())
            .map(|r| {
                let errors = r
                    .findings
                    .iter()
                    .filter(|f| f.severity == Severity::Error)
                    .count();
                let nested = r.findings.iter().filter(|f| f.depth > 0).count();
                vec![
                    r.app.clone(),
                    r.findings.len().to_string(),
                    errors.to_string(),
                    nested.to_string(),
                    r.bug_ids().len().to_string(),
                ]
            })
            .collect();
        format!(
            "hd-sast scan — profile {}, db {} over {} apps\n{}\nTotal: {} findings, {} on ground-truth bugs\n",
            self.profile,
            self.db_year,
            self.reports.len(),
            render_table(&["app", "findings", "errors", "nested", "bugs"], &rows),
            self.total_findings(),
            self.confirmed(),
        )
    }
}

/// Scans the differential corpus under `profile` against a documented
/// database of the given vintage, with `threads` strided-shard workers.
/// The artifact is byte-identical at every thread count.
pub fn run_scan(profile: RuleProfile, db_year: u16, threads: usize) -> SastScan {
    let db = BlockingApiDb::documented(db_year);
    let config = SastConfig { profile, db_year };
    SastScan {
        profile: profile.as_str().to_string(),
        db_year,
        reports: scan_corpus(&differential_corpus(), &db, &config, threads).reports,
    }
}

/// Runs the threaded scan benchmark: the contextual profile over the
/// full 114-app study corpus replicated `replicas` times, swept across
/// `thread_sweep` worker counts with a fresh cross-app cache per run.
pub fn run_bench(seed: u64, thread_sweep: &[usize], replicas: usize) -> SastBench {
    let config = SastConfig {
        profile: RuleProfile::Contextual,
        db_year: 2017,
    };
    let db = BlockingApiDb::documented(config.db_year);
    bench_sweep(&full_corpus(seed), &db, &config, thread_sweep, replicas)
}

/// Renders the bench sweep table.
pub fn render_bench(bench: &SastBench) -> String {
    let rows: Vec<Vec<String>> = bench
        .rows
        .iter()
        .map(|r| {
            vec![
                r.threads.to_string(),
                format!("{:.1}", r.elapsed_ms),
                format!("{:.0}", r.apps_per_second),
                format!("{:.2}x", r.speedup_vs_serial),
                format!("{:.2}", r.cache_hit_rate),
                r.summaries_deduped.to_string(),
            ]
        })
        .collect();
    format!(
        "hd-sast scan bench — {} profile, {} apps x{} replicas, {} host cpu(s)\n{}\nbest: {:.0} apps/s\n",
        bench.profile,
        bench.corpus_apps,
        bench.replicas,
        bench.host_cpus,
        render_table(
            &["threads", "ms", "apps/s", "speedup", "hit-rate", "deduped"],
            &rows
        ),
        bench.best_apps_per_second,
    )
}

/// Runs the static↔runtime differential: a full-profile scan and a Hang
/// Doctor fleet over the same corpus, scored per bug class.
pub fn run_differential(seed: u64, executions: usize, db_year: u16) -> SastDifferential {
    let corpus = differential_corpus();
    let db = BlockingApiDb::documented(db_year);
    let config = SastConfig {
        profile: RuleProfile::Full,
        db_year,
    };
    let fleet = run_fleet(&FleetSpec {
        apps: corpus.clone(),
        profiles: DeviceProfile::default_set(),
        devices_per_app: 3,
        executions_per_action: executions,
        root_seed: seed,
        threads: 2,
        config: HangDoctorConfig::default(),
        apidb_year: db_year,
        faults: FaultConfig::none(),
    });
    let mut apps = Vec::new();
    for (app, summary) in corpus.iter().zip(&fleet.merged.apps) {
        debug_assert_eq!(app.name, summary.app);
        let report = analyze_with_db(app, &db, &config);
        let statically_found = report.bug_ids();
        let runtime_found = bugs_reported(summary, app);
        let outcomes = app
            .bugs
            .iter()
            .map(|bug| BugOutcome {
                id: bug.id.clone(),
                class: classify_bug(app, bug, db_year).as_str().to_string(),
                static_found: statically_found.contains(&bug.id),
                runtime_found: runtime_found.contains(&bug.id),
            })
            .collect();
        apps.push(AppDifferential {
            app: app.name.clone(),
            outcomes,
            static_precision: ArmPrecision {
                flagged: report.findings.len(),
                true_flags: report
                    .findings
                    .iter()
                    .filter(|f| f.bug_id.is_some())
                    .count(),
            },
            runtime_precision: ArmPrecision {
                flagged: summary.confusion.tp + summary.confusion.fp,
                true_flags: summary.confusion.tp,
            },
        });
    }
    SastDifferential::build(db_year, apps)
}

/// Runs the three-arm precision differential: every rule profile scans
/// the differential corpus, and each arm's findings are scored against
/// the bugs a Hang Doctor fleet confirms on the same corpus.
pub fn run_precision_differential(
    seed: u64,
    executions: usize,
    db_year: u16,
) -> PrecisionDifferential {
    let corpus = differential_corpus();
    let db = BlockingApiDb::documented(db_year);
    let fleet = run_fleet(&FleetSpec {
        apps: corpus.clone(),
        profiles: DeviceProfile::default_set(),
        devices_per_app: 3,
        executions_per_action: executions,
        root_seed: seed,
        threads: 2,
        config: HangDoctorConfig::default(),
        apidb_year: db_year,
        faults: FaultConfig::none(),
    });
    let mut apps = Vec::new();
    for (app, summary) in corpus.iter().zip(&fleet.merged.apps) {
        debug_assert_eq!(app.name, summary.app);
        let fleet_confirmed = bugs_reported(summary, app);
        let arms = RuleProfile::ALL
            .iter()
            .map(|&profile| {
                let report = analyze_with_db(app, &db, &SastConfig { profile, db_year });
                let true_flags = report
                    .findings
                    .iter()
                    .filter(|f| {
                        f.bug_id
                            .as_ref()
                            .is_some_and(|id| fleet_confirmed.contains(id))
                    })
                    .count();
                AppArm {
                    profile: profile.as_str().to_string(),
                    flagged: report.findings.len(),
                    true_flags,
                    bugs_found: report
                        .bug_ids()
                        .into_iter()
                        .filter(|id| fleet_confirmed.contains(id))
                        .collect(),
                }
            })
            .collect();
        apps.push(AppPrecision {
            app: app.name.clone(),
            bug_classes: app
                .bugs
                .iter()
                .map(|bug| {
                    (
                        bug.id.clone(),
                        classify_bug(app, bug, db_year).as_str().to_string(),
                    )
                })
                .collect(),
            fleet_confirmed,
            arms,
        });
    }
    PrecisionDifferential::build(db_year, apps)
}

/// Renders the per-arm precision table.
pub fn render_precision(d: &PrecisionDifferential) -> String {
    let rows: Vec<Vec<String>> = d
        .arms
        .iter()
        .map(|a| {
            vec![
                a.profile.clone(),
                a.precision.flagged.to_string(),
                a.precision.true_flags.to_string(),
                a.false_flags.to_string(),
                format!("{:.3}", a.precision.precision()),
                a.bugs_found.len().to_string(),
            ]
        })
        .collect();
    format!(
        "Three-arm precision differential — db {}, {} fleet-confirmed bugs\n{}\ncontextual vs full: {} false positives removed, {} true positives lost\ncontextual vs compat: {} additional confirmed bugs\n",
        d.db_year,
        d.fleet_confirmed.len(),
        render_table(
            &["arm", "flagged", "true", "false", "precision", "bugs"],
            &rows
        ),
        d.removed_false_positives,
        d.lost_true_positives.len(),
        d.gained_over_compat.len(),
    )
}

/// Renders the per-class differential table.
pub fn render_differential(d: &SastDifferential) -> String {
    let rows: Vec<Vec<String>> = d
        .classes
        .iter()
        .map(|c| {
            vec![
                c.class.clone(),
                c.total.to_string(),
                format!("{:.2}", c.static_recall()),
                format!("{:.2}", c.runtime_recall()),
                c.both.to_string(),
                c.static_only.to_string(),
                c.runtime_only.to_string(),
                c.neither.to_string(),
                format!("{:+.2}", c.recall_delta()),
            ]
        })
        .collect();
    format!(
        "Static↔runtime differential — db {}\n{}\nprecision: static {:.3} ({}/{} findings), runtime {:.3} ({}/{} flags), Δ {:+.3}\noverall Δrecall {:+.3}; runtime-only bugs: {}\n",
        d.db_year,
        render_table(
            &[
                "class",
                "bugs",
                "static-recall",
                "runtime-recall",
                "both",
                "static-only",
                "runtime-only",
                "neither",
                "Δrecall",
            ],
            &rows
        ),
        d.static_precision.precision(),
        d.static_precision.true_flags,
        d.static_precision.flagged,
        d.runtime_precision.precision(),
        d.runtime_precision.true_flags,
        d.runtime_precision.flagged,
        d.precision_delta(),
        d.recall_delta(),
        d.runtime_only.len(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_covers_the_corpus_under_both_profiles() {
        let full = run_scan(RuleProfile::Full, 2017, 1);
        let compat = run_scan(RuleProfile::PerfCheckerCompat, 2017, 1);
        assert_eq!(full.reports.len(), compat.reports.len());
        assert!(full.total_findings() > 0);
        // The full profile subsumes the compat profile: the summary walk
        // sees at least every direct known-API call the legacy scan sees.
        assert!(
            full.confirmed() >= compat.confirmed(),
            "full {} < compat {}",
            full.confirmed(),
            compat.confirmed()
        );
        // The vendored closed-source bugs stay invisible to both.
        for scan in [&full, &compat] {
            let trackpro = scan.reports.iter().find(|r| r.app == "TrackPro").unwrap();
            let ids = trackpro.bug_ids();
            assert!(ids.contains("trackpro-3-commit"), "{ids:?}");
            assert!(!ids.contains("trackpro-7-flush"), "{ids:?}");
            assert!(!ids.contains("trackpro-9-preload"), "{ids:?}");
        }
        let text = full.render();
        assert!(text.contains("TrackPro"));
        assert!(text.contains("findings"));
    }

    #[test]
    fn differential_shows_the_three_failure_modes() {
        let d = run_differential(42, 4, 2017);
        // Known-API bugs: static analysis finds every one.
        let known = d.class("known").expect("known class present");
        assert!(
            (known.static_recall() - 1.0).abs() < 1e-9,
            "static must find all known bugs: {known:?}"
        );
        // The paper's three failure modes are exactly the classes static
        // analysis misses entirely while the runtime fleet catches them.
        for class in ["unknown-api", "closed-source", "self-developed"] {
            let c = d.class(class).expect(class);
            assert_eq!(c.static_found, 0, "{class} must be invisible statically");
            assert!(c.runtime_found > 0, "{class} must be caught at runtime");
        }
        // Complement sets agree: nothing static-only outside the known
        // class, and the runtime-only set is non-empty.
        assert!(!d.runtime_only.is_empty());
        let text = render_differential(&d);
        assert!(text.contains("closed-source"));
        assert!(text.contains("Δrecall"));
    }

    #[test]
    fn threaded_scan_is_byte_identical_to_serial() {
        for profile in [RuleProfile::Contextual, RuleProfile::Full] {
            let serial = serde_json::to_string(&run_scan(profile, 2017, 1)).unwrap();
            for threads in [8, 16, 32] {
                assert_eq!(
                    serde_json::to_string(&run_scan(profile, 2017, threads)).unwrap(),
                    serial,
                    "{profile:?} at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn precision_differential_removes_false_positives_without_recall_loss() {
        // The tentpole acceptance bar: the contextual arm must strictly
        // improve on the full baseline (Δfalse-positives > 0) while
        // covering every fleet-confirmed bug the baseline covers, and it
        // must keep the interprocedural recall the legacy scanner lacks.
        let d = run_precision_differential(42, 4, 2017);
        assert!(
            d.removed_false_positives > 0,
            "contextual must remove shared-wrapper false positives: {:?}",
            d.arms
        );
        assert!(
            d.lost_true_positives.is_empty(),
            "zero recall loss required: {:?}",
            d.lost_true_positives
        );
        assert!(d.refinement_holds());
        // No recall regression against the legacy scanner either: every
        // fleet-confirmed bug compat catches, contextual catches. (The
        // converse gap is structurally empty on this corpus — a bug the
        // legacy per-chain scan misses has an invisible chain, and the
        // summary walk stops at the same closed boundary.)
        let ctx = d.arm("contextual").unwrap();
        let compat = d.arm("perfchecker-compat").unwrap();
        assert!(
            compat.bugs_found.is_subset(&ctx.bugs_found),
            "contextual must cover the legacy scanner's bugs: {:?}",
            compat.bugs_found.difference(&ctx.bugs_found)
        );
        // The shared-wrapper apps' bugs are runtime-confirmed and caught
        // by every arm (their chains are fully open).
        for bug in ["notekeeper-4-sync", "photobox-11-export"] {
            assert!(d.fleet_confirmed.contains(bug), "{bug} not confirmed");
            for arm in &d.arms {
                assert!(arm.bugs_found.contains(bug), "{} missed {bug}", arm.profile);
            }
        }
        let full = d.arm("full").unwrap();
        assert!(ctx.precision.precision() > full.precision.precision());
        let text = render_precision(&d);
        assert!(text.contains("false positives removed"));
        assert!(text.contains("contextual"));
    }

    #[test]
    fn bench_sweep_over_the_study_corpus_reuses_summaries() {
        let bench = run_bench(42, &[1, 2], 1);
        assert_eq!(bench.corpus_apps, 114);
        assert!(bench.best_apps_per_second > 0.0);
        for row in &bench.rows {
            assert!(
                row.cache_hit_rate > 0.0,
                "study apps share registry subgraphs: {row:?}"
            );
        }
        let text = render_bench(&bench);
        assert!(text.contains("apps/s"));
    }
}
