//! Table 1: the motivation-study apps and their known soft hang bugs.
//!
//! The paper's Table 1 lists the eight apps (with commit ids) whose
//! well-known bugs drive the Table 2 timeout study. We print the corpus
//! inventory plus, for each app, the bugs and the response-time range of
//! one manifestation of each — verifying the durations that make Table 2
//! come out (only Seadroid above 1 s, only Seadroid+FrostWire above
//! 500 ms).

use hd_appmodel::corpus::table1;
use hd_appmodel::{build_run, CompiledApp, Schedule};
use hd_simrt::{SimConfig, SimTime};
use serde::{Deserialize, Serialize};

use crate::common::render_table;

/// One app row.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table1Row {
    /// App name.
    pub app: String,
    /// Commit under test.
    pub commit: String,
    /// Known bugs and one measured hang duration each, ms.
    pub bugs: Vec<(String, f64)>,
}

/// The inventory.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table1 {
    /// Per-app rows.
    pub rows: Vec<Table1Row>,
}

impl Table1 {
    /// Renders the inventory.
    pub fn render(&self) -> String {
        let mut rows = Vec::new();
        for r in &self.rows {
            for (i, (bug, ms)) in r.bugs.iter().enumerate() {
                rows.push(vec![
                    if i == 0 { r.app.clone() } else { String::new() },
                    if i == 0 {
                        r.commit.clone()
                    } else {
                        String::new()
                    },
                    bug.clone(),
                    format!("{ms:.0} ms"),
                ]);
            }
        }
        format!(
            "Table 1 — motivation apps and their known soft hang bugs\n{}",
            render_table(&["App Name", "Commit", "bug", "hang"], &rows)
        )
    }

    /// Total bugs listed.
    pub fn total_bugs(&self) -> usize {
        self.rows.iter().map(|r| r.bugs.len()).sum()
    }
}

/// Measures one manifestation of every Table 1 bug.
pub fn run(seed: u64) -> Table1 {
    let mut rows = Vec::new();
    for app in table1::apps() {
        let compiled = CompiledApp::new(app.clone());
        let mut bugs = Vec::new();
        for bug in &app.bugs {
            let schedule = Schedule {
                arrivals: vec![(SimTime::from_ms(100), bug.action)],
            };
            let mut run = build_run(&compiled, &schedule, SimConfig::default(), seed);
            run.sim.run();
            bugs.push((
                bug.id.clone(),
                run.sim.records()[0].max_response_ns() as f64 / 1e6,
            ));
        }
        rows.push(Table1Row {
            app: app.name.clone(),
            commit: app.commit.clone(),
            bugs,
        });
    }
    Table1 { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_matches_paper() {
        let t = run(42);
        assert_eq!(t.rows.len(), 8);
        assert_eq!(t.total_bugs(), 19);
        // Only Seadroid exceeds one second.
        for r in &t.rows {
            for (bug, ms) in &r.bugs {
                if *ms > 1_000.0 {
                    assert!(bug.contains("seadroid"), "{bug}: {ms:.0} ms");
                }
                assert!(*ms > 100.0, "{bug} must hang: {ms:.0} ms");
            }
        }
        let commits: Vec<&str> = t.rows.iter().map(|r| r.commit.as_str()).collect();
        assert!(commits.contains(&"3e2b654"), "DroidWall commit");
        assert!(commits.contains(&"9f8e3b0"), "A Better Camera commit");
    }
}
