//! Table 2: how the timeout value drives the Timeout-based detector.
//!
//! For each Table 1 app and each timeout in {5 s, 1 s, 500 ms, 100 ms},
//! run TI over the same user trace and count the distinct true bugs
//! flagged and the distinct UI actions falsely flagged. The paper's
//! shape: long timeouts miss (almost) everything; 100 ms catches all 19
//! known bugs but floods the log with UI false positives.

use hd_appmodel::corpus::table1;
use hd_appmodel::{generate_schedule, CompiledApp, TraceParams};
use hd_metrics::{bugs_flagged, bugs_manifested, ui_actions_flagged};
use hd_simrt::SimRng;
use hd_simrt::{MILLIS, SECONDS};
use serde::{Deserialize, Serialize};

use crate::common::{render_table, run_detector_compiled, DetectorKind};

/// The four timeouts of Table 2.
pub const TIMEOUTS: [u64; 4] = [5 * SECONDS, SECONDS, 500 * MILLIS, 100 * MILLIS];

/// One app's row.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table2Row {
    /// App name.
    pub app: String,
    /// Ground-truth bugs in the app.
    pub total_bugs: usize,
    /// Distinct true bugs flagged per timeout (5 s, 1 s, 500 ms, 100 ms).
    pub tp: [usize; 4],
    /// Distinct UI actions falsely flagged per timeout.
    pub fp: [usize; 4],
}

/// The whole table.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table2 {
    /// Per-app rows, Table 1 order.
    pub rows: Vec<Table2Row>,
}

impl Table2 {
    /// Column totals: `(tp, fp)` per timeout.
    pub fn totals(&self) -> ([usize; 4], [usize; 4]) {
        let mut tp = [0; 4];
        let mut fp = [0; 4];
        for row in &self.rows {
            for i in 0..4 {
                tp[i] += row.tp[i];
                fp[i] += row.fp[i];
            }
        }
        (tp, fp)
    }

    /// Total ground-truth bugs across all apps (paper: 19).
    pub fn total_bugs(&self) -> usize {
        self.rows.iter().map(|r| r.total_bugs).sum()
    }

    /// Renders the paper-style table.
    pub fn render(&self) -> String {
        let headers = [
            "App Name", "TP 5s", "TP 1s", "TP 500ms", "TP 100ms", "FP 5s", "FP 1s", "FP 500ms",
            "FP 100ms",
        ];
        let mut rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                let mut cells = vec![r.app.clone()];
                cells.extend(r.tp.iter().map(|v| v.to_string()));
                cells.extend(r.fp.iter().map(|v| v.to_string()));
                cells
            })
            .collect();
        let (tp, fp) = self.totals();
        let total_bugs = self.total_bugs();
        let mut total_row = vec!["TOTAL".to_string()];
        total_row.extend(tp.iter().map(|v| format!("{v}/{total_bugs}")));
        total_row.extend(fp.iter().map(|v| v.to_string()));
        rows.push(total_row);
        format!(
            "Table 2 — Timeout-based detection vs timeout value\n{}",
            render_table(&headers, &rows)
        )
    }
}

/// Runs the experiment. `executions_per_action` controls trace length.
pub fn run(seed: u64, executions_per_action: usize) -> Table2 {
    let mut rows = Vec::new();
    for app in table1::apps() {
        let compiled = CompiledApp::new(app.clone());
        let mut rng = SimRng::seed_from_u64(seed ^ app.name.len() as u64);
        let schedule = generate_schedule(
            &app,
            TraceParams {
                actions: executions_per_action * app.actions.len(),
                think_min_ms: 1_200,
                think_max_ms: 3_000,
            },
            &mut rng,
        );
        let mut tp = [0; 4];
        let mut fp = [0; 4];
        for (i, &timeout) in TIMEOUTS.iter().enumerate() {
            let outcome =
                run_detector_compiled(&compiled, &schedule, seed, DetectorKind::Ti(timeout), None);
            tp[i] = bugs_flagged(&outcome.records, &outcome.truths, &outcome.flagged).len();
            fp[i] = ui_actions_flagged(&outcome.records, &outcome.truths, &outcome.flagged).len();
        }
        // Sanity channel: bugs that manifested in this trace at all.
        let baseline = run_detector_compiled(&compiled, &schedule, seed, DetectorKind::None, None);
        let _manifested = bugs_manifested(&baseline.records, &baseline.truths);
        rows.push(Table2Row {
            app: app.name.clone(),
            total_bugs: app.bugs.len(),
            tp,
            fp,
        });
    }
    Table2 { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_shape_matches_paper() {
        let t = run(42, 6);
        assert_eq!(t.rows.len(), 8);
        assert_eq!(t.total_bugs(), 19);
        let (tp, fp) = t.totals();
        // 5 s (ANR) misses everything.
        assert_eq!(tp[0], 0, "5 s TP {tp:?}");
        assert_eq!(fp[0], 0);
        // 1 s catches only the > 1 s Seadroid bug, no FPs.
        assert!(tp[1] <= 2 && tp[1] >= 1, "1 s TP {tp:?}");
        assert_eq!(fp[1], 0, "1 s FP {fp:?}");
        // 500 ms catches the two long bugs and a few UI actions.
        assert!(tp[2] >= 2 && tp[2] <= 4, "500 ms TP {tp:?}");
        assert!(fp[2] >= 2, "500 ms FP {fp:?}");
        // 100 ms catches every bug but explodes in false positives.
        assert_eq!(tp[3], 19, "100 ms TP {tp:?}");
        assert!(fp[3] >= 20, "100 ms FP {fp:?}");
        assert!(fp[3] > 3 * fp[2], "FP must explode at 100 ms");
        // Monotonicity in the timeout.
        for i in 0..3 {
            assert!(tp[i] <= tp[i + 1]);
            assert!(fp[i] <= fp[i + 1]);
        }
    }

    #[test]
    fn render_includes_totals() {
        let t = run(7, 3);
        let s = t.render();
        assert!(s.contains("TOTAL"));
        assert!(s.contains("A Better Camera"));
    }
}
