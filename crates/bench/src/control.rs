//! Control-plane differential and load bench.
//!
//! ## The differential (`CONTROL_differential.json`)
//!
//! The whole point of the control plane is that a threshold pushed over
//! the wire is *the same configuration* as one a developer bakes into
//! the build. This harness proves it: the identical fleet matrix runs
//! twice — once with the retrained [`SymptomThresholds`] configured
//! locally in the [`FleetSpec`], once with the paper defaults plus a
//! full canary → expanded → full rollout pushed through a real loopback
//! [`TelemetryServer`] in the `hang-doctor/control/v1` dialect — and
//! the two detection outcomes (the merged fleet plus every per-device
//! report; wall-clock timing excluded) must serialize to the **same
//! bytes**. A third run with the untouched defaults must *differ*, so
//! the gate cannot pass vacuously on a threshold that changes nothing.
//!
//! The chaos arm repeats the pushed run with control-frame loss, delay,
//! and duplication injected at the given rate
//! ([`CtrlFaultConfig::chaos`]): the client's resend/absorb recovery
//! plus the controller's idempotent request semantics must deliver the
//! byte-identical outcome anyway.
//!
//! ## The bench (`BENCH_control.json`)
//!
//! Control traffic rides the same sockets and I/O workers as ingest, so
//! it must not cost ingest its throughput guard. The bench runs the
//! `BENCH_telemetry.json` pipelined upload workload twice in the same
//! process — once alone, once with a concurrent [`ControlClient`]
//! probing state in a tight loop — and records the control round-trip
//! percentiles plus the ingest *retention* (with-control rate over
//! ingest-only rate), guarded by [`INGEST_RETENTION_FLOOR`]. The ratio
//! is what transfers across machines; the committed absolute snapshot
//! ([`INGEST_SNAPSHOT_REPORTS_PER_SEC`]) rides along for context.

use std::collections::{BTreeMap, VecDeque};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;
use std::time::{Duration, Instant};

use hangdoctor::{FaultConfig, HangDoctorConfig, SymptomThresholds};
use hd_control::{CohortHealth, ControlAgent, RolloutSpec, RolloutStage, SyncReport};
use hd_faults::CtrlFaultConfig;
use hd_fleet::{
    run_fleet_with_reports, run_fleet_with_reports_overridden, DeviceOverride, DeviceProfile,
    FleetSpec, JobReport,
};
use hd_metrics::percentile_u64;
use hd_telemetry::{
    bench::synthetic_batch, ControlClient, PipelinedUploader, TelemetryError, TelemetryServer,
    Uploader,
};
use serde::{Deserialize, Serialize};

/// Schema tag of `CONTROL_differential.json`.
pub const CONTROL_DIFF_SCHEMA: &str = "hang-doctor/control-differential/v1";

/// Schema tag of `BENCH_control.json`.
pub const CONTROL_BENCH_SCHEMA: &str = "hang-doctor/control-bench/v1";

/// The committed `BENCH_telemetry.json` ingest snapshot the control
/// bench is contextualized against, reports per second.
pub const INGEST_SNAPSHOT_REPORTS_PER_SEC: f64 = 110_000.0;

/// Fraction of the same-process ingest-only rate the with-control leg
/// must retain. A ratio guard, not an absolute one: CI runners and dev
/// boxes differ wildly in absolute throughput, but control traffic
/// stealing more than this much ingest is a regression anywhere.
pub const INGEST_RETENTION_FLOOR: f64 = 0.80;

/// Machine-readable result of one pushed-vs-local differential run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ControlDifferential {
    /// Schema tag, bumped on incompatible changes.
    pub schema: String,
    /// Wire dialect the pushed arm negotiated.
    pub dialect: String,
    /// Root seed of the fleet matrix.
    pub seed: u64,
    /// Control-frame chaos rate of the pushed arm (0 = clean).
    pub chaos_rate: f64,
    /// Devices in the matrix.
    pub devices: usize,
    /// Rollout stages the push traversed, in order.
    pub stages: Vec<String>,
    /// The retrained thresholds both arms ran.
    pub pushed: SymptomThresholds,
    /// Devices whose final directives carried the pushed thresholds.
    pub devices_directed: usize,
    /// Control frames the fault plan destroyed outright.
    pub frames_lost: u64,
    /// Control frames the fault plan delayed.
    pub frames_delayed: u64,
    /// Control frames the fault plan duplicated.
    pub frames_duplicated: u64,
    /// Requests the client re-sent to recover a lost frame.
    pub resends: u64,
    /// Duplicate responses the client absorbed.
    pub duplicates_absorbed: u64,
    /// Whether pushed-arm detection matched the local arm byte-for-byte.
    pub pushed_identical: bool,
    /// Whether the untouched-defaults run differed from the local arm
    /// (i.e. the pushed thresholds demonstrably change detection).
    pub baseline_differs: bool,
}

impl ControlDifferential {
    /// The differential passes only if the push reproduced the local
    /// configuration exactly *and* the thresholds weren't a no-op.
    pub fn passed(&self) -> bool {
        self.pushed_identical && self.baseline_differs
    }

    /// Renders a human-readable summary.
    pub fn render(&self) -> String {
        format!(
            "control differential (seed {}, chaos {:.2}): {} devices, rollout {} → \
             {} directed — pushed {} local arm, baseline {} \
             (lost {} / delayed {} / duplicated {} frames; {} resends, {} dup ACKs absorbed)\n\
             verdict: {}",
            self.seed,
            self.chaos_rate,
            self.devices,
            self.stages.join(" → "),
            self.devices_directed,
            if self.pushed_identical {
                "byte-identical to"
            } else {
                "DIVERGED from"
            },
            if self.baseline_differs {
                "differs (thresholds are live)"
            } else {
                "IDENTICAL (vacuous push)"
            },
            self.frames_lost,
            self.frames_delayed,
            self.frames_duplicated,
            self.resends,
            self.duplicates_absorbed,
            if self.passed() { "PASS" } else { "FAIL" },
        )
    }
}

/// The retrained thresholds the differential pushes: a
/// stricter-precision filter than the paper default (every counter cut
/// raised), aggressive enough to move detection outcomes on the study
/// corpus (the `baseline_differs` leg asserts it does).
pub fn retrained_thresholds() -> SymptomThresholds {
    SymptomThresholds {
        context_switch_diff: 12.0,
        task_clock_diff: 2.5e8,
        page_fault_diff: 800.0,
    }
}

/// The differential's fleet matrix: three study apps, two devices each,
/// paper-default configuration.
fn diff_spec(seed: u64) -> FleetSpec {
    FleetSpec {
        apps: vec![
            hd_appmodel::corpus::table5::k9mail(),
            hd_appmodel::corpus::table5::omninotes(),
            hd_appmodel::corpus::table5::cyclestreets(),
        ],
        profiles: DeviceProfile::default_set(),
        devices_per_app: 2,
        executions_per_action: 4,
        root_seed: seed,
        threads: 2,
        config: HangDoctorConfig::default(),
        apidb_year: 2017,
        faults: FaultConfig::none(),
    }
}

/// Canonical bytes of a fleet run's *detection outcome*: the merged
/// fleet plus every per-device job report, with wall-clock timing
/// excluded (it can never be reproducible).
fn outcome_bytes(merged: &hd_fleet::MergedFleet, jobs: &[JobReport]) -> String {
    serde_json::to_string(&(merged, jobs)).expect("fleet outcome serializes")
}

/// The `(device, app)` matrix of a spec, in stable job-index order.
fn device_apps(spec: &FleetSpec) -> Vec<(u32, String)> {
    let mut out = Vec::with_capacity(spec.jobs());
    for (app_idx, app) in spec.apps.iter().enumerate() {
        for d in 0..spec.devices_per_app {
            let index = app_idx * spec.devices_per_app as usize + d as usize;
            out.push((index as u32 + 1, app.name.clone()));
        }
    }
    out
}

/// Runs the pushed-vs-local differential at the given control-frame
/// chaos rate (0 = clean).
pub fn run_control_diff(seed: u64, chaos_rate: f64) -> ControlDifferential {
    let spec = diff_spec(seed);
    let pushed = retrained_thresholds();
    let devices = device_apps(&spec);

    // Arm A — the reference: the retrained thresholds configured
    // locally, the way a developer would bake them into a build.
    let local_config = HangDoctorConfig::builder()
        .thresholds(pushed)
        .build()
        .expect("retrained thresholds pass builder validation");
    let mut local_spec = spec.clone();
    local_spec.config = local_config;
    let (local_report, local_jobs) = run_fleet_with_reports(&local_spec);
    let local_bytes = outcome_bytes(&local_report.merged, &local_jobs);

    // Arm C — untouched defaults, to prove the thresholds are live.
    let (default_report, default_jobs) = run_fleet_with_reports(&spec);
    let baseline_differs = outcome_bytes(&default_report.merged, &default_jobs) != local_bytes;

    // Arm B — the same thresholds pushed through a real loopback server
    // with a full staged rollout, then materialized as per-device
    // overrides on the *default* spec.
    let server = TelemetryServer::builder()
        .addr("127.0.0.1:0")
        .shards(2)
        .queue_capacity(64)
        .io_workers(1)
        .start()
        .expect("bind loopback control server");
    let cfg = if chaos_rate > 0.0 {
        CtrlFaultConfig::chaos(chaos_rate)
    } else {
        CtrlFaultConfig::none()
    };
    // One client drives the whole fleet's sync traffic; device 0 keys
    // its fault stream (the devices' own ids key nothing here — faults
    // hit the shared control connection).
    let mut ctl = ControlClient::with_faults(server.local_addr(), cfg, seed, 0);

    let mut agents: Vec<ControlAgent> = devices
        .iter()
        .map(|(device, app)| ControlAgent::new(*device, app, spec.config.clone()))
        .collect();

    let baseline = spec.config.thresholds;
    ctl.push_thresholds(RolloutSpec {
        thresholds: pushed,
        baseline,
    })
    .expect("push rollout");

    // Stage by stage: advance, then one healthy sync round so every
    // covered device picks up its directives.
    let mut stages = Vec::new();
    for stage in RolloutStage::ALL {
        let status = if stage == RolloutStage::Canary {
            // PushThresholds starts the rollout at canary.
            ctl.rollout_status().expect("rollout status")
        } else {
            ctl.advance_rollout(stage).expect("advance rollout")
        };
        assert!(!status.rolled_back, "healthy fleet must not roll back");
        stages.push(status.stage);
        for agent in &mut agents {
            let directives = ctl.sync(agent.sync_report()).expect("sync device");
            agent
                .apply(&directives)
                .expect("pushed thresholds pass builder validation");
        }
    }
    let tally = ctl.tally();
    ctl.shutdown().expect("server shutdown");
    server.join();

    // Materialize the final directives as per-device overrides.
    let base_bytes = serde_json::to_string(&spec.config).expect("config serializes");
    let mut overrides: BTreeMap<u32, DeviceOverride> = BTreeMap::new();
    for agent in &agents {
        if serde_json::to_string(agent.config()).expect("config serializes") != base_bytes {
            overrides.insert(
                agent.device(),
                DeviceOverride {
                    config: Some(agent.config().clone()),
                    faults: None,
                },
            );
        }
    }
    let devices_directed = overrides.len();
    let (pushed_report, pushed_jobs) = run_fleet_with_reports_overridden(&spec, &overrides);
    let pushed_identical = outcome_bytes(&pushed_report.merged, &pushed_jobs) == local_bytes;

    ControlDifferential {
        schema: CONTROL_DIFF_SCHEMA.to_string(),
        dialect: hd_control::CONTROL_SCHEMA.to_string(),
        seed,
        chaos_rate,
        devices: devices.len(),
        stages,
        pushed,
        devices_directed,
        frames_lost: tally.frames_lost,
        frames_delayed: tally.frames_delayed,
        frames_duplicated: tally.frames_duplicated,
        resends: tally.resends,
        duplicates_absorbed: tally.duplicates_absorbed,
        pushed_identical,
        baseline_differs,
    }
}

/// Machine-readable result of one control-under-ingest-load run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ControlBench {
    /// Schema tag, bumped on incompatible changes.
    pub schema: String,
    /// Concurrent pipelined uploader threads.
    pub clients: usize,
    /// Batches each uploader delivered.
    pub batches_per_client: usize,
    /// Reports packed into each batch.
    pub reports_per_batch: usize,
    /// Control round trips completed while ingest ran.
    pub control_round_trips: u64,
    /// Median control round-trip latency, µs.
    pub control_p50_us: u64,
    /// 99th-percentile control round-trip latency, µs.
    pub control_p99_us: u64,
    /// Hang reports ingested during the measured window.
    pub ingest_reports: u64,
    /// With-control ingest wall time, ms.
    pub wall_ms: u64,
    /// Ingest throughput of the same workload with **no** control
    /// traffic, measured first in the same process — the baseline leg.
    pub ingest_only_reports_per_second: f64,
    /// Ingest throughput achieved *while* control probing ran.
    pub ingest_reports_per_second: f64,
    /// `ingest_reports_per_second / ingest_only_reports_per_second`.
    pub ingest_retention: f64,
    /// The retention floor this bench is held to.
    pub retention_floor: f64,
    /// Whether the with-control leg cleared the retention floor.
    pub guard_met: bool,
    /// The committed absolute ingest snapshot, for context.
    pub ingest_snapshot_reference: f64,
}

impl ControlBench {
    /// Renders a human-readable summary line.
    pub fn render(&self) -> String {
        format!(
            "control bench: {} uploaders × {} batches × {} reports alongside {} control \
             round trips — control p50 {} µs p99 {} µs; ingest {:.0} reports/s alone, \
             {:.0} with control ({:.0}% retained, floor {:.0}%: {})",
            self.clients,
            self.batches_per_client,
            self.reports_per_batch,
            self.control_round_trips,
            self.control_p50_us,
            self.control_p99_us,
            self.ingest_only_reports_per_second,
            self.ingest_reports_per_second,
            self.ingest_retention * 100.0,
            self.retention_floor * 100.0,
            if self.guard_met { "met" } else { "MISSED" },
        )
    }
}

/// One pipelined ingest client, as in the telemetry bench: window of
/// pre-encoded frames in flight, NACKs re-sent in place.
fn ingest_client(addr: SocketAddr, frames: &[Vec<u8>], window: usize) {
    let mut up = PipelinedUploader::connect(addr).expect("bench uploader connect");
    let mut pending: VecDeque<usize> = VecDeque::with_capacity(window);
    let mut next = 0usize;
    let mut completed = 0usize;
    while completed < frames.len() {
        while pending.len() < window && next < frames.len() {
            up.send_encoded(&frames[next]).expect("bench send");
            pending.push_back(next);
            next += 1;
        }
        match up.recv() {
            Ok(_) => {
                pending.pop_front();
                completed += 1;
            }
            Err(TelemetryError::Nack { retry_after_ms }) => {
                let idx = pending.pop_front().expect("nack matches in-flight");
                thread::sleep(Duration::from_millis(retry_after_ms));
                up.send_encoded(&frames[idx]).expect("bench re-send");
                pending.push_back(idx);
            }
            Err(e) => panic!("bench upload failed: {e}"),
        }
    }
}

/// One bench leg against a fresh loopback server: the full pipelined
/// upload workload, with concurrent control probing when `probe` is
/// set. Returns `(reports ingested, wall, control latencies µs)`.
fn ingest_leg(frames: &[Vec<Vec<u8>>], probe: bool) -> (u64, Duration, Vec<u64>) {
    let server = TelemetryServer::builder()
        .addr("127.0.0.1:0")
        .shards(4)
        .queue_capacity(256)
        .io_workers(2)
        .nack_retry_ms(1)
        .start()
        .expect("bind loopback bench server");
    let addr = server.local_addr();

    // Seed one device's state so the probes exercise a real lookup.
    let mut ctl = ControlClient::connect(addr);
    if probe {
        ctl.sync(SyncReport {
            device: 1,
            app: "bench-app-1".to_string(),
            states: vec![],
            stack: None,
            health: CohortHealth::default(),
        })
        .expect("seed control state");
    }

    let ingest_done = AtomicBool::new(false);
    let started = Instant::now();
    let mut latencies: Vec<u64> = Vec::new();
    let mut wall = Duration::ZERO;
    thread::scope(|scope| {
        let handles: Vec<_> = frames
            .iter()
            .map(|frames| scope.spawn(|| ingest_client(addr, frames, 32)))
            .collect();
        // Probe until ingest drains: alternate a state query and a
        // device sync, the two hot control verbs.
        let mut i = 0u64;
        while probe && !ingest_done.load(Ordering::Relaxed) {
            let probe_start = Instant::now();
            if i.is_multiple_of(2) {
                ctl.query_state(1).expect("probe query");
            } else {
                ctl.sync(SyncReport {
                    device: 1,
                    app: "bench-app-1".to_string(),
                    states: vec![],
                    stack: None,
                    health: CohortHealth::default(),
                })
                .expect("probe sync");
            }
            latencies.push(probe_start.elapsed().as_micros() as u64);
            i += 1;
            if handles.iter().all(|h| h.is_finished()) {
                ingest_done.store(true, Ordering::Relaxed);
            }
        }
        for h in handles {
            h.join().expect("bench uploader");
        }
        wall = started.elapsed();
    });
    drop(ctl);

    let mut shutdown = Uploader::plain(addr);
    shutdown.shutdown().expect("bench shutdown");
    let stats = server.join();
    (stats.ingest.reports_ingested, wall, latencies)
}

/// Runs the control-under-load bench: the identical pipelined ingest
/// workload twice — once alone (the baseline leg), once with a
/// concurrent control client probing in a tight loop — and guards the
/// with-control leg's ingest retention.
pub fn run_control_bench(
    clients: usize,
    batches_per_client: usize,
    reports_per_batch: usize,
) -> ControlBench {
    // Pre-encode the ingest load so the clock measures the wire, not
    // the harness's serialization.
    let frames: Vec<Vec<Vec<u8>>> = (0..clients)
        .map(|client| {
            (0..batches_per_client as u64)
                .map(|seq| {
                    PipelinedUploader::encode_upload(&synthetic_batch(
                        client,
                        seq,
                        reports_per_batch,
                    ))
                })
                .collect()
        })
        .collect();

    // Best-of-3 per leg: on small or contended machines a single run's
    // wall time is dominated by scheduler noise; the minimum wall is
    // the honest capacity estimate for both legs.
    let baseline_wall = (0..3)
        .map(|_| ingest_leg(&frames, false).1)
        .min()
        .expect("three baseline legs");
    let (reports, wall, latencies) = (0..3)
        .map(|_| ingest_leg(&frames, true))
        .min_by_key(|(_, wall, _)| *wall)
        .expect("three control legs");

    let baseline_rate = reports as f64 / baseline_wall.as_secs_f64().max(1e-9);
    let rate = reports as f64 / wall.as_secs_f64().max(1e-9);
    let retention = rate / baseline_rate.max(1e-9);
    ControlBench {
        schema: CONTROL_BENCH_SCHEMA.to_string(),
        clients,
        batches_per_client,
        reports_per_batch,
        control_round_trips: latencies.len() as u64,
        control_p50_us: percentile_u64(&latencies, 50.0),
        control_p99_us: percentile_u64(&latencies, 99.0),
        ingest_reports: reports,
        wall_ms: wall.as_millis() as u64,
        ingest_only_reports_per_second: baseline_rate,
        ingest_reports_per_second: rate,
        ingest_retention: retention,
        retention_floor: INGEST_RETENTION_FLOOR,
        guard_met: retention >= INGEST_RETENTION_FLOOR,
        ingest_snapshot_reference: INGEST_SNAPSHOT_REPORTS_PER_SEC,
    }
}

/// Machine-readable result of one live-probe session (`repro control`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ControlProbeOutcome {
    /// Wire dialect the probe negotiated.
    pub dialect: String,
    /// Devices whose harvested runs were synced to the server.
    pub devices_synced: usize,
    /// The device the state-table query and stack pull targeted.
    pub device: u32,
    /// The queried per-action S-Checker state table.
    pub states: Vec<(u64, hangdoctor::ActionState, u32)>,
    /// The on-demand stack dump, if the device had a hung action.
    pub stack: Option<hd_control::StackDump>,
    /// App whose diagnosis was toggled off and back on.
    pub toggled_app: String,
    /// Rollout status, if a threshold rollout is in progress.
    pub rollout: Option<hd_control::RolloutStatusInfo>,
}

impl ControlProbeOutcome {
    /// Renders a human-readable summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "control probe ({}): synced {} device runs; device {} state table has {} actions\n",
            self.dialect,
            self.devices_synced,
            self.device,
            self.states.len()
        );
        for (uid, state, executions) in &self.states {
            out.push_str(&format!(
                "  action {uid}: {state:?} after {executions} executions\n"
            ));
        }
        match &self.stack {
            Some(stack) => out.push_str(&format!(
                "stack dump from '{}' ({} ms response):\n  {}\n",
                stack.action,
                stack.response_ns / 1_000_000,
                stack.frames.join("\n  ")
            )),
            None => out.push_str(&format!(
                "device {} has no hung action to dump\n",
                self.device
            )),
        }
        out.push_str(&format!(
            "diagnosis toggled off and back on for '{}'\n",
            self.toggled_app
        ));
        match &self.rollout {
            Some(s) => out.push_str(&format!(
                "rollout: {} (cohort {}/{} bad, rest {}/{} bad)\n",
                s.stage, s.cohort_bad, s.cohort_devices, s.rest_bad, s.rest_devices
            )),
            None => out.push_str("no threshold rollout in progress\n"),
        }
        out
    }
}

/// Builds a control client for `addr`, with chaos-rate fault injection
/// when requested.
fn control_client(addr: SocketAddr, seed: u64, chaos: Option<f64>) -> ControlClient {
    match chaos {
        Some(rate) if rate > 0.0 => {
            ControlClient::with_faults(addr, CtrlFaultConfig::chaos(rate), seed, 0)
        }
        _ => ControlClient::connect(addr),
    }
}

/// Live-probes a running server: harvests one real Hang Doctor run per
/// study app through a [`ControlAgent`], syncs the agents' state tables
/// up, then exercises every probe verb — state-table query, on-demand
/// stack pull, per-app diagnosis toggle, rollout status.
pub fn run_control_probe(
    addr: SocketAddr,
    seed: u64,
    executions: usize,
    chaos: Option<f64>,
    device: u32,
) -> Result<ControlProbeOutcome, TelemetryError> {
    use hangdoctor::HangDoctor;
    use hd_appmodel::{build_run, round_robin_schedule, CompiledApp};
    use hd_simrt::SimConfig;

    let mut ctl = control_client(addr, seed, chaos);
    let apps = [
        hd_appmodel::corpus::table5::k9mail(),
        hd_appmodel::corpus::table5::omninotes(),
        hd_appmodel::corpus::table5::cyclestreets(),
    ];
    let mut synced = 0usize;
    for (i, app) in apps.iter().enumerate() {
        let dev = i as u32 + 1;
        let compiled = CompiledApp::new(app.clone());
        let sched = round_robin_schedule(app, executions, 3_000);
        let mut run = build_run(
            &compiled,
            &sched,
            SimConfig::default(),
            seed.wrapping_add(i as u64),
        );
        let (probe, out) = HangDoctor::new(
            HangDoctorConfig::default(),
            &app.name,
            &app.package,
            dev,
            None,
        );
        run.sim.add_probe(Box::new(probe));
        run.sim.run();
        let out = out.borrow();
        let mut agent = ControlAgent::new(dev, &app.name, HangDoctorConfig::default());
        agent.observe(&out);
        let directives = ctl.sync(agent.sync_report())?;
        agent
            .apply(&directives)
            .expect("server directives pass builder validation");
        synced += 1;
    }

    let states = ctl.query_state(device)?;
    let stack = ctl.pull_stack(device)?;
    let toggled_app = apps[0].name.clone();
    ctl.toggle_diagnosis(&toggled_app, false)?;
    ctl.toggle_diagnosis(&toggled_app, true)?;
    // No rollout in progress is a normal answer, not a probe failure.
    let rollout = ctl.rollout_status().ok();

    Ok(ControlProbeOutcome {
        dialect: hd_control::CONTROL_SCHEMA.to_string(),
        devices_synced: synced,
        device,
        states,
        stack,
        toggled_app,
        rollout,
    })
}

/// Machine-readable result of one retrain-and-push session
/// (`repro push-thresholds`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PushOutcome {
    /// Whether the heavy (exhaustive) adaptation pass produced the push.
    pub heavy: bool,
    /// Training confusion before adaptation: `(tp, fp, fn, tn)`.
    pub before: (usize, usize, usize, usize),
    /// Training confusion after.
    pub after: (usize, usize, usize, usize),
    /// The thresholds the retrain derived and pushed.
    pub thresholds: SymptomThresholds,
    /// Rollout status after each stage, canary first.
    pub statuses: Vec<hd_control::RolloutStatusInfo>,
}

impl PushOutcome {
    /// Renders a human-readable summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} retrain: confusion {:?} → {:?}; pushed thresholds \
             cs {:.1} / tc {:.2e} / pf {:.1}\n",
            if self.heavy { "heavy" } else { "light" },
            self.before,
            self.after,
            self.thresholds.context_switch_diff,
            self.thresholds.task_clock_diff,
            self.thresholds.page_fault_diff,
        );
        for s in &self.statuses {
            out.push_str(&format!(
                "  stage {}: cohort {}/{} bad, rest {}/{} bad{}\n",
                s.stage,
                s.cohort_bad,
                s.cohort_devices,
                s.rest_bad,
                s.rest_devices,
                if s.rolled_back {
                    " — ROLLED BACK"
                } else {
                    ""
                },
            ));
        }
        out
    }
}

/// Retrains thresholds on the labeled training set (`hd-core::trainer`
/// plus the light or heavy adaptation pass) and pushes them to a
/// running server as a full staged rollout, reporting cohort health
/// after every stage.
pub fn run_push_thresholds(
    addr: SocketAddr,
    seed: u64,
    executions: usize,
    heavy: bool,
    chaos: Option<f64>,
) -> Result<PushOutcome, TelemetryError> {
    use hangdoctor::{
        collect_samples, heavy_adaptation, light_adaptation, paper_filter, thresholds_from_filter,
        training_set, DiffMode,
    };

    let samples = collect_samples(&training_set(), executions, seed);
    let base = SymptomThresholds::default();
    let out = if heavy {
        heavy_adaptation(&samples, DiffMode::MainMinusRender, 3)
    } else {
        light_adaptation(&paper_filter(base), &samples, DiffMode::MainMinusRender)
    };
    let thresholds = thresholds_from_filter(&out.filter, base);

    let mut ctl = control_client(addr, seed, chaos);
    let mut statuses = Vec::new();
    statuses.push(ctl.push_thresholds(RolloutSpec {
        thresholds,
        baseline: base,
    })?);
    for stage in [RolloutStage::Expanded, RolloutStage::Full] {
        let status = ctl.advance_rollout(stage)?;
        let rolled_back = status.rolled_back;
        statuses.push(status);
        if rolled_back {
            break;
        }
    }
    Ok(PushOutcome {
        heavy,
        before: out.before,
        after: out.after,
        thresholds,
        statuses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hd_control::{device_bucket, ControlRequest, ControlResponse};
    use hd_faults::FaultCategory;

    #[test]
    fn clean_differential_is_byte_identical_and_non_vacuous() {
        let diff = run_control_diff(42, 0.0);
        assert_eq!(diff.schema, CONTROL_DIFF_SCHEMA);
        assert_eq!(diff.dialect, "hang-doctor/control/v1");
        assert_eq!(diff.stages, vec!["canary", "expanded", "full"]);
        assert_eq!(diff.devices_directed, diff.devices);
        assert!(diff.pushed_identical, "{}", diff.render());
        assert!(diff.baseline_differs, "{}", diff.render());
        assert!(diff.passed());
        assert_eq!(diff.frames_lost, 0);
    }

    #[test]
    fn chaotic_differential_recovers_to_the_same_bytes() {
        let diff = run_control_diff(42, 0.4);
        assert!(diff.passed(), "{}", diff.render());
        assert!(
            diff.frames_lost + diff.frames_delayed + diff.frames_duplicated > 0,
            "chaos at 0.4 must actually injure the control stream"
        );
        assert!(diff.resends >= diff.frames_lost);
    }

    #[test]
    fn fault_injected_canary_regression_rolls_back_end_to_end() {
        // A one-app fleet sized so device 20 — the smallest id hashing
        // into the 1% canary cohort — exists, with total sample loss
        // injected on that device alone. Its aborted diagnosis sessions
        // are the regression signal; every other device stays clean.
        let canary = (1u32..10_000)
            .find(|&d| device_bucket(d) < RolloutStage::Canary.cutoff())
            .expect("some device hashes into the canary cohort");
        let mut spec = diff_spec(7);
        spec.apps = vec![hd_appmodel::corpus::table5::k9mail()];
        spec.devices_per_app = canary + 4;
        spec.threads = 4;
        spec.executions_per_action = 3;
        let mut overrides = BTreeMap::new();
        overrides.insert(
            canary,
            DeviceOverride {
                config: None,
                faults: Some(FaultConfig::only(FaultCategory::DroppedSample, 1.0)),
            },
        );
        let (_, jobs) = run_fleet_with_reports_overridden(&spec, &overrides);
        let bad = jobs[canary as usize - 1].faults.sessions_aborted;
        assert!(bad >= 2, "total sample loss must abort sessions, got {bad}");

        // Feed the fleet's real health tallies through the wire.
        let server = TelemetryServer::builder()
            .addr("127.0.0.1:0")
            .shards(2)
            .queue_capacity(64)
            .io_workers(1)
            .start()
            .expect("bind loopback control server");
        let mut ctl = ControlClient::connect(server.local_addr());
        ctl.push_thresholds(RolloutSpec {
            thresholds: retrained_thresholds(),
            baseline: SymptomThresholds::default(),
        })
        .expect("push rollout");
        for job in &jobs {
            let directives = ctl
                .sync(SyncReport {
                    device: job.device,
                    app: job.app.clone(),
                    states: vec![],
                    stack: None,
                    health: CohortHealth {
                        uploads: 1,
                        nacks: 0,
                        aborts: job.faults.sessions_aborted,
                    },
                })
                .expect("sync device");
            // Post-rollback syncs are pinned to the baseline; the
            // faulted canary device itself never keeps the new
            // thresholds past its own regression report.
            if let Some(t) = directives.thresholds {
                if device_bucket(job.device) >= RolloutStage::Canary.cutoff()
                    || job.device != canary
                {
                    assert_eq!(t, SymptomThresholds::default());
                }
            }
        }
        let status = ctl.rollout_status().expect("rollout status");
        assert!(status.rolled_back, "{status:?}");
        assert_eq!(status.stage, "rolled-back");
        // A late advance cannot resurrect the rollout, and every
        // device — cohort or not — now gets the baseline.
        let resurrect = ctl
            .request(&ControlRequest::AdvanceRollout {
                stage: RolloutStage::Full,
            })
            .expect("advance after rollback");
        match resurrect {
            ControlResponse::Rollout(s) => assert!(s.rolled_back),
            other => panic!("unexpected {other:?}"),
        }
        let directives = ctl
            .sync(SyncReport {
                device: canary + 1,
                app: "k9mail".to_string(),
                states: vec![],
                stack: None,
                health: CohortHealth::default(),
            })
            .expect("post-rollback sync");
        assert_eq!(directives.thresholds, Some(SymptomThresholds::default()));
        ctl.shutdown().expect("server shutdown");
        server.join();
    }

    #[test]
    fn probe_and_push_drive_a_loopback_server() {
        let server = TelemetryServer::builder()
            .addr("127.0.0.1:0")
            .shards(2)
            .queue_capacity(64)
            .io_workers(1)
            .start()
            .expect("bind loopback control server");
        let addr = server.local_addr();

        let probe = run_control_probe(addr, 21, 2, None, 1).expect("control probe");
        assert_eq!(probe.dialect, "hang-doctor/control/v1");
        assert_eq!(probe.devices_synced, 3);
        assert!(!probe.states.is_empty(), "k9mail run must record actions");
        assert!(probe.rollout.is_none());

        let push = run_push_thresholds(addr, 21, 2, false, None).expect("push thresholds");
        assert_eq!(push.statuses.len(), 3);
        assert_eq!(push.statuses[0].stage, "canary");
        assert_eq!(push.statuses[2].stage, "full");
        assert!(push.statuses.iter().all(|s| !s.rolled_back));

        // The probe again now sees the rollout.
        let probe = run_control_probe(addr, 21, 2, None, 1).expect("second probe");
        let rollout = probe.rollout.expect("rollout visible after push");
        assert_eq!(rollout.stage, "full");

        let mut ctl = ControlClient::connect(addr);
        ctl.shutdown().expect("server shutdown");
        server.join();
    }

    #[test]
    fn control_bench_probes_while_ingest_runs() {
        let bench = run_control_bench(2, 16, 4);
        assert_eq!(bench.schema, CONTROL_BENCH_SCHEMA);
        assert!(bench.control_round_trips > 0);
        assert!(bench.control_p99_us >= bench.control_p50_us);
        assert_eq!(bench.ingest_reports, 2 * 16 * 4);
        assert!(bench.ingest_only_reports_per_second > 0.0);
        assert!(bench.ingest_retention > 0.0);
        assert_eq!(bench.retention_floor, INGEST_RETENTION_FLOOR);
    }
}
