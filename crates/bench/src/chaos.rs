//! Chaos-vs-clean differential: what each fault category costs.
//!
//! The fault layer (`hd-faults`) can degrade every observation Hang
//! Doctor makes; the graceful-degradation machinery (retry-with-backoff,
//! partial S-Checks, session aborts) is supposed to contain the damage.
//! This harness quantifies the containment: the same fleet matrix is run
//! once clean, once per fault category (that category alone at the given
//! rate), and once with everything at once — identical corpus, seeds and
//! schedules throughout, so precision/recall movement is attributable to
//! the injected category alone.

use hangdoctor::{FaultCategory, FaultConfig, HangDoctorConfig};
use hd_fleet::{run_fleet, DeviceProfile, FleetSpec};
use hd_metrics::{ChaosDelta, ChaosDifferential};
use serde::{Deserialize, Serialize};

use crate::common::render_table;

/// The chaos differential study.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChaosStudy {
    /// Injection rate every faulted run used.
    pub rate: f64,
    /// Clean baseline plus one delta per category (and an `"all"` row).
    pub differential: ChaosDifferential,
}

impl ChaosStudy {
    /// Renders the per-category differential table.
    pub fn render(&self) -> String {
        let clean = &self.differential.clean;
        let rows: Vec<Vec<String>> = self
            .differential
            .deltas
            .iter()
            .map(|d| {
                vec![
                    d.category.clone(),
                    d.injected.to_string(),
                    d.recovered.to_string(),
                    format!("{:.3}", d.faulted.precision()),
                    format!("{:.3}", d.faulted.recall()),
                    format!("{:+.3}", -d.precision_loss(clean)),
                    format!("{:+.3}", -d.recall_loss(clean)),
                ]
            })
            .collect();
        format!(
            "Chaos differential at rate {:.2} — clean precision {:.3}, recall {:.3}\n{}",
            self.rate,
            clean.precision(),
            clean.recall(),
            render_table(
                &[
                    "category",
                    "injected",
                    "recovered",
                    "precision",
                    "recall",
                    "Δprecision",
                    "Δrecall",
                ],
                &rows
            )
        )
    }
}

fn spec(seed: u64, executions: usize, faults: FaultConfig) -> FleetSpec {
    FleetSpec {
        apps: vec![
            hd_appmodel::corpus::table5::k9mail(),
            hd_appmodel::corpus::table5::omninotes(),
            hd_appmodel::corpus::table5::cyclestreets(),
        ],
        profiles: DeviceProfile::default_set(),
        devices_per_app: 2,
        executions_per_action: executions,
        root_seed: seed,
        threads: 2,
        config: HangDoctorConfig::default(),
        apidb_year: 2017,
        faults,
    }
}

fn measure(
    seed: u64,
    executions: usize,
    category: &str,
    rate: f64,
    faults: FaultConfig,
) -> ChaosDelta {
    let report = run_fleet(&spec(seed, executions, faults));
    // A zero-rate "faulted" run legitimately carries no chaos report.
    let tally = report.chaos.map(|c| c.tally).unwrap_or_default();
    ChaosDelta {
        category: category.to_string(),
        rate,
        faulted: report.merged.confusion,
        injected: tally.injected(),
        recovered: tally.recovered(),
    }
}

/// Runs the differential: one clean fleet, one per-category fleet, one
/// all-categories fleet — all on the identical `(corpus, seed)` matrix.
pub fn run(seed: u64, rate: f64, executions: usize) -> ChaosStudy {
    let clean = run_fleet(&spec(seed, executions, FaultConfig::none()));
    assert!(clean.chaos.is_none());
    let mut deltas = Vec::new();
    for &category in &FaultCategory::ALL {
        deltas.push(measure(
            seed,
            executions,
            category.name(),
            rate,
            FaultConfig::only(category, rate),
        ));
    }
    deltas.push(measure(
        seed,
        executions,
        "all",
        rate,
        FaultConfig::chaos(rate),
    ));
    ChaosStudy {
        rate,
        differential: ChaosDifferential {
            clean: clean.merged.confusion,
            deltas,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn differential_covers_every_category_plus_all() {
        let study = run(42, 0.3, 2);
        let d = &study.differential;
        assert_eq!(d.deltas.len(), FaultCategory::ALL.len() + 1);
        // The baseline must not be vacuous.
        assert!(d.clean.tp > 0, "{:?}", d.clean);
        // High-frequency injection points must have fired.
        for name in ["counter-read", "stale-counter", "dropped-sample", "all"] {
            let delta = d.delta(name).expect(name);
            assert!(delta.injected > 0, "{name}: {delta:?}");
        }
        // Counter-read failures at 30% are mostly absorbed by retries.
        assert!(d.delta("counter-read").unwrap().recovered > 0);
        // A single-category run must tally only its own category: the
        // clock-jitter row recovers nothing (jitter is silent).
        let jitter = d.delta("clock-jitter").unwrap();
        assert_eq!(jitter.recovered, 0, "{jitter:?}");
        // Rendering mentions the movement columns.
        let text = study.render();
        assert!(text.contains("Δrecall"));
        assert!(text.contains("counter-read"));
    }

    #[test]
    fn zero_rate_differential_is_lossless() {
        let study = run(7, 0.0, 2);
        for delta in &study.differential.deltas {
            assert_eq!(delta.injected, 0);
            assert_eq!(delta.faulted, study.differential.clean, "{delta:?}");
        }
        assert_eq!(study.differential.worst_recall_loss(), 0.0);
        assert_eq!(study.differential.worst_precision_loss(), 0.0);
    }
}
