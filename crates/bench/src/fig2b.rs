//! Figure 2(b): the AndStatus Hang Bug Report, aggregated across
//! devices.
//!
//! The paper shows three report entries for AndStatus with per-device
//! occurrence percentages (e.g. `transform` seen on 74 devices, 75% of
//! executions). We run the app on several simulated devices, merge the
//! per-device reports, and render the fleet view.

use hangdoctor::{HangBugReport, HangDoctor, HangDoctorConfig, ReportEntry};
use hd_appmodel::corpus::table5;
use hd_appmodel::{build_run, generate_schedule, CompiledApp, TraceParams};
use hd_simrt::{SimConfig, SimRng};
use serde::{Deserialize, Serialize};

/// The aggregated report.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig2b {
    /// Devices simulated.
    pub devices: u32,
    /// Ordered report rows.
    pub entries: Vec<ReportEntry>,
    /// The rendered report text.
    pub rendered: String,
}

/// Runs AndStatus on `devices` devices and aggregates the reports.
pub fn run(seed: u64, devices: u32) -> Fig2b {
    let app = table5::andstatus();
    let compiled = CompiledApp::new(app.clone());
    let mut fleet = HangBugReport::new(&app.name);
    for device in 1..=devices {
        let mut rng = SimRng::seed_from_u64(seed ^ (device as u64) << 8);
        let schedule = generate_schedule(
            &app,
            TraceParams {
                actions: 60,
                think_min_ms: 1_200,
                think_max_ms: 4_000,
            },
            &mut rng,
        );
        let mut run = build_run(
            &compiled,
            &schedule,
            SimConfig::default(),
            seed.wrapping_add(device as u64 * 101),
        );
        let (probe, out) = HangDoctor::new(
            HangDoctorConfig::default(),
            &app.name,
            &app.package,
            device,
            None,
        );
        run.sim.add_probe(Box::new(probe));
        run.sim.run();
        fleet.merge(&out.borrow().report);
    }
    Fig2b {
        devices,
        entries: fleet.entries(),
        rendered: fleet.render(),
    }
}

impl Fig2b {
    /// Renders the figure.
    pub fn render(&self) -> String {
        format!(
            "Figure 2(b) — AndStatus Hang Bug Report across {} devices\n{}",
            self.devices, self.rendered
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_matches_the_figure_shape() {
        let f = run(42, 5);
        // Three bugs, like the paper's example.
        assert_eq!(f.entries.len(), 3, "{:#?}", f.entries);
        // transform (the figure's headline entry) is present and seen on
        // every device with a high occurrence percentage.
        let transform = f
            .entries
            .iter()
            .find(|e| e.symbol.contains("MyHtml.transform"))
            .expect("transform entry");
        assert_eq!(transform.devices, 5);
        assert!(
            transform.occurrence_pct() > 50.0,
            "{:.0}%",
            transform.occurrence_pct()
        );
        // Entries are sorted by occurrence percentage.
        for w in f.entries.windows(2) {
            assert!(w[0].occurrence_pct() >= w[1].occurrence_pct());
        }
        // transform is occasional (p≈0.75) while decode always fires, so
        // decode must sit above transform in the table.
        let pos = |needle: &str| {
            f.entries
                .iter()
                .position(|e| e.symbol.contains(needle))
                .unwrap()
        };
        assert!(pos("decodeFile") < pos("transform"));
    }
}
