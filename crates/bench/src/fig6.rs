//! Figure 6: the K9-mail walk-through — detecting `HtmlCleaner.clean`.
//!
//! The user opens a heavy email. The first execution hangs ~1.3 s; the
//! S-Checker reads a positive context-switch difference and marks the
//! action Suspicious. On the next hang the Diagnoser collects stack
//! traces; `clean` dominates them (96% occurrence in the paper) and is
//! reported with its file and line.

use hangdoctor::RootKind;
use hd_appmodel::corpus::table5;
use hd_appmodel::{CompiledApp, Schedule};
use hd_simrt::{SimTime, MILLIS};
use serde::{Deserialize, Serialize};

use crate::common::{run_detector_compiled, DetectorKind};

/// The walk-through outcome.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig6 {
    /// Response time of the first hanging execution, ms.
    pub first_response_ms: f64,
    /// S-Checker context-switch difference on the first hang.
    pub cs_diff: f64,
    /// Which symptoms fired.
    pub triggered: Vec<String>,
    /// Stack traces collected during the diagnosed hang.
    pub traces_collected: usize,
    /// Occurrence factor of the root cause.
    pub occurrence_factor: f64,
    /// Diagnosed root cause symbol.
    pub root_symbol: String,
    /// Source file of the culprit.
    pub root_file: String,
    /// Line number.
    pub root_line: u32,
}

impl Fig6 {
    /// Renders the narrative.
    pub fn render(&self) -> String {
        format!(
            "Figure 6 — K9-mail 'open email' walk-through\n\
             (a) S-Checker: input event hangs {:.0} ms; context-switch diff = {:+.0} \
             (triggered: {}) -> action becomes Suspicious\n\
             (b) Diagnoser: {} stack traces collected during the next hang;\n    \
             root cause = {} ({}:{}) with occurrence factor {:.0}% -> Hang Bug\n",
            self.first_response_ms,
            self.cs_diff,
            self.triggered.join(", "),
            self.traces_collected,
            self.root_symbol,
            self.root_file,
            self.root_line,
            100.0 * self.occurrence_factor,
        )
    }
}

/// Runs the walk-through: three consecutive "open email" executions.
pub fn run(seed: u64) -> Fig6 {
    let compiled = CompiledApp::new(table5::k9mail());
    let open_email = compiled
        .app()
        .actions
        .iter()
        .find(|a| a.name == "open email")
        .expect("k9 has open email")
        .uid;
    let schedule = Schedule {
        arrivals: (0..3)
            .map(|i| (SimTime::from_ms(400 + i * 4_000), open_email))
            .collect(),
    };
    let outcome = run_detector_compiled(&compiled, &schedule, seed, DetectorKind::HangDoctor, None);
    let hd = outcome.hd.expect("hang doctor output");
    let (uid, verdict) = hd
        .verdicts
        .first()
        .expect("first hang produces an S-Checker verdict");
    debug_assert_eq!(*uid, open_email);
    let detection = hd
        .detections
        .iter()
        .find(|d| d.is_bug())
        .expect("second hang produces a diagnosis");
    let root = detection.root.clone().expect("diagnosis has a root cause");
    debug_assert_eq!(root.kind, RootKind::BlockingApi);
    Fig6 {
        first_response_ms: outcome.records[0].max_response_ns() as f64 / MILLIS as f64,
        cs_diff: verdict.diffs.context_switches,
        triggered: verdict
            .triggered
            .iter()
            .map(|e| e.name().to_string())
            .collect(),
        traces_collected: detection.samples,
        occurrence_factor: root.occurrence_factor,
        root_symbol: root.symbol,
        root_file: root.file,
        root_line: root.line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walkthrough_matches_the_paper() {
        let f = run(42);
        // ~1.3 s hang.
        assert!(
            f.first_response_ms > 900.0,
            "response {:.0} ms",
            f.first_response_ms
        );
        // Positive context-switch difference triggers the S-Checker.
        assert!(f.cs_diff > 0.0, "cs diff {:.0}", f.cs_diff);
        assert!(f.triggered.iter().any(|t| t == "context-switches"));
        // The Diagnoser names clean with a dominant occurrence factor
        // (96% in the paper).
        assert_eq!(f.root_symbol, "org.htmlcleaner.HtmlCleaner.clean");
        assert_eq!(f.root_file, "HtmlCleaner.java");
        assert_eq!(f.root_line, 25);
        assert!(
            f.occurrence_factor > 0.85,
            "occurrence {:.2}",
            f.occurrence_factor
        );
        assert!(f.traces_collected > 50, "traces {}", f.traces_collected);
    }
}
