//! Shared experiment machinery: run one app trace under one detector.

use std::collections::HashSet;

use hangdoctor::{HangDoctor, HangDoctorConfig, HdOutput, SharedApiDb};
use hd_appmodel::{build_run, App, CompiledApp, ExecTruth, Schedule};
use hd_baselines::{
    install, DetectionLog, Detector, DetectorOutput, TimeoutDetector, UtilizationDetector,
};
use hd_metrics::OverheadReport;
use hd_perfmon::CostModel;
use hd_simrt::{ActionRecord, ExecId, MonitorCost, SimConfig, MILLIS};

/// Which detector to install.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DetectorKind {
    /// No detector (baseline resource usage).
    None,
    /// Timeout-based with the given timeout.
    Ti(u64),
    /// Utilization, low thresholds.
    UtLow,
    /// Utilization, high thresholds.
    UtHigh,
    /// Utilization low + timeout.
    UtLowTi,
    /// Utilization high + timeout.
    UtHighTi,
    /// Hang Doctor.
    HangDoctor,
}

impl DetectorKind {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> String {
        match self {
            DetectorKind::None => "none".into(),
            DetectorKind::Ti(t) => {
                if *t >= 1_000 * MILLIS {
                    format!("TI({}s)", t / (1_000 * MILLIS))
                } else {
                    format!("TI({}ms)", t / MILLIS)
                }
            }
            DetectorKind::UtLow => "UTL".into(),
            DetectorKind::UtHigh => "UTH".into(),
            DetectorKind::UtLowTi => "UTL+TI".into(),
            DetectorKind::UtHighTi => "UTH+TI".into(),
            DetectorKind::HangDoctor => "HD".into(),
        }
    }

    /// The six runtime detectors of Figure 8, in presentation order.
    pub fn figure8_set() -> Vec<DetectorKind> {
        vec![
            DetectorKind::Ti(100 * MILLIS),
            DetectorKind::UtLow,
            DetectorKind::UtHigh,
            DetectorKind::UtLowTi,
            DetectorKind::UtHighTi,
            DetectorKind::HangDoctor,
        ]
    }

    /// Constructs the detector behind this kind (`None` for
    /// [`DetectorKind::None`]).
    ///
    /// Everything downstream drives the result exclusively through the
    /// [`Detector`] trait.
    pub fn build(
        &self,
        app: &App,
        costs: CostModel,
        apidb: Option<SharedApiDb>,
    ) -> Option<Box<dyn Detector>> {
        match self {
            DetectorKind::None => None,
            DetectorKind::Ti(timeout) => Some(Box::new(
                TimeoutDetector::new(*timeout, 10 * MILLIS, costs).0,
            )),
            DetectorKind::UtLow => Some(Box::new(UtilizationDetector::low(costs).0)),
            DetectorKind::UtHigh => Some(Box::new(UtilizationDetector::high(costs).0)),
            DetectorKind::UtLowTi => Some(Box::new(UtilizationDetector::low_ti(costs).0)),
            DetectorKind::UtHighTi => Some(Box::new(UtilizationDetector::high_ti(costs).0)),
            DetectorKind::HangDoctor => Some(Box::new(
                HangDoctor::new(
                    HangDoctorConfig::default(),
                    &app.name,
                    &app.package,
                    1,
                    apidb,
                )
                .0,
            )),
        }
    }
}

/// Everything one instrumented run produced.
pub struct RunOutcome {
    /// Completed action records.
    pub records: Vec<ActionRecord>,
    /// Ground truth per execution.
    pub truths: Vec<ExecTruth>,
    /// Executions the detector flagged/traced.
    pub flagged: HashSet<ExecId>,
    /// Raw baseline log (None for Hang Doctor / None).
    pub log: Option<DetectionLog>,
    /// Hang Doctor output (None for baselines).
    pub hd: Option<HdOutput>,
    /// Charged monitoring cost.
    pub monitor: MonitorCost,
    /// Overhead relative to app resource use.
    pub overhead: OverheadReport,
}

/// Runs `app` over `schedule` with the chosen detector installed.
pub fn run_detector(
    app: &App,
    schedule: &Schedule,
    seed: u64,
    kind: DetectorKind,
    apidb: Option<SharedApiDb>,
) -> RunOutcome {
    let compiled = CompiledApp::new(app.clone());
    run_detector_compiled(&compiled, schedule, seed, kind, apidb)
}

/// As [`run_detector`], reusing an already compiled app.
pub fn run_detector_compiled(
    compiled: &CompiledApp,
    schedule: &Schedule,
    seed: u64,
    kind: DetectorKind,
    apidb: Option<SharedApiDb>,
) -> RunOutcome {
    let mut run = build_run(compiled, schedule, SimConfig::default(), seed);
    let costs = CostModel::default();
    let installed = kind
        .build(compiled.app(), costs, apidb)
        .map(|det| install(det, &mut run.sim));
    run.sim.run();
    let output = match installed {
        Some(handle) => handle.finish(),
        None => DetectorOutput::None,
    };
    let flagged = output.flagged_execs();
    let (log, hd): (Option<DetectionLog>, Option<HdOutput>) = match output {
        DetectorOutput::Log(log) => (Some(log), None),
        DetectorOutput::HangDoctor(hd) => (None, Some(*hd)),
        DetectorOutput::None | DetectorOutput::Offline(_) | DetectorOutput::Sast(_) => (None, None),
    };
    RunOutcome {
        records: run.sim.records().to_vec(),
        truths: run.truths,
        flagged,
        log,
        hd,
        monitor: run.sim.monitor_cost(),
        overhead: OverheadReport::from_sim(&run.sim),
    }
}

/// Renders a simple aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hd_appmodel::corpus::table5;
    use hd_appmodel::round_robin_schedule;

    #[test]
    fn detector_names() {
        assert_eq!(DetectorKind::Ti(5_000 * MILLIS).name(), "TI(5s)");
        assert_eq!(DetectorKind::Ti(100 * MILLIS).name(), "TI(100ms)");
        assert_eq!(DetectorKind::HangDoctor.name(), "HD");
        assert_eq!(DetectorKind::figure8_set().len(), 6);
    }

    #[test]
    fn kind_names_match_trait_names() {
        let app = table5::merchant();
        for kind in DetectorKind::figure8_set() {
            let det = kind.build(&app, CostModel::default(), None).unwrap();
            assert_eq!(det.name(), kind.name(), "{kind:?}");
        }
        assert!(DetectorKind::None
            .build(&app, CostModel::default(), None)
            .is_none());
    }

    #[test]
    fn run_outcomes_are_consistent() {
        let app = table5::merchant();
        let sched = round_robin_schedule(&app, 2, 2_500);
        let ti = run_detector(&app, &sched, 5, DetectorKind::Ti(100 * MILLIS), None);
        assert_eq!(ti.records.len(), sched.len());
        assert!(ti.log.is_some());
        assert!(ti.hd.is_none());
        assert!(!ti.flagged.is_empty());
        assert!(ti.overhead.avg_pct() > 0.0);

        let none = run_detector(&app, &sched, 5, DetectorKind::None, None);
        assert_eq!(none.monitor.cpu_ns, 0);
        assert!(none.flagged.is_empty());

        let hd = run_detector(&app, &sched, 5, DetectorKind::HangDoctor, None);
        assert!(hd.hd.is_some());
    }

    #[test]
    fn table_rendering_aligns() {
        let t = render_table(
            &["app", "tp"],
            &[
                vec!["K9-mail".into(), "2".into()],
                vec!["X".into(), "10".into()],
            ],
        );
        assert!(t.contains("K9-mail"));
        assert!(t.lines().count() == 4);
    }
}
