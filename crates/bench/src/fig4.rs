//! Figure 4: the three selected counter differences separate soft hang
//! bugs from UI operations.
//!
//! For each of context-switches, task-clock, and page-faults, report how
//! the paper's thresholds split the training samples: most hang-bug
//! samples sit above each threshold, most UI-API samples below (90%/10%
//! for context switches, ~80/20 for the other two), and the combined
//! filter catches all bugs while pruning most false positives.

use hangdoctor::{SymptomThresholds, TrainingSample};
use hd_metrics::frac_above;
use hd_simrt::HwEvent;
use serde::{Deserialize, Serialize};

use crate::common::render_table;
use crate::table3;

/// Separation statistics for one event.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EventSplit {
    /// Event name.
    pub event: String,
    /// Threshold applied to the main−render difference.
    pub threshold: f64,
    /// Fraction of hang-bug samples above the threshold.
    pub bugs_above: f64,
    /// Fraction of UI-API samples above the threshold.
    pub ui_above: f64,
    /// Sorted hang-bug differences (descending; the figure's series).
    pub bug_series: Vec<f64>,
    /// Sorted UI-API differences (descending).
    pub ui_series: Vec<f64>,
}

/// The figure's data plus the combined-filter quality.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig4 {
    /// One split per monitored event.
    pub splits: Vec<EventSplit>,
    /// Fraction of hang-bug samples caught by at least one condition
    /// (paper: 100%).
    pub filter_recall: f64,
    /// Fraction of UI-API samples pruned by the filter (paper: 64%).
    pub fp_pruned: f64,
    /// Overall accuracy (paper: 81%).
    pub accuracy: f64,
}

fn split(samples: &[TrainingSample], event: HwEvent, threshold: f64) -> EventSplit {
    let series = |label: bool| {
        let mut v: Vec<f64> = samples
            .iter()
            .filter(|s| s.label == label)
            .map(|s| s.diff[event.index()])
            .collect();
        v.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        v
    };
    let bug_series = series(true);
    let ui_series = series(false);
    EventSplit {
        event: event.name().to_string(),
        threshold,
        bugs_above: frac_above(&bug_series, threshold),
        ui_above: frac_above(&ui_series, threshold),
        bug_series,
        ui_series,
    }
}

impl Fig4 {
    /// Renders the separation summary.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .splits
            .iter()
            .map(|s| {
                vec![
                    s.event.clone(),
                    format!("{:.3e}", s.threshold),
                    format!("{:.0}%", 100.0 * s.bugs_above),
                    format!("{:.0}%", 100.0 * s.ui_above),
                ]
            })
            .collect();
        format!(
            "Figure 4 — Symptom thresholds over the training set\n{}\nCombined filter: recall {:.0}%, false positives pruned {:.0}%, accuracy {:.0}%\n",
            render_table(&["event", "threshold", "bugs above", "UI above"], &rows),
            100.0 * self.filter_recall,
            100.0 * self.fp_pruned,
            100.0 * self.accuracy,
        )
    }
}

/// Runs the separation analysis with the paper's thresholds.
pub fn run(seed: u64, executions: usize) -> Fig4 {
    let samples = table3::samples(seed, executions);
    let t = SymptomThresholds::default();
    let splits = vec![
        split(&samples, HwEvent::ContextSwitches, t.context_switch_diff),
        split(&samples, HwEvent::TaskClock, t.task_clock_diff),
        split(&samples, HwEvent::PageFaults, t.page_fault_diff),
    ];
    let filter = hangdoctor::adaptation::paper_filter(t);
    let (tp, fp, fneg, tn) = filter.evaluate(&samples, hangdoctor::DiffMode::MainMinusRender);
    let bugs = tp + fneg;
    let uis = fp + tn;
    Fig4 {
        splits,
        filter_recall: if bugs == 0 {
            1.0
        } else {
            tp as f64 / bugs as f64
        },
        fp_pruned: if uis == 0 {
            1.0
        } else {
            tn as f64 / uis as f64
        },
        accuracy: if bugs + uis == 0 {
            1.0
        } else {
            (tp + tn) as f64 / (bugs + uis) as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_separate_like_the_paper() {
        let f = run(42, 6);
        let cs = &f.splits[0];
        // Figure 4(a): ~90% of bugs above zero, ~90% of UI below.
        assert!(cs.bugs_above > 0.8, "cs bugs above {:.2}", cs.bugs_above);
        assert!(cs.ui_above < 0.35, "cs ui above {:.2}", cs.ui_above);
        let tc = &f.splits[1];
        assert!(tc.ui_above < 0.3, "tc ui above {:.2}", tc.ui_above);
        // Our training set is more I/O-bound than the paper's, so the
        // page-fault channel separates about half of the bug samples
        // rather than the paper's 90% (documented in EXPERIMENTS.md).
        let pf = &f.splits[2];
        assert!(pf.bugs_above > 0.4, "pf bugs above {:.2}", pf.bugs_above);
        assert!(pf.ui_above < 0.3, "pf ui above {:.2}", pf.ui_above);
        // The combined filter: high recall, most FPs pruned.
        assert!(f.filter_recall > 0.9, "recall {:.2}", f.filter_recall);
        assert!(f.fp_pruned > 0.4, "pruned {:.2}", f.fp_pruned);
        assert!(f.accuracy > 0.7, "accuracy {:.2}", f.accuracy);
    }

    #[test]
    fn series_are_sorted_descending() {
        let f = run(7, 4);
        for s in &f.splits {
            for w in s.bug_series.windows(2) {
                assert!(w[0] >= w[1]);
            }
            for w in s.ui_series.windows(2) {
                assert!(w[0] >= w[1]);
            }
        }
    }
}
