//! Table 5: the field study — Hang Doctor over the 114-app corpus.
//!
//! Every app runs a generated user trace with Hang Doctor installed and
//! a fleet-wide shared blocking-API database. Reported per app: bugs
//! detected (BD) and how many of those a PerfChecker-style offline scan
//! misses (MO). The paper finds 34 new bugs across 16 apps, 23 (68%)
//! missed offline; the Table 1 apps contribute their 19 known bugs.

use std::collections::BTreeSet;

use hangdoctor::{shared, BlockingApiDb, SharedApiDb};
use hd_appmodel::corpus::{full_corpus, table5};
use hd_appmodel::{generate_schedule, App, TraceParams};
use hd_metrics::bugs_manifested;
use hd_simrt::SimRng;
use serde::{Deserialize, Serialize};

use crate::common::{render_table, run_detector, DetectorKind};

/// One studied app's outcome.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table5Row {
    /// App name.
    pub app: String,
    /// Version under test.
    pub commit: String,
    /// Play-store category.
    pub category: String,
    /// Ground-truth bugs in the app.
    pub ground_truth_bugs: usize,
    /// Distinct bugs Hang Doctor detected (BD).
    pub detected: BTreeSet<String>,
    /// Of those, bugs a 2017 offline scan misses (MO).
    pub missed_offline: usize,
    /// Bugs that manifested in the trace (detectability ceiling).
    pub manifested: usize,
}

/// The field-study outcome.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table5 {
    /// Apps where Hang Doctor found bugs (the table's rows).
    pub rows: Vec<Table5Row>,
    /// Apps tested in total.
    pub apps_tested: usize,
    /// New blocking APIs added to the shared database.
    pub new_apis: Vec<(String, String)>,
}

impl Table5 {
    /// Total bugs detected.
    pub fn total_detected(&self) -> usize {
        self.rows.iter().map(|r| r.detected.len()).sum()
    }

    /// Total detected bugs missed offline.
    pub fn total_missed_offline(&self) -> usize {
        self.rows.iter().map(|r| r.missed_offline).sum()
    }

    /// Renders the paper-style table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.app.clone(),
                    r.commit.clone(),
                    r.category.clone(),
                    format!("{} ({})", r.detected.len(), r.missed_offline),
                    format!("{}/{}", r.manifested, r.ground_truth_bugs),
                ]
            })
            .collect();
        format!(
            "Table 5 — Field study over {} apps\n{}\nTotal: {} bugs detected ({} missed by offline detection, {:.0}%)\nNew blocking APIs learned: {}\n",
            self.apps_tested,
            render_table(
                &["App Name", "Commit", "Category", "BD (MO)", "manifested/GT"],
                &rows
            ),
            self.total_detected(),
            self.total_missed_offline(),
            100.0 * self.total_missed_offline() as f64 / self.total_detected().max(1) as f64,
            self.new_apis.len(),
        )
    }
}

fn study_app(app: &App, seed: u64, executions_per_action: usize, db: &SharedApiDb) -> Table5Row {
    let mut rng = SimRng::seed_from_u64(seed ^ (app.name.len() as u64) << 3);
    let schedule = generate_schedule(
        app,
        TraceParams {
            actions: executions_per_action * app.actions.len(),
            think_min_ms: 1_500,
            think_max_ms: 3_500,
        },
        &mut rng,
    );
    let outcome = run_detector(
        app,
        &schedule,
        seed,
        DetectorKind::HangDoctor,
        Some(db.clone()),
    );
    let hd = outcome.hd.as_ref().expect("hang doctor output");
    // A bug counts as detected when a bug-verdict detection landed on an
    // execution whose ground-truth culprit is that bug.
    let mut detected = BTreeSet::new();
    for d in hd.detections.iter().filter(|d| d.is_bug()) {
        let truth = &outcome.truths[(d.exec_id.0 - 1) as usize];
        if let Some(culprit) = truth.culprit(hd_metrics::PERCEIVABLE_NS) {
            detected.insert(culprit.to_string());
        }
    }
    let offline_db = BlockingApiDb::documented(2017);
    let missed_names: BTreeSet<String> = hd_baselines::missed_bugs(app, &offline_db)
        .into_iter()
        .map(|b| b.id.clone())
        .collect();
    let missed_offline = detected
        .iter()
        .filter(|b| missed_names.contains(*b))
        .count();
    let manifested = bugs_manifested(&outcome.records, &outcome.truths).len();
    Table5Row {
        app: app.name.clone(),
        commit: app.commit.clone(),
        category: app.category.clone(),
        ground_truth_bugs: app.bugs.len(),
        detected,
        missed_offline,
        manifested,
    }
}

/// Runs the field study over the full corpus.
pub fn run(seed: u64, executions_per_action: usize) -> Table5 {
    let corpus = full_corpus(seed);
    let db = shared(BlockingApiDb::documented(2017));
    let mut rows = Vec::new();
    for app in &corpus {
        let row = study_app(app, seed, executions_per_action, &db);
        if !row.detected.is_empty() {
            rows.push(row);
        }
    }
    let new_apis = db
        .lock()
        .discovered()
        .into_iter()
        .map(|(s, a)| (s.to_string(), a.to_string()))
        .collect();
    Table5 {
        rows,
        apps_tested: corpus.len(),
        new_apis,
    }
}

/// Runs the study over the Table 5 apps only (fast variant).
pub fn run_study_apps(seed: u64, executions_per_action: usize) -> Table5 {
    let apps = table5::apps();
    let db = shared(BlockingApiDb::documented(2017));
    let rows = apps
        .iter()
        .map(|a| study_app(a, seed, executions_per_action, &db))
        .filter(|r| !r.detected.is_empty())
        .collect();
    let new_apis = db
        .lock()
        .discovered()
        .into_iter()
        .map(|(s, a)| (s.to_string(), a.to_string()))
        .collect();
    Table5 {
        rows,
        apps_tested: apps.len(),
        new_apis,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_apps_yield_table5_shape() {
        let t = run_study_apps(42, 10);
        // All sixteen study apps show bugs.
        assert!(t.rows.len() >= 14, "{} apps with findings", t.rows.len());
        let detected = t.total_detected();
        assert!(detected >= 28, "detected {detected} of 34 study bugs");
        // The majority of what Hang Doctor finds is missed offline
        // (paper: 68%).
        let mo = t.total_missed_offline();
        let pct = mo as f64 / detected as f64;
        assert!(
            (0.5..=0.85).contains(&pct),
            "missed-offline share {pct:.2} ({mo}/{detected})"
        );
        // Previously unknown APIs were learned into the database.
        assert!(t.new_apis.len() >= 8, "learned {} APIs", t.new_apis.len());
        assert!(t
            .new_apis
            .iter()
            .any(|(s, _)| s.contains("HtmlCleaner.clean")));
    }

    #[test]
    fn k9_row_matches_paper() {
        let t = run_study_apps(42, 10);
        let k9 = t.rows.iter().find(|r| r.app == "K9-mail").unwrap();
        assert_eq!(k9.ground_truth_bugs, 2);
        assert_eq!(k9.detected.len(), 2, "{:?}", k9.detected);
        assert_eq!(k9.missed_offline, 2);
    }
}
