//! Figure 8: detection performance and overhead of every runtime
//! detector, normalized to TI(100 ms).
//!
//! Five representative apps (AndStatus, CycleStreets, K9-mail,
//! Omni-Notes, UOITDC Booking) run the same user traces under each
//! detector. TI traces every soft hang, so it has no false negatives and
//! normalizes the true/false-positive axes. The paper's shape:
//!
//! * (a) Hang Doctor traces ~80% of the true-positive hangs (losing only
//!   each bug's first manifestation to the S-Checker); UTH/UTH+TI miss
//!   most bugs.
//! * (b) Hang Doctor traces < 10% of the false-positive hangs; UTL
//!   traces many times more than TI.
//! * (c) Overhead: UTL ≫ UTH ≫ TI > HD > UTH+TI.

use hd_appmodel::corpus::table5;
use hd_appmodel::{generate_schedule, App, CompiledApp, TraceParams};
use hd_metrics::score;
use hd_simrt::SimRng;
use serde::{Deserialize, Serialize};

use crate::common::{render_table, run_detector_compiled, DetectorKind};

/// Per-app, per-detector measurements.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Cell {
    /// Detector name.
    pub detector: String,
    /// Flagged true-positive occurrences.
    pub tp: usize,
    /// Flagged false-positive occurrences.
    pub fp: usize,
    /// Overhead (average of CPU% and memory%).
    pub overhead_pct: f64,
}

/// One app's row of cells.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AppRow {
    /// App name.
    pub app: String,
    /// One cell per detector, `DetectorKind::figure8_set` order.
    pub cells: Vec<Cell>,
}

/// The figure's data.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig8 {
    /// Per-app rows.
    pub rows: Vec<AppRow>,
}

impl Fig8 {
    fn ti_index() -> usize {
        0
    }

    /// Average of a metric over apps, normalized per app to TI.
    pub fn normalized_avg(&self, metric: impl Fn(&Cell) -> f64) -> Vec<(String, f64)> {
        let n_detectors = self.rows[0].cells.len();
        let mut out = Vec::new();
        for d in 0..n_detectors {
            let mut sum = 0.0;
            let mut count = 0.0;
            for row in &self.rows {
                let ti = metric(&row.cells[Self::ti_index()]);
                if ti > 0.0 {
                    sum += metric(&row.cells[d]) / ti;
                    count += 1.0;
                }
            }
            out.push((
                self.rows[0].cells[d].detector.clone(),
                if count > 0.0 { sum / count } else { 0.0 },
            ));
        }
        out
    }

    /// Average absolute overhead per detector.
    pub fn avg_overhead(&self) -> Vec<(String, f64)> {
        let n_detectors = self.rows[0].cells.len();
        (0..n_detectors)
            .map(|d| {
                let avg = self
                    .rows
                    .iter()
                    .map(|r| r.cells[d].overhead_pct)
                    .sum::<f64>()
                    / self.rows.len() as f64;
                (self.rows[0].cells[d].detector.clone(), avg)
            })
            .collect()
    }

    /// Renders the three panels.
    pub fn render(&self) -> String {
        let tp = self.normalized_avg(|c| c.tp as f64);
        let fp = self.normalized_avg(|c| c.fp as f64);
        let oh = self.avg_overhead();
        let mut rows = Vec::new();
        for i in 0..tp.len() {
            rows.push(vec![
                tp[i].0.clone(),
                format!("{:.2}", tp[i].1),
                format!("{:.2}", fp[i].1),
                format!("{:.2}%", oh[i].1),
            ]);
        }
        let mut out = format!(
            "Figure 8 — detection performance and overhead (averages over {} apps)\n{}",
            self.rows.len(),
            render_table(
                &["detector", "(a) TP / TI", "(b) FP / TI", "(c) overhead"],
                &rows
            )
        );
        out.push_str("\nPer-app raw counts:\n");
        for row in &self.rows {
            out.push_str(&format!("  {}\n", row.app));
            for c in &row.cells {
                out.push_str(&format!(
                    "    {:<8} tp={:<4} fp={:<4} overhead={:.2}%\n",
                    c.detector, c.tp, c.fp, c.overhead_pct
                ));
            }
        }
        out
    }
}

/// The five representative apps of Figure 8.
pub fn figure8_apps() -> Vec<App> {
    vec![
        table5::andstatus(),
        table5::cyclestreets(),
        table5::k9mail(),
        table5::omninotes(),
        table5::uoitdc(),
    ]
}

/// Runs the comparison.
pub fn run(seed: u64, executions_per_action: usize) -> Fig8 {
    let mut rows = Vec::new();
    for app in figure8_apps() {
        let compiled = CompiledApp::new(app.clone());
        let mut rng = SimRng::seed_from_u64(seed ^ 0xf18 ^ app.name.len() as u64);
        let schedule = generate_schedule(
            &app,
            TraceParams {
                actions: executions_per_action * app.actions.len(),
                think_min_ms: 1_500,
                think_max_ms: 3_500,
            },
            &mut rng,
        );
        let mut cells = Vec::new();
        for kind in DetectorKind::figure8_set() {
            let outcome = run_detector_compiled(&compiled, &schedule, seed, kind, None);
            let confusion = score(&outcome.records, &outcome.truths, &outcome.flagged);
            cells.push(Cell {
                detector: kind.name(),
                tp: confusion.tp,
                fp: confusion.fp,
                overhead_pct: outcome.overhead.avg_pct(),
            });
        }
        rows.push(AppRow {
            app: app.name.clone(),
            cells,
        });
    }
    Fig8 { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by_name(v: &[(String, f64)], name: &str) -> f64 {
        v.iter().find(|(n, _)| n == name).map(|(_, x)| *x).unwrap()
    }

    #[test]
    fn figure8_shape_matches_paper() {
        let f = run(42, 12);
        let tp = f.normalized_avg(|c| c.tp as f64);
        let fp = f.normalized_avg(|c| c.fp as f64);
        let oh = f.avg_overhead();

        // (a) True positives: HD traces most of the bug hangs; UTH and
        // UTH+TI miss the majority.
        let hd_tp = by_name(&tp, "HD");
        assert!((0.6..=1.0).contains(&hd_tp), "HD TP ratio {hd_tp:.2}");
        assert!(by_name(&tp, "UTH") < 0.55, "UTH {:.2}", by_name(&tp, "UTH"));
        assert!(by_name(&tp, "UTH+TI") < 0.55);
        assert!(hd_tp > by_name(&tp, "UTH+TI") + 0.2, "paper: HD ≫ UTH+TI");
        // UTL misses nothing.
        assert!(by_name(&tp, "UTL") > 0.9);

        // (b) False positives: HD prunes almost everything; UTL floods.
        let hd_fp = by_name(&fp, "HD");
        assert!(hd_fp < 0.15, "HD FP ratio {hd_fp:.2}");
        let utl_fp = by_name(&fp, "UTL");
        assert!(utl_fp > 3.0, "UTL FP ratio {utl_fp:.2}");
        assert!(by_name(&fp, "UTL+TI") < utl_fp);

        // (c) Overhead ordering: UTL > UTH > TI > HD > UTH+TI.
        let ov = |n: &str| by_name(&oh, n);
        assert!(
            ov("UTL") > ov("UTH"),
            "UTL {:.2} UTH {:.2}",
            ov("UTL"),
            ov("UTH")
        );
        assert!(ov("UTH") > ov("TI(100ms)"));
        assert!(
            ov("TI(100ms)") > ov("HD"),
            "TI {:.2} HD {:.2}",
            ov("TI(100ms)"),
            ov("HD")
        );
        assert!(
            ov("HD") > ov("UTH+TI"),
            "HD {:.2} UTH+TI {:.2}",
            ov("HD"),
            ov("UTH+TI")
        );
    }

    #[test]
    fn render_lists_all_detectors() {
        let f = run(7, 4);
        let s = f.render();
        for d in DetectorKind::figure8_set() {
            assert!(s.contains(&d.name()), "missing {}", d.name());
        }
    }
}
