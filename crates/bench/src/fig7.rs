//! Figure 7: action state transitions minimize trace collection.
//!
//! The K9-mail `open folders` and `open inbox` actions both hang
//! (> 100 ms) but are UI work. Folders is render-dominant: the S-Checker
//! clears it immediately (U→N) and no stack traces are ever collected.
//! Inbox renders through a WebView on the main thread: the S-Checker
//! raises a false positive (U→S), the Diagnoser traces it once,
//! recognizes the WebView class, and clears it (S→N) — after which
//! further executions cost nothing.

use hangdoctor::ActionState;
use hd_appmodel::corpus::table5;
use hd_appmodel::{CompiledApp, Schedule};
use hd_simrt::{ActionUid, SimTime};
use serde::{Deserialize, Serialize};

use crate::common::{run_detector_compiled, DetectorKind};

/// One step of the timeline.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TimelineStep {
    /// Action name.
    pub action: String,
    /// Response time, ms.
    pub response_ms: f64,
    /// State the action was in when the execution began.
    pub state_before: String,
    /// State after the execution.
    pub state_after: String,
    /// Stack traces collected during this execution.
    pub traces: usize,
}

/// The figure's data.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig7 {
    /// The execution timeline.
    pub steps: Vec<TimelineStep>,
    /// Total stack traces collected.
    pub total_traces: usize,
    /// Stack traces a plain 100 ms timeout detector would have collected
    /// on the same trace.
    pub ti_traces: usize,
}

impl Fig7 {
    /// Renders the timeline.
    pub fn render(&self) -> String {
        let mut out =
            String::from("Figure 7 — state transitions minimize stack-trace collection\n");
        for s in &self.steps {
            out.push_str(&format!(
                "  {:<14} {:>5.0} ms  {:>13} -> {:<13} traces: {}\n",
                s.action, s.response_ms, s.state_before, s.state_after, s.traces
            ));
        }
        out.push_str(&format!(
            "Hang Doctor collected {} stack traces; TI(100ms) would collect {}.\n",
            self.total_traces, self.ti_traces
        ));
        out
    }
}

fn state_name(s: ActionState) -> String {
    match s {
        ActionState::Uncategorized => "Uncategorized".into(),
        ActionState::Normal => "Normal".into(),
        ActionState::Suspicious => "Suspicious".into(),
        ActionState::HangBug => "HangBug".into(),
    }
}

/// Runs the Figure 7 trace: alternating folders/inbox executions.
pub fn run(seed: u64) -> Fig7 {
    let compiled = CompiledApp::new(table5::k9mail());
    let uid_of = |name: &str| -> ActionUid {
        compiled
            .app()
            .actions
            .iter()
            .find(|a| a.name == name)
            .unwrap_or_else(|| panic!("missing action {name}"))
            .uid
    };
    let folders = uid_of("open folders");
    let inbox = uid_of("open inbox");
    let mut arrivals = Vec::new();
    for i in 0..4u64 {
        arrivals.push((SimTime::from_ms(300 + i * 8_000), folders));
        arrivals.push((SimTime::from_ms(2_300 + i * 8_000), inbox));
    }
    let schedule = Schedule { arrivals };
    let outcome = run_detector_compiled(&compiled, &schedule, seed, DetectorKind::HangDoctor, None);
    let hd = outcome.hd.expect("hd output");

    // Reconstruct per-execution states by replaying the transition log.
    let mut steps = Vec::new();
    let mut total_traces = 0;
    let name_of = |uid: ActionUid| -> String {
        compiled
            .app()
            .actions
            .iter()
            .find(|a| a.uid == uid)
            .map(|a| a.name.clone())
            .unwrap_or_default()
    };
    for rec in &outcome.records {
        let traces = hd
            .detections
            .iter()
            .filter(|d| d.exec_id == rec.exec_id)
            .map(|d| d.samples)
            .sum::<usize>();
        total_traces += traces;
        steps.push(TimelineStep {
            action: name_of(rec.uid),
            response_ms: rec.max_response_ns() as f64 / 1e6,
            state_before: String::new(),
            state_after: String::new(),
            traces,
        });
    }
    // States: replay transitions in order of occurrence per action.
    let mut current: std::collections::HashMap<ActionUid, ActionState> = Default::default();
    let mut transition_iter = hd.states.transitions().iter().peekable();
    // Transitions happen during executions in record order; walk records
    // and consume transitions for that uid greedily (each execution
    // causes at most one transition here).
    for (rec, step) in outcome.records.iter().zip(steps.iter_mut()) {
        let before = *current.entry(rec.uid).or_insert(ActionState::Uncategorized);
        step.state_before = state_name(before);
        if let Some(t) = transition_iter.peek() {
            if t.uid == rec.uid {
                current.insert(rec.uid, t.to);
                transition_iter.next();
            }
        }
        step.state_after = state_name(*current.get(&rec.uid).unwrap());
    }

    // Reference: a plain TI(100ms) run over the same schedule.
    let ti = run_detector_compiled(
        &compiled,
        &schedule,
        seed,
        DetectorKind::Ti(100 * hd_simrt::MILLIS),
        None,
    );
    let ti_traces = ti
        .log
        .as_ref()
        .map(|l| l.traced.iter().map(|t| t.samples).sum())
        .unwrap_or(0);

    Fig7 {
        steps,
        total_traces,
        ti_traces,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbg_fig7_timeline() {
        let f = run(42);
        eprintln!("{}", f.render());
    }

    #[test]
    fn folders_cleared_by_schecker_inbox_by_diagnoser() {
        let f = run(42);
        assert_eq!(f.steps.len(), 8);
        // Folders is render-dominant: on its first soft hang the
        // S-Checker clears it straight to Normal, and it is never traced.
        let folders: Vec<&TimelineStep> = f
            .steps
            .iter()
            .filter(|s| s.action == "open folders")
            .collect();
        for s in &folders {
            assert_eq!(s.traces, 0, "folders must never be traced: {s:?}");
        }
        let first_folder_hang = folders
            .iter()
            .find(|s| s.response_ms > 100.0)
            .expect("at least one folders hang");
        assert_eq!(first_folder_hang.state_after, "Normal");
        // Inbox is WebView-heavy: its first hang trips the S-Checker
        // (U -> Suspicious), the Diagnoser traces it exactly once and
        // clears it (S -> Normal); later executions cost nothing.
        let inbox: Vec<&TimelineStep> = f
            .steps
            .iter()
            .filter(|s| s.action == "open inbox")
            .collect();
        let susp_idx = inbox
            .iter()
            .position(|s| s.state_after == "Suspicious")
            .expect("inbox becomes Suspicious: {inbox:?}");
        assert_eq!(inbox[susp_idx].state_before, "Uncategorized");
        assert_eq!(inbox[susp_idx].traces, 0);
        let diag = &inbox[susp_idx + 1];
        assert_eq!(diag.state_before, "Suspicious");
        assert_eq!(diag.state_after, "Normal", "{inbox:?}");
        assert!(diag.traces > 0);
        for s in &inbox[susp_idx + 2..] {
            assert_eq!(s.traces, 0, "{s:?}");
        }
    }

    #[test]
    fn hang_doctor_traces_far_less_than_ti() {
        let f = run(42);
        assert!(
            f.total_traces * 3 <= f.ti_traces,
            "HD {} vs TI {}",
            f.total_traces,
            f.ti_traces
        );
    }
}
