//! Criterion benchmarks of whole experiment drivers.
//!
//! One bench per paper table/figure (quick parameterizations), so
//! `cargo bench` exercises the full regeneration path of every result
//! and reports how long each takes on the host.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments_quick");
    group.sample_size(10);
    group.bench_function("fig1", |b| b.iter(|| black_box(hd_bench::fig1::run(42))));
    group.bench_function("fig5", |b| b.iter(|| black_box(hd_bench::fig5::run(42))));
    group.bench_function("fig6", |b| b.iter(|| black_box(hd_bench::fig6::run(42))));
    group.bench_function("fig7", |b| b.iter(|| black_box(hd_bench::fig7::run(42))));
    group.finish();

    let mut group = c.benchmark_group("experiments_heavy");
    group.sample_size(10);
    group.bench_function("table2_quick", |b| {
        b.iter(|| black_box(hd_bench::table2::run(42, 2).totals()))
    });
    group.bench_function("table3_quick", |b| {
        b.iter(|| black_box(hd_bench::table3::run(42, 2).samples))
    });
    group.bench_function("table4_quick", |b| {
        b.iter(|| black_box(hd_bench::table4::run(42, 2)))
    });
    group.bench_function("fig4_quick", |b| {
        b.iter(|| black_box(hd_bench::fig4::run(42, 2).filter_recall))
    });
    group.bench_function("table6_quick", |b| {
        b.iter(|| black_box(hd_bench::table6::run(42, 2).totals()))
    });
    group.bench_function("fig8_quick", |b| {
        b.iter(|| black_box(hd_bench::fig8::run(42, 2).avg_overhead()))
    });
    group.bench_function("table5_study_apps_quick", |b| {
        b.iter(|| black_box(hd_bench::table5::run_study_apps(42, 2).total_detected()))
    });
    group.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
