//! Criterion micro-benchmarks of the simulation substrate.
//!
//! These measure the *host-side* cost of the reproduction itself (how
//! fast we can simulate device time), which bounds how large a field
//! study the harness can run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use hd_appmodel::corpus::{table1, table5};
use hd_appmodel::{build_run, round_robin_schedule, CompiledApp};
use hd_simrt::{
    ActionRequest, ActionUid, FrameTable, MemProfile, SimConfig, SimTime, Simulator, Step, MICROS,
};

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_app_trace");
    for (name, app) in [
        ("k9mail", table5::k9mail()),
        ("cyclestreets", table5::cyclestreets()),
        ("a_better_camera", table1::a_better_camera()),
    ] {
        let compiled = CompiledApp::new(app);
        let schedule = round_robin_schedule(compiled.app(), 2, 2_000);
        group.bench_with_input(BenchmarkId::from_parameter(name), &schedule, |b, sched| {
            b.iter(|| {
                let mut run = build_run(&compiled, sched, SimConfig::default(), 42);
                black_box(run.sim.run())
            });
        });
    }
    group.finish();
}

/// Number of input events dispatched per iteration of the
/// `dispatch_kernel` bench; divide the reported time by this to get the
/// event-kernel dispatch throughput in events/sec.
const KERNEL_EVENTS: usize = 4_000;

/// Measures the event-kernel inner loop in isolation: thousands of
/// tiny CPU-only dispatches, so the cost is dominated by the queue,
/// scheduler, and notice machinery rather than the simulated work.
/// Hot-loop regressions show up here independent of the fleet bench.
fn bench_dispatch_kernel(c: &mut Criterion) {
    let mut table = FrameTable::new();
    let handler = table.intern_new("app.Main.onTick", "Main.java", 7);
    let table = Arc::new(table);
    c.bench_function("dispatch_kernel_4000_events", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(SimConfig::default(), Arc::clone(&table));
            sim.reserve_actions(KERNEL_EVENTS);
            for i in 0..KERNEL_EVENTS {
                sim.schedule_action(
                    SimTime::from_ms(1 + 2 * i as u64),
                    ActionRequest {
                        uid: ActionUid(i as u64 % 8),
                        name: "tick".into(),
                        events: vec![vec![
                            Step::Push(handler),
                            Step::Cpu {
                                ns: 100 * MICROS,
                                profile: MemProfile::ui(),
                            },
                            Step::Pop,
                        ]],
                    },
                );
            }
            black_box(sim.run())
        });
    });
}

fn bench_compile(c: &mut Criterion) {
    c.bench_function("compile_app_model", |b| {
        b.iter(|| black_box(CompiledApp::new(table5::k9mail())));
    });
    c.bench_function("sample_action_execution", |b| {
        let compiled = CompiledApp::new(table5::k9mail());
        let uid = compiled.app().actions[0].uid;
        let mut rng = hd_simrt::SimRng::seed_from_u64(1);
        b.iter(|| black_box(compiled.sample(uid, &mut rng)));
    });
}

fn bench_corpus(c: &mut Criterion) {
    c.bench_function("build_full_114_app_corpus", |b| {
        b.iter(|| black_box(hd_appmodel::corpus::full_corpus(42).len()));
    });
}

criterion_group!(
    benches,
    bench_simulation,
    bench_dispatch_kernel,
    bench_compile,
    bench_corpus
);
criterion_main!(benches);
