//! Criterion micro-benchmarks of the simulation substrate.
//!
//! These measure the *host-side* cost of the reproduction itself (how
//! fast we can simulate device time), which bounds how large a field
//! study the harness can run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use hd_appmodel::corpus::{table1, table5};
use hd_appmodel::{build_run, round_robin_schedule, CompiledApp};
use hd_simrt::SimConfig;

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_app_trace");
    for (name, app) in [
        ("k9mail", table5::k9mail()),
        ("cyclestreets", table5::cyclestreets()),
        ("a_better_camera", table1::a_better_camera()),
    ] {
        let compiled = CompiledApp::new(app);
        let schedule = round_robin_schedule(compiled.app(), 2, 2_000);
        group.bench_with_input(BenchmarkId::from_parameter(name), &schedule, |b, sched| {
            b.iter(|| {
                let mut run = build_run(&compiled, sched, SimConfig::default(), 42);
                black_box(run.sim.run())
            });
        });
    }
    group.finish();
}

fn bench_compile(c: &mut Criterion) {
    c.bench_function("compile_app_model", |b| {
        b.iter(|| black_box(CompiledApp::new(table5::k9mail())));
    });
    c.bench_function("sample_action_execution", |b| {
        let compiled = CompiledApp::new(table5::k9mail());
        let uid = compiled.app().actions[0].uid;
        let mut rng = hd_simrt::SimRng::seed_from_u64(1);
        b.iter(|| black_box(compiled.sample(uid, &mut rng)));
    });
}

fn bench_corpus(c: &mut Criterion) {
    c.bench_function("build_full_114_app_corpus", |b| {
        b.iter(|| black_box(hd_appmodel::corpus::full_corpus(42).len()));
    });
}

criterion_group!(benches, bench_simulation, bench_compile, bench_corpus);
criterion_main!(benches);
