//! Criterion benchmarks of the detector hot paths.
//!
//! The paper's overhead argument rests on the relative cost of Hang
//! Doctor's per-action work (a three-event counter check) versus
//! continuous polling or unconditional stack tracing. These benches
//! measure the algorithmic pieces directly: the S-Checker filter, the
//! Trace Analyzer's occurrence-factor analysis, the Pearson ranking, and
//! end-to-end instrumented traces per detector.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use hangdoctor::{
    analyze, rank_events, CounterDiffs, DiffMode, SChecker, SymptomThresholds, TrainingSample,
};
use hd_appmodel::corpus::table5;
use hd_appmodel::{round_robin_schedule, CompiledApp};
use hd_bench::{run_detector_compiled, DetectorKind};
use hd_perfmon::StackSample;
use hd_simrt::{FrameTable, SimTime, MILLIS};

fn bench_schecker(c: &mut Criterion) {
    let checker = SChecker::new(SymptomThresholds::default());
    let diffs = CounterDiffs {
        context_switches: 42.0,
        task_clock: 3.1e8,
        page_faults: 612.0,
    };
    c.bench_function("schecker_filter_check", |b| {
        b.iter(|| black_box(checker.check(black_box(diffs))));
    });
}

fn bench_trace_analysis(c: &mut Criterion) {
    // A realistic hang: 130 samples, one dominant API plus UI frames.
    let mut table = FrameTable::new();
    let looper = table.intern_new("android.os.Looper.loop", "Looper.java", 193);
    let dispatch = table.intern_new("android.os.Handler.dispatchMessage", "Handler.java", 105);
    let handler = table.intern_new("com.fsck.k9.MessageView.onOpen", "MessageView.java", 371);
    let clean = table.intern_new("org.htmlcleaner.HtmlCleaner.clean", "HtmlCleaner.java", 25);
    let set_text = table.intern_new("android.widget.TextView.setText", "TextView.java", 4100);
    let samples: Vec<StackSample> = (0..130)
        .map(|i| StackSample {
            at: SimTime::from_ms(i * 10),
            frames: vec![
                looper,
                dispatch,
                handler,
                if i % 20 == 0 { set_text } else { clean },
            ],
        })
        .collect();
    c.bench_function("trace_analyzer_130_samples", |b| {
        b.iter(|| {
            black_box(analyze(&samples, 0.5, Some("com.fsck.k9."), |id| {
                table.get(id).clone()
            }))
        });
    });
}

fn bench_correlation(c: &mut Criterion) {
    // Synthetic 160-sample training matrix over all 46 events.
    let mut rng = hd_simrt::SimRng::seed_from_u64(5);
    let samples: Vec<TrainingSample> = (0..160)
        .map(|i| {
            let label = i % 2 == 0;
            let diff: Vec<f64> = (0..hd_simrt::NUM_EVENTS)
                .map(|e| {
                    let base = if label { 100.0 + e as f64 } else { -40.0 };
                    base * rng.jitter(0.4)
                })
                .collect();
            TrainingSample {
                label,
                diff: diff.clone(),
                main_only: diff,
                source: "bench".into(),
            }
        })
        .collect();
    c.bench_function("pearson_rank_46_events_160_samples", |b| {
        b.iter(|| black_box(rank_events(&samples, DiffMode::MainMinusRender)));
    });
}

fn bench_detector_end_to_end(c: &mut Criterion) {
    let compiled = CompiledApp::new(table5::k9mail());
    let schedule = round_robin_schedule(compiled.app(), 1, 2_000);
    let mut group = c.benchmark_group("instrumented_trace");
    group.sample_size(20);
    for kind in [
        DetectorKind::None,
        DetectorKind::Ti(100 * MILLIS),
        DetectorKind::UtLow,
        DetectorKind::HangDoctor,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    black_box(run_detector_compiled(&compiled, &schedule, 42, kind, None).flagged)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_schecker,
    bench_trace_analysis,
    bench_correlation,
    bench_detector_end_to_end
);
criterion_main!(benches);
