//! Fleet-engine thread-scaling benchmark.
//!
//! Runs the same small corpus × device matrix at 1/2/4/8 worker threads.
//! On a multi-core host the wall time should drop near-linearly until
//! the core count is reached; on a single-core container the curve is
//! flat — the merged results are byte-identical either way, which the
//! fleet's integration tests assert separately.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hangdoctor::HangDoctorConfig;
use hd_fleet::{run_fleet, DeviceProfile, FleetSpec};
use std::hint::black_box;

fn spec(threads: usize) -> FleetSpec {
    FleetSpec {
        apps: vec![
            hd_appmodel::corpus::table5::k9mail(),
            hd_appmodel::corpus::table5::omninotes(),
            hd_appmodel::corpus::table5::cyclestreets(),
            hd_appmodel::corpus::table5::andstatus(),
        ],
        profiles: DeviceProfile::default_set(),
        devices_per_app: 8,
        executions_per_action: 2,
        root_seed: 42,
        threads,
        config: HangDoctorConfig::default(),
        apidb_year: 2017,
        faults: hangdoctor::FaultConfig::none(),
    }
}

fn fleet_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_scaling");
    group.sample_size(10);
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let spec = spec(threads);
                b.iter(|| black_box(run_fleet(&spec)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, fleet_scaling);
criterion_main!(benches);
