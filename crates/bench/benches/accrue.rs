//! Accrual-kernel microbenchmark: ns per `MemProfile::accrue` call.
//!
//! This is the innermost loop of the whole fleet — every scheduler event
//! that retires CPU time funds one accrue. The v2 kernel spends one
//! parent RNG draw per call and fans it through a precomputed jitter
//! table, so a call should cost tens of nanoseconds, not the ~40 draws
//! of the v1 chain. The `ui` and `memory_heavy` profiles bracket the
//! derived-event count (memory-heavy adds the fault/THP family).

use criterion::{criterion_group, criterion_main, Criterion};
use hd_simrt::{CounterBank, MemProfile, SimRng};
use std::hint::black_box;

fn bench_profile(c: &mut Criterion, name: &str, profile: MemProfile) {
    c.bench_function(name, |b| {
        let mut bank = CounterBank::new();
        let mut rng = SimRng::seed_from_u64(0x5EED);
        b.iter(|| {
            profile.accrue(&mut bank, black_box(50_000), &mut rng);
            black_box(&bank);
        });
    });
}

fn accrue_kernel(c: &mut Criterion) {
    bench_profile(c, "accrue_ui", MemProfile::ui());
    bench_profile(c, "accrue_memory_heavy", MemProfile::memory_heavy());
}

criterion_group!(benches, accrue_kernel);
criterion_main!(benches);
