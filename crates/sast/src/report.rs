//! Machine-readable findings (SARIF-like JSON).
//!
//! A [`SastReport`] is one analyzer run over one app: the schema tag,
//! the configuration that produced it (profile, database year), the
//! rule table, and the findings. The schema string is versioned like the
//! fleet artifact (`hang-doctor/fleet-bench/v2`) so downstream tooling
//! can fail loudly on drift instead of misparsing.

use std::collections::BTreeSet;

use hangdoctor::BlockingApiDb;
use hd_simrt::ActionUid;
use serde::{Deserialize, Serialize};

use crate::rules::{RuleMeta, Severity};

/// Version tag of the findings JSON. Bump on any shape change.
///
/// v2 adds per-finding call-site ordinals and k=1 context, and
/// per-report contextual metadata (`context_pairs`, `app_fingerprint`).
pub const SAST_SCHEMA: &str = "hang-doctor/sast/v2";

/// One static finding: a blocking API reachable from a main-thread
/// input handler.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SastFinding {
    /// Rule that fired (e.g. `"HD-S001"`).
    pub rule: String,
    /// Severity under the perceivable-delay threshold.
    pub severity: Severity,
    /// Action whose handler reaches the call.
    pub action: ActionUid,
    /// Action name.
    pub action_name: String,
    /// Handler symbol the reachability starts from.
    pub handler: String,
    /// Call-site ordinal within the action (flat across its events,
    /// counting every call site including gated ones) — the finding's
    /// stable anchor, part of the dedupe key.
    pub site: u32,
    /// First frame the handler enters (a wrapper for nested calls, the
    /// working API itself for direct ones).
    pub entry_symbol: String,
    /// k=1 calling context of the flagged API on the minimal
    /// derivation: the symbol of the frame invoking it (empty for a
    /// depth-0 direct call, and always empty in the `full` profile,
    /// which has no context to report).
    pub context: String,
    /// The blocking API flagged.
    pub api_symbol: String,
    /// Source file of the flagged API.
    pub file: String,
    /// Line in `file`.
    pub line: u32,
    /// Call edges between the entry frame and the flagged API (0 for a
    /// direct call).
    pub depth: u32,
    /// Modeled worst-case main-thread occupancy of the flagged API, ns.
    pub est_blocking_ns: u64,
    /// Ground-truth bug id when the flagged call site is a real bug.
    pub bug_id: Option<String>,
    /// Human-readable message.
    pub message: String,
}

/// One analyzer run over one app.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SastReport {
    /// Always [`SAST_SCHEMA`].
    pub schema: String,
    /// App analyzed.
    pub app: String,
    /// App package.
    pub package: String,
    /// Rule profile name (`"full"`, `"contextual"`, or
    /// `"perfchecker-compat"`).
    pub profile: String,
    /// Vintage of the blocking-API database used.
    pub db_year: u16,
    /// `(node, caller)` summary keys built by the contextual analysis
    /// (0 for the other profiles).
    pub context_pairs: usize,
    /// Structural fingerprint of the app model (stable across runs;
    /// equal for structurally identical apps).
    pub app_fingerprint: u64,
    /// Rule table of the profile.
    pub rules: Vec<RuleMeta>,
    /// Findings, deduplicated on `(action, site, api_symbol)`.
    pub findings: Vec<SastFinding>,
}

impl SastReport {
    /// Distinct ground-truth bugs covered by the findings.
    pub fn bug_ids(&self) -> BTreeSet<String> {
        self.findings
            .iter()
            .filter_map(|f| f.bug_id.clone())
            .collect()
    }

    /// Feeds confirmed findings back into the shared database — the
    /// paper's "warn other developers" loop (Section 3.2), driven from
    /// the static side.
    ///
    /// A confirmed nested finding proves that calling the *entry
    /// wrapper* blocks the main thread, which is new information: the
    /// working API behind it is in the database already (that is how the
    /// finding fired), but the wrapper's own symbol is not. Adding it
    /// lets a direct-call-site scanner flag `wrapper()` calls in other
    /// apps without interprocedural analysis. Returns how many symbols
    /// were new.
    pub fn feed_confirmed(&self, db: &mut BlockingApiDb) -> usize {
        let mut added = 0;
        for f in &self.findings {
            if f.bug_id.is_some() && f.depth >= 1 && db.add_from_static(&f.entry_symbol, &self.app)
            {
                added += 1;
            }
        }
        added
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{rule_table, RuleProfile, RULE_VIA_WRAPPER};

    fn finding(api: &str, entry: &str, depth: u32, bug: Option<&str>) -> SastFinding {
        SastFinding {
            rule: RULE_VIA_WRAPPER.to_string(),
            severity: Severity::Error,
            action: ActionUid(0),
            action_name: "open".to_string(),
            handler: "org.x.Main.onOpen".to_string(),
            site: 0,
            entry_symbol: entry.to_string(),
            context: entry.to_string(),
            api_symbol: api.to_string(),
            file: "X.java".to_string(),
            line: 10,
            depth,
            est_blocking_ns: 200_000_000,
            bug_id: bug.map(str::to_string),
            message: "m".to_string(),
        }
    }

    fn report(findings: Vec<SastFinding>) -> SastReport {
        SastReport {
            schema: SAST_SCHEMA.to_string(),
            app: "X".to_string(),
            package: "org.x".to_string(),
            profile: RuleProfile::Full.as_str().to_string(),
            db_year: 2017,
            context_pairs: 0,
            app_fingerprint: 0,
            rules: rule_table(RuleProfile::Full),
            findings,
        }
    }

    #[test]
    fn bug_ids_collects_distinct_tags() {
        let r = report(vec![
            finding("a.A.x", "w.W.f", 1, Some("b1")),
            finding("b.B.y", "w.W.f", 1, None),
            finding("c.C.z", "v.V.g", 2, Some("b1")),
        ]);
        assert_eq!(r.bug_ids(), BTreeSet::from(["b1".to_string()]));
    }

    #[test]
    fn feed_confirmed_adds_entry_wrappers_once() {
        let r = report(vec![
            finding("a.A.x", "w.W.f", 1, Some("b1")),
            finding("b.B.y", "w.W.f", 1, Some("b2")),
            finding("c.C.z", "c.C.z", 0, Some("b3")),
            finding("d.D.q", "v.V.g", 2, None),
        ]);
        let mut db = BlockingApiDb::new();
        // Only confirmed nested findings contribute, and the shared
        // wrapper is added once; direct findings add nothing new.
        assert_eq!(r.feed_confirmed(&mut db), 1);
        assert!(db.contains("w.W.f"));
        assert!(!db.contains("c.C.z"));
        assert!(!db.contains("v.V.g"));
        assert_eq!(r.feed_confirmed(&mut db), 0);
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = report(vec![finding("a.A.x", "w.W.f", 1, Some("b1"))]);
        let json = serde_json::to_string(&r).unwrap();
        let back: SastReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.schema, SAST_SCHEMA);
    }
}
