//! Strided-shard parallel corpus scanner and its bench artifact.
//!
//! The 114-app study is embarrassingly parallel — apps share nothing
//! but the read-only database and the summary cache — so the scanner
//! reuses hd-fleet's strided sharding: worker `w` of `T` owns corpus
//! indices `{w, w+T, w+2T, …}`, producing `(index, report)` partials
//! that are folded in worker order and sorted by index. Every report is
//! a pure function of `(app, db, config)` — the shared cache memoizes
//! *values*, never decisions — so the merged output is byte-identical
//! at any thread count; only the wall-clock and the cache hit/miss
//! tallies vary, and those are quarantined in the bench artifact.

use std::time::Instant;

use hangdoctor::BlockingApiDb;
use hd_appmodel::App;
use serde::{Deserialize, Serialize};

use crate::cache::{CacheStats, SummaryCache};
use crate::engine::{analyze_with_db_cached, SastConfig};
use crate::report::SastReport;

/// Schema tag of the [`SastBench`] artifact.
pub const SAST_BENCH_SCHEMA: &str = "hang-doctor/sast-bench/v1";

/// The result of scanning a corpus: per-app reports in corpus order.
#[derive(Debug)]
pub struct CorpusScan {
    /// One report per app, in input order regardless of `threads`.
    pub reports: Vec<SastReport>,
    /// Worker count actually used (clamped to the corpus size).
    pub threads: usize,
    /// Summary-cache telemetry for this scan (scheduling-dependent;
    /// never part of the reports).
    pub cache: CacheStats,
}

/// Scans `apps` with `threads` workers and a fresh summary cache.
pub fn scan_corpus(
    apps: &[App],
    db: &BlockingApiDb,
    config: &SastConfig,
    threads: usize,
) -> CorpusScan {
    scan_corpus_cached(apps, db, config, threads, &SummaryCache::new())
}

/// Scans `apps` with `threads` workers, memoizing contextual summaries
/// in (and reusing them from) the given cross-app cache.
pub fn scan_corpus_cached(
    apps: &[App],
    db: &BlockingApiDb,
    config: &SastConfig,
    threads: usize,
    cache: &SummaryCache,
) -> CorpusScan {
    let before = cache.stats();
    let threads = threads.clamp(1, apps.len().max(1));
    let reports = if threads == 1 {
        apps.iter()
            .map(|app| analyze_with_db_cached(app, db, config, Some(cache)))
            .collect()
    } else {
        let mut indexed: Vec<(usize, SastReport)> = Vec::with_capacity(apps.len());
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for worker in 0..threads {
                handles.push(scope.spawn(move |_| {
                    let mut partial = Vec::new();
                    let mut index = worker;
                    while index < apps.len() {
                        partial.push((
                            index,
                            analyze_with_db_cached(&apps[index], db, config, Some(cache)),
                        ));
                        index += threads;
                    }
                    partial
                }));
            }
            for handle in handles {
                indexed.extend(handle.join().expect("scan worker panicked"));
            }
        })
        .expect("scan scope panicked");
        indexed.sort_by_key(|(index, _)| *index);
        indexed.into_iter().map(|(_, report)| report).collect()
    };
    let after = cache.stats();
    CorpusScan {
        reports,
        threads,
        cache: CacheStats {
            hits: after.hits - before.hits,
            misses: after.misses - before.misses,
            entries: after.entries,
        },
    }
}

/// One measured configuration of the threaded scan sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SastBenchRow {
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock for the whole scan, milliseconds.
    pub elapsed_ms: f64,
    /// Apps analyzed per second (replicated corpus size / elapsed).
    pub apps_per_second: f64,
    /// Throughput relative to the sweep's single-thread row.
    pub speedup_vs_serial: f64,
    /// Total findings across the corpus (identical in every row).
    pub findings: usize,
    /// Cross-app cache lookups served from memory.
    pub cache_hits: u64,
    /// Cache lookups that computed a summary.
    pub cache_misses: u64,
    /// `hits / (hits + misses)`.
    pub cache_hit_rate: f64,
    /// Summaries the cache saved recomputing.
    pub summaries_deduped: u64,
    /// Distinct fingerprints resident after the scan.
    pub cache_entries: usize,
}

/// The committed `BENCH_sast.json` artifact.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SastBench {
    /// Always [`SAST_BENCH_SCHEMA`].
    pub schema: String,
    /// Rule profile the sweep ran under.
    pub profile: String,
    /// Database vintage.
    pub db_year: u16,
    /// Distinct corpus apps.
    pub corpus_apps: usize,
    /// Corpus replication factor (workload = apps × replicas).
    pub replicas: usize,
    /// Hardware parallelism of the measuring host. Thread-sweep rows
    /// only show speedup when this exceeds 1 — on a single-core runner
    /// the multi-thread rows measure pure scheduling overhead.
    pub host_cpus: usize,
    /// Best throughput across the sweep — the CI regression-guard
    /// scalar (compare fresh vs committed, mirroring the fleet bench).
    pub best_apps_per_second: f64,
    /// One row per thread count, ascending.
    pub rows: Vec<SastBenchRow>,
}

/// Runs the threaded scan sweep over `apps × replicas` with a fresh
/// cache per run, so every row measures the same cold-start workload.
///
/// Measurement hygiene: one untimed warm-up scan first (so no row pays
/// the process's heap growth and first-touch page faults), then each
/// thread count is run three times and the best wall-clock kept —
/// minimums, not means, estimate the noise floor on shared runners.
pub fn bench_sweep(
    apps: &[App],
    db: &BlockingApiDb,
    config: &SastConfig,
    thread_sweep: &[usize],
    replicas: usize,
) -> SastBench {
    const TRIALS: usize = 3;
    let replicas = replicas.max(1);
    let workload: Vec<App> = std::iter::repeat_with(|| apps.iter().cloned())
        .take(replicas)
        .flatten()
        .collect();
    let warmup = scan_corpus(&workload, db, config, 1);
    std::hint::black_box(&warmup);
    drop(warmup);
    let mut rows: Vec<SastBenchRow> = Vec::with_capacity(thread_sweep.len());
    for &threads in thread_sweep {
        let (mut best, mut scan) = (None::<std::time::Duration>, None);
        for _ in 0..TRIALS {
            let start = Instant::now();
            let trial = scan_corpus(&workload, db, config, threads);
            let elapsed = start.elapsed();
            if best.is_none_or(|b| elapsed < b) {
                best = Some(elapsed);
                scan = Some(trial);
            }
        }
        let (elapsed, scan) = (best.expect("TRIALS > 0"), scan.expect("TRIALS > 0"));
        let elapsed_ms = elapsed.as_secs_f64() * 1e3;
        let apps_per_second = workload.len() as f64 / elapsed.as_secs_f64().max(1e-9);
        let serial = rows
            .first()
            .map(|r: &SastBenchRow| r.apps_per_second)
            .unwrap_or(apps_per_second);
        rows.push(SastBenchRow {
            threads: scan.threads,
            elapsed_ms,
            apps_per_second,
            speedup_vs_serial: apps_per_second / serial.max(1e-9),
            findings: scan.reports.iter().map(|r| r.findings.len()).sum(),
            cache_hits: scan.cache.hits,
            cache_misses: scan.cache.misses,
            cache_hit_rate: scan.cache.hit_rate(),
            summaries_deduped: scan.cache.deduped(),
            cache_entries: scan.cache.entries,
        });
    }
    SastBench {
        schema: SAST_BENCH_SCHEMA.to_string(),
        profile: config.profile.as_str().to_string(),
        db_year: config.db_year,
        corpus_apps: apps.len(),
        replicas,
        host_cpus: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        best_apps_per_second: rows.iter().fold(0.0f64, |m, r| m.max(r.apps_per_second)),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleProfile;
    use hd_appmodel::corpus::{table1, table5};

    fn corpus() -> Vec<App> {
        let mut apps = table1::apps();
        apps.extend(table5::apps());
        apps
    }

    fn configs() -> [SastConfig; 3] {
        [
            RuleProfile::Contextual,
            RuleProfile::Full,
            RuleProfile::PerfCheckerCompat,
        ]
        .map(|profile| SastConfig {
            profile,
            db_year: 2017,
        })
    }

    #[test]
    fn reports_are_byte_identical_at_every_thread_count() {
        let apps = corpus();
        let db = BlockingApiDb::documented(2017);
        for cfg in configs() {
            let baseline =
                serde_json::to_string(&scan_corpus(&apps, &db, &cfg, 1).reports).unwrap();
            for threads in [8, 16, 32] {
                let scan = scan_corpus(&apps, &db, &cfg, threads);
                assert_eq!(
                    serde_json::to_string(&scan.reports).unwrap(),
                    baseline,
                    "{cfg:?} at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn shared_and_fresh_caches_produce_identical_reports() {
        let apps = corpus();
        let db = BlockingApiDb::documented(2017);
        let cfg = SastConfig {
            profile: RuleProfile::Contextual,
            db_year: 2017,
        };
        let fresh = scan_corpus(&apps, &db, &cfg, 4);
        let shared = SummaryCache::new();
        // Warm the shared cache with a full pass, then scan again: the
        // second pass is served almost entirely from memory yet must not
        // change a byte.
        scan_corpus_cached(&apps, &db, &cfg, 4, &shared);
        let warm = scan_corpus_cached(&apps, &db, &cfg, 4, &shared);
        assert_eq!(
            serde_json::to_string(&warm.reports).unwrap(),
            serde_json::to_string(&fresh.reports).unwrap()
        );
        assert_eq!(warm.cache.misses, 0, "warm pass must not recompute");
        assert!(warm.cache.hits > 0);
    }

    #[test]
    fn corpus_order_is_preserved() {
        let apps = corpus();
        let db = BlockingApiDb::documented(2017);
        let scan = scan_corpus(&apps, &db, &configs()[0], 8);
        let scanned: Vec<&str> = scan.reports.iter().map(|r| r.app.as_str()).collect();
        let expected: Vec<&str> = apps.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(scanned, expected);
    }

    #[test]
    fn more_threads_than_apps_is_clamped() {
        let apps = vec![table1::a_better_camera()];
        let db = BlockingApiDb::documented(2017);
        let scan = scan_corpus(&apps, &db, &configs()[0], 64);
        assert_eq!(scan.threads, 1);
        assert_eq!(scan.reports.len(), 1);
    }

    #[test]
    fn bench_sweep_reports_cross_app_reuse() {
        let apps = corpus();
        let db = BlockingApiDb::documented(2017);
        let bench = bench_sweep(&apps, &db, &configs()[0], &[1, 2], 2);
        assert_eq!(bench.schema, SAST_BENCH_SCHEMA);
        assert_eq!(bench.rows.len(), 2);
        assert_eq!(bench.corpus_apps, apps.len());
        assert!((bench.rows[0].speedup_vs_serial - 1.0).abs() < 1e-9);
        assert!(bench.best_apps_per_second > 0.0);
        for row in &bench.rows {
            // Replicated corpus ⇒ every replica after the first is pure
            // cache hits, so reuse is guaranteed nonzero.
            assert!(row.cache_hits > 0, "{row:?}");
            assert!(row.cache_hit_rate > 0.0);
            assert_eq!(row.findings, bench.rows[0].findings);
        }
    }
}
