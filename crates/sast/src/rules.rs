//! The rule framework: rule identities, severities, and profiles.
//!
//! Rules are deliberately few and declarative — the engine does the
//! analysis, a rule only decides *which* reachable blocking calls become
//! findings and how loudly. The three built-in profiles ladder up the
//! precision/recall space of offline detectors:
//!
//! * [`RuleProfile::PerfCheckerCompat`] — the literal PerfChecker-style
//!   scan: walk each concrete call chain, name-match the working API
//!   against the database. This is the legacy
//!   `hd_baselines::scan_app` re-expressed on the engine.
//! * [`RuleProfile::Full`] — the summary-based interprocedural analysis:
//!   judge reachability from each handler entry frame through the
//!   aggregated call graph, so a known-blocking API buried N wrappers
//!   deep (or shared through a helper) is still flagged — including at
//!   call sites that never actually forward to it.
//! * [`RuleProfile::Contextual`] — k=1 call-string reachability: the
//!   same interprocedural depth, but summaries are keyed by the calling
//!   context so a shared wrapper no longer contaminates benign callers.
//!   Sits strictly between the other two on open chains (see
//!   `crate::context`).

use serde::{Deserialize, Serialize};

/// How loud a finding is.
///
/// `Error` means the estimated main-thread occupancy reaches the
/// perceivable-delay threshold; `Warning` means the call blocks but the
/// modeled worst case stays below it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Blocking, but modeled below the perceivable threshold.
    Warning,
    /// Blocking at or above the perceivable threshold.
    Error,
}

/// Static description of one rule (the SARIF `rules` table).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuleMeta {
    /// Stable rule id, e.g. `"HD-S001"`.
    pub id: String,
    /// Short name, e.g. `"known-blocking-on-main"`.
    pub name: String,
    /// One-line description.
    pub description: String,
}

/// Rule id: a known blocking API called directly from a handler.
pub const RULE_DIRECT: &str = "HD-S001";
/// Rule id: a known blocking API reached through wrapper frames.
pub const RULE_VIA_WRAPPER: &str = "HD-S002";

/// The rule table for a profile (every report embeds it).
pub fn rule_table(profile: RuleProfile) -> Vec<RuleMeta> {
    let mut rules = vec![RuleMeta {
        id: RULE_DIRECT.to_string(),
        name: "known-blocking-on-main".to_string(),
        description: "A known blocking API is called directly from a main-thread input handler"
            .to_string(),
    }];
    if matches!(profile, RuleProfile::Full | RuleProfile::Contextual) {
        rules.push(RuleMeta {
            id: RULE_VIA_WRAPPER.to_string(),
            name: "known-blocking-via-wrapper".to_string(),
            description:
                "A known blocking API is reachable from a main-thread input handler through \
                 one or more scannable wrapper frames"
                    .to_string(),
        });
    }
    rules
}

/// Which analysis the engine runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RuleProfile {
    /// Legacy PerfChecker semantics: concrete call chains only, every
    /// finding under the single name-match rule [`RULE_DIRECT`].
    ///
    /// The scan still follows a concrete chain through scannable
    /// wrappers (the legacy scanner did too) — what this profile lacks
    /// is the aggregated-graph reachability of [`RuleProfile::Full`].
    PerfCheckerCompat,
    /// Summary-based interprocedural reachability over the aggregated
    /// (context-insensitive) call graph.
    Full,
    /// k=1 call-string interprocedural reachability: per-context
    /// summaries keyed `(node, caller)`, entry resolved through each
    /// site's own first hop.
    Contextual,
}

impl RuleProfile {
    /// Every profile, in precision order (coarsest first).
    pub const ALL: [RuleProfile; 3] = [
        RuleProfile::Full,
        RuleProfile::Contextual,
        RuleProfile::PerfCheckerCompat,
    ];

    /// Stable profile name used in reports and CLI flags.
    pub fn as_str(self) -> &'static str {
        match self {
            RuleProfile::PerfCheckerCompat => "perfchecker-compat",
            RuleProfile::Full => "full",
            RuleProfile::Contextual => "contextual",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_error_above_warning() {
        assert!(Severity::Error > Severity::Warning);
    }

    #[test]
    fn profiles_expose_their_rule_tables() {
        let compat = rule_table(RuleProfile::PerfCheckerCompat);
        assert_eq!(compat.len(), 1);
        assert_eq!(compat[0].id, RULE_DIRECT);
        for profile in [RuleProfile::Full, RuleProfile::Contextual] {
            let table = rule_table(profile);
            assert_eq!(table.len(), 2, "{profile:?}");
            assert!(table.iter().any(|r| r.id == RULE_VIA_WRAPPER));
        }
    }

    #[test]
    fn profile_names_are_distinct_and_stable() {
        assert_eq!(RuleProfile::Contextual.as_str(), "contextual");
        let names: std::collections::BTreeSet<&str> =
            RuleProfile::ALL.iter().map(|p| p.as_str()).collect();
        assert_eq!(names.len(), RuleProfile::ALL.len());
    }
}
