//! k=1 call-string context sensitivity.
//!
//! The [`Full`](crate::RuleProfile::Full) profile aggregates every
//! observed `caller → callee` pair into one graph, so a shared wrapper's
//! summary unions everything it was *ever* observed forwarding to and
//! every site that enters the wrapper inherits the union — the
//! documented over-approximation. This module rebuilds the summaries
//! with one call-string element of context: a summary is keyed
//! `(node, caller)` instead of `node`, and the entry frame of a call
//! site is resolved through the site's own first hop, so the key of the
//! outermost summary is effectively `(wrapper, caller-site)`.
//!
//! The three profiles form a lattice on the findings they can emit:
//!
//! ```text
//! PerfCheckerCompat  ⊆  Contextual  ⊆  Full        (on open chains)
//! ```
//!
//! * `Contextual ⊆ Full`: every contextual edge `(node, caller) → next`
//!   comes from a concrete chain triple, and the same chain contributes
//!   `node → next` to the aggregated graph, so contextual reachability
//!   never exceeds aggregated reachability.
//! * `Compat ⊆ Contextual` on open chains: a concrete chain registers
//!   all of its own consecutive triples, so following the site's own
//!   first hop always rediscovers the site's own working API when every
//!   frame on the chain is scannable.
//!
//! A true positive is a finding whose target *is* the site's own
//! working API — reached through the site's own chain — so the
//! refinement provably drops only cross-context contamination, never a
//! ground-truth bug that `Full` could attribute to its own site.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use hd_appmodel::{ApiKind, App, Call};

use crate::summary::worst_busy_ns;

/// One reachable target under a context: the minimum contextual depth
/// and, for blame placement, the frame that invokes the target on that
/// minimal derivation (ties broken toward the lexicographically
/// smallest caller symbol, so the choice is a pure function of the
/// subgraph and safe to cache across apps).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Reach {
    depth: u32,
    caller: Option<usize>,
}

/// Per-context summaries over an app: one summary per observed
/// `(node, caller)` pair, fixed-pointed with min-depth merging.
#[derive(Clone, Debug)]
pub struct ContextIndex {
    /// `(node, caller)` → dense key index.
    keys: HashMap<(usize, usize), usize>,
    /// Per key: contextual successors (`next` nodes observed in a
    /// `caller → node → next` triple).
    edges: Vec<BTreeSet<usize>>,
    /// Per key: reachable working APIs with min contextual depth.
    reach: Vec<BTreeMap<usize, Reach>>,
    /// Per key: whether a closed-source boundary truncated the view.
    truncated: Vec<bool>,
}

fn working(app: &App, node: usize) -> bool {
    !app.apis[node].closed_source
        && matches!(
            app.apis[node].kind,
            ApiKind::Blocking { .. } | ApiKind::SelfDeveloped
        )
}

impl ContextIndex {
    /// Builds the `(node, caller)` key set and contextual edges from
    /// every concrete chain, then runs the summaries to a fixed point.
    ///
    /// Offloaded and async call sites contribute structure too, exactly
    /// like [`CallGraph::build`](crate::CallGraph::build): the code
    /// exists either way, and site gates are applied by the engine.
    pub fn build(app: &App) -> ContextIndex {
        let mut keys: HashMap<(usize, usize), usize> = HashMap::new();
        let mut edges: Vec<BTreeSet<usize>> = Vec::new();
        for action in &app.actions {
            for call in action.calls() {
                let chain: Vec<usize> = frames(call);
                for window in chain.windows(2) {
                    let (caller, node) = (window[0], window[1]);
                    let next = keys.len();
                    keys.entry((node, caller)).or_insert_with(|| {
                        edges.push(BTreeSet::new());
                        next
                    });
                }
                for window in chain.windows(3) {
                    let (caller, node, succ) = (window[0], window[1], window[2]);
                    let key = keys[&(node, caller)];
                    edges[key].insert(succ);
                }
            }
        }
        let mut index = ContextIndex {
            reach: vec![BTreeMap::new(); keys.len()],
            truncated: vec![false; keys.len()],
            keys,
            edges,
        };
        index.seed(app);
        index.fixed_point(app);
        index
    }

    /// Number of `(node, caller)` summary keys (the report's
    /// `context_pairs` metadata).
    pub fn context_pairs(&self) -> usize {
        self.keys.len()
    }

    fn seed(&mut self, app: &App) {
        for (&(node, _), &key) in &self.keys {
            if app.apis[node].closed_source {
                self.truncated[key] = true;
            } else if working(app, node) {
                self.reach[key].insert(
                    node,
                    Reach {
                        depth: 0,
                        caller: None,
                    },
                );
            }
        }
    }

    /// Monotone fixed point: per-key reachable sets only grow, depths
    /// only shrink (bounded below by zero), and the equal-depth caller
    /// tie-break only moves toward the smallest symbol, so the loop
    /// terminates even with wrapper cycles.
    fn fixed_point(&mut self, app: &App) {
        loop {
            let mut changed = false;
            let pairs: Vec<((usize, usize), usize)> =
                self.keys.iter().map(|(&p, &k)| (p, k)).collect();
            for ((node, _caller), key) in pairs {
                if app.apis[node].closed_source {
                    continue;
                }
                let mut gained: Vec<(usize, Reach)> = Vec::new();
                let mut truncated = self.truncated[key];
                for &next in &self.edges[key] {
                    if app.apis[next].closed_source {
                        truncated = true;
                        continue;
                    }
                    let next_key = match self.keys.get(&(next, node)) {
                        Some(&k) => k,
                        None => continue,
                    };
                    truncated |= self.truncated[next_key];
                    for (&target, r) in &self.reach[next_key] {
                        let candidate = Reach {
                            depth: r.depth + 1,
                            // The direct caller of `target` on this
                            // derivation: `node` itself when the hop
                            // lands on the target, else whatever the
                            // deeper summary recorded.
                            caller: Some(if r.depth == 0 {
                                node
                            } else {
                                r.caller.unwrap()
                            }),
                        };
                        if improves(app, self.reach[key].get(&target), candidate) {
                            gained.push((target, candidate));
                        }
                    }
                }
                for (target, r) in gained {
                    if improves(app, self.reach[key].get(&target), r) {
                        self.reach[key].insert(target, r);
                        changed = true;
                    }
                }
                if truncated != self.truncated[key] {
                    self.truncated[key] = truncated;
                    changed = true;
                }
            }
            if !changed {
                return;
            }
        }
    }

    /// Contextual reachability of one call site: the entry frame's own
    /// seed plus the summary of the site's own first hop, shifted one
    /// edge down. Returns `None` when the entry frame is closed-source
    /// (the site is unscannable, exactly like the `Full` profile).
    pub fn site_reach(&self, app: &App, call: &Call) -> Option<SiteReach> {
        let chain = frames(call);
        let entry = chain[0];
        if app.apis[entry].closed_source {
            return None;
        }
        let mut targets: BTreeMap<usize, Reach> = BTreeMap::new();
        let mut truncated = false;
        if working(app, entry) {
            targets.insert(
                entry,
                Reach {
                    depth: 0,
                    caller: None,
                },
            );
        }
        if chain.len() >= 2 {
            let hop = chain[1];
            if app.apis[hop].closed_source {
                truncated = true;
            } else {
                let key = self.keys[&(hop, entry)];
                truncated |= self.truncated[key];
                for (&target, r) in &self.reach[key] {
                    let candidate = Reach {
                        depth: r.depth + 1,
                        caller: Some(if r.depth == 0 {
                            entry
                        } else {
                            r.caller.unwrap()
                        }),
                    };
                    if improves(app, targets.get(&target), candidate) {
                        targets.insert(target, candidate);
                    }
                }
            }
        }
        Some(SiteReach {
            entry,
            targets: targets
                .into_iter()
                .map(|(node, r)| SiteTarget {
                    node,
                    depth: r.depth,
                    caller: r.caller,
                })
                .collect(),
            truncated,
        })
    }

    /// Structural fingerprint of the contextual subgraph one call site
    /// can reach — the cross-app cache key.
    ///
    /// Covers everything [`site_reach`](Self::site_reach) depends on:
    /// the entry chain's first hop, every `(node, caller)` key reachable
    /// from it, each node's symbol/kind/closed flag/worst busy
    /// cost/file/line, and the contextual edge structure — serialized in
    /// symbol order so the hash is independent of API index assignment.
    /// Two sites (in the same app or different apps) with equal
    /// fingerprints have identical reachability results by construction.
    pub fn site_fingerprint(&self, app: &App, call: &Call) -> u64 {
        let chain = frames(call);
        let mut hasher = Fnv::new();
        hasher.write(b"hd-sast/ctx/v1");
        hash_node(&mut hasher, app, chain[0]);
        if chain.len() >= 2 {
            // Canonical walk of the reachable key set.
            let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
            let mut queue = VecDeque::new();
            let first = (chain[1], chain[0]);
            if self.keys.contains_key(&first) {
                seen.insert(first);
                queue.push_back(first);
            }
            while let Some((node, caller)) = queue.pop_front() {
                let key = self.keys[&(node, caller)];
                for &next in &self.edges[key] {
                    let pair = (next, node);
                    if self.keys.contains_key(&pair) && seen.insert(pair) {
                        queue.push_back(pair);
                    }
                }
            }
            let mut entries: Vec<(String, (usize, usize))> = seen
                .iter()
                .map(|&(node, caller)| {
                    (
                        format!("{}\u{1}{}", app.apis[node].symbol, app.apis[caller].symbol),
                        (node, caller),
                    )
                })
                .collect();
            entries.sort();
            for (label, (node, caller)) in entries {
                hasher.write(label.as_bytes());
                hash_node(&mut hasher, app, node);
                hash_node(&mut hasher, app, caller);
                let key = self.keys[&(node, caller)];
                let mut succs: Vec<&str> = self.edges[key]
                    .iter()
                    .map(|&s| app.apis[s].symbol.as_str())
                    .collect();
                succs.sort_unstable();
                for s in succs {
                    hasher.write(s.as_bytes());
                    hasher.write(&[2]);
                }
            }
        }
        hasher.finish()
    }
}

/// Contextual reachability of one call site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SiteReach {
    /// Entry frame (first frame the handler enters).
    pub entry: usize,
    /// Reachable working APIs, target-index order.
    pub targets: Vec<SiteTarget>,
    /// Whether a closed-source boundary hid part of the subtree.
    pub truncated: bool,
}

/// One reachable working API at a call site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SiteTarget {
    /// Target API (index into `App::apis`).
    pub node: usize,
    /// Contextual call-edge distance from the entry frame.
    pub depth: u32,
    /// Frame invoking the target on the minimal derivation (`None` for
    /// a depth-0 direct call).
    pub caller: Option<usize>,
}

/// The concrete frame list of a call site: wrapper chain, then the
/// working API.
fn frames(call: &Call) -> Vec<usize> {
    call.via.iter().map(|w| w.0).chain([call.api.0]).collect()
}

/// Min-depth merge with a deterministic, index-free caller tie-break.
fn improves(app: &App, current: Option<&Reach>, candidate: Reach) -> bool {
    match current {
        None => true,
        Some(cur) => {
            if candidate.depth != cur.depth {
                return candidate.depth < cur.depth;
            }
            match (cur.caller, candidate.caller) {
                (Some(a), Some(b)) => app.apis[b].symbol < app.apis[a].symbol,
                _ => false,
            }
        }
    }
}

fn hash_node(hasher: &mut Fnv, app: &App, node: usize) {
    let api = &app.apis[node];
    hasher.write(api.symbol.as_bytes());
    hasher.write(api.file.as_bytes());
    hasher.write(&api.line.to_le_bytes());
    hasher.write(&[api.closed_source as u8, kind_tag(app, node)]);
    hasher.write(&worst_busy_ns(api).to_le_bytes());
    hasher.write(&[0]);
}

fn kind_tag(app: &App, node: usize) -> u8 {
    match app.apis[node].kind {
        ApiKind::Ui => 0,
        ApiKind::Blocking { .. } => 1,
        ApiKind::SelfDeveloped => 2,
        ApiKind::Wrapper => 3,
    }
}

/// Structural fingerprint of the whole app model (APIs + chains),
/// independent of the app's name and package — recorded in every report
/// so downstream tooling can group structurally identical apps.
pub fn app_fingerprint(app: &App) -> u64 {
    let mut hasher = Fnv::new();
    hasher.write(b"hd-sast/app/v1");
    for (node, _) in app.apis.iter().enumerate() {
        hash_node(&mut hasher, app, node);
    }
    for action in &app.actions {
        for call in action.calls() {
            for frame in frames(call) {
                hasher.write(app.apis[frame].symbol.as_bytes());
                hasher.write(&[3]);
            }
            hasher.write(&[call.offloaded as u8, call.async_op.is_some() as u8, 4]);
        }
    }
    hasher.finish()
}

/// Chunked 64-bit multiply-xor digest (FxHash-style word mixing with a
/// splitmix finalizer).
///
/// Fingerprints are cache keys and grouping metadata, not a wire
/// format, so the only requirements are determinism and distribution —
/// and hashing eight bytes per multiply instead of one makes
/// `app_fingerprint` (computed for every report) and
/// [`ContextIndex::site_fingerprint`] several times cheaper than the
/// byte-serial FNV-1a the telemetry layer uses on its hot path.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            // The length term keeps zero bytes and short-chunk padding
            // from colliding.
            let word = u64::from_le_bytes(word) ^ (chunk.len() as u64) << 56;
            self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(0x517c_c1b7_2722_0a95);
        }
    }

    fn finish(&self) -> u64 {
        let mut x = self.0;
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hd_appmodel::{ActionSpec, ApiId, ApiSpec, CostSpec, Dist, EventSpec};
    use hd_simrt::MILLIS;

    fn app(apis: Vec<ApiSpec>, calls: Vec<Call>) -> App {
        App {
            name: "C".into(),
            package: "org.c".into(),
            category: "Tools".into(),
            downloads: 1,
            commit: "c".into(),
            apis,
            actions: vec![ActionSpec::new(
                0,
                "a",
                vec![EventSpec::new("org.c.M.h", 1, calls)],
            )],
            bugs: vec![],
            executors: vec![],
        }
    }

    fn wrapper(sym: &str) -> ApiSpec {
        ApiSpec::new(sym, 1, ApiKind::Wrapper, CostSpec::none())
    }

    fn blocking(sym: &str, ms: u64) -> ApiSpec {
        ApiSpec::new(
            sym,
            1,
            ApiKind::Blocking {
                known_since: Some(2010),
            },
            CostSpec::io(Dist::ZERO, Dist::fixed(ms * MILLIS)),
        )
    }

    fn ui(sym: &str) -> ApiSpec {
        ApiSpec::new(sym, 1, ApiKind::Ui, CostSpec::none())
    }

    #[test]
    fn shared_wrapper_does_not_contaminate_the_benign_caller() {
        // The canonical over-approximation: one wrapper forwards to a
        // blocking query at one site and to UI work at another. The
        // contextual view keeps the sites separate.
        let a = app(
            vec![wrapper("w.W.f"), blocking("a.A.x", 200), ui("u.U.t")],
            vec![
                Call::via(vec![ApiId(0)], ApiId(1)),
                Call::via(vec![ApiId(0)], ApiId(2)),
            ],
        );
        let idx = ContextIndex::build(&a);
        let calls: Vec<&Call> = a.actions[0].calls().collect();
        let blocking_site = idx.site_reach(&a, calls[0]).unwrap();
        assert_eq!(blocking_site.targets.len(), 1);
        assert_eq!(blocking_site.targets[0].node, 1);
        assert_eq!(blocking_site.targets[0].depth, 1);
        assert_eq!(blocking_site.targets[0].caller, Some(0));
        let benign_site = idx.site_reach(&a, calls[1]).unwrap();
        assert!(
            benign_site.targets.is_empty(),
            "the UI-only site must not inherit the other context: {benign_site:?}"
        );
    }

    #[test]
    fn k1_merges_sites_sharing_the_same_caller_pair() {
        // Both chains route w → x; with one element of context the two
        // continuations of x are indistinguishable, so both sites see
        // the blocking target — the expected k=1 precision limit.
        let a = app(
            vec![
                wrapper("w.W.f"),
                wrapper("x.X.g"),
                blocking("a.A.x", 200),
                ui("u.U.t"),
            ],
            vec![
                Call::via(vec![ApiId(0), ApiId(1)], ApiId(2)),
                Call::via(vec![ApiId(0), ApiId(1)], ApiId(3)),
            ],
        );
        let idx = ContextIndex::build(&a);
        let calls: Vec<&Call> = a.actions[0].calls().collect();
        for call in calls {
            let reach = idx.site_reach(&a, call).unwrap();
            assert_eq!(reach.targets.len(), 1, "{reach:?}");
            assert_eq!(reach.targets[0].node, 2);
            assert_eq!(reach.targets[0].depth, 2);
        }
    }

    #[test]
    fn closed_entry_is_unscannable_and_closed_hop_truncates() {
        let a = app(
            vec![
                wrapper("w.W.f").closed(),
                wrapper("v.V.g"),
                blocking("a.A.x", 100),
            ],
            vec![
                Call::via(vec![ApiId(0)], ApiId(2)),
                Call::via(vec![ApiId(1), ApiId(0)], ApiId(2)),
            ],
        );
        let idx = ContextIndex::build(&a);
        let calls: Vec<&Call> = a.actions[0].calls().collect();
        assert!(idx.site_reach(&a, calls[0]).is_none(), "closed entry");
        let through = idx.site_reach(&a, calls[1]).unwrap();
        assert!(through.targets.is_empty());
        assert!(through.truncated, "the closed hop must surface upward");
    }

    #[test]
    fn cycles_converge_to_min_depths() {
        let a = app(
            vec![
                wrapper("w.W.f"),
                wrapper("v.V.g"),
                blocking("a.A.x", 100),
                blocking("b.B.y", 100),
            ],
            vec![
                Call::via(vec![ApiId(0), ApiId(1)], ApiId(2)),
                Call::via(vec![ApiId(1), ApiId(0)], ApiId(3)),
            ],
        );
        let idx = ContextIndex::build(&a);
        let calls: Vec<&Call> = a.actions[0].calls().collect();
        let first = idx.site_reach(&a, calls[0]).unwrap();
        assert_eq!(
            first.targets.iter().map(|t| t.node).collect::<Vec<_>>(),
            vec![2],
            "the cycle's other continuation has a different caller pair"
        );
        assert_eq!(first.targets[0].depth, 2);
    }

    #[test]
    fn fingerprints_match_across_structurally_identical_apps() {
        let build = |name: &str| {
            let mut a = app(
                vec![wrapper("w.W.f"), blocking("a.A.x", 200)],
                vec![Call::via(vec![ApiId(0)], ApiId(1))],
            );
            a.name = name.into();
            a.package = format!("org.{name}");
            a
        };
        let (a, b) = (build("one"), build("two"));
        let (ia, ib) = (ContextIndex::build(&a), ContextIndex::build(&b));
        let ca: Vec<&Call> = a.actions[0].calls().collect();
        let cb: Vec<&Call> = b.actions[0].calls().collect();
        assert_eq!(
            ia.site_fingerprint(&a, ca[0]),
            ib.site_fingerprint(&b, cb[0]),
            "identical subgraphs must share a cache slot"
        );
        assert_eq!(app_fingerprint(&a), app_fingerprint(&b));
    }

    #[test]
    fn fingerprints_separate_different_subgraphs() {
        let a = app(
            vec![wrapper("w.W.f"), blocking("a.A.x", 200), ui("u.U.t")],
            vec![
                Call::via(vec![ApiId(0)], ApiId(1)),
                Call::via(vec![ApiId(0)], ApiId(2)),
                Call::direct(ApiId(1)),
            ],
        );
        let idx = ContextIndex::build(&a);
        let calls: Vec<&Call> = a.actions[0].calls().collect();
        let fps: Vec<u64> = calls.iter().map(|c| idx.site_fingerprint(&a, c)).collect();
        assert_ne!(fps[0], fps[1], "different continuations");
        assert_ne!(fps[0], fps[2], "wrapped vs direct");
    }

    #[test]
    fn fingerprint_is_independent_of_api_index_order() {
        // Same structure, APIs declared in a different order: the
        // canonical symbol-ordered serialization must agree.
        let a = app(
            vec![wrapper("w.W.f"), blocking("a.A.x", 200)],
            vec![Call::via(vec![ApiId(0)], ApiId(1))],
        );
        let b = app(
            vec![blocking("a.A.x", 200), wrapper("w.W.f")],
            vec![Call::via(vec![ApiId(1)], ApiId(0))],
        );
        let (ia, ib) = (ContextIndex::build(&a), ContextIndex::build(&b));
        let ca: Vec<&Call> = a.actions[0].calls().collect();
        let cb: Vec<&Call> = b.actions[0].calls().collect();
        assert_eq!(
            ia.site_fingerprint(&a, ca[0]),
            ib.site_fingerprint(&b, cb[0])
        );
    }
}
