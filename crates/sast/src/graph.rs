//! The per-app call graph the analyzer walks.
//!
//! Nodes are the app's APIs (indexed like `App::apis`); edges aggregate
//! every observed `caller → callee` frame pair across all call sites of
//! the app. Input-event handlers sit above the graph: each concrete
//! [`hd_appmodel::Call`] names the first frame a handler enters (a
//! wrapper chain's outermost frame, or the working API itself for a
//! direct call).
//!
//! Aggregation is what makes the analysis *interprocedural* rather than
//! per-call-site: a wrapper shared by several call sites has one node
//! whose successors union everything it was ever observed forwarding to,
//! so its summary over-approximates — exactly like a summary-based
//! analyzer that cannot distinguish calling contexts.

use std::collections::{BTreeSet, VecDeque};

use hd_appmodel::App;

/// Aggregated caller→callee edges over an app's API list.
#[derive(Clone, Debug)]
pub struct CallGraph {
    successors: Vec<BTreeSet<usize>>,
}

impl CallGraph {
    /// Builds the graph from every call chain of the app.
    ///
    /// Offloaded calls contribute edges too: the code exists either way,
    /// and offload-awareness is applied where it belongs — at the call
    /// *site*, when reachability from the handler is judged.
    pub fn build(app: &App) -> CallGraph {
        let mut successors = vec![BTreeSet::new(); app.apis.len()];
        for action in &app.actions {
            for call in action.calls() {
                let mut prev: Option<usize> = None;
                for frame in call.via.iter().map(|w| w.0).chain([call.api.0]) {
                    if let Some(p) = prev {
                        successors[p].insert(frame);
                    }
                    prev = Some(frame);
                }
            }
        }
        CallGraph { successors }
    }

    /// Number of nodes (== the app's API count).
    pub fn len(&self) -> usize {
        self.successors.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.successors.is_empty()
    }

    /// The aggregated callees of a node.
    pub fn successors(&self, node: usize) -> &BTreeSet<usize> {
        &self.successors[node]
    }

    /// Minimum number of call edges from `from` to `to`, traversing only
    /// scannable (open-source) intermediate frames. `Some(0)` when `from
    /// == to`. Cycle-safe BFS.
    pub fn scannable_depth(&self, app: &App, from: usize, to: usize) -> Option<u32> {
        if from == to {
            return Some(0);
        }
        if app.apis[from].closed_source {
            return None;
        }
        let mut seen = vec![false; self.successors.len()];
        let mut queue = VecDeque::new();
        seen[from] = true;
        queue.push_back((from, 0u32));
        while let Some((node, depth)) = queue.pop_front() {
            for &next in &self.successors[node] {
                if next == to {
                    return Some(depth + 1);
                }
                // A closed-source frame is opaque: nothing beyond it is
                // scannable, so BFS never expands it.
                if !seen[next] && !app.apis[next].closed_source {
                    seen[next] = true;
                    queue.push_back((next, depth + 1));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hd_appmodel::{ActionSpec, ApiId, ApiKind, ApiSpec, App, Call, CostSpec, EventSpec};

    fn app_with_calls(apis: Vec<ApiSpec>, calls: Vec<Call>) -> App {
        App {
            name: "G".into(),
            package: "org.g".into(),
            category: "Tools".into(),
            downloads: 1,
            commit: "c".into(),
            apis,
            actions: vec![ActionSpec::new(
                0,
                "a",
                vec![EventSpec::new("org.g.M.h", 1, calls)],
            )],
            bugs: vec![],
            executors: vec![],
        }
    }

    fn wrapper(sym: &str) -> ApiSpec {
        ApiSpec::new(sym, 1, ApiKind::Wrapper, CostSpec::none())
    }

    fn blocking(sym: &str) -> ApiSpec {
        ApiSpec::new(
            sym,
            1,
            ApiKind::Blocking {
                known_since: Some(2010),
            },
            CostSpec::none(),
        )
    }

    #[test]
    fn edges_aggregate_across_call_sites() {
        let app = app_with_calls(
            vec![wrapper("w.W.f"), blocking("a.A.x"), blocking("b.B.y")],
            vec![
                Call::via(vec![ApiId(0)], ApiId(1)),
                Call::via(vec![ApiId(0)], ApiId(2)),
                Call::direct(ApiId(1)),
            ],
        );
        let g = CallGraph::build(&app);
        assert_eq!(g.len(), 3);
        assert_eq!(
            g.successors(0).iter().copied().collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert!(g.successors(1).is_empty());
    }

    #[test]
    fn depth_follows_shortest_scannable_path() {
        let app = app_with_calls(
            vec![wrapper("w.W.f"), wrapper("v.V.g"), blocking("a.A.x")],
            vec![
                Call::via(vec![ApiId(0), ApiId(1)], ApiId(2)),
                Call::via(vec![ApiId(1)], ApiId(2)),
            ],
        );
        let g = CallGraph::build(&app);
        assert_eq!(g.scannable_depth(&app, 0, 2), Some(2));
        assert_eq!(g.scannable_depth(&app, 1, 2), Some(1));
        assert_eq!(g.scannable_depth(&app, 2, 2), Some(0));
        assert_eq!(g.scannable_depth(&app, 2, 0), None);
    }

    #[test]
    fn depth_does_not_tunnel_through_closed_frames() {
        let app = app_with_calls(
            vec![
                wrapper("w.W.f"),
                wrapper("v.V.g").closed(),
                blocking("a.A.x"),
            ],
            vec![Call::via(vec![ApiId(0), ApiId(1)], ApiId(2))],
        );
        let g = CallGraph::build(&app);
        assert_eq!(g.scannable_depth(&app, 0, 2), None);
        assert_eq!(g.scannable_depth(&app, 1, 2), None, "closed entry");
    }

    #[test]
    fn depth_terminates_on_cycles() {
        let app = app_with_calls(
            vec![wrapper("w.W.f"), wrapper("v.V.g"), blocking("a.A.x")],
            vec![
                Call::via(vec![ApiId(0), ApiId(1)], ApiId(2)),
                Call::via(vec![ApiId(1), ApiId(0)], ApiId(2)),
            ],
        );
        let g = CallGraph::build(&app);
        // w → v and v → w form a cycle; BFS must still terminate.
        assert_eq!(g.scannable_depth(&app, 0, 2), Some(1));
        assert_eq!(g.scannable_depth(&app, 1, 2), Some(1));
    }
}
