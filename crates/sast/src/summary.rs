//! Bottom-up blocking-cost summaries.
//!
//! Every node of the [`CallGraph`](crate::CallGraph) gets a
//! [`BlockingSummary`]: the set of potentially blocking *working* APIs
//! (blocking or self-developed, never UI) reachable from it through
//! scannable frames, plus the worst-case main-thread cost among them.
//! Working APIs seed their own summary; wrapper summaries are the union
//! of their successors', computed to a fixed point so wrapper cycles
//! converge instead of recursing forever.
//!
//! A **closed-source** node is opaque: its summary is empty and marked
//! truncated, and nothing behind it leaks upward — which is exactly how
//! the paper's "calls hidden in closed-source libraries" failure mode
//! falls out of the analysis structurally.

use std::collections::BTreeSet;

use hd_appmodel::{ApiKind, ApiSpec, App};

use crate::graph::CallGraph;

/// What one node can reach, as far as a scanner can see.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BlockingSummary {
    /// Potentially blocking working APIs reachable through scannable
    /// frames (node indices into the app's API list).
    pub reachable: BTreeSet<usize>,
    /// Worst-case main-thread busy time among `reachable`, ns.
    pub worst_blocking_ns: u64,
    /// Whether a closed-source boundary hid part of the subtree.
    pub truncated: bool,
}

/// Worst-case (heavy-path) main-thread busy time of one API call, ns.
pub fn worst_busy_ns(api: &ApiSpec) -> u64 {
    api.cost.cpu.base + api.cost.io.base
}

fn seed(app: &App, node: usize) -> BlockingSummary {
    let api = &app.apis[node];
    if api.closed_source {
        return BlockingSummary {
            truncated: true,
            ..BlockingSummary::default()
        };
    }
    match api.kind {
        ApiKind::Blocking { .. } | ApiKind::SelfDeveloped => BlockingSummary {
            reachable: BTreeSet::from([node]),
            worst_blocking_ns: worst_busy_ns(api),
            truncated: false,
        },
        // UI APIs must stay on the main thread and are never soft hang
        // bugs; wrappers do no work of their own.
        ApiKind::Ui | ApiKind::Wrapper => BlockingSummary::default(),
    }
}

/// Computes every node's summary bottom-up.
///
/// The propagation is a monotone fixed point: per-node reachable sets
/// only grow and are bounded by the API universe, so the loop terminates
/// even when wrappers call each other in cycles.
pub fn compute_summaries(app: &App, graph: &CallGraph) -> Vec<BlockingSummary> {
    let n = app.apis.len();
    let mut summaries: Vec<BlockingSummary> = (0..n).map(|i| seed(app, i)).collect();
    loop {
        let mut changed = false;
        for node in 0..n {
            let api = &app.apis[node];
            if api.closed_source || !matches!(api.kind, ApiKind::Wrapper) {
                continue;
            }
            let mut gained: Vec<usize> = Vec::new();
            let mut worst = summaries[node].worst_blocking_ns;
            let mut truncated = summaries[node].truncated;
            for &succ in graph.successors(node) {
                let s = &summaries[succ];
                for &r in &s.reachable {
                    if !summaries[node].reachable.contains(&r) {
                        gained.push(r);
                    }
                }
                worst = worst.max(s.worst_blocking_ns);
                truncated |= s.truncated;
            }
            let slot = &mut summaries[node];
            if !gained.is_empty() || worst != slot.worst_blocking_ns || truncated != slot.truncated
            {
                slot.reachable.extend(gained);
                slot.worst_blocking_ns = worst;
                slot.truncated = truncated;
                changed = true;
            }
        }
        if !changed {
            return summaries;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hd_appmodel::{ActionSpec, ApiId, Call, CostSpec, Dist, EventSpec, ProfileKind};
    use hd_simrt::MILLIS;

    fn app(apis: Vec<ApiSpec>, calls: Vec<Call>) -> App {
        App {
            name: "S".into(),
            package: "org.s".into(),
            category: "Tools".into(),
            downloads: 1,
            commit: "c".into(),
            apis,
            actions: vec![ActionSpec::new(
                0,
                "a",
                vec![EventSpec::new("org.s.M.h", 1, calls)],
            )],
            bugs: vec![],
            executors: vec![],
        }
    }

    fn wrapper(sym: &str) -> ApiSpec {
        ApiSpec::new(sym, 1, ApiKind::Wrapper, CostSpec::none())
    }

    fn blocking(sym: &str, ms: u64) -> ApiSpec {
        ApiSpec::new(
            sym,
            1,
            ApiKind::Blocking {
                known_since: Some(2010),
            },
            CostSpec::io(Dist::ZERO, Dist::fixed(ms * MILLIS)),
        )
    }

    fn ui(sym: &str) -> ApiSpec {
        ApiSpec::new(
            sym,
            1,
            ApiKind::Ui,
            CostSpec::cpu(Dist::fixed(5 * MILLIS), ProfileKind::Ui),
        )
    }

    #[test]
    fn wrapper_summary_unions_successors_and_skips_ui() {
        let a = app(
            vec![wrapper("w.W.f"), blocking("a.A.x", 200), ui("u.U.t")],
            vec![
                Call::via(vec![ApiId(0)], ApiId(1)),
                Call::via(vec![ApiId(0)], ApiId(2)),
            ],
        );
        let s = compute_summaries(&a, &CallGraph::build(&a));
        assert_eq!(s[0].reachable, BTreeSet::from([1]));
        assert_eq!(s[0].worst_blocking_ns, 200 * MILLIS);
        assert!(!s[0].truncated);
        assert!(s[2].reachable.is_empty(), "UI work is never a finding");
    }

    #[test]
    fn closed_boundary_truncates_the_view() {
        let a = app(
            vec![
                wrapper("w.W.f"),
                wrapper("v.V.g").closed(),
                blocking("a.A.x", 300),
            ],
            vec![Call::via(vec![ApiId(0), ApiId(1)], ApiId(2))],
        );
        let s = compute_summaries(&a, &CallGraph::build(&a));
        assert!(s[1].reachable.is_empty());
        assert!(s[1].truncated);
        assert!(s[0].reachable.is_empty(), "nothing leaks past the boundary");
        assert!(s[0].truncated, "the truncation is visible upward");
    }

    #[test]
    fn cycles_converge() {
        let a = app(
            vec![
                wrapper("w.W.f"),
                wrapper("v.V.g"),
                blocking("a.A.x", 150),
                blocking("b.B.y", 250),
            ],
            vec![
                Call::via(vec![ApiId(0), ApiId(1)], ApiId(2)),
                Call::via(vec![ApiId(1), ApiId(0)], ApiId(3)),
            ],
        );
        let s = compute_summaries(&a, &CallGraph::build(&a));
        // Both wrappers see both working APIs through the cycle.
        assert_eq!(s[0].reachable, BTreeSet::from([2, 3]));
        assert_eq!(s[1].reachable, BTreeSet::from([2, 3]));
        assert_eq!(s[0].worst_blocking_ns, 250 * MILLIS);
    }

    #[test]
    fn closed_working_api_contributes_nothing() {
        let a = app(
            vec![wrapper("w.W.f"), blocking("a.A.x", 300).closed()],
            vec![Call::via(vec![ApiId(0)], ApiId(1))],
        );
        let s = compute_summaries(&a, &CallGraph::build(&a));
        assert!(s[0].reachable.is_empty());
        assert!(s[0].truncated);
    }
}
