//! Content-hashed cross-app summary cache.
//!
//! Corpus apps are built from a shared API registry, so their call-site
//! subgraphs repeat: every app that commits preferences on the main
//! thread has the *same* entry API with the same cost model, and many
//! share whole wrapper chains. The contextual analysis keys each call
//! site by a structural fingerprint of its reachable contextual
//! subgraph ([`ContextIndex::site_fingerprint`]) and memoizes the
//! resolved target list here, so across a 114-app study each distinct
//! subgraph is summarized once.
//!
//! The cached value is app-independent by construction: targets are
//! stored by symbol/file/line/cost (all of which the fingerprint
//! covers), and site-local facts — database membership, `bug_id` tags,
//! offload/async gates — are applied *outside* the cache. Sharing one
//! cache across threads can therefore never change report bytes; only
//! the hit/miss tallies depend on scheduling, and those live in the
//! bench artifacts, never in a report.
//!
//! [`ContextIndex::site_fingerprint`]: crate::context::ContextIndex::site_fingerprint

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

/// One memoized reachable target (everything a finding needs that is
/// not site-local).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CachedTarget {
    /// Target API symbol.
    pub symbol: String,
    /// Source file of the target.
    pub file: String,
    /// Line in `file`.
    pub line: u32,
    /// Worst-case main-thread busy time of the target, ns.
    pub est_blocking_ns: u64,
    /// Contextual call-edge distance from the entry frame.
    pub depth: u32,
    /// k=1 context: symbol of the frame invoking the target on the
    /// minimal derivation (empty for a depth-0 direct call).
    pub context: String,
}

/// The memoized reachability of one fingerprint.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CachedReach {
    /// Reachable targets, deterministic (symbol-sorted) order.
    pub targets: Vec<CachedTarget>,
    /// Whether a closed-source boundary truncated the subtree.
    pub truncated: bool,
}

/// Cache telemetry, reported in scan/bench artifacts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that found a memoized summary.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Distinct fingerprints resident.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }

    /// Summaries the cache saved recomputing: every lookup beyond the
    /// first per fingerprint.
    pub fn deduped(&self) -> u64 {
        self.hits
    }
}

/// Number of independently locked shards. Fingerprints are uniformly
/// distributed (FNV over the whole subgraph), so a modest power of two
/// spreads a scan's lookups far enough that threads rarely collide.
const SHARDS: usize = 64;

/// A shareable (thread-safe) fingerprint → reachability memo table,
/// sharded by fingerprint so concurrent scanners contend per-shard
/// rather than on one global lock.
#[derive(Debug)]
pub struct SummaryCache {
    shards: Vec<Mutex<Inner>>,
}

impl Default for SummaryCache {
    fn default() -> SummaryCache {
        SummaryCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Inner::default())).collect(),
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<u64, Arc<CachedReach>>,
    hits: u64,
    misses: u64,
}

impl SummaryCache {
    /// Creates an empty cache.
    pub fn new() -> SummaryCache {
        SummaryCache::default()
    }

    fn shard(&self, fingerprint: u64) -> &Mutex<Inner> {
        &self.shards[(fingerprint % SHARDS as u64) as usize]
    }

    /// Returns the memoized reachability for `fingerprint`, computing
    /// (and inserting) it with `compute` on a miss.
    ///
    /// The lock is *not* held across `compute`: two threads racing the
    /// same fingerprint may both compute, but the values are identical
    /// (the fingerprint covers every input), so the first insert simply
    /// wins and correctness is unaffected.
    pub fn lookup_or_insert(
        &self,
        fingerprint: u64,
        compute: impl FnOnce() -> CachedReach,
    ) -> Arc<CachedReach> {
        if let Some(found) = {
            let mut inner = self
                .shard(fingerprint)
                .lock()
                .expect("summary cache poisoned");
            let found = inner.map.get(&fingerprint).cloned();
            match &found {
                Some(_) => inner.hits += 1,
                None => inner.misses += 1,
            }
            found
        } {
            return found;
        }
        let value = Arc::new(compute());
        let mut inner = self
            .shard(fingerprint)
            .lock()
            .expect("summary cache poisoned");
        inner
            .map
            .entry(fingerprint)
            .or_insert_with(|| Arc::clone(&value))
            .clone()
    }

    /// Current cache telemetry, folded over the shards.
    pub fn stats(&self) -> CacheStats {
        let mut stats = CacheStats::default();
        for shard in &self.shards {
            let inner = shard.lock().expect("summary cache poisoned");
            stats.hits += inner.hits;
            stats.misses += inner.misses;
            stats.entries += inner.map.len();
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reach(sym: &str) -> CachedReach {
        CachedReach {
            targets: vec![CachedTarget {
                symbol: sym.to_string(),
                file: "F.java".to_string(),
                line: 1,
                est_blocking_ns: 1,
                depth: 1,
                context: "w.W.f".to_string(),
            }],
            truncated: false,
        }
    }

    #[test]
    fn second_lookup_hits_and_skips_compute() {
        let cache = SummaryCache::new();
        let first = cache.lookup_or_insert(7, || reach("a.A.x"));
        let second = cache.lookup_or_insert(7, || panic!("must not recompute"));
        assert_eq!(first, second);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
        assert_eq!(stats.deduped(), 1);
    }

    #[test]
    fn distinct_fingerprints_do_not_collide() {
        let cache = SummaryCache::new();
        cache.lookup_or_insert(1, || reach("a.A.x"));
        let other = cache.lookup_or_insert(2, || reach("b.B.y"));
        assert_eq!(other.targets[0].symbol, "b.B.y");
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn concurrent_lookups_agree() {
        let cache = Arc::new(SummaryCache::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                (0..100u64)
                    .map(|fp| cache.lookup_or_insert(fp % 10, || reach("a.A.x")))
                    .all(|r| r.targets[0].symbol == "a.A.x")
            }));
        }
        for h in handles {
            assert!(h.join().unwrap());
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 10);
        assert_eq!(stats.hits + stats.misses, 800);
    }

    #[test]
    fn empty_cache_reports_zero_rate() {
        assert_eq!(SummaryCache::new().stats().hit_rate(), 0.0);
    }
}
