//! The analyzer: profiles × call graph × summaries × database → report.
//!
//! All rule profiles walk the same call sites and apply the same gates
//! — offload-awareness (an offloaded call sterilizes its subtree),
//! async-awareness (a submitted task body runs on an executor thread,
//! so the scanner sees only the submit and the zero-cost join),
//! closed-source opacity, and database membership — they differ only in
//! *how far they can see*:
//!
//! * **perfchecker-compat** judges each concrete call chain in
//!   isolation, exactly like the legacy `scan_app`;
//! * **full** judges summary-based reachability from the handler's
//!   entry frame over the aggregated call graph, so anything a shared
//!   wrapper was ever observed forwarding to is flagged at every site
//!   that enters the wrapper (a deliberate over-approximation);
//! * **contextual** judges k=1 call-string reachability
//!   ([`crate::context`]): summaries are keyed `(node, caller)` and the
//!   entry is resolved through the site's own first hop, so a shared
//!   wrapper no longer contaminates its benign callers. Its findings
//!   are a subset of `full`'s and a superset of `perfchecker-compat`'s
//!   on open chains.
//!
//! The analysis itself is database-independent: each call site resolves
//! to a target list first ([`SiteRecord`]), and membership in the
//! [`BlockingApiDb`] is applied per target when findings are assembled.
//! That split is what the cross-app cache ([`crate::cache`]) and the
//! incremental session ([`crate::incremental`]) build on.
//!
//! The paper's three offline failure modes are structural here: an API
//! absent from the database never matches ([`BugClass::UnknownApi`]), a
//! closed frame stops every profile ([`BugClass::ClosedSource`]), and a
//! self-developed operation has no database name at all
//! ([`BugClass::SelfDeveloped`]), and a hang carried across a wait edge
//! never appears in any main-thread call chain
//! ([`BugClass::AsyncHang`]).

use std::collections::HashMap;
use std::sync::Arc;

use hangdoctor::BlockingApiDb;
use hd_appmodel::{ApiKind, App, BugSpec};
use hd_simrt::{ActionUid, MILLIS};
use serde::{Deserialize, Serialize};

use crate::cache::{CachedReach, CachedTarget, SummaryCache};
use crate::context::{app_fingerprint, ContextIndex};
use crate::graph::CallGraph;
use crate::report::{SastFinding, SastReport, SAST_SCHEMA};
use crate::rules::{rule_table, RuleProfile, Severity, RULE_DIRECT, RULE_VIA_WRAPPER};
use crate::summary::{compute_summaries, worst_busy_ns};

/// Perceivable-delay threshold used for severity grading (mirrors
/// `hd_metrics::PERCEIVABLE_NS`; duplicated so the analyzer does not
/// depend on the evaluation crate).
pub const PERCEIVABLE_NS: u64 = 100 * MILLIS;

/// Analyzer configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SastConfig {
    /// Which rule profile to run.
    pub profile: RuleProfile,
    /// Vintage of the blocking-API database ([`BlockingApiDb::documented`]).
    pub db_year: u16,
}

impl Default for SastConfig {
    fn default() -> SastConfig {
        SastConfig {
            profile: RuleProfile::Full,
            db_year: 2017,
        }
    }
}

/// Analyzes one app against the documented database of the configured
/// year.
pub fn analyze(app: &App, config: &SastConfig) -> SastReport {
    analyze_with_db(app, &BlockingApiDb::documented(config.db_year), config)
}

/// Analyzes one app against an explicit database (e.g. one augmented
/// with runtime discoveries — the paper's feedback loop).
///
/// `config.db_year` is recorded in the report as metadata only; the
/// membership test uses `db` as given.
pub fn analyze_with_db(app: &App, db: &BlockingApiDb, config: &SastConfig) -> SastReport {
    analyze_with_db_cached(app, db, config, None)
}

/// Like [`analyze_with_db`], memoizing contextual site summaries in the
/// given cross-app cache. Passing the same cache to many apps (or many
/// threads) reuses summaries across structurally identical call sites;
/// the report bytes are identical with or without a cache.
pub fn analyze_with_db_cached(
    app: &App,
    db: &BlockingApiDb,
    config: &SastConfig,
    cache: Option<&SummaryCache>,
) -> SastReport {
    let analysis = resolve_sites(app, config, cache);
    let findings = analysis
        .records
        .iter()
        .map(|record| record.findings(db, config.profile))
        .collect();
    assemble_report(app, config, &analysis, findings)
}

/// One analyzable call site, resolved to its database-independent
/// target list.
#[derive(Clone, Debug)]
pub(crate) struct SiteRecord {
    pub action: ActionUid,
    pub action_name: String,
    pub handler: String,
    /// Call-site ordinal within the action (flat across events,
    /// counting every call so the identity is stable under gating).
    pub site: u32,
    /// Symbol of the site's own working API (bug attachment point).
    pub call_api_symbol: String,
    /// Ground-truth tag of the call site, if any.
    pub bug_id: Option<String>,
    /// First frame the handler enters.
    pub entry_symbol: String,
    /// Reachable targets (db membership not yet applied).
    pub targets: Arc<CachedReach>,
}

impl SiteRecord {
    /// Assembles the site's findings under a database.
    pub fn findings(&self, db: &BlockingApiDb, profile: RuleProfile) -> Vec<SastFinding> {
        let mut findings = Vec::new();
        for target in &self.targets.targets {
            if !db.contains(&target.symbol) {
                continue;
            }
            // The legacy scanner has a single name-match rule
            // regardless of chain shape.
            let rule = if profile == RuleProfile::PerfCheckerCompat || target.depth == 0 {
                RULE_DIRECT
            } else {
                RULE_VIA_WRAPPER
            };
            let severity = if target.est_blocking_ns >= PERCEIVABLE_NS {
                Severity::Error
            } else {
                Severity::Warning
            };
            let bug_id = if target.symbol == self.call_api_symbol {
                self.bug_id.clone()
            } else {
                None
            };
            findings.push(SastFinding {
                rule: rule.to_string(),
                severity,
                action: self.action,
                action_name: self.action_name.clone(),
                handler: self.handler.clone(),
                site: self.site,
                entry_symbol: self.entry_symbol.clone(),
                context: target.context.clone(),
                api_symbol: target.symbol.clone(),
                file: target.file.clone(),
                line: target.line,
                depth: target.depth,
                est_blocking_ns: target.est_blocking_ns,
                message: format!(
                    "{} blocks the main thread (reached {} frame(s) deep from {}; est. worst case {} ms)",
                    target.symbol,
                    target.depth,
                    self.handler,
                    target.est_blocking_ns / MILLIS
                ),
                bug_id,
            });
        }
        findings
    }

    /// Whether any resolved target carries one of `symbols` — the
    /// dirty-set test for incremental re-analysis.
    pub fn reaches_any(&self, symbols: &[&str]) -> bool {
        self.targets
            .targets
            .iter()
            .any(|t| symbols.iter().any(|s| *s == t.symbol))
    }
}

/// The database-independent analysis of one app.
#[derive(Clone, Debug)]
pub(crate) struct SiteAnalysis {
    pub records: Vec<SiteRecord>,
    /// `(node, caller)` summary keys (0 for non-contextual profiles).
    pub context_pairs: usize,
    /// Structural fingerprint of the app model.
    pub fingerprint: u64,
}

/// Resolves every analyzable call site to its target list.
pub(crate) fn resolve_sites(
    app: &App,
    config: &SastConfig,
    cache: Option<&SummaryCache>,
) -> SiteAnalysis {
    enum Engine {
        Compat,
        Full {
            graph: CallGraph,
            summaries: Vec<crate::summary::BlockingSummary>,
        },
        Contextual {
            index: ContextIndex,
        },
    }
    let engine = match config.profile {
        RuleProfile::PerfCheckerCompat => Engine::Compat,
        RuleProfile::Full => {
            let graph = CallGraph::build(app);
            let summaries = compute_summaries(app, &graph);
            Engine::Full { graph, summaries }
        }
        RuleProfile::Contextual => Engine::Contextual {
            index: ContextIndex::build(app),
        },
    };
    // `site_fingerprint` depends only on the site's (entry, first-hop)
    // pair, so sites sharing a first hop reuse the hash — without this
    // memo the per-site canonical-subgraph walk costs more than the
    // summary computation the cross-app cache saves.
    let mut fp_memo: HashMap<(usize, Option<usize>), u64> = HashMap::new();
    let mut records = Vec::new();
    for action in &app.actions {
        let mut site = 0u32;
        for event in &action.events {
            for call in &event.calls {
                let ordinal = site;
                site += 1;
                if call.offloaded {
                    continue;
                }
                if call.async_op.is_some() {
                    // The body runs as an executor task: on the main
                    // thread the scanner sees a submission and, at
                    // most, a zero-cost `Future.get`. Convoys, pool
                    // starvation, and slow joined workers all hide
                    // behind that edge.
                    continue;
                }
                let entry = call.via.first().copied().unwrap_or(call.api).0;
                let targets = match &engine {
                    Engine::Compat => {
                        if !app.call_visible(call) {
                            continue;
                        }
                        let api = app.api(call.api);
                        Arc::new(CachedReach {
                            targets: vec![CachedTarget {
                                symbol: api.symbol.clone(),
                                file: api.file.clone(),
                                line: api.line,
                                est_blocking_ns: worst_busy_ns(api),
                                depth: call.via.len() as u32,
                                context: call
                                    .via
                                    .last()
                                    .map(|w| app.api(*w).symbol.clone())
                                    .unwrap_or_default(),
                            }],
                            truncated: false,
                        })
                    }
                    Engine::Full { graph, summaries } => {
                        if app.apis[entry].closed_source {
                            continue;
                        }
                        let mut targets: Vec<CachedTarget> = summaries[entry]
                            .reachable
                            .iter()
                            .map(|&target| {
                                let api = &app.apis[target];
                                let depth = graph
                                    .scannable_depth(app, entry, target)
                                    .expect("reachable target must have a scannable path");
                                CachedTarget {
                                    symbol: api.symbol.clone(),
                                    file: api.file.clone(),
                                    line: api.line,
                                    est_blocking_ns: worst_busy_ns(api),
                                    depth,
                                    // The aggregated view has no calling
                                    // context to report.
                                    context: String::new(),
                                }
                            })
                            .collect();
                        targets.sort_by(|a, b| a.symbol.cmp(&b.symbol));
                        Arc::new(CachedReach {
                            targets,
                            truncated: summaries[entry].truncated,
                        })
                    }
                    Engine::Contextual { index } => {
                        let compute = || {
                            let reach = index
                                .site_reach(app, call)
                                .expect("closed entries are gated before resolution");
                            let mut targets: Vec<CachedTarget> = reach
                                .targets
                                .iter()
                                .map(|t| {
                                    let api = &app.apis[t.node];
                                    CachedTarget {
                                        symbol: api.symbol.clone(),
                                        file: api.file.clone(),
                                        line: api.line,
                                        est_blocking_ns: worst_busy_ns(api),
                                        depth: t.depth,
                                        context: t
                                            .caller
                                            .map(|c| app.apis[c].symbol.clone())
                                            .unwrap_or_default(),
                                    }
                                })
                                .collect();
                            targets.sort_by(|a, b| a.symbol.cmp(&b.symbol));
                            CachedReach {
                                targets,
                                truncated: reach.truncated,
                            }
                        };
                        if app.apis[entry].closed_source {
                            continue;
                        }
                        match cache {
                            Some(cache) => {
                                let hop = call
                                    .via
                                    .get(1)
                                    .map(|w| w.0)
                                    .or((!call.via.is_empty()).then_some(call.api.0));
                                let fingerprint = *fp_memo
                                    .entry((entry, hop))
                                    .or_insert_with(|| index.site_fingerprint(app, call));
                                cache.lookup_or_insert(fingerprint, compute)
                            }
                            None => Arc::new(compute()),
                        }
                    }
                };
                records.push(SiteRecord {
                    action: action.uid,
                    action_name: action.name.clone(),
                    handler: event.handler.clone(),
                    site: ordinal,
                    call_api_symbol: app.api(call.api).symbol.clone(),
                    bug_id: call.bug_id.clone(),
                    entry_symbol: app.apis[entry].symbol.clone(),
                    targets,
                });
            }
        }
    }
    let context_pairs = match &engine {
        Engine::Contextual { index } => index.context_pairs(),
        _ => 0,
    };
    SiteAnalysis {
        records,
        context_pairs,
        fingerprint: app_fingerprint(app),
    }
}

/// Assembles per-site findings into the final report.
pub(crate) fn assemble_report(
    app: &App,
    config: &SastConfig,
    analysis: &SiteAnalysis,
    per_site: Vec<Vec<SastFinding>>,
) -> SastReport {
    SastReport {
        schema: SAST_SCHEMA.to_string(),
        app: app.name.clone(),
        package: app.package.clone(),
        profile: config.profile.as_str().to_string(),
        db_year: config.db_year,
        context_pairs: analysis.context_pairs,
        app_fingerprint: analysis.fingerprint,
        rules: rule_table(config.profile),
        findings: dedupe(per_site.into_iter().flatten().collect()),
    }
}

/// Deduplicates findings on `(action, site, api_symbol)`.
///
/// The key includes the entry call-site ordinal: two distinct sites
/// reaching the same API through one wrapper are *distinct* findings (a
/// developer fixes call sites, not symbols), where the previous
/// `(action, api_symbol)` key collapsed them and undercounted. Within
/// one site each target resolves once, so surviving duplicates are a
/// safety net only; the first occurrence is kept and its `bug_id` is
/// backfilled so dropping a repeat can never drop ground-truth
/// coverage.
fn dedupe(findings: Vec<SastFinding>) -> Vec<SastFinding> {
    let mut kept: Vec<SastFinding> = Vec::with_capacity(findings.len());
    let mut index: HashMap<(ActionUid, u32, String), usize> = HashMap::new();
    for f in findings {
        match index.entry((f.action, f.site, f.api_symbol.clone())) {
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(kept.len());
                kept.push(f);
            }
            std::collections::hash_map::Entry::Occupied(slot) => {
                let prior = &mut kept[*slot.get()];
                if prior.bug_id.is_none() {
                    prior.bug_id = f.bug_id;
                }
            }
        }
    }
    kept
}

/// The paper's taxonomy of why offline detection misses a bug — plus
/// `Known` for the bugs it catches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BugClass {
    /// Rooted in an API documented as blocking by the database year.
    Known,
    /// Rooted in an API not (yet) in the database.
    UnknownApi,
    /// Every call site is hidden behind a closed-source frame.
    ClosedSource,
    /// Rooted in a self-developed lengthy operation (no database name).
    SelfDeveloped,
    /// Every call site is submitted to an executor: the hang reaches the
    /// main thread through a wait edge (future join), never through an
    /// inline call chain a scanner could walk.
    AsyncHang,
}

impl BugClass {
    /// All classes, in reporting order.
    pub const ALL: [BugClass; 5] = [
        BugClass::Known,
        BugClass::UnknownApi,
        BugClass::ClosedSource,
        BugClass::SelfDeveloped,
        BugClass::AsyncHang,
    ];

    /// Stable name used in reports (decouples downstream artifacts from
    /// this enum).
    pub fn as_str(self) -> &'static str {
        match self {
            BugClass::Known => "known",
            BugClass::UnknownApi => "unknown-api",
            BugClass::ClosedSource => "closed-source",
            BugClass::SelfDeveloped => "self-developed",
            BugClass::AsyncHang => "async-hang",
        }
    }
}

/// Classifies a ground-truth bug by which offline failure mode (if any)
/// hides it from a scanner with a database of the given year.
///
/// The structural classes win over the API-kind classes: if every call
/// site of the bug is submitted to an executor, or none is scannable,
/// the API's name never enters the picture. Async wins over
/// closed-source — a wait-edge hang stays invisible regardless of how
/// open the worker-side code is.
pub fn classify_bug(app: &App, bug: &BugSpec, db_year: u16) -> BugClass {
    let sites: Vec<_> = app
        .actions
        .iter()
        .flat_map(|a| a.calls())
        .filter(|c| c.bug_id.as_deref() == Some(bug.id.as_str()))
        .collect();
    let any = !sites.is_empty();
    if any && sites.iter().all(|c| c.async_op.is_some()) {
        return BugClass::AsyncHang;
    }
    if any && sites.iter().all(|c| !app.call_visible(c)) {
        return BugClass::ClosedSource;
    }
    match app.api(bug.api).kind {
        ApiKind::SelfDeveloped => BugClass::SelfDeveloped,
        ApiKind::Blocking {
            known_since: Some(y),
        } if y <= db_year => BugClass::Known,
        // Undocumented (or documented only after the database vintage):
        // offline name-matching cannot see it. UI/wrapper-rooted bugs are
        // rejected by `App::validate`, so the fallthrough is unreachable
        // on valid models; classify them as unknown rather than panic.
        _ => BugClass::UnknownApi,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hd_appmodel::corpus::{table1, table5};

    fn full() -> SastConfig {
        SastConfig::default()
    }

    fn compat() -> SastConfig {
        SastConfig {
            profile: RuleProfile::PerfCheckerCompat,
            db_year: 2017,
        }
    }

    fn contextual() -> SastConfig {
        SastConfig {
            profile: RuleProfile::Contextual,
            db_year: 2017,
        }
    }

    fn all_profiles() -> [SastConfig; 3] {
        [full(), contextual(), compat()]
    }

    #[test]
    fn direct_known_bug_is_flagged_by_every_profile() {
        let app = table1::a_better_camera();
        for cfg in all_profiles() {
            let report = analyze(&app, &cfg);
            assert!(
                report.bug_ids().contains("abc-open"),
                "{} missed abc-open",
                report.profile
            );
        }
    }

    #[test]
    fn nested_known_bug_carries_the_wrapper_rule() {
        let app = table5::sagemath();
        for cfg in [full(), contextual()] {
            let report = analyze(&app, &cfg);
            let f = report
                .findings
                .iter()
                .find(|f| f.bug_id.as_deref() == Some("sagemath-84-cupboard"))
                .expect("cupboard bug flagged");
            assert_eq!(f.rule, RULE_VIA_WRAPPER, "{}", report.profile);
            assert!(f.depth >= 1);
            assert_ne!(f.entry_symbol, f.api_symbol);
        }
    }

    #[test]
    fn contextual_findings_carry_the_caller_context() {
        let app = table5::sagemath();
        let report = analyze(&app, &contextual());
        let f = report
            .findings
            .iter()
            .find(|f| f.bug_id.as_deref() == Some("sagemath-84-cupboard"))
            .expect("cupboard bug flagged");
        assert!(
            !f.context.is_empty() && f.context != f.api_symbol,
            "nested finding must name its k=1 caller: {f:?}"
        );
        for f in &report.findings {
            if f.depth == 0 {
                assert!(f.context.is_empty(), "direct call has no caller: {f:?}");
            }
        }
    }

    #[test]
    fn unknown_api_bugs_stay_invisible_to_every_profile() {
        let app = table5::k9mail();
        for cfg in all_profiles() {
            let report = analyze(&app, &cfg);
            assert!(
                !report.bug_ids().iter().any(|b| b.contains("clean")),
                "HtmlCleaner.clean is not in the 2017 database"
            );
        }
    }

    #[test]
    fn severity_tracks_the_perceivable_threshold() {
        for app in table1::apps() {
            for f in analyze(&app, &full()).findings {
                let expected = if f.est_blocking_ns >= PERCEIVABLE_NS {
                    Severity::Error
                } else {
                    Severity::Warning
                };
                assert_eq!(f.severity, expected, "{}", f.api_symbol);
            }
        }
    }

    #[test]
    fn db_year_is_honored() {
        let app = table1::a_better_camera();
        let old = SastConfig {
            profile: RuleProfile::Full,
            db_year: 2010,
        };
        assert!(!analyze(&app, &old).bug_ids().contains("abc-open"));
        assert!(analyze(&app, &full()).bug_ids().contains("abc-open"));
    }

    #[test]
    fn runtime_discoveries_reach_the_next_scan() {
        // The Section 3.2 loop: Hang Doctor diagnoses HtmlCleaner.clean
        // at runtime, adds it to the shared database, and the *next*
        // static scan of the same app starts catching the bug.
        let app = table5::k9mail();
        let mut db = BlockingApiDb::documented(2017);
        assert!(!analyze_with_db(&app, &db, &full())
            .bug_ids()
            .iter()
            .any(|b| b.contains("clean")));
        db.add_discovered("org.htmlcleaner.HtmlCleaner.clean", "K9-mail");
        for cfg in [full(), contextual()] {
            assert!(
                analyze_with_db(&app, &db, &cfg)
                    .bug_ids()
                    .iter()
                    .any(|b| b.contains("clean")),
                "{cfg:?}"
            );
        }
    }

    #[test]
    fn classify_bug_covers_the_three_failure_modes() {
        let k9 = table5::k9mail();
        let clean = k9.bug("k9mail-1007-clean").unwrap();
        assert_eq!(classify_bug(&k9, clean, 2017), BugClass::UnknownApi);

        let abc = table1::a_better_camera();
        let open = abc.bug("abc-open").unwrap();
        assert_eq!(classify_bug(&abc, open, 2017), BugClass::Known);
        // A 2010 database predates camera.open's documentation.
        assert_eq!(classify_bug(&abc, open, 2010), BugClass::UnknownApi);

        // Closing every frame of the cupboard chain reclassifies the
        // sagemath bug as closed-source.
        let mut sage = table5::sagemath();
        let idx = sage
            .apis
            .iter()
            .position(|a| a.symbol.contains("cupboard"))
            .unwrap();
        sage.apis[idx].closed_source = true;
        let bug = sage.bug("sagemath-84-cupboard").unwrap();
        assert_eq!(classify_bug(&sage, bug, 2017), BugClass::ClosedSource);
    }

    #[test]
    fn async_hangs_are_invisible_to_every_profile() {
        use hd_appmodel::corpus::async_hangs;
        for app in async_hangs::apps() {
            for cfg in all_profiles() {
                let report = analyze(&app, &cfg);
                assert!(
                    report.bug_ids().is_empty(),
                    "{} ({}): wait-edge hangs must not be flagged offline, got {:?}",
                    app.name,
                    report.profile,
                    report.bug_ids()
                );
                // Nothing about the submitted bodies leaks into findings
                // either — only genuine main-thread sites may appear.
                for bug in &app.bugs {
                    let culprit = &app.api(bug.api).symbol;
                    assert!(
                        report.findings.iter().all(|f| &f.api_symbol != culprit),
                        "{}: worker-side culprit {} surfaced offline",
                        app.name,
                        culprit
                    );
                }
            }
        }
    }

    #[test]
    fn classify_bug_marks_wait_edge_bugs_async() {
        use hd_appmodel::corpus::async_hangs;
        for app in [
            async_hangs::chatrelay(),
            async_hangs::pixelpress(),
            async_hangs::newsflash(),
        ] {
            let bug = &app.bugs[0];
            assert_eq!(
                classify_bug(&app, bug, 2017),
                BugClass::AsyncHang,
                "{}",
                app.name
            );
            // The class is structural: database vintage is irrelevant.
            assert_eq!(classify_bug(&app, bug, 2030), BugClass::AsyncHang);
        }
    }

    /// Builds the async × closed-source interaction app: a bug whose
    /// submitted body runs behind a closed-source wrapper.
    fn async_closed_app(second_site_async: bool) -> (App, ActionUid) {
        use hd_appmodel::corpus::AppBuilder;
        use hd_appmodel::registry as reg;
        use hd_appmodel::Call;
        let mut b = AppBuilder::new("AsyncVault", "com.asyncvault", "Tools", 1_000, "ab5trac");
        b.executor("SerialExecutor", 1);
        let ui = b.ui_pack();
        let sdk = b.api(reg::closed_wrapper("com.vendor.vault.Engine.persist", 33));
        let write = b.api(reg::file_write());
        let second = if second_site_async {
            Call::via(vec![sdk], write)
                .bug("vault-1-persist")
                .submit_to(0)
        } else {
            Call::via(vec![sdk], write).bug("vault-1-persist")
        };
        let act = b.action(
            "persist vault",
            1.0,
            "VaultActivity.onSave",
            41,
            vec![
                Call::direct(ui.set_text),
                Call::via(vec![sdk], write)
                    .bug("vault-1-persist")
                    .submit_to(0),
                second,
            ],
        );
        b.bug(
            "vault-1-persist",
            1,
            write,
            act,
            "closed SDK persists on an executor; the join hangs the UI",
        );
        let app = b.build();
        assert!(app.validate().is_empty(), "{:?}", app.validate());
        (app, act)
    }

    #[test]
    fn async_submission_into_a_closed_wrapper_classifies_as_async_hang() {
        // PR 8's async gate and the closed-source opacity gate both
        // apply to every site of this bug; the async class wins (the
        // wait edge hides the hang no matter how opaque the code is).
        let (app, _) = async_closed_app(true);
        let bug = app.bug("vault-1-persist").unwrap();
        assert_eq!(classify_bug(&app, bug, 2017), BugClass::AsyncHang);
        for cfg in all_profiles() {
            let report = analyze(&app, &cfg);
            assert!(
                report.findings.is_empty(),
                "{}: an async body behind a closed wrapper must yield no \
                 findings, got {:?}",
                report.profile,
                report.findings
            );
        }
    }

    #[test]
    fn mixed_async_and_closed_sync_sites_fall_back_to_closed_source() {
        // One site submits, the other calls the closed wrapper inline:
        // not *every* site is async, but every site is invisible, so the
        // closed-source class applies — and every profile still reports
        // nothing (the sync site's entry frame is closed).
        let (app, _) = async_closed_app(false);
        let bug = app.bug("vault-1-persist").unwrap();
        assert_eq!(classify_bug(&app, bug, 2017), BugClass::ClosedSource);
        for cfg in all_profiles() {
            let report = analyze(&app, &cfg);
            assert!(report.findings.is_empty(), "{}", report.profile);
        }
    }

    #[test]
    fn fully_closed_source_app_yields_zero_findings_not_an_error() {
        use hd_appmodel::corpus::AppBuilder;
        use hd_appmodel::registry as reg;
        use hd_appmodel::Call;
        let mut b = AppBuilder::new("ClosedBox", "com.closedbox", "Tools", 1_000, "deadbee");
        let ui = b.ui_pack();
        let sdk = b.api(reg::closed_wrapper("com.vendor.sdk.Engine.run", 10));
        let write = b.api(reg::file_write());
        let act = b.action(
            "run engine",
            1.0,
            "MainActivity.onRun",
            20,
            vec![
                Call::direct(ui.set_text),
                Call::via(vec![sdk], write).bug("closedbox-1-run"),
            ],
        );
        b.bug(
            "closedbox-1-run",
            1,
            write,
            act,
            "closed SDK blocks internally",
        );
        let app = b.build();
        assert!(app.validate().is_empty(), "{:?}", app.validate());
        for cfg in all_profiles() {
            let report = analyze(&app, &cfg);
            assert!(
                report.findings.is_empty(),
                "{}: a scanner with nothing to scan must report nothing, got {:?}",
                report.profile,
                report.findings
            );
            assert_eq!(report.schema, SAST_SCHEMA);
            assert!(!report.rules.is_empty(), "rule table still present");
        }
    }

    #[test]
    fn offloaded_call_sterilizes_only_its_own_site() {
        use hd_appmodel::corpus::AppBuilder;
        use hd_appmodel::registry as reg;
        use hd_appmodel::Call;
        // The developer offloads one prefs.commit call site to a worker,
        // but a second site still runs on the main thread: the action
        // stays flagged, exactly once. An action whose only blocking
        // call is offloaded comes back clean.
        let mut b = AppBuilder::new("Offloader", "com.offloader", "Tools", 1_000, "f00dfee");
        let ui = b.ui_pack();
        let commit = b.api(reg::prefs_commit());
        let mixed = b.action(
            "save settings",
            1.0,
            "SettingsActivity.onSave",
            30,
            vec![
                Call::direct(commit).offload(),
                Call::direct(ui.set_text),
                Call::direct(commit).bug("off-1-commit"),
            ],
        );
        b.bug(
            "off-1-commit",
            1,
            commit,
            mixed,
            "second call site still on main",
        );
        let clean = b.action(
            "export settings",
            1.0,
            "SettingsActivity.onExport",
            44,
            vec![Call::direct(ui.set_text), Call::direct(commit).offload()],
        );
        let app = b.build();
        assert!(app.validate().is_empty(), "{:?}", app.validate());
        for cfg in all_profiles() {
            let report = analyze(&app, &cfg);
            let on_mixed: Vec<&SastFinding> = report
                .findings
                .iter()
                .filter(|f| f.action == mixed)
                .collect();
            assert_eq!(on_mixed.len(), 1, "{}: {on_mixed:?}", report.profile);
            assert_eq!(on_mixed[0].bug_id.as_deref(), Some("off-1-commit"));
            assert_eq!(on_mixed[0].site, 2, "the surviving main-thread site");
            assert!(
                report.findings.iter().all(|f| f.action != clean),
                "{}: an offloaded-only action must be clean",
                report.profile
            );
        }
    }

    /// The shared-wrapper app: one helper forwards to a blocking query
    /// in one action and to pure UI work in another.
    fn shared_wrapper_app() -> (App, ActionUid, ActionUid) {
        use hd_appmodel::corpus::AppBuilder;
        use hd_appmodel::registry as reg;
        use hd_appmodel::Call;
        let mut b = AppBuilder::new("SharedLib", "com.sharedlib", "Tools", 1_000, "0ddba11");
        let ui = b.ui_pack();
        let helper = b.api(reg::wrapper("com.sharedlib.util.Helper.refresh", 12));
        let query = b.api(reg::sqlite_query());
        let blocking_act = b.action(
            "open list",
            1.0,
            "ListActivity.onCreate",
            18,
            vec![
                Call::direct(ui.inflate),
                Call::via(vec![helper], query).bug("shared-1-query"),
            ],
        );
        b.bug(
            "shared-1-query",
            1,
            query,
            blocking_act,
            "helper queries the db synchronously",
        );
        let ui_act = b.action(
            "toggle view",
            1.0,
            "ListActivity.onToggle",
            27,
            vec![Call::via(vec![helper], ui.notify_dataset)],
        );
        let app = b.build();
        assert!(app.validate().is_empty(), "{:?}", app.validate());
        (app, blocking_act, ui_act)
    }

    #[test]
    fn shared_wrapper_flags_every_entering_action_in_the_full_profile() {
        // The aggregated call graph is context-insensitive, so the full
        // profile flags *both* entering actions (the deliberate
        // over-approximation); the compat profile stays per-call-site
        // and flags only the blocking one.
        let (app, blocking_act, ui_act) = shared_wrapper_app();
        let full_report = analyze(&app, &full());
        let flagged: Vec<ActionUid> = full_report.findings.iter().map(|f| f.action).collect();
        assert!(flagged.contains(&blocking_act), "{flagged:?}");
        assert!(
            flagged.contains(&ui_act),
            "the shared wrapper must drag the UI-only caller in: {flagged:?}"
        );
        let ui_finding = full_report
            .findings
            .iter()
            .find(|f| f.action == ui_act)
            .unwrap();
        assert_eq!(ui_finding.rule, RULE_VIA_WRAPPER);
        assert!(
            ui_finding.bug_id.is_none(),
            "the over-approximated site is not a ground-truth bug"
        );

        let compat_report = analyze(&app, &compat());
        assert!(compat_report
            .findings
            .iter()
            .all(|f| f.action == blocking_act));
        assert!(compat_report.bug_ids().contains("shared-1-query"));
    }

    #[test]
    fn contextual_profile_keeps_the_benign_caller_clean() {
        // The tentpole property: the contextual arm removes the shared-
        // wrapper false positive while keeping the true positive.
        let (app, blocking_act, ui_act) = shared_wrapper_app();
        let report = analyze(&app, &contextual());
        assert!(report.bug_ids().contains("shared-1-query"));
        assert!(
            report.findings.iter().all(|f| f.action != ui_act),
            "the benign caller must stay clean: {:?}",
            report.findings
        );
        assert!(report.findings.iter().any(|f| f.action == blocking_act));
        assert!(report.context_pairs > 0, "contextual metadata recorded");
        // And the lattice holds on this app: Compat ⊆ Contextual ⊆ Full.
        let full_report = analyze(&app, &full());
        assert!(full_report.findings.len() > report.findings.len());
    }

    #[test]
    fn distinct_sites_through_one_wrapper_are_distinct_findings() {
        // Regression for the dedupe undercount: two call sites reaching
        // the same API through the same wrapper used to collapse into
        // one finding under the `(action, api_symbol)` key.
        use hd_appmodel::corpus::AppBuilder;
        use hd_appmodel::registry as reg;
        use hd_appmodel::Call;
        let mut b = AppBuilder::new("TwoSites", "com.twosites", "Tools", 1_000, "2517e5");
        let ui = b.ui_pack();
        let helper = b.api(reg::wrapper("com.twosites.util.Io.flush", 9));
        let commit = b.api(reg::prefs_commit());
        let act = b.action(
            "save twice",
            1.0,
            "MainActivity.onSave",
            15,
            vec![
                Call::via(vec![helper], commit),
                Call::direct(ui.set_text),
                Call::via(vec![helper], commit).bug("two-1-commit"),
            ],
        );
        b.bug("two-1-commit", 1, commit, act, "both sites block");
        let app = b.build();
        assert!(app.validate().is_empty(), "{:?}", app.validate());
        for cfg in all_profiles() {
            let report = analyze(&app, &cfg);
            let commits: Vec<&SastFinding> = report
                .findings
                .iter()
                .filter(|f| f.api_symbol.contains("commit"))
                .collect();
            assert_eq!(
                commits.len(),
                2,
                "{}: two sites, two findings: {commits:?}",
                report.profile
            );
            assert_eq!(commits[0].site, 0);
            assert_eq!(commits[1].site, 2);
            assert_eq!(commits[0].bug_id, None);
            assert_eq!(commits[1].bug_id.as_deref(), Some("two-1-commit"));
        }
    }

    #[test]
    fn cached_and_uncached_contextual_reports_are_identical() {
        let cache = SummaryCache::new();
        for app in table1::apps().iter().chain(table5::apps().iter()) {
            let db = BlockingApiDb::documented(2017);
            let plain = analyze_with_db(app, &db, &contextual());
            let cached = analyze_with_db_cached(app, &db, &contextual(), Some(&cache));
            assert_eq!(plain, cached, "{}", app.name);
        }
        let stats = cache.stats();
        assert!(
            stats.hits > 0,
            "the corpus shares registry APIs; cross-app reuse must occur: {stats:?}"
        );
    }
}
