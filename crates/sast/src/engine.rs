//! The analyzer: profiles × call graph × summaries × database → report.
//!
//! Both rule profiles walk the same call sites and apply the same gates
//! — offload-awareness (an offloaded call sterilizes its subtree),
//! async-awareness (a submitted task body runs on an executor thread,
//! so the scanner sees only the submit and the zero-cost join),
//! closed-source opacity, and database membership — they differ only in
//! *how far they can see*:
//!
//! * **perfchecker-compat** judges each concrete call chain in
//!   isolation, exactly like the legacy `scan_app`;
//! * **full** judges summary-based reachability from the handler's
//!   entry frame over the aggregated call graph, so anything a shared
//!   wrapper was ever observed forwarding to is flagged at every site
//!   that enters the wrapper (a deliberate over-approximation).
//!
//! The paper's three offline failure modes are structural here: an API
//! absent from the database never matches ([`BugClass::UnknownApi`]), a
//! closed frame stops both profiles ([`BugClass::ClosedSource`]), and a
//! self-developed operation has no database name at all
//! ([`BugClass::SelfDeveloped`]), and a hang carried across a wait edge
//! never appears in any main-thread call chain
//! ([`BugClass::AsyncHang`]).

use std::collections::HashMap;

use hangdoctor::BlockingApiDb;
use hd_appmodel::{ApiKind, App, BugSpec};
use hd_simrt::{ActionUid, MILLIS};
use serde::{Deserialize, Serialize};

use crate::graph::CallGraph;
use crate::report::{SastFinding, SastReport, SAST_SCHEMA};
use crate::rules::{rule_table, RuleProfile, Severity, RULE_DIRECT, RULE_VIA_WRAPPER};
use crate::summary::{compute_summaries, worst_busy_ns};

/// Perceivable-delay threshold used for severity grading (mirrors
/// `hd_metrics::PERCEIVABLE_NS`; duplicated so the analyzer does not
/// depend on the evaluation crate).
pub const PERCEIVABLE_NS: u64 = 100 * MILLIS;

/// Analyzer configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SastConfig {
    /// Which rule profile to run.
    pub profile: RuleProfile,
    /// Vintage of the blocking-API database ([`BlockingApiDb::documented`]).
    pub db_year: u16,
}

impl Default for SastConfig {
    fn default() -> SastConfig {
        SastConfig {
            profile: RuleProfile::Full,
            db_year: 2017,
        }
    }
}

/// Analyzes one app against the documented database of the configured
/// year.
pub fn analyze(app: &App, config: &SastConfig) -> SastReport {
    analyze_with_db(app, &BlockingApiDb::documented(config.db_year), config)
}

/// Analyzes one app against an explicit database (e.g. one augmented
/// with runtime discoveries — the paper's feedback loop).
///
/// `config.db_year` is recorded in the report as metadata only; the
/// membership test uses `db` as given.
pub fn analyze_with_db(app: &App, db: &BlockingApiDb, config: &SastConfig) -> SastReport {
    let graph = CallGraph::build(app);
    let summaries = compute_summaries(app, &graph);
    let mut findings = Vec::new();
    for action in &app.actions {
        for event in &action.events {
            for call in &event.calls {
                if call.offloaded {
                    continue;
                }
                if call.async_op.is_some() {
                    // The body runs as an executor task: on the main
                    // thread the scanner sees a submission and, at
                    // most, a zero-cost `Future.get`. Convoys, pool
                    // starvation, and slow joined workers all hide
                    // behind that edge.
                    continue;
                }
                match config.profile {
                    RuleProfile::PerfCheckerCompat => {
                        if !app.call_visible(call) {
                            continue;
                        }
                        let api = app.api(call.api);
                        if !db.contains(&api.symbol) {
                            continue;
                        }
                        let entry = call.via.first().copied().unwrap_or(call.api);
                        findings.push(finding(
                            app,
                            action.uid,
                            &action.name,
                            &event.handler,
                            // The legacy scanner has a single name-match
                            // rule regardless of chain shape.
                            RULE_DIRECT,
                            entry.0,
                            call.api.0,
                            call.via.len() as u32,
                            call.bug_id.clone(),
                        ));
                    }
                    RuleProfile::Full => {
                        let entry = call.via.first().copied().unwrap_or(call.api).0;
                        if app.apis[entry].closed_source {
                            continue;
                        }
                        for &target in &summaries[entry].reachable {
                            if !db.contains(&app.apis[target].symbol) {
                                continue;
                            }
                            let depth = graph
                                .scannable_depth(app, entry, target)
                                .expect("reachable target must have a scannable path");
                            let rule = if depth == 0 {
                                RULE_DIRECT
                            } else {
                                RULE_VIA_WRAPPER
                            };
                            let bug_id = if target == call.api.0 {
                                call.bug_id.clone()
                            } else {
                                None
                            };
                            findings.push(finding(
                                app,
                                action.uid,
                                &action.name,
                                &event.handler,
                                rule,
                                entry,
                                target,
                                depth,
                                bug_id,
                            ));
                        }
                    }
                }
            }
        }
    }
    SastReport {
        schema: SAST_SCHEMA.to_string(),
        app: app.name.clone(),
        package: app.package.clone(),
        profile: config.profile.as_str().to_string(),
        db_year: config.db_year,
        rules: rule_table(config.profile),
        findings: dedupe(findings),
    }
}

#[allow(clippy::too_many_arguments)]
fn finding(
    app: &App,
    action: ActionUid,
    action_name: &str,
    handler: &str,
    rule: &str,
    entry: usize,
    target: usize,
    depth: u32,
    bug_id: Option<String>,
) -> SastFinding {
    let api = &app.apis[target];
    let est_blocking_ns = worst_busy_ns(api);
    let severity = if est_blocking_ns >= PERCEIVABLE_NS {
        Severity::Error
    } else {
        Severity::Warning
    };
    SastFinding {
        rule: rule.to_string(),
        severity,
        action,
        action_name: action_name.to_string(),
        handler: handler.to_string(),
        entry_symbol: app.apis[entry].symbol.clone(),
        api_symbol: api.symbol.clone(),
        file: api.file.clone(),
        line: api.line,
        depth,
        est_blocking_ns,
        message: format!(
            "{} blocks the main thread (reached {} frame(s) deep from {}; est. worst case {} ms)",
            api.symbol,
            depth,
            handler,
            est_blocking_ns / MILLIS
        ),
        bug_id,
    }
}

/// Deduplicates findings on `(action, api_symbol)`.
///
/// The legacy scanner emitted one finding per call site, so an action
/// calling the same known API twice double-counted in precision/recall.
/// The first occurrence (stable source order) is kept; its `bug_id` is
/// backfilled from a later duplicate so dropping repeats never drops
/// ground-truth coverage.
fn dedupe(findings: Vec<SastFinding>) -> Vec<SastFinding> {
    let mut kept: Vec<SastFinding> = Vec::with_capacity(findings.len());
    let mut index: HashMap<(ActionUid, String), usize> = HashMap::new();
    for f in findings {
        match index.entry((f.action, f.api_symbol.clone())) {
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(kept.len());
                kept.push(f);
            }
            std::collections::hash_map::Entry::Occupied(slot) => {
                let prior = &mut kept[*slot.get()];
                if prior.bug_id.is_none() {
                    prior.bug_id = f.bug_id;
                }
            }
        }
    }
    kept
}

/// The paper's taxonomy of why offline detection misses a bug — plus
/// `Known` for the bugs it catches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BugClass {
    /// Rooted in an API documented as blocking by the database year.
    Known,
    /// Rooted in an API not (yet) in the database.
    UnknownApi,
    /// Every call site is hidden behind a closed-source frame.
    ClosedSource,
    /// Rooted in a self-developed lengthy operation (no database name).
    SelfDeveloped,
    /// Every call site is submitted to an executor: the hang reaches the
    /// main thread through a wait edge (future join), never through an
    /// inline call chain a scanner could walk.
    AsyncHang,
}

impl BugClass {
    /// All classes, in reporting order.
    pub const ALL: [BugClass; 5] = [
        BugClass::Known,
        BugClass::UnknownApi,
        BugClass::ClosedSource,
        BugClass::SelfDeveloped,
        BugClass::AsyncHang,
    ];

    /// Stable name used in reports (decouples downstream artifacts from
    /// this enum).
    pub fn as_str(self) -> &'static str {
        match self {
            BugClass::Known => "known",
            BugClass::UnknownApi => "unknown-api",
            BugClass::ClosedSource => "closed-source",
            BugClass::SelfDeveloped => "self-developed",
            BugClass::AsyncHang => "async-hang",
        }
    }
}

/// Classifies a ground-truth bug by which offline failure mode (if any)
/// hides it from a scanner with a database of the given year.
///
/// The structural classes win over the API-kind classes: if every call
/// site of the bug is submitted to an executor, or none is scannable,
/// the API's name never enters the picture. Async wins over
/// closed-source — a wait-edge hang stays invisible regardless of how
/// open the worker-side code is.
pub fn classify_bug(app: &App, bug: &BugSpec, db_year: u16) -> BugClass {
    let sites: Vec<_> = app
        .actions
        .iter()
        .flat_map(|a| a.calls())
        .filter(|c| c.bug_id.as_deref() == Some(bug.id.as_str()))
        .collect();
    let any = !sites.is_empty();
    if any && sites.iter().all(|c| c.async_op.is_some()) {
        return BugClass::AsyncHang;
    }
    if any && sites.iter().all(|c| !app.call_visible(c)) {
        return BugClass::ClosedSource;
    }
    match app.api(bug.api).kind {
        ApiKind::SelfDeveloped => BugClass::SelfDeveloped,
        ApiKind::Blocking {
            known_since: Some(y),
        } if y <= db_year => BugClass::Known,
        // Undocumented (or documented only after the database vintage):
        // offline name-matching cannot see it. UI/wrapper-rooted bugs are
        // rejected by `App::validate`, so the fallthrough is unreachable
        // on valid models; classify them as unknown rather than panic.
        _ => BugClass::UnknownApi,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hd_appmodel::corpus::{table1, table5};

    fn full() -> SastConfig {
        SastConfig::default()
    }

    fn compat() -> SastConfig {
        SastConfig {
            profile: RuleProfile::PerfCheckerCompat,
            db_year: 2017,
        }
    }

    #[test]
    fn direct_known_bug_is_flagged_by_both_profiles() {
        let app = table1::a_better_camera();
        for cfg in [full(), compat()] {
            let report = analyze(&app, &cfg);
            assert!(
                report.bug_ids().contains("abc-open"),
                "{} missed abc-open",
                report.profile
            );
        }
    }

    #[test]
    fn nested_known_bug_carries_the_wrapper_rule() {
        let app = table5::sagemath();
        let report = analyze(&app, &full());
        let f = report
            .findings
            .iter()
            .find(|f| f.bug_id.as_deref() == Some("sagemath-84-cupboard"))
            .expect("cupboard bug flagged");
        assert_eq!(f.rule, RULE_VIA_WRAPPER);
        assert!(f.depth >= 1);
        assert_ne!(f.entry_symbol, f.api_symbol);
    }

    #[test]
    fn unknown_api_bugs_stay_invisible_to_both_profiles() {
        let app = table5::k9mail();
        for cfg in [full(), compat()] {
            let report = analyze(&app, &cfg);
            assert!(
                !report.bug_ids().iter().any(|b| b.contains("clean")),
                "HtmlCleaner.clean is not in the 2017 database"
            );
        }
    }

    #[test]
    fn severity_tracks_the_perceivable_threshold() {
        for app in table1::apps() {
            for f in analyze(&app, &full()).findings {
                let expected = if f.est_blocking_ns >= PERCEIVABLE_NS {
                    Severity::Error
                } else {
                    Severity::Warning
                };
                assert_eq!(f.severity, expected, "{}", f.api_symbol);
            }
        }
    }

    #[test]
    fn db_year_is_honored() {
        let app = table1::a_better_camera();
        let old = SastConfig {
            profile: RuleProfile::Full,
            db_year: 2010,
        };
        assert!(!analyze(&app, &old).bug_ids().contains("abc-open"));
        assert!(analyze(&app, &full()).bug_ids().contains("abc-open"));
    }

    #[test]
    fn runtime_discoveries_reach_the_next_scan() {
        // The Section 3.2 loop: Hang Doctor diagnoses HtmlCleaner.clean
        // at runtime, adds it to the shared database, and the *next*
        // static scan of the same app starts catching the bug.
        let app = table5::k9mail();
        let mut db = BlockingApiDb::documented(2017);
        assert!(!analyze_with_db(&app, &db, &full())
            .bug_ids()
            .iter()
            .any(|b| b.contains("clean")));
        db.add_discovered("org.htmlcleaner.HtmlCleaner.clean", "K9-mail");
        assert!(analyze_with_db(&app, &db, &full())
            .bug_ids()
            .iter()
            .any(|b| b.contains("clean")));
    }

    #[test]
    fn classify_bug_covers_the_three_failure_modes() {
        let k9 = table5::k9mail();
        let clean = k9.bug("k9mail-1007-clean").unwrap();
        assert_eq!(classify_bug(&k9, clean, 2017), BugClass::UnknownApi);

        let abc = table1::a_better_camera();
        let open = abc.bug("abc-open").unwrap();
        assert_eq!(classify_bug(&abc, open, 2017), BugClass::Known);
        // A 2010 database predates camera.open's documentation.
        assert_eq!(classify_bug(&abc, open, 2010), BugClass::UnknownApi);

        // Closing every frame of the cupboard chain reclassifies the
        // sagemath bug as closed-source.
        let mut sage = table5::sagemath();
        let idx = sage
            .apis
            .iter()
            .position(|a| a.symbol.contains("cupboard"))
            .unwrap();
        sage.apis[idx].closed_source = true;
        let bug = sage.bug("sagemath-84-cupboard").unwrap();
        assert_eq!(classify_bug(&sage, bug, 2017), BugClass::ClosedSource);
    }

    #[test]
    fn async_hangs_are_invisible_to_both_profiles() {
        use hd_appmodel::corpus::async_hangs;
        for app in async_hangs::apps() {
            for cfg in [full(), compat()] {
                let report = analyze(&app, &cfg);
                assert!(
                    report.bug_ids().is_empty(),
                    "{} ({}): wait-edge hangs must not be flagged offline, got {:?}",
                    app.name,
                    report.profile,
                    report.bug_ids()
                );
                // Nothing about the submitted bodies leaks into findings
                // either — only genuine main-thread sites may appear.
                for bug in &app.bugs {
                    let culprit = &app.api(bug.api).symbol;
                    assert!(
                        report.findings.iter().all(|f| &f.api_symbol != culprit),
                        "{}: worker-side culprit {} surfaced offline",
                        app.name,
                        culprit
                    );
                }
            }
        }
    }

    #[test]
    fn classify_bug_marks_wait_edge_bugs_async() {
        use hd_appmodel::corpus::async_hangs;
        for app in [
            async_hangs::chatrelay(),
            async_hangs::pixelpress(),
            async_hangs::newsflash(),
        ] {
            let bug = &app.bugs[0];
            assert_eq!(
                classify_bug(&app, bug, 2017),
                BugClass::AsyncHang,
                "{}",
                app.name
            );
            // The class is structural: database vintage is irrelevant.
            assert_eq!(classify_bug(&app, bug, 2030), BugClass::AsyncHang);
        }
    }

    #[test]
    fn fully_closed_source_app_yields_zero_findings_not_an_error() {
        use hd_appmodel::corpus::AppBuilder;
        use hd_appmodel::registry as reg;
        use hd_appmodel::Call;
        let mut b = AppBuilder::new("ClosedBox", "com.closedbox", "Tools", 1_000, "deadbee");
        let ui = b.ui_pack();
        let sdk = b.api(reg::closed_wrapper("com.vendor.sdk.Engine.run", 10));
        let write = b.api(reg::file_write());
        let act = b.action(
            "run engine",
            1.0,
            "MainActivity.onRun",
            20,
            vec![
                Call::direct(ui.set_text),
                Call::via(vec![sdk], write).bug("closedbox-1-run"),
            ],
        );
        b.bug(
            "closedbox-1-run",
            1,
            write,
            act,
            "closed SDK blocks internally",
        );
        let app = b.build();
        assert!(app.validate().is_empty(), "{:?}", app.validate());
        for cfg in [full(), compat()] {
            let report = analyze(&app, &cfg);
            assert!(
                report.findings.is_empty(),
                "{}: a scanner with nothing to scan must report nothing, got {:?}",
                report.profile,
                report.findings
            );
            assert_eq!(report.schema, SAST_SCHEMA);
            assert!(!report.rules.is_empty(), "rule table still present");
        }
    }

    #[test]
    fn offloaded_call_sterilizes_only_its_own_site() {
        use hd_appmodel::corpus::AppBuilder;
        use hd_appmodel::registry as reg;
        use hd_appmodel::Call;
        // The developer offloads one prefs.commit call site to a worker,
        // but a second site still runs on the main thread: the action
        // stays flagged, exactly once. An action whose only blocking
        // call is offloaded comes back clean.
        let mut b = AppBuilder::new("Offloader", "com.offloader", "Tools", 1_000, "f00dfee");
        let ui = b.ui_pack();
        let commit = b.api(reg::prefs_commit());
        let mixed = b.action(
            "save settings",
            1.0,
            "SettingsActivity.onSave",
            30,
            vec![
                Call::direct(commit).offload(),
                Call::direct(ui.set_text),
                Call::direct(commit).bug("off-1-commit"),
            ],
        );
        b.bug(
            "off-1-commit",
            1,
            commit,
            mixed,
            "second call site still on main",
        );
        let clean = b.action(
            "export settings",
            1.0,
            "SettingsActivity.onExport",
            44,
            vec![Call::direct(ui.set_text), Call::direct(commit).offload()],
        );
        let app = b.build();
        assert!(app.validate().is_empty(), "{:?}", app.validate());
        for cfg in [full(), compat()] {
            let report = analyze(&app, &cfg);
            let on_mixed: Vec<&SastFinding> = report
                .findings
                .iter()
                .filter(|f| f.action == mixed)
                .collect();
            assert_eq!(on_mixed.len(), 1, "{}: {on_mixed:?}", report.profile);
            assert_eq!(on_mixed[0].bug_id.as_deref(), Some("off-1-commit"));
            assert!(
                report.findings.iter().all(|f| f.action != clean),
                "{}: an offloaded-only action must be clean",
                report.profile
            );
        }
    }

    #[test]
    fn shared_wrapper_flags_every_entering_action_in_the_full_profile() {
        use hd_appmodel::corpus::AppBuilder;
        use hd_appmodel::registry as reg;
        use hd_appmodel::Call;
        // A helper wrapper forwards to a blocking query in one action
        // and to pure UI work in another. The aggregated call graph is
        // context-insensitive, so the full profile flags *both* entering
        // actions (the deliberate over-approximation); the compat
        // profile stays per-call-site and flags only the blocking one.
        let mut b = AppBuilder::new("SharedLib", "com.sharedlib", "Tools", 1_000, "0ddba11");
        let ui = b.ui_pack();
        let helper = b.api(reg::wrapper("com.sharedlib.util.Helper.refresh", 12));
        let query = b.api(reg::sqlite_query());
        let blocking_act = b.action(
            "open list",
            1.0,
            "ListActivity.onCreate",
            18,
            vec![
                Call::direct(ui.inflate),
                Call::via(vec![helper], query).bug("shared-1-query"),
            ],
        );
        b.bug(
            "shared-1-query",
            1,
            query,
            blocking_act,
            "helper queries the db synchronously",
        );
        let ui_act = b.action(
            "toggle view",
            1.0,
            "ListActivity.onToggle",
            27,
            vec![Call::via(vec![helper], ui.notify_dataset)],
        );
        let app = b.build();
        assert!(app.validate().is_empty(), "{:?}", app.validate());

        let full_report = analyze(&app, &full());
        let flagged: Vec<ActionUid> = full_report.findings.iter().map(|f| f.action).collect();
        assert!(flagged.contains(&blocking_act), "{flagged:?}");
        assert!(
            flagged.contains(&ui_act),
            "the shared wrapper must drag the UI-only caller in: {flagged:?}"
        );
        let ui_finding = full_report
            .findings
            .iter()
            .find(|f| f.action == ui_act)
            .unwrap();
        assert_eq!(ui_finding.rule, RULE_VIA_WRAPPER);
        assert!(
            ui_finding.bug_id.is_none(),
            "the over-approximated site is not a ground-truth bug"
        );

        let compat_report = analyze(&app, &compat());
        assert!(compat_report
            .findings
            .iter()
            .all(|f| f.action == blocking_act));
        assert!(compat_report.bug_ids().contains("shared-1-query"));
    }
}
