//! Dirty-set incremental re-analysis.
//!
//! The paper's feedback loop grows the blocking-API database while the
//! study runs: every runtime-confirmed hang adds a symbol, and every
//! addition used to mean re-scanning the whole corpus from scratch.
//! But the expensive half of a scan — resolving each call site to its
//! reachable target set — is *database-independent* (see
//! [`crate::engine`]): membership is a per-target filter applied at the
//! end. So when the database grows, only call sites whose resolved
//! target set intersects the newly added symbols can change their
//! findings; every other site's findings are bit-for-bit reusable.
//!
//! [`AnalysisSession`] owns that split. It resolves an app's sites once,
//! keeps the per-site findings, and on [`AnalysisSession::add_symbols`]
//! re-filters exactly the dirty sites. Soundness rests on two facts:
//! the database only grows (discoveries are never retracted), and a
//! site's findings are a pure function of `(targets, db ∩ targets)` —
//! so an unchanged intersection means unchanged findings. The
//! equivalence test at the bottom checks the session against a full
//! recompute after every growth step.

use hangdoctor::BlockingApiDb;
use hd_appmodel::App;

use crate::cache::SummaryCache;
use crate::engine::{assemble_report, resolve_sites, SastConfig, SiteAnalysis};
use crate::report::{SastFinding, SastReport};

/// A resumable analysis of one app whose database may grow.
#[derive(Debug)]
pub struct AnalysisSession<'a> {
    app: &'a App,
    config: SastConfig,
    db: BlockingApiDb,
    analysis: SiteAnalysis,
    /// Per-site findings, parallel to `analysis.records`.
    findings: Vec<Vec<SastFinding>>,
    last_recomputed: usize,
}

impl<'a> AnalysisSession<'a> {
    /// Resolves the app's call sites and computes initial findings
    /// against `db`.
    pub fn new(app: &'a App, db: BlockingApiDb, config: SastConfig) -> AnalysisSession<'a> {
        AnalysisSession::new_cached(app, db, config, None)
    }

    /// Like [`AnalysisSession::new`], sharing a cross-app summary cache
    /// for the contextual profile.
    pub fn new_cached(
        app: &'a App,
        db: BlockingApiDb,
        config: SastConfig,
        cache: Option<&SummaryCache>,
    ) -> AnalysisSession<'a> {
        let analysis = resolve_sites(app, &config, cache);
        let findings = analysis
            .records
            .iter()
            .map(|r| r.findings(&db, config.profile))
            .collect();
        AnalysisSession {
            last_recomputed: analysis.records.len(),
            app,
            config,
            db,
            analysis,
            findings,
        }
    }

    /// Grows the database with newly discovered blocking symbols and
    /// re-filters only the call sites that can reach one of them.
    ///
    /// Returns the number of sites recomputed (the dirty set); sites
    /// whose resolved targets miss every added symbol keep their
    /// findings untouched.
    pub fn add_symbols(&mut self, symbols: &[&str], origin: &str) -> usize {
        for symbol in symbols {
            self.db.add_discovered(symbol, origin);
        }
        let mut dirty = 0;
        for (record, findings) in self.analysis.records.iter().zip(&mut self.findings) {
            if record.reaches_any(symbols) {
                *findings = record.findings(&self.db, self.config.profile);
                dirty += 1;
            }
        }
        self.last_recomputed = dirty;
        dirty
    }

    /// Assembles the current findings into a report — identical to a
    /// fresh [`crate::analyze_with_db`] against the grown database.
    pub fn report(&self) -> SastReport {
        assemble_report(
            self.app,
            &self.config,
            &self.analysis,
            self.findings.clone(),
        )
    }

    /// The session's current database (base + additions).
    pub fn db(&self) -> &BlockingApiDb {
        &self.db
    }

    /// Sites recomputed by the most recent operation (all of them at
    /// construction).
    pub fn last_recomputed(&self) -> usize {
        self.last_recomputed
    }

    /// Total analyzable call sites in the session.
    pub fn sites(&self) -> usize {
        self.analysis.records.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze_with_db;
    use crate::rules::RuleProfile;
    use hd_appmodel::corpus::{table1, table5};

    const CLEAN: &str = "org.htmlcleaner.HtmlCleaner.clean";

    fn configs() -> [SastConfig; 3] {
        [
            RuleProfile::Full,
            RuleProfile::Contextual,
            RuleProfile::PerfCheckerCompat,
        ]
        .map(|profile| SastConfig {
            profile,
            db_year: 2017,
        })
    }

    #[test]
    fn session_report_matches_fresh_analysis_before_any_growth() {
        for cfg in configs() {
            for app in table1::apps().iter().chain(table5::apps().iter()) {
                let db = BlockingApiDb::documented(2017);
                let session = AnalysisSession::new(app, db.clone(), cfg);
                assert_eq!(session.report(), analyze_with_db(app, &db, &cfg), "{cfg:?}");
            }
        }
    }

    #[test]
    fn growth_recomputes_only_reaching_sites_and_matches_full_recompute() {
        // The Section 3.2 loop on K-9: runtime diagnosis discovers
        // HtmlCleaner.clean; the incremental session must converge to
        // exactly what a from-scratch scan of the grown database finds,
        // touching only the sites that reach the new symbol.
        let app = table5::k9mail();
        for cfg in configs() {
            let mut session = AnalysisSession::new(&app, BlockingApiDb::documented(2017), cfg);
            assert!(
                !session
                    .report()
                    .bug_ids()
                    .iter()
                    .any(|b| b.contains("clean")),
                "{cfg:?}: clean is unknown to the 2017 db"
            );
            let dirty = session.add_symbols(&[CLEAN], "K9-mail");
            assert!(dirty >= 1, "{cfg:?}: at least one site reaches clean");
            assert!(
                dirty < session.sites(),
                "{cfg:?}: growth must not recompute every site ({dirty}/{})",
                session.sites()
            );
            let fresh = analyze_with_db(&app, session.db(), &cfg);
            assert_eq!(session.report(), fresh, "{cfg:?}");
            assert!(session
                .report()
                .bug_ids()
                .iter()
                .any(|b| b.contains("clean")));
        }
    }

    #[test]
    fn irrelevant_symbols_recompute_nothing() {
        let app = table1::a_better_camera();
        for cfg in configs() {
            let mut session = AnalysisSession::new(&app, BlockingApiDb::documented(2017), cfg);
            let before = session.report();
            let dirty = session.add_symbols(&["com.nowhere.Phantom.spin"], "nobody");
            assert_eq!(dirty, 0, "{cfg:?}");
            assert_eq!(session.report(), before, "{cfg:?}");
        }
    }

    #[test]
    fn repeated_growth_steps_stay_equivalent() {
        let app = table5::k9mail();
        let cfg = SastConfig {
            profile: RuleProfile::Contextual,
            db_year: 2017,
        };
        let mut session = AnalysisSession::new(&app, BlockingApiDb::documented(2017), cfg);
        for batch in [
            vec!["com.nowhere.Phantom.spin"],
            vec![CLEAN],
            vec![CLEAN, "com.nowhere.Other.spin"],
        ] {
            session.add_symbols(&batch, "fleet");
            assert_eq!(session.report(), analyze_with_db(&app, session.db(), &cfg));
        }
    }
}
