//! # hd-sast — summary-based interprocedural static soft-hang analysis
//!
//! The offline arm of the evaluation: a static analyzer over
//! [`hd_appmodel`] apps that finds known blocking APIs reachable from
//! main-thread input handlers, the way PerfChecker-style tools do in the
//! paper's related work (Section 1).
//!
//! The pipeline is classic summary-based analysis:
//!
//! 1. [`CallGraph`] — per-app call graph aggregating every observed
//!    `handler → wrapper* → API` chain;
//! 2. [`summary`] — bottom-up [`BlockingSummary`] per node (reachable
//!    blocking work, worst-case cost), fixed-pointed over wrapper
//!    cycles, truncated at `closed_source` boundaries;
//! 3. [`engine`] — rule profiles ([`RuleProfile::PerfCheckerCompat`] vs
//!    [`RuleProfile::Full`]) gate which reachable calls become findings;
//! 4. [`report`] — versioned SARIF-like JSON ([`SAST_SCHEMA`]), with
//!    [`SastReport::feed_confirmed`] closing the paper's shared-database
//!    loop from the static side.
//!
//! The three offline failure modes the paper motivates Hang Doctor with
//! (Section 1) are *structural* consequences of this design, not special
//! cases: unknown APIs never match the database, closed-source frames
//! stop propagation, and self-developed operations have no database name
//! at all. [`classify_bug`] names those classes per ground-truth bug so
//! the static↔runtime differential in `hd-metrics` can score them.

pub mod engine;
pub mod graph;
pub mod report;
pub mod rules;
pub mod summary;

pub use engine::{analyze, analyze_with_db, classify_bug, BugClass, SastConfig, PERCEIVABLE_NS};
pub use graph::CallGraph;
pub use report::{SastFinding, SastReport, SAST_SCHEMA};
pub use rules::{rule_table, RuleMeta, RuleProfile, Severity, RULE_DIRECT, RULE_VIA_WRAPPER};
pub use summary::{compute_summaries, worst_busy_ns, BlockingSummary};
