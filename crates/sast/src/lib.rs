//! # hd-sast — summary-based interprocedural static soft-hang analysis
//!
//! The offline arm of the evaluation: a static analyzer over
//! [`hd_appmodel`] apps that finds known blocking APIs reachable from
//! main-thread input handlers, the way PerfChecker-style tools do in the
//! paper's related work (Section 1).
//!
//! The pipeline is classic summary-based analysis:
//!
//! 1. [`CallGraph`] — per-app call graph aggregating every observed
//!    `handler → wrapper* → API` chain;
//! 2. [`summary`] — bottom-up [`BlockingSummary`] per node (reachable
//!    blocking work, worst-case cost), fixed-pointed over wrapper
//!    cycles, truncated at `closed_source` boundaries;
//! 3. [`context`] — k=1 call-string summaries keyed `(node, caller)`
//!    ([`ContextIndex`]), so a shared wrapper's blocking callees are
//!    attributed only to the call sites that actually forward to them;
//! 4. [`engine`] — rule profiles ([`RuleProfile::PerfCheckerCompat`],
//!    [`RuleProfile::Full`], [`RuleProfile::Contextual`]) gate which
//!    reachable calls become findings;
//! 5. [`report`] — versioned SARIF-like JSON ([`SAST_SCHEMA`]), with
//!    [`SastReport::feed_confirmed`] closing the paper's shared-database
//!    loop from the static side.
//!
//! Around that core, the v2 engine scales to corpus studies:
//!
//! * [`cache`] — a content-hashed cross-app [`SummaryCache`]: contextual
//!   site summaries keyed by a structural fingerprint of the reachable
//!   subgraph are computed once and reused across every app that shares
//!   the shape;
//! * [`incremental`] — [`AnalysisSession`] re-filters only the call
//!   sites whose resolved targets intersect newly discovered database
//!   symbols (the paper's feedback loop without full re-scans);
//! * [`scan`] — a strided-shard parallel corpus scanner
//!   ([`scan_corpus`]) whose merged output is byte-identical at any
//!   thread count, plus the [`SastBench`] sweep artifact.
//!
//! The three offline failure modes the paper motivates Hang Doctor with
//! (Section 1) are *structural* consequences of this design, not special
//! cases: unknown APIs never match the database, closed-source frames
//! stop propagation, and self-developed operations have no database name
//! at all. [`classify_bug`] names those classes per ground-truth bug so
//! the static↔runtime differential in `hd-metrics` can score them.

pub mod cache;
pub mod context;
pub mod engine;
pub mod graph;
pub mod incremental;
pub mod report;
pub mod rules;
pub mod scan;
pub mod summary;

pub use cache::{CacheStats, CachedReach, CachedTarget, SummaryCache};
pub use context::{app_fingerprint, ContextIndex, SiteReach, SiteTarget};
pub use engine::{
    analyze, analyze_with_db, analyze_with_db_cached, classify_bug, BugClass, SastConfig,
    PERCEIVABLE_NS,
};
pub use graph::CallGraph;
pub use incremental::AnalysisSession;
pub use report::{SastFinding, SastReport, SAST_SCHEMA};
pub use rules::{rule_table, RuleMeta, RuleProfile, Severity, RULE_DIRECT, RULE_VIA_WRAPPER};
pub use scan::{
    bench_sweep, scan_corpus, scan_corpus_cached, CorpusScan, SastBench, SastBenchRow,
    SAST_BENCH_SCHEMA,
};
pub use summary::{compute_summaries, worst_busy_ns, BlockingSummary};
