//! Golden fixture: the full-profile analyzer reports over the Table 1
//! corpus, checked in byte-for-byte. Any change to these bytes means the
//! analysis changed — rule renames, severity regrades, summary-
//! propagation tweaks, and schema drift all surface here. CI greps the
//! same artifact, so this fixture is the machine-checkable contract of
//! `repro sast`.
//!
//! Regenerate (only when a deliberate behavior change lands) with:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test -p hd-sast --test golden
//! ```

use hd_sast::{analyze, SastConfig, SastReport, SAST_SCHEMA};

const FIXTURE: &str = include_str!("fixtures/sast_table1.json");

fn check_or_regen(rendered: String, fixture: &str, name: &str) {
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
        std::fs::write(path, rendered).expect("write fixture");
        return;
    }
    assert_eq!(
        rendered, fixture,
        "{name} drifted from the golden fixture; if the change is \
         intentional, regenerate with GOLDEN_REGEN=1"
    );
}

#[test]
fn table1_full_profile_reports_match_checked_in_fixture() {
    let reports: Vec<SastReport> = hd_appmodel::corpus::table1::apps()
        .iter()
        .map(|app| analyze(app, &SastConfig::default()))
        .collect();
    assert!(reports.iter().any(|r| !r.findings.is_empty()));
    let json = serde_json::to_string_pretty(&reports).expect("serializable reports");
    check_or_regen(format!("{json}\n"), FIXTURE, "sast_table1.json");
}

#[test]
fn fixture_schema_keys_are_stable() {
    // The drift guard CI relies on: the checked-in artifact must carry
    // the schema tag and the SARIF-like per-finding keys.
    for key in [
        SAST_SCHEMA,
        "\"rule\"",
        "\"severity\"",
        "\"file\"",
        "\"line\"",
        "\"message\"",
        "\"est_blocking_ns\"",
        "\"db_year\"",
        "\"site\"",
        "\"context\"",
        "\"context_pairs\"",
        "\"app_fingerprint\"",
    ] {
        assert!(FIXTURE.contains(key), "fixture lost {key}");
    }
}
