//! Property tests of the profile lattice on seed-swept random apps.
//!
//! The contextual arm's contract is a precision-only refinement:
//!
//! * **Contextual ⊆ Full** — k=1 context can only *remove* findings
//!   relative to aggregated reachability (every contextual edge is an
//!   aggregated edge), never invent new ones;
//! * **Compat ⊆ Contextual** — on a fully open chain the site's own
//!   concrete derivation is always registered, so anything the legacy
//!   per-chain scanner flags survives the refinement (zero recall loss
//!   at the per-site level).
//!
//! Findings are compared as `(action, site, api_symbol)` keys — the
//! dedupe identity — so the properties are exactly about *which* sites
//! get flagged, not about depths or messages.

use std::collections::BTreeSet;

use proptest::prelude::*;

use hd_appmodel::corpus::AppBuilder;
use hd_appmodel::registry as reg;
use hd_appmodel::{App, Call};
use hd_sast::{analyze, RuleProfile, SastConfig, SastReport};

/// One randomized call site: wrapper-chain picks, target pick, gate.
type CallSpec = (Vec<u8>, u8, u8);

/// A randomized app: per-wrapper closed flags plus actions of calls.
type AppSpec = (Vec<bool>, Vec<Vec<CallSpec>>);

fn arb_app() -> impl Strategy<Value = AppSpec> {
    (
        proptest::collection::vec(prop_oneof![Just(false), Just(false), Just(true)], 1..4),
        proptest::collection::vec(
            proptest::collection::vec(
                (proptest::collection::vec(0u8..8, 0..3), 0u8..6, 0u8..10),
                1..5,
            ),
            1..4,
        ),
    )
}

/// Materializes a generated spec into a valid [`App`].
fn build_app(spec: &AppSpec) -> App {
    let (closed_flags, actions) = spec;
    let mut b = AppBuilder::new("RandApp", "org.rand.app", "Tools", 1_000, "abc1234");
    let ui = b.ui_pack();
    let wrappers: Vec<_> = closed_flags
        .iter()
        .enumerate()
        .map(|(i, &closed)| {
            let symbol = format!("org.rand.app.util.W{i}.call");
            if closed {
                b.api(reg::closed_wrapper(&symbol, 10 + i as u32))
            } else {
                b.api(reg::wrapper(&symbol, 10 + i as u32))
            }
        })
        .collect();
    let blocking = [
        b.api(reg::sqlite_query()),
        b.api(reg::prefs_commit()),
        b.api(reg::file_write()),
        b.api(reg::bitmap_decode_file()),
    ];
    for (a, calls) in actions.iter().enumerate() {
        let calls = calls
            .iter()
            .map(|(chain, target, gate)| {
                let via: Vec<_> = chain
                    .iter()
                    .map(|w| wrappers[*w as usize % wrappers.len()])
                    .collect();
                let api = match target {
                    0..=3 => blocking[*target as usize],
                    4 => ui.set_text,
                    _ => ui.notify_dataset,
                };
                let call = if via.is_empty() {
                    Call::direct(api)
                } else {
                    Call::via(via, api)
                };
                if *gate == 0 {
                    call.offload()
                } else {
                    call
                }
            })
            .collect();
        b.action(
            &format!("random action {a}"),
            1.0,
            "MainActivity.onRandom",
            40 + a as u32,
            calls,
        );
    }
    let app = b.build();
    assert!(app.validate().is_empty(), "{:?}", app.validate());
    app
}

/// A report reduced to its dedupe-identity key set.
fn keys(report: &SastReport) -> BTreeSet<(u64, u32, String)> {
    report
        .findings
        .iter()
        .map(|f| (f.action.0, f.site, f.api_symbol.clone()))
        .collect()
}

fn run(app: &App, profile: RuleProfile) -> SastReport {
    analyze(
        app,
        &SastConfig {
            profile,
            db_year: 2017,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn contextual_is_a_precision_only_refinement(spec in arb_app()) {
        let app = build_app(&spec);
        let full = keys(&run(&app, RuleProfile::Full));
        let contextual = keys(&run(&app, RuleProfile::Contextual));
        let compat = keys(&run(&app, RuleProfile::PerfCheckerCompat));
        prop_assert!(
            contextual.is_subset(&full),
            "contextual invented findings: {:?}",
            contextual.difference(&full).collect::<Vec<_>>()
        );
        prop_assert!(
            compat.is_subset(&contextual),
            "contextual lost legacy findings: {:?}",
            compat.difference(&contextual).collect::<Vec<_>>()
        );
    }

    #[test]
    fn every_profile_is_deterministic(spec in arb_app()) {
        let app = build_app(&spec);
        for profile in RuleProfile::ALL {
            let once = run(&app, profile);
            prop_assert_eq!(&once, &run(&app, profile), "{:?}", profile);
        }
    }
}
