//! # hd-baselines — the detectors Hang Doctor is compared against
//!
//! * [`TimeoutDetector`] (TI): flag and trace every input event whose
//!   response exceeds a fixed timeout (5 s = Android ANR; 100 ms = the
//!   perceivable-delay detector of Table 2).
//! * [`UtilizationDetector`] (UTL / UTH / UTL+TI / UTH+TI): static
//!   thresholds over periodic resource-utilization polls of the main
//!   thread.
//! * [`perfchecker`]: the offline scanner that name-matches known
//!   blocking APIs in scannable source — the primary detection approach
//!   Hang Doctor supplements.
//!
//! All runtime baselines report through the shared [`DetectionLog`] and
//! charge monitoring costs through the same `CostModel` as Hang Doctor,
//! so detection quality (Figures 8a/8b) and overhead (Figure 8c) are
//! directly comparable.

pub mod detector;
pub mod perfchecker;
pub mod timeout;
pub mod utilization;

pub use detector::{
    install, DetectionLog, Detector, DetectorOutput, InstalledDetector, TracedHang,
};
pub use perfchecker::{missed_bugs, scan_app, OfflineFinding, OfflineScanner, SastScanner};
pub use timeout::TimeoutDetector;
pub use utilization::{UtMode, UtThresholds, UtilizationDetector};
