//! The Utilization-based (UT) baselines and their timeout combinations.
//!
//! UT (after Pelleg et al. and Zhu et al.) periodically polls the main
//! thread's resource usage every 100 ms and flags a potential soft hang
//! bug when any utilization exceeds a static threshold:
//!
//! * **UTL** uses *low* thresholds (the minimum usage ever observed
//!   during a soft hang bug) — it misses nothing but flags nearly every
//!   action, including sub-100 ms ones;
//! * **UTH** uses *high* thresholds (90% of the peak usage observed
//!   during bugs) — near-zero false positives but it misses every bug
//!   that does not saturate a resource (all the I/O-bound ones).
//!
//! **UTL+TI / UTH+TI** poll only while an input event has already been
//! running for 100 ms, so the polling overhead collapses, but the
//! utilization test still cannot tell blocked-on-I/O bugs from idle time.

use std::cell::RefCell;
use std::rc::Rc;

use hd_perfmon::{CostModel, ResourceUsage, StackSampler};
use hd_simrt::{ActionInfo, ActionRecord, MessageInfo, Probe, ProbeCtx, SimTime, MILLIS};
use serde::{Deserialize, Serialize};

use crate::detector::{DetectionLog, Detector, DetectorOutput, TracedHang};

const SAMPLER_TOKEN: u64 = 1;
const POLL_TOKEN_BASE: u64 = 10_000;
const WATCH_TOKEN_BASE: u64 = 1_000_000_000;

/// Static utilization thresholds (violation = any metric exceeds).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct UtThresholds {
    /// Main-thread CPU utilization over the poll window.
    pub cpu_util: f64,
    /// Main-thread page faults per millisecond over the window.
    pub fault_rate_per_ms: f64,
}

impl UtThresholds {
    /// Low thresholds: the minimum utilization observed during soft hang
    /// bugs (I/O-bound hangs barely use the CPU).
    pub fn low() -> UtThresholds {
        UtThresholds {
            cpu_util: 0.06,
            fault_rate_per_ms: 0.25,
        }
    }

    /// High thresholds: 90% of the peak utilization observed during soft
    /// hang bugs.
    ///
    /// A busy main thread saturates a core whether it runs a blocking
    /// operation or legitimate heavy UI work, so no high CPU threshold
    /// separates the two — the variant is effectively driven by the
    /// memory channel, which only memory-bound hangs saturate. This is
    /// exactly why the paper finds UTH misses ~62% of the bugs.
    pub fn high() -> UtThresholds {
        UtThresholds {
            cpu_util: 2.0,
            fault_rate_per_ms: 9.9,
        }
    }

    /// Whether a window's usage violates the thresholds.
    pub fn violated(&self, usage: &ResourceUsage, window_ns: u64) -> bool {
        usage.cpu_utilization(window_ns) > self.cpu_util
            || usage.fault_rate_per_ms(window_ns) > self.fault_rate_per_ms
    }
}

/// When the detector polls.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UtMode {
    /// Poll every 100 ms while any action executes (plain UT).
    Continuous,
    /// Poll only once an input event has exceeded the timeout (UT+TI).
    OnHang {
        /// The TI timeout, ns.
        timeout_ns: u64,
    },
}

/// The UT / UT+TI baseline probe.
pub struct UtilizationDetector {
    thresholds: UtThresholds,
    mode: UtMode,
    poll_period_ns: u64,
    costs: CostModel,
    sampler: StackSampler,
    out: Rc<RefCell<DetectionLog>>,

    // Current-window state.
    active: bool,
    last_activity_end: SimTime,
    expected_poll: u64,
    next_poll: u64,
    next_watch: u64,
    expected_watch: u64,
    prev_usage: ResourceUsage,
    prev_at: SimTime,
    current_exec: Option<MessageInfo>,
    flagged_exec: bool,
    traced_idx: Option<usize>,
}

impl UtilizationDetector {
    /// Creates a detector; see [`UtMode`] and [`UtThresholds`].
    pub fn new(
        thresholds: UtThresholds,
        mode: UtMode,
        costs: CostModel,
    ) -> (UtilizationDetector, Rc<RefCell<DetectionLog>>) {
        let out = Rc::new(RefCell::new(DetectionLog::default()));
        (
            UtilizationDetector {
                thresholds,
                mode,
                poll_period_ns: 100 * MILLIS,
                costs,
                sampler: StackSampler::new(10 * MILLIS, SAMPLER_TOKEN, costs),
                out: out.clone(),
                active: false,
                last_activity_end: SimTime::ZERO,
                expected_poll: 0,
                next_poll: POLL_TOKEN_BASE,
                next_watch: WATCH_TOKEN_BASE,
                expected_watch: 0,
                prev_usage: ResourceUsage::default(),
                prev_at: SimTime::ZERO,
                current_exec: None,
                flagged_exec: false,
                traced_idx: None,
            },
            out,
        )
    }

    /// UTL.
    pub fn low(costs: CostModel) -> (UtilizationDetector, Rc<RefCell<DetectionLog>>) {
        Self::new(UtThresholds::low(), UtMode::Continuous, costs)
    }

    /// UTH.
    pub fn high(costs: CostModel) -> (UtilizationDetector, Rc<RefCell<DetectionLog>>) {
        Self::new(UtThresholds::high(), UtMode::Continuous, costs)
    }

    /// UTL+TI.
    pub fn low_ti(costs: CostModel) -> (UtilizationDetector, Rc<RefCell<DetectionLog>>) {
        Self::new(
            UtThresholds::low(),
            UtMode::OnHang {
                timeout_ns: 100 * MILLIS,
            },
            costs,
        )
    }

    /// UTH+TI.
    pub fn high_ti(costs: CostModel) -> (UtilizationDetector, Rc<RefCell<DetectionLog>>) {
        Self::new(
            UtThresholds::high(),
            UtMode::OnHang {
                timeout_ns: 100 * MILLIS,
            },
            costs,
        )
    }

    fn arm_poll(&mut self, ctx: &mut ProbeCtx<'_>) {
        self.next_poll += 1;
        self.expected_poll = self.next_poll;
        ctx.set_timer(ctx.now() + self.poll_period_ns, self.expected_poll);
    }

    fn begin_window(&mut self, ctx: &mut ProbeCtx<'_>) {
        self.active = true;
        let main = ctx.main_tid();
        self.prev_usage = ResourceUsage::sample(ctx, main, &self.costs);
        self.prev_at = ctx.now();
        self.arm_poll(ctx);
    }

    /// Polls once; returns whether the thresholds were violated.
    ///
    /// Windows shorter than the `/proc` accounting granularity are not
    /// checked (a near-empty window trivially shows ~100% utilization).
    fn poll(&mut self, ctx: &mut ProbeCtx<'_>) -> bool {
        const MIN_WINDOW_NS: u64 = 40 * MILLIS;
        let main = ctx.main_tid();
        let usage = ResourceUsage::sample(ctx, main, &self.costs);
        let window = ctx.now() - self.prev_at;
        let delta = usage.since(&self.prev_usage);
        self.prev_usage = usage;
        self.prev_at = ctx.now();
        if window < MIN_WINDOW_NS {
            return false;
        }
        let violated = self.thresholds.violated(&delta, window);
        if violated {
            self.out.borrow_mut().util_violations += 1;
        }
        violated
    }

    fn flag(&mut self, ctx: &mut ProbeCtx<'_>, response_ns: u64) {
        if self.flagged_exec {
            return;
        }
        let Some(info) = &self.current_exec else {
            return;
        };
        self.flagged_exec = true;
        let action_name = ctx.action_name(info.action_name).to_string();
        let mut out = self.out.borrow_mut();
        out.traced.push(TracedHang {
            exec_id: info.exec_id,
            uid: info.action_uid,
            action_name,
            response_ns,
            at: ctx.now(),
            samples: 0,
        });
        self.traced_idx = Some(out.traced.len() - 1);
        drop(out);
        if !self.sampler.is_active() {
            self.sampler.begin(ctx);
        }
    }

    fn stop_tracing(&mut self) {
        let samples = self.sampler.end();
        if let Some(idx) = self.traced_idx {
            self.out.borrow_mut().traced[idx].samples += samples.len();
        }
    }
}

impl Detector for UtilizationDetector {
    fn name(&self) -> String {
        let level = if self.thresholds == UtThresholds::low() {
            "UTL"
        } else if self.thresholds == UtThresholds::high() {
            "UTH"
        } else {
            "UT"
        };
        match self.mode {
            UtMode::Continuous => level.to_string(),
            UtMode::OnHang { .. } => format!("{level}+TI"),
        }
    }

    fn finish(self: Box<Self>) -> DetectorOutput {
        DetectorOutput::Log(self.out.borrow().clone())
    }
}

impl Probe for UtilizationDetector {
    fn on_action_begin(&mut self, ctx: &mut ProbeCtx<'_>, _info: &ActionInfo) {
        self.flagged_exec = false;
        self.traced_idx = None;
        if self.mode == UtMode::Continuous {
            // Plain UT polls continuously, not just while actions run:
            // charge the polls that happened during the idle gap (they
            // observed zero utilization and are not re-simulated).
            let gap = ctx.now() - self.last_activity_end;
            let idle_polls = gap / self.poll_period_ns;
            ctx.charge_cpu(idle_polls * self.costs.util_poll_ns);
            ctx.charge_mem(idle_polls * self.costs.util_poll_bytes);
            self.begin_window(ctx);
        }
    }

    fn on_dispatch_begin(&mut self, ctx: &mut ProbeCtx<'_>, info: &MessageInfo) {
        ctx.charge_cpu(self.costs.response_hook_ns);
        self.current_exec = Some(*info);
        if let UtMode::OnHang { timeout_ns } = self.mode {
            self.next_watch += 1;
            self.expected_watch = self.next_watch;
            ctx.set_timer(ctx.now() + timeout_ns, self.expected_watch);
        }
    }

    fn on_timer(&mut self, ctx: &mut ProbeCtx<'_>, token: u64) {
        if token == SAMPLER_TOKEN {
            self.sampler.on_timer(ctx, token);
            return;
        }
        if token == self.expected_watch {
            // The TI half fired: the current event is hanging; start
            // polling utilization for its duration.
            if self.current_exec.is_some() && !self.active {
                self.begin_window(ctx);
            }
            return;
        }
        if token != self.expected_poll || !self.active {
            return;
        }
        let violated = self.poll(ctx);
        if violated {
            self.flag(ctx, 0);
        } else if self.sampler.is_active() {
            self.stop_tracing();
        }
        self.arm_poll(ctx);
    }

    fn on_dispatch_end(&mut self, ctx: &mut ProbeCtx<'_>, _info: &MessageInfo, response_ns: u64) {
        ctx.charge_cpu(self.costs.response_hook_ns);
        if let UtMode::OnHang { .. } = self.mode {
            self.expected_watch = 0;
            if self.active {
                // Final partial-window check, then stop.
                if self.poll(ctx) {
                    self.flag(ctx, response_ns);
                }
                if self.sampler.is_active() {
                    self.stop_tracing();
                }
                if let (Some(idx), true) = (self.traced_idx, self.flagged_exec) {
                    self.out.borrow_mut().traced[idx].response_ns = response_ns;
                }
                self.active = false;
                self.expected_poll = 0;
            }
        }
        self.current_exec = None;
    }

    fn on_action_end(&mut self, ctx: &mut ProbeCtx<'_>, record: &ActionRecord) {
        if self.mode == UtMode::Continuous && self.active {
            // Final partial-window check so short actions are not missed
            // between polls.
            if self.poll(ctx) {
                self.current_exec = Some(MessageInfo {
                    exec_id: record.exec_id,
                    action_uid: record.uid,
                    action_name: record.name,
                    event_index: 0,
                    num_events: record.event_responses.len(),
                });
                self.flag(ctx, record.max_response_ns());
            }
            if self.sampler.is_active() {
                self.stop_tracing();
            }
            if let (Some(idx), true) = (self.traced_idx, self.flagged_exec) {
                self.out.borrow_mut().traced[idx].response_ns = record.max_response_ns();
            }
            self.active = false;
            self.expected_poll = 0;
        }
        self.last_activity_end = ctx.now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hd_appmodel::corpus::{table1, table5};
    use hd_appmodel::{build_run, round_robin_schedule, CompiledApp};
    use hd_simrt::SimConfig;

    fn run_ut(
        app: hd_appmodel::App,
        make: fn(CostModel) -> (UtilizationDetector, Rc<RefCell<DetectionLog>>),
        seed: u64,
    ) -> (DetectionLog, Vec<hd_appmodel::ExecTruth>, usize) {
        let compiled = CompiledApp::new(app);
        let sched = round_robin_schedule(compiled.app(), 3, 3_000);
        let n = sched.len();
        let mut run = build_run(&compiled, &sched, SimConfig::default(), seed);
        let (probe, out) = make(CostModel::default());
        run.sim.add_probe(Box::new(probe));
        run.sim.run();
        let log = out.borrow().clone();
        (log, run.truths, n)
    }

    #[test]
    fn utl_flags_nearly_everything() {
        let (log, _truths, n) = run_ut(table1::fbreaderj(), UtilizationDetector::low, 5);
        let flagged = log.flagged_execs().len();
        assert!(flagged as f64 > 0.8 * n as f64, "UTL flagged {flagged}/{n}");
        assert!(log.util_violations > 0);
    }

    #[test]
    fn uth_catches_memory_bugs_and_misses_io_bugs() {
        // K9's bugs are memory-bound: UTH catches them.
        let (log, truths, _) = run_ut(table5::k9mail(), UtilizationDetector::high, 6);
        let caught = log
            .flagged_execs()
            .iter()
            .filter(|e| truths[(e.0 - 1) as usize].is_buggy(100 * MILLIS))
            .count();
        assert!(caught >= 2, "UTH should catch memory bugs, got {caught}");

        // CycleStreets' new bugs are I/O-bound: UTH misses them all.
        let (log, truths, _) = run_ut(table5::cyclestreets(), UtilizationDetector::high, 7);
        let io_caught = log
            .flagged_execs()
            .iter()
            .filter(|e| {
                truths[(e.0 - 1) as usize]
                    .culprit(100 * MILLIS)
                    .map(|b| b.contains("geocode") || b.contains("gpx") || b.contains("route"))
                    .unwrap_or(false)
            })
            .count();
        assert_eq!(io_caught, 0, "UTH must miss blocked-on-I/O bugs");
    }

    #[test]
    fn uth_has_few_false_positives() {
        let (log, truths, _) = run_ut(table1::fbreaderj(), UtilizationDetector::high, 8);
        let fps: Vec<&TracedHang> = log
            .traced
            .iter()
            .filter(|t| !truths[(t.exec_id.0 - 1) as usize].is_buggy(100 * MILLIS))
            .collect();
        assert!(fps.len() <= 2, "UTH false positives {fps:#?}");
    }

    #[test]
    fn utl_ti_only_flags_hanging_executions() {
        let (log, _truths, _) = run_ut(table1::fbreaderj(), UtilizationDetector::low_ti, 9);
        assert!(!log.traced.is_empty());
        for t in &log.traced {
            assert!(
                t.response_ns > 100 * MILLIS,
                "UT+TI flag without timeout violation: {t:?}"
            );
        }
    }

    #[test]
    fn uth_ti_cheaper_than_utl() {
        // UTH+TI polls only during hangs and traces almost never, so its
        // monitoring cost must be far below UTL's.
        let compiled = CompiledApp::new(table1::fbreaderj());
        let sched = round_robin_schedule(compiled.app(), 3, 3_000);
        let cost_of = |make: fn(CostModel) -> (UtilizationDetector, Rc<RefCell<DetectionLog>>)| {
            let mut run = build_run(&compiled, &sched, SimConfig::default(), 10);
            let (probe, _out) = make(CostModel::default());
            run.sim.add_probe(Box::new(probe));
            run.sim.run();
            run.sim.monitor_cost().cpu_ns
        };
        let utl = cost_of(UtilizationDetector::low);
        let uth_ti = cost_of(UtilizationDetector::high_ti);
        assert!(
            (uth_ti as f64) < 0.25 * utl as f64,
            "UTH+TI {uth_ti} vs UTL {utl}"
        );
    }
}
