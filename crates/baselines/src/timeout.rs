//! The Timeout-based (TI) baseline.
//!
//! Detects a potential soft hang bug whenever an input event's response
//! time exceeds a fixed timeout, and collects stack traces for the rest
//! of the hang. With a 5 s timeout this is Android's ANR watchdog; with
//! 100 ms it is the Jovic-style detector of Section 2.2 — it catches
//! every bug but drowns in UI false positives (Table 2).

use std::cell::RefCell;
use std::rc::Rc;

use hd_perfmon::{CostModel, StackSampler};
use hd_simrt::{MessageInfo, Probe, ProbeCtx};

use crate::detector::{DetectionLog, Detector, DetectorOutput, TracedHang};

const SAMPLER_TOKEN: u64 = 1;
const WATCH_TOKEN_BASE: u64 = 1_000;

/// The TI baseline probe.
pub struct TimeoutDetector {
    timeout_ns: u64,
    costs: CostModel,
    sampler: StackSampler,
    watch_token: u64,
    next_token: u64,
    dispatch: Option<MessageInfo>,
    sampling: bool,
    out: Rc<RefCell<DetectionLog>>,
}

impl TimeoutDetector {
    /// Creates a TI detector with the given timeout.
    pub fn new(
        timeout_ns: u64,
        sample_period_ns: u64,
        costs: CostModel,
    ) -> (TimeoutDetector, Rc<RefCell<DetectionLog>>) {
        let out = Rc::new(RefCell::new(DetectionLog::default()));
        (
            TimeoutDetector {
                timeout_ns,
                costs,
                sampler: StackSampler::new(sample_period_ns, SAMPLER_TOKEN, costs),
                watch_token: 0,
                next_token: WATCH_TOKEN_BASE,
                dispatch: None,
                sampling: false,
                out: out.clone(),
            },
            out,
        )
    }
}

impl Detector for TimeoutDetector {
    fn name(&self) -> String {
        const SECOND: u64 = 1_000_000_000;
        if self.timeout_ns >= SECOND {
            format!("TI({}s)", self.timeout_ns / SECOND)
        } else {
            format!("TI({}ms)", self.timeout_ns / 1_000_000)
        }
    }

    fn finish(self: Box<Self>) -> DetectorOutput {
        DetectorOutput::Log(self.out.borrow().clone())
    }
}

impl Probe for TimeoutDetector {
    fn on_dispatch_begin(&mut self, ctx: &mut ProbeCtx<'_>, info: &MessageInfo) {
        ctx.charge_cpu(self.costs.response_hook_ns);
        self.next_token += 1;
        self.watch_token = self.next_token;
        ctx.set_timer(ctx.now() + self.timeout_ns, self.watch_token);
        self.dispatch = Some(*info);
        self.sampling = false;
    }

    fn on_timer(&mut self, ctx: &mut ProbeCtx<'_>, token: u64) {
        if token == SAMPLER_TOKEN {
            self.sampler.on_timer(ctx, token);
            return;
        }
        if self.dispatch.is_none() || token != self.watch_token || self.sampling {
            return;
        }
        self.sampling = true;
        self.sampler.begin(ctx);
    }

    fn on_dispatch_end(&mut self, ctx: &mut ProbeCtx<'_>, info: &MessageInfo, response_ns: u64) {
        ctx.charge_cpu(self.costs.response_hook_ns);
        let Some(current) = self.dispatch.take() else {
            return;
        };
        debug_assert_eq!(current.exec_id, info.exec_id);
        if self.sampling {
            let samples = self.sampler.end();
            self.out.borrow_mut().traced.push(TracedHang {
                exec_id: info.exec_id,
                uid: info.action_uid,
                action_name: ctx.action_name(info.action_name).to_string(),
                response_ns,
                at: ctx.now(),
                samples: samples.len(),
            });
            self.sampling = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hd_appmodel::corpus::table1;
    use hd_appmodel::{build_run, round_robin_schedule, CompiledApp};
    use hd_simrt::{SimConfig, MILLIS, SECONDS};

    fn run_ti(
        app: hd_appmodel::App,
        timeout_ns: u64,
        seed: u64,
    ) -> (DetectionLog, Vec<hd_appmodel::ExecTruth>) {
        let compiled = CompiledApp::new(app);
        let sched = round_robin_schedule(compiled.app(), 3, 3_000);
        let mut run = build_run(&compiled, &sched, SimConfig::default(), seed);
        let (probe, out) = TimeoutDetector::new(timeout_ns, 10 * MILLIS, CostModel::default());
        run.sim.add_probe(Box::new(probe));
        run.sim.run();
        let log = out.borrow().clone();
        (log, run.truths)
    }

    #[test]
    fn anr_timeout_misses_everything() {
        // 5 s ANR: none of Seadroid's hangs reach it.
        let (log, _) = run_ti(table1::seadroid(), 5 * SECONDS, 1);
        assert!(log.traced.is_empty());
    }

    #[test]
    fn one_second_timeout_catches_seadroid_only_bug() {
        let (log, truths) = run_ti(table1::seadroid(), SECONDS, 2);
        assert!(!log.traced.is_empty());
        for t in &log.traced {
            let truth = &truths[(t.exec_id.0 - 1) as usize];
            assert!(
                truth.is_buggy(100 * MILLIS),
                "1 s flag must be the sync bug"
            );
            assert!(t.response_ns > SECONDS);
        }
    }

    #[test]
    fn hundred_ms_timeout_traces_bugs_and_ui() {
        let (log, truths) = run_ti(table1::fbreaderj(), 100 * MILLIS, 3);
        let flagged = log.flagged_execs();
        let buggy = flagged
            .iter()
            .filter(|e| truths[(e.0 - 1) as usize].is_buggy(100 * MILLIS))
            .count();
        let ui = flagged.len() - buggy;
        assert!(buggy >= 5, "bug flags {buggy}");
        assert!(ui >= 3, "expected UI false positives, got {ui}");
        // Every traced hang has samples.
        assert!(log.traced.iter().all(|t| t.samples >= 1));
    }

    #[test]
    fn websms_commit_detected_at_100ms_not_500ms() {
        let (log100, truths) = run_ti(table1::websms(), 100 * MILLIS, 4);
        let bug_flags = log100
            .flagged_execs()
            .iter()
            .filter(|e| truths[(e.0 - 1) as usize].is_buggy(100 * MILLIS))
            .count();
        assert!(bug_flags >= 1);
        let (log500, truths) = run_ti(table1::websms(), 500 * MILLIS, 4);
        let bug_flags = log500
            .flagged_execs()
            .iter()
            .filter(|e| truths[(e.0 - 1) as usize].is_buggy(100 * MILLIS))
            .count();
        assert_eq!(bug_flags, 0, "the ~200 ms commit must escape 500 ms");
    }
}
