//! Common output format for runtime detectors.
//!
//! Every runtime detector (Hang Doctor and the baselines) ultimately
//! *traces* some set of action executions — collecting stack traces it
//! believes belong to soft hang bugs. The evaluation scores those traced
//! executions against ground truth.

use std::collections::HashSet;

use hd_simrt::{ActionUid, ExecId, SimTime};
use serde::{Deserialize, Serialize};

/// One traced (flagged) soft-hang occurrence.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TracedHang {
    /// Execution flagged.
    pub exec_id: ExecId,
    /// Action kind.
    pub uid: ActionUid,
    /// Action name.
    pub action_name: String,
    /// Response time of the flagged input event (0 for utilization-only
    /// flags that saw no timeout violation).
    pub response_ns: u64,
    /// When the flag was raised.
    pub at: SimTime,
    /// Stack samples collected for this occurrence.
    pub samples: usize,
}

/// Everything a runtime detector produced.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DetectionLog {
    /// Traced occurrences, in order.
    pub traced: Vec<TracedHang>,
    /// Utilization threshold violations observed (UT baselines).
    pub util_violations: u64,
}

impl DetectionLog {
    /// The set of flagged executions.
    pub fn flagged_execs(&self) -> HashSet<ExecId> {
        self.traced.iter().map(|t| t.exec_id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flagged_execs_dedups() {
        let mut log = DetectionLog::default();
        for i in [1, 1, 2] {
            log.traced.push(TracedHang {
                exec_id: ExecId(i),
                uid: ActionUid(0),
                action_name: "a".into(),
                response_ns: 0,
                at: SimTime::ZERO,
                samples: 0,
            });
        }
        assert_eq!(log.flagged_execs().len(), 2);
    }
}
