//! Common output format and driver API for runtime detectors.
//!
//! Every runtime detector (Hang Doctor and the baselines) ultimately
//! *traces* some set of action executions — collecting stack traces it
//! believes belong to soft hang bugs. The evaluation scores those traced
//! executions against ground truth.
//!
//! The [`Detector`] trait is the uniform driver interface: every
//! detector is a [`Probe`] that can be [`install`]ed into a simulator
//! and, after the run, [`finish`]ed into a [`DetectorOutput`]. The
//! evaluation harness and the fleet engine drive all detectors only
//! through this trait, so adding a detector means implementing it once.
//!
//! [`finish`]: Detector::finish

use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;

use hangdoctor::HdOutput;
use hd_simrt::{
    ActionInfo, ActionRecord, ActionUid, ExecId, MessageInfo, Probe, ProbeCtx, SimTime, Simulator,
};
use serde::{Deserialize, Serialize};

use crate::perfchecker::OfflineFinding;

/// One traced (flagged) soft-hang occurrence.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TracedHang {
    /// Execution flagged.
    pub exec_id: ExecId,
    /// Action kind.
    pub uid: ActionUid,
    /// Action name.
    pub action_name: String,
    /// Response time of the flagged input event (0 for utilization-only
    /// flags that saw no timeout violation).
    pub response_ns: u64,
    /// When the flag was raised.
    pub at: SimTime,
    /// Stack samples collected for this occurrence.
    pub samples: usize,
}

/// Everything a runtime detector produced.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DetectionLog {
    /// Traced occurrences, in order.
    pub traced: Vec<TracedHang>,
    /// Utilization threshold violations observed (UT baselines).
    pub util_violations: u64,
}

impl DetectionLog {
    /// The set of flagged executions.
    pub fn flagged_execs(&self) -> HashSet<ExecId> {
        self.traced.iter().map(|t| t.exec_id).collect()
    }
}

/// Everything a finished detector produced, by detector family.
#[derive(Clone, Debug)]
pub enum DetectorOutput {
    /// Nothing was recorded (e.g. no detector installed).
    None,
    /// A baseline's detection log (TI, UT variants).
    Log(DetectionLog),
    /// The full Hang Doctor artifact.
    HangDoctor(Box<HdOutput>),
    /// Findings of an offline (static) scan.
    Offline(Vec<OfflineFinding>),
    /// Full report of an `hd-sast` analyzer run.
    Sast(Box<hd_sast::SastReport>),
}

impl DetectorOutput {
    /// The executions this detector flagged/traced, across families.
    ///
    /// Offline scans flag call sites, not executions, so they contribute
    /// nothing here.
    pub fn flagged_execs(&self) -> HashSet<ExecId> {
        match self {
            DetectorOutput::None | DetectorOutput::Offline(_) | DetectorOutput::Sast(_) => {
                HashSet::new()
            }
            DetectorOutput::Log(log) => log.flagged_execs(),
            DetectorOutput::HangDoctor(hd) => hd.detections.iter().map(|d| d.exec_id).collect(),
        }
    }

    /// The baseline log, if this was a baseline.
    pub fn into_log(self) -> Option<DetectionLog> {
        match self {
            DetectorOutput::Log(log) => Some(log),
            _ => None,
        }
    }

    /// The Hang Doctor artifact, if this was Hang Doctor.
    pub fn into_hang_doctor(self) -> Option<HdOutput> {
        match self {
            DetectorOutput::HangDoctor(hd) => Some(*hd),
            _ => None,
        }
    }

    /// The analyzer report, if this was an `hd-sast` run.
    pub fn into_sast(self) -> Option<hd_sast::SastReport> {
        match self {
            DetectorOutput::Sast(report) => Some(*report),
            _ => None,
        }
    }
}

/// A soft-hang detector drivable by the evaluation harness.
///
/// Implementors observe the run through the inherited [`Probe`] hooks
/// and surrender their accumulated result through [`finish`]. The
/// harness never touches a detector's concrete output type.
///
/// [`finish`]: Detector::finish
pub trait Detector: Probe {
    /// Display name matching the paper's figures (e.g. `"HD"`, `"UTL+TI"`).
    fn name(&self) -> String;

    /// Consumes the detector, returning everything it recorded.
    fn finish(self: Box<Self>) -> DetectorOutput;
}

impl Detector for hangdoctor::HangDoctor {
    fn name(&self) -> String {
        "HD".to_string()
    }

    fn finish(self: Box<Self>) -> DetectorOutput {
        DetectorOutput::HangDoctor(Box::new(self.output()))
    }
}

/// The probe half of an installed detector: forwards every hook to the
/// detector shared with the [`InstalledDetector`] handle.
struct ForwardProbe {
    slot: Rc<RefCell<Option<Box<dyn Detector>>>>,
}

impl Probe for ForwardProbe {
    fn on_action_begin(&mut self, ctx: &mut ProbeCtx<'_>, info: &ActionInfo) {
        if let Some(d) = self.slot.borrow_mut().as_mut() {
            d.on_action_begin(ctx, info);
        }
    }

    fn on_dispatch_begin(&mut self, ctx: &mut ProbeCtx<'_>, info: &MessageInfo) {
        if let Some(d) = self.slot.borrow_mut().as_mut() {
            d.on_dispatch_begin(ctx, info);
        }
    }

    fn on_dispatch_end(&mut self, ctx: &mut ProbeCtx<'_>, info: &MessageInfo, response_ns: u64) {
        if let Some(d) = self.slot.borrow_mut().as_mut() {
            d.on_dispatch_end(ctx, info, response_ns);
        }
    }

    fn on_action_end(&mut self, ctx: &mut ProbeCtx<'_>, record: &ActionRecord) {
        if let Some(d) = self.slot.borrow_mut().as_mut() {
            d.on_action_end(ctx, record);
        }
    }

    fn on_timer(&mut self, ctx: &mut ProbeCtx<'_>, token: u64) {
        if let Some(d) = self.slot.borrow_mut().as_mut() {
            d.on_timer(ctx, token);
        }
    }

    fn on_sim_end(&mut self, ctx: &mut ProbeCtx<'_>) {
        if let Some(d) = self.slot.borrow_mut().as_mut() {
            d.on_sim_end(ctx);
        }
    }
}

/// Handle to a detector installed in a simulator; call
/// [`InstalledDetector::finish`] after the run.
pub struct InstalledDetector {
    name: String,
    slot: Rc<RefCell<Option<Box<dyn Detector>>>>,
}

impl InstalledDetector {
    /// The detector's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Finishes the detector and returns its output.
    pub fn finish(self) -> DetectorOutput {
        match self.slot.borrow_mut().take() {
            Some(d) => d.finish(),
            None => DetectorOutput::None,
        }
    }
}

/// Installs a detector into a simulator, returning the handle to finish
/// it after the run.
///
/// `Simulator::add_probe` takes ownership of its probe, so the detector
/// is parked in a shared slot: a thin forwarding probe delegates every
/// hook to it, and the returned handle takes it back out at the end.
pub fn install(detector: Box<dyn Detector>, sim: &mut Simulator) -> InstalledDetector {
    let name = detector.name();
    let slot = Rc::new(RefCell::new(Some(detector)));
    sim.add_probe(Box::new(ForwardProbe { slot: slot.clone() }));
    InstalledDetector { name, slot }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hd_appmodel::corpus::table5;
    use hd_appmodel::{build_run, round_robin_schedule, CompiledApp};
    use hd_perfmon::CostModel;
    use hd_simrt::{SimConfig, MILLIS};

    #[test]
    fn install_finish_roundtrip_matches_direct_handle() {
        // Driving a detector through the trait must observe exactly the
        // same run as reading its own output handle.
        let compiled = CompiledApp::new(table5::k9mail());
        let sched = round_robin_schedule(compiled.app(), 3, 3_000);
        let mut run = build_run(&compiled, &sched, SimConfig::default(), 11);
        let (det, handle) =
            crate::TimeoutDetector::new(100 * MILLIS, 10 * MILLIS, CostModel::default());
        let installed = install(Box::new(det), &mut run.sim);
        assert_eq!(installed.name(), "TI(100ms)");
        run.sim.run();
        let direct = handle.borrow().clone();
        let via_trait = installed.finish().into_log().unwrap();
        assert!(!direct.traced.is_empty());
        assert_eq!(via_trait.traced, direct.traced);
        assert_eq!(via_trait.util_violations, direct.util_violations);
    }

    #[test]
    fn hang_doctor_implements_detector() {
        let compiled = CompiledApp::new(table5::k9mail());
        let sched = round_robin_schedule(compiled.app(), 3, 3_000);
        let mut run = build_run(&compiled, &sched, SimConfig::default(), 12);
        let (det, _handle) = hangdoctor::HangDoctor::new(
            hangdoctor::HangDoctorConfig::default(),
            "K9-mail",
            "com.fsck.k9",
            1,
            None,
        );
        let installed = install(Box::new(det), &mut run.sim);
        assert_eq!(installed.name(), "HD");
        run.sim.run();
        let hd = installed.finish().into_hang_doctor().unwrap();
        assert!(hd.schecker_checks > 0);
    }

    #[test]
    fn offline_scanner_implements_detector() {
        let app = table5::sagemath();
        let db = hangdoctor::BlockingApiDb::documented(2017);
        let scanner = Box::new(crate::OfflineScanner::new(&app, &db));
        assert_eq!(Detector::name(scanner.as_ref()), "PerfChecker");
        match scanner.finish() {
            DetectorOutput::Offline(findings) => assert!(!findings.is_empty()),
            other => panic!("unexpected output {other:?}"),
        }
    }

    #[test]
    fn sast_scanner_implements_detector() {
        let app = table5::sagemath();
        let db = hangdoctor::BlockingApiDb::documented(2017);
        let scanner = Box::new(crate::SastScanner::new(
            &app,
            &db,
            &hd_sast::SastConfig::default(),
        ));
        assert_eq!(Detector::name(scanner.as_ref()), "hd-sast(full)");
        match scanner.finish() {
            DetectorOutput::Sast(report) => {
                assert!(report.bug_ids().contains("sagemath-84-cupboard"));
            }
            other => panic!("unexpected output {other:?}"),
        }
    }

    #[test]
    fn flagged_execs_dedups() {
        let mut log = DetectionLog::default();
        for i in [1, 1, 2] {
            log.traced.push(TracedHang {
                exec_id: ExecId(i),
                uid: ActionUid(0),
                action_name: "a".into(),
                response_ns: 0,
                at: SimTime::ZERO,
                samples: 0,
            });
        }
        assert_eq!(log.flagged_execs().len(), 2);
    }
}
