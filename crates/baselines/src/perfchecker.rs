//! Offline soft-hang-bug detection (the PerfChecker-style baseline).
//!
//! Offline detectors scan the app's code for calls to *well-known*
//! blocking APIs on the main thread (Liu et al., ICSE '14). They fail in
//! exactly the three ways Section 1 lists: APIs not yet known as
//! blocking, blocking calls hidden inside closed-source libraries, and
//! self-developed lengthy operations. This scanner operates on the app
//! model's call sites and a [`BlockingApiDb`], reproducing all three
//! failure modes.

use hangdoctor::BlockingApiDb;
use hd_appmodel::App;
use hd_sast::{RuleProfile, SastConfig};
use hd_simrt::{ActionUid, Probe};
use serde::{Deserialize, Serialize};

use crate::detector::{Detector, DetectorOutput};

/// One offline finding: a known blocking API called on the main thread.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct OfflineFinding {
    /// App scanned.
    pub app: String,
    /// Action whose handler makes the call.
    pub action: ActionUid,
    /// Action name.
    pub action_name: String,
    /// The known blocking API found.
    pub api_symbol: String,
    /// Ground-truth bug id of the call site, if it is a real bug.
    pub bug_id: Option<String>,
}

/// Scans an app against the database, returning every detectable call.
///
/// A call is detectable when the API's name is in the database, the call
/// site (including every wrapper on the path) is in scannable source,
/// and the call has not already been offloaded to a worker.
///
/// The scan runs the `hd-sast` engine under its perfchecker-compat rule
/// profile, which reproduces the historical per-call-site loop exactly:
/// findings are per call site (deduplicated on
/// `(action, site, api_symbol)`), so two distinct sites calling the same
/// known API are two findings — a developer fixes call sites, not
/// symbols.
pub fn scan_app(app: &App, db: &BlockingApiDb) -> Vec<OfflineFinding> {
    let config = SastConfig {
        profile: RuleProfile::PerfCheckerCompat,
        db_year: 2017,
    };
    hd_sast::analyze_with_db(app, db, &config)
        .findings
        .into_iter()
        .map(|f| OfflineFinding {
            app: app.name.clone(),
            action: f.action,
            action_name: f.action_name,
            api_symbol: f.api_symbol,
            bug_id: f.bug_id,
        })
        .collect()
}

/// The offline scan packaged as a [`Detector`], so harnesses that drive
/// everything through the trait can include the static baseline.
///
/// The scan runs up front (it needs no runtime observations); the probe
/// hooks are all no-ops and the findings come back from
/// [`Detector::finish`] as [`DetectorOutput::Offline`].
pub struct OfflineScanner {
    findings: Vec<OfflineFinding>,
}

impl OfflineScanner {
    /// Scans `app` against `db` immediately.
    pub fn new(app: &App, db: &BlockingApiDb) -> OfflineScanner {
        OfflineScanner {
            findings: scan_app(app, db),
        }
    }
}

impl Probe for OfflineScanner {}

impl Detector for OfflineScanner {
    fn name(&self) -> String {
        "PerfChecker".to_string()
    }

    fn finish(self: Box<Self>) -> DetectorOutput {
        DetectorOutput::Offline(self.findings)
    }
}

/// The full `hd-sast` analyzer packaged as a [`Detector`], so the fleet
/// engine and harnesses can race static analysis against the runtime
/// detectors through the same trait.
///
/// Like [`OfflineScanner`], the analysis runs up front and the probe
/// hooks are no-ops; [`Detector::finish`] returns the whole report as
/// [`DetectorOutput::Sast`].
pub struct SastScanner {
    profile: RuleProfile,
    report: hd_sast::SastReport,
}

impl SastScanner {
    /// Analyzes `app` against `db` immediately under the given profile.
    pub fn new(app: &App, db: &BlockingApiDb, config: &SastConfig) -> SastScanner {
        SastScanner {
            profile: config.profile,
            report: hd_sast::analyze_with_db(app, db, config),
        }
    }
}

impl Probe for SastScanner {}

impl Detector for SastScanner {
    fn name(&self) -> String {
        format!("hd-sast({})", self.profile.as_str())
    }

    fn finish(self: Box<Self>) -> DetectorOutput {
        DetectorOutput::Sast(Box::new(self.report))
    }
}

/// Ground-truth bugs of `app` that the offline scan misses.
pub fn missed_bugs<'a>(app: &'a App, db: &BlockingApiDb) -> Vec<&'a hd_appmodel::BugSpec> {
    let found: Vec<String> = scan_app(app, db)
        .into_iter()
        .filter_map(|f| f.bug_id)
        .collect();
    app.bugs
        .iter()
        .filter(|b| !found.iter().any(|f| f == &b.id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hd_appmodel::corpus::{table1, table5, vendored};

    fn db() -> BlockingApiDb {
        BlockingApiDb::documented(2017)
    }

    /// The historical per-call-site scan loop, kept verbatim as the
    /// reference the engine-backed [`scan_app`] is regression-tested
    /// against.
    fn legacy_scan_app(app: &App, db: &BlockingApiDb) -> Vec<OfflineFinding> {
        let mut findings = Vec::new();
        for action in &app.actions {
            for event in &action.events {
                for call in &event.calls {
                    if call.offloaded {
                        continue;
                    }
                    if !app.call_visible(call) {
                        continue;
                    }
                    let api = app.api(call.api);
                    if !db.contains(&api.symbol) {
                        continue;
                    }
                    findings.push(OfflineFinding {
                        app: app.name.clone(),
                        action: action.uid,
                        action_name: action.name.clone(),
                        api_symbol: api.symbol.clone(),
                        bug_id: call.bug_id.clone(),
                    });
                }
            }
        }
        findings
    }

    #[test]
    fn compat_profile_matches_legacy_scan_exactly() {
        // The acceptance bar: the engine's perfchecker-compat profile is
        // the legacy scanner, call site for call site (the dedupe key
        // includes the site ordinal, so nothing collapses). Checked
        // across every corpus app (table1 is the required set) and two
        // database vintages.
        let apps: Vec<App> = table1::apps()
            .into_iter()
            .chain(table5::apps())
            .chain(vendored::apps())
            .collect();
        for year in [2010, 2017] {
            let db = BlockingApiDb::documented(year);
            for app in &apps {
                assert_eq!(
                    scan_app(app, &db),
                    legacy_scan_app(app, &db),
                    "{} diverges from legacy at db year {year}",
                    app.name
                );
            }
        }
    }

    #[test]
    fn distinct_call_sites_of_the_same_api_count_separately() {
        // Regression for the dedupe undercount: the old
        // `(action, api_symbol)` key collapsed two distinct call sites of
        // one API into a single finding. The site-aware key keeps both —
        // and only the tagged site carries the ground-truth bug id.
        let mut app = table1::a_better_camera();
        let action = app
            .bugs
            .iter()
            .find(|b| b.id == "abc-open")
            .map(|b| b.action)
            .unwrap();
        let spec = app.action(action).unwrap().clone();
        let dup = spec.events[0]
            .calls
            .iter()
            .find(|c| c.bug_id.as_deref() == Some("abc-open"))
            .unwrap()
            .clone();
        let slot = app.actions.iter_mut().find(|a| a.uid == action).unwrap();
        // Second call site to the same API, untagged, placed *before*
        // the buggy one: distinct findings, bug id on the right one.
        let mut untagged = dup.clone();
        untagged.bug_id = None;
        slot.events[0].calls.insert(0, untagged);
        let findings = scan_app(&app, &db());
        let camera: Vec<&OfflineFinding> = findings
            .iter()
            .filter(|f| f.action == action && f.api_symbol.contains("Camera.open"))
            .collect();
        assert_eq!(camera.len(), 2, "two sites, two findings");
        assert_eq!(camera[0].bug_id, None, "the inserted untagged site");
        assert_eq!(camera[1].bug_id.as_deref(), Some("abc-open"));
        assert_eq!(
            legacy_scan_app(&app, &db())
                .iter()
                .filter(|f| f.action == action && f.api_symbol.contains("Camera.open"))
                .count(),
            2,
            "matching the legacy loop's per-site count"
        );
    }

    #[test]
    fn table1_bugs_are_all_found_offline() {
        // Table 1 apps carry only well-known bugs: a modern offline scan
        // finds every one.
        for app in table1::apps() {
            assert!(
                missed_bugs(&app, &db()).is_empty(),
                "{} has offline-missed bugs",
                app.name
            );
        }
    }

    #[test]
    fn k9_clean_bug_is_missed_offline() {
        let app = table5::k9mail();
        let missed = missed_bugs(&app, &db());
        assert_eq!(missed.len(), 2, "both K9 bugs use unknown APIs");
        assert!(missed.iter().any(|b| b.id.contains("clean")));
    }

    #[test]
    fn offline_miss_counts_match_table5() {
        let total_missed: usize = table5::apps()
            .iter()
            .map(|a| missed_bugs(a, &db()).len())
            .sum();
        assert_eq!(total_missed, 23, "Table 5: 23 of 34 missed offline");
    }

    #[test]
    fn nested_open_wrapper_is_scannable() {
        // SageMath's cupboard.get hides insertWithOnConflict, but the
        // library is open source: the scan follows it.
        let app = table5::sagemath();
        let findings = scan_app(&app, &db());
        assert!(findings
            .iter()
            .any(|f| f.bug_id.as_deref() == Some("sagemath-84-cupboard")));
    }

    #[test]
    fn closed_library_hides_calls() {
        // Mark a wrapper closed: the same call disappears from the scan.
        let mut app = table5::sagemath();
        let wrapper_id = app
            .apis
            .iter()
            .position(|a| a.symbol.contains("cupboard"))
            .unwrap();
        app.apis[wrapper_id].closed_source = true;
        let findings = scan_app(&app, &db());
        assert!(!findings
            .iter()
            .any(|f| f.bug_id.as_deref() == Some("sagemath-84-cupboard")));
    }

    #[test]
    fn an_old_database_misses_camera_open() {
        // Before 2011 camera.open was not documented as blocking: an
        // offline tool of that vintage misses the A Better Camera bug.
        let app = table1::a_better_camera();
        let old = BlockingApiDb::documented(2010);
        let missed = missed_bugs(&app, &old);
        assert!(missed.iter().any(|b| b.id == "abc-open"));
        let new = BlockingApiDb::documented(2012);
        let missed = missed_bugs(&app, &new);
        assert!(!missed.iter().any(|b| b.id == "abc-open"));
    }

    #[test]
    fn fixed_apps_have_no_findings_for_fixed_bugs() {
        let app = table1::a_better_camera().with_all_bugs_fixed();
        let findings = scan_app(&app, &db());
        assert!(findings.iter().all(|f| f.bug_id.is_none()));
    }

    #[test]
    fn runtime_discoveries_improve_the_scan() {
        // After Hang Doctor adds HtmlCleaner.clean to the database, the
        // offline scan starts catching the K9 bug — the feedback loop of
        // Figure 2(a).
        let app = table5::k9mail();
        let mut db = db();
        db.add_discovered("org.htmlcleaner.HtmlCleaner.clean", "K9-mail");
        let missed = missed_bugs(&app, &db);
        assert!(!missed.iter().any(|b| b.id.contains("clean")));
    }
}
