//! # hd-fleet — the sharded parallel fleet engine
//!
//! The paper's field study (Section 4.3) runs Hang Doctor on many
//! devices at once and aggregates what they report. This crate scales
//! that story to a simulated fleet: a **corpus × device-profile ×
//! user-trace matrix** is enumerated into independent jobs, the jobs are
//! partitioned into **strided thread-per-core shards** (shard `s` of `T`
//! owns jobs `s, s+T, s+2T, …`), and each shard folds its own
//! [`MergedFleet`]-shaped partial as it runs; shard partials then fold
//! once more, in shard order, into the fleet artifact. The stride
//! interleaves each app's consecutive device indices across shards, so
//! every shard sees a balanced app mix without any shared queue, and a
//! shard reuses its hot `Arc<CompiledApp>` across the consecutive
//! devices of an app it owns.
//!
//! ## Determinism
//!
//! The merged half of a [`FleetReport`] is **bit-identical across thread
//! counts**:
//!
//! * every device's seed derives only from the fleet's root seed and the
//!   device's stable index (see [`device_seed`]) — never from scheduling;
//! * per-device runs share nothing mutable — each job gets its own
//!   simulator, its own Hang Doctor, and its own blocking-API database;
//! * the merge operators ([`HangBugReport::merge`],
//!   [`BlockingApiDb::merge`]) are associative, commutative, and
//!   idempotent **joins** (per-device counters join by max, conflicts
//!   resolve to the least element), and the scalar tallies are sums —
//!   so folding per-shard partials in any grouping produces the same
//!   value as the serial index-order fold, whatever the thread count.
//!
//! Wall-clock measurements live in the separate [`FleetTiming`] half,
//! which is excluded from determinism comparisons by construction.

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::sync::Arc;
use std::time::Instant;

use crossbeam::queue::SegQueue;
use hangdoctor::{shared, BlockingApiDb, HangBugReport, HangDoctor, HangDoctorConfig};
use hd_appmodel::{build_run, generate_schedule, App, CompiledApp, TraceParams};
use hd_baselines::install;
use hd_faults::{FaultConfig, FaultPlan, FaultTally, NetFaultTally};
use hd_metrics::{score, Confusion};
use hd_simrt::{ExecId, SimConfig, SimRng};
use serde::{Deserialize, Serialize};

/// A simulated device class (the device-profile axis of the matrix).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Profile name (e.g. `"low-end"`).
    pub name: String,
    /// CPU cores of the device.
    pub cores: usize,
    /// Background worker threads the app gets on this device.
    pub workers: usize,
}

impl DeviceProfile {
    /// The default three-tier fleet mix: low-end, mid-range, flagship.
    pub fn default_set() -> Vec<DeviceProfile> {
        vec![
            DeviceProfile {
                name: "low-end".into(),
                cores: 2,
                workers: 1,
            },
            DeviceProfile {
                name: "mid-range".into(),
                cores: 4,
                workers: 2,
            },
            DeviceProfile {
                name: "flagship".into(),
                cores: 8,
                workers: 4,
            },
        ]
    }
}

/// What to run: the full matrix and how to run it.
#[derive(Clone, Debug)]
pub struct FleetSpec {
    /// The app corpus.
    pub apps: Vec<App>,
    /// Device profiles, assigned round-robin over each app's devices.
    pub profiles: Vec<DeviceProfile>,
    /// Simulated devices per app.
    pub devices_per_app: u32,
    /// User-trace length: executions per action per device.
    pub executions_per_action: usize,
    /// Root seed; every per-device seed derives from it.
    pub root_seed: u64,
    /// Worker threads (1 = serial reference).
    pub threads: usize,
    /// Hang Doctor configuration installed on every device.
    pub config: HangDoctorConfig,
    /// Vintage of the documented blocking-API database each device
    /// starts from.
    pub apidb_year: u16,
    /// Fault-injection configuration installed on every device (chaos
    /// mode). Each job derives its own deterministic [`FaultPlan`] from
    /// `(root_seed, job index)`; the all-zero default injects nothing
    /// and leaves the fleet bit-exact with a fault-free build.
    pub faults: FaultConfig,
}

impl FleetSpec {
    /// A spec over the Table 5 study corpus with paper-default settings.
    pub fn study(devices_per_app: u32, threads: usize, root_seed: u64) -> FleetSpec {
        FleetSpec {
            apps: hd_appmodel::corpus::table5::apps(),
            profiles: DeviceProfile::default_set(),
            devices_per_app,
            executions_per_action: 4,
            root_seed,
            threads,
            config: HangDoctorConfig::default(),
            apidb_year: 2017,
            faults: FaultConfig::none(),
        }
    }

    /// Total number of jobs (= devices) in the matrix.
    pub fn jobs(&self) -> usize {
        self.apps.len() * self.devices_per_app as usize
    }
}

/// Derives the seed of the device with stable index `index`.
///
/// One SplitMix64 scramble of `root_seed` offset by the golden-ratio
/// increment per index: consecutive indices land far apart in the seed
/// space, and the result depends on nothing but `(root_seed, index)` —
/// the cornerstone of thread-count-independent results.
pub fn device_seed(root_seed: u64, index: u64) -> u64 {
    let mut z =
        root_seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What one device run produced (one cell of the matrix).
struct JobResult {
    index: usize,
    app_idx: usize,
    report: HangBugReport,
    confusion: Confusion,
    detections: u64,
    hangs_observed: u64,
    simulated_ns: u64,
    db: BlockingApiDb,
    faults: FaultTally,
}

/// Per-app slice of the merged fleet results.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AppFleetSummary {
    /// App name.
    pub app: String,
    /// Devices that ran this app.
    pub devices: u32,
    /// Losslessly merged hang bug report over all devices.
    pub report: HangBugReport,
    /// Summed confusion counts over the app's devices.
    pub confusion: Confusion,
    /// Deep analyses across the app's devices.
    pub detections: u64,
}

/// The deterministic half of a [`FleetReport`]: everything here is
/// bit-identical for a given spec regardless of thread count.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MergedFleet {
    /// Root seed the fleet derived from.
    pub root_seed: u64,
    /// Devices per app.
    pub devices_per_app: u32,
    /// Total jobs run.
    pub jobs: usize,
    /// Per-app summaries, corpus order.
    pub apps: Vec<AppFleetSummary>,
    /// Fleet-wide blocking-API database after merging every device's
    /// discoveries (the Figure 2(a) feedback loop at fleet scale).
    pub apidb: BlockingApiDb,
    /// Fleet-wide confusion totals.
    pub confusion: Confusion,
    /// Deep analyses across the fleet.
    pub detections: u64,
    /// Soft hangs observed across the fleet.
    pub hangs_observed: u64,
    /// Total simulated device time, ns.
    pub simulated_ns: u64,
}

/// Per-worker (shard) execution statistics.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ShardStat {
    /// Worker index.
    pub worker: usize,
    /// Jobs this worker pulled from the queue.
    pub jobs: usize,
    /// Time the worker spent running jobs, ms.
    pub busy_ms: u64,
}

/// The wall-clock half of a [`FleetReport`]; varies run to run and is
/// excluded from determinism comparisons.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FleetTiming {
    /// Worker threads used.
    pub threads: usize,
    /// End-to-end wall time, ms.
    pub wall_ms: u64,
    /// Simulated device-hours completed per wall-clock second — the
    /// fleet's throughput.
    pub device_hours_per_wall_second: f64,
    /// Per-worker statistics.
    pub shards: Vec<ShardStat>,
}

/// Fault-injection outcome of a chaos fleet run: the configuration in
/// force and the fleet-wide merged tally (job-index fold order, so it is
/// deterministic like the merged half).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChaosReport {
    /// The fault configuration every device ran under.
    pub config: FaultConfig,
    /// Per-category fault and recovery counts summed over the fleet.
    pub tally: FaultTally,
    /// Network transport fault/recovery counts (telemetry path). All
    /// zero for in-process fleets; the `hd-telemetry` loopback runner
    /// fills it from the per-device uploader tallies, merged in device
    /// order.
    pub net: NetFaultTally,
}

/// Everything a fleet run produced.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FleetReport {
    /// Deterministic merged results.
    pub merged: MergedFleet,
    /// Chaos-mode fault accounting; `None` when faults are disabled, so
    /// clean reports are byte-identical to a fault-free build's.
    pub chaos: Option<ChaosReport>,
    /// Wall-clock measurements.
    pub timing: FleetTiming,
}

/// Schema tag of `BENCH_fleet.json` (the v2 fleet bench artifact).
pub const FLEET_BENCH_SCHEMA: &str = "hang-doctor/fleet-bench/v2";

/// One thread-count row of the v2 fleet bench schema.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BenchRow {
    /// Worker threads used for this row.
    pub threads: usize,
    /// Jobs (devices) run.
    pub jobs: usize,
    /// End-to-end wall time, ms.
    pub wall_ms: u64,
    /// Total simulated device time, hours.
    pub simulated_device_hours: f64,
    /// Fleet throughput: simulated device-hours per wall second.
    pub device_hours_per_wall_second: f64,
    /// Per-shard busy time and job counts.
    pub shards: Vec<ShardStat>,
}

/// Measured cost of the accrual kernel, the fleet's innermost hot loop.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AccrueBench {
    /// ns per `MemProfile::accrue` call, ui profile.
    pub ui_ns_per_call: f64,
    /// ns per `MemProfile::accrue` call, memory-heavy profile.
    pub memory_heavy_ns_per_call: f64,
}

/// Machine-readable performance snapshot of a fleet scaling sweep — the
/// schema of `BENCH_fleet.json`, the repo's perf-trajectory entry.
/// Emitted by `repro bench-summary` (one [`BenchRow`] per thread count)
/// and archived by CI so throughput regressions are visible across
/// commits; CI also fails if the freshly measured quick-fleet throughput
/// regresses more than 20% below the committed `best` value.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FleetBench {
    /// Schema tag, bumped on incompatible changes.
    pub schema: String,
    /// Human description of the measured workload.
    pub workload: String,
    /// The PR 2 reference throughput this trajectory is measured
    /// against, device-hours per wall second.
    pub baseline_device_hours_per_wall_second: f64,
    /// Accrual-kernel microbenchmark at the time of the sweep.
    pub accrue: AccrueBench,
    /// One row per measured thread count, ascending.
    pub rows: Vec<BenchRow>,
    /// Best throughput across the rows, device-hours per wall second.
    pub best_device_hours_per_wall_second: f64,
}

impl FleetBench {
    /// Assembles the sweep artifact; `best` is computed from the rows.
    pub fn new(workload: &str, baseline: f64, accrue: AccrueBench, rows: Vec<BenchRow>) -> Self {
        let best = rows
            .iter()
            .map(|r| r.device_hours_per_wall_second)
            .fold(0.0, f64::max);
        FleetBench {
            schema: FLEET_BENCH_SCHEMA.into(),
            workload: workload.into(),
            baseline_device_hours_per_wall_second: baseline,
            accrue,
            rows,
            best_device_hours_per_wall_second: best,
        }
    }
}

impl FleetReport {
    /// Collapses the run into one [`BenchRow`] of the v2 sweep.
    pub fn bench_row(&self) -> BenchRow {
        BenchRow {
            threads: self.timing.threads,
            jobs: self.merged.jobs,
            wall_ms: self.timing.wall_ms,
            simulated_device_hours: self.merged.simulated_ns as f64 / 3.6e12,
            device_hours_per_wall_second: self.timing.device_hours_per_wall_second,
            shards: self.timing.shards.clone(),
        }
    }
}

impl FleetReport {
    /// Renders a human-readable fleet summary.
    pub fn render(&self) -> String {
        let m = &self.merged;
        let t = &self.timing;
        let mut out = format!(
            "Fleet — {} apps x {} devices = {} jobs on {} thread(s)\n\
             wall {:.1} s, {:.2} simulated device-hours ({:.2} device-hours/s)\n\
             confusion: tp={} fp={} fn={} tn={} (recall {:.2}, precision {:.2})\n\
             deep analyses: {}; hangs observed: {}; APIs discovered fleet-wide: {}\n",
            m.apps.len(),
            m.devices_per_app,
            m.jobs,
            t.threads,
            t.wall_ms as f64 / 1e3,
            m.simulated_ns as f64 / 3.6e12,
            t.device_hours_per_wall_second,
            m.confusion.tp,
            m.confusion.fp,
            m.confusion.fn_,
            m.confusion.tn,
            m.confusion.recall(),
            m.confusion.precision(),
            m.detections,
            m.hangs_observed,
            m.apidb.discovered().len(),
        );
        if let Some(chaos) = &self.chaos {
            let tally = &chaos.tally;
            out.push_str(&format!(
                "chaos: {} faults injected, {} degradation actions\n\
                 \x20 counter reads: {} failed, {} retried, {} recovered, {} lost; {} stale\n\
                 \x20 samples: {} dropped, {} truncated; {} late windows; {} jittered timers\n\
                 \x20 recovery: {} degraded verdicts, {} checks abandoned, {} sessions aborted\n",
                tally.injected(),
                tally.recovered(),
                tally.counter_read_failures,
                tally.counter_read_retries,
                tally.counter_reads_recovered,
                tally.counter_reads_lost,
                tally.stale_snapshots,
                tally.samples_dropped,
                tally.samples_truncated,
                tally.sampler_delays,
                tally.clock_jitters,
                tally.degraded_verdicts,
                tally.checks_abandoned,
                tally.sessions_aborted,
            ));
            if !chaos.net.is_empty() {
                let net = &chaos.net;
                out.push_str(&format!(
                    "\x20 network: {} connections dropped, {} deliveries delayed, {} frames duplicated\n\
                     \x20 network recovery: {} upload retries, {} NACKs, {} duplicates absorbed\n",
                    net.connections_dropped,
                    net.deliveries_delayed,
                    net.frames_duplicated,
                    net.upload_retries,
                    net.nacks_received,
                    net.duplicates_absorbed,
                ));
            }
        }
        for shard in &t.shards {
            out.push_str(&format!(
                "  worker {}: {} jobs, busy {} ms\n",
                shard.worker, shard.jobs, shard.busy_ms
            ));
        }
        for app in &m.apps {
            let bugs = app.report.entries().len();
            out.push_str(&format!(
                "  {:<24} devices={:<3} bugs={:<3} tp={:<4} fp={:<4}\n",
                app.app, app.devices, bugs, app.confusion.tp, app.confusion.fp
            ));
        }
        out
    }
}

/// Compiles every app of the corpus exactly once, fanning the work out
/// over `threads` workers; the result is the fleet's immutable
/// compile-once cache, indexed like `apps`.
fn compile_corpus(apps: &[App], threads: usize) -> Vec<Arc<CompiledApp>> {
    let queue: SegQueue<usize> = SegQueue::new();
    for app_idx in 0..apps.len() {
        queue.push(app_idx);
    }
    let mut slots: Vec<Option<Arc<CompiledApp>>> = vec![None; apps.len()];
    crossbeam::thread::scope(|scope| {
        let workers = threads.min(apps.len()).max(1);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let queue = &queue;
            handles.push(scope.spawn(move |_| {
                let mut mine = Vec::new();
                while let Some(app_idx) = queue.pop() {
                    mine.push((app_idx, Arc::new(CompiledApp::new(apps[app_idx].clone()))));
                }
                mine
            }));
        }
        for handle in handles {
            for (app_idx, compiled) in handle.join().expect("compile worker panicked") {
                slots[app_idx] = Some(compiled);
            }
        }
    })
    .expect("compile scope panicked");
    slots
        .into_iter()
        .map(|slot| slot.expect("every app compiled"))
        .collect()
}

fn add_confusion(into: &mut Confusion, c: &Confusion) {
    into.tp += c.tp;
    into.fp += c.fp;
    into.fn_ += c.fn_;
    into.tn += c.tn;
}

/// Runs one cell of the matrix: the already-compiled
/// `spec.apps[app_idx]` on the device with stable index `index`.
///
/// `compiled` comes from the fleet's compile-once cache: the same
/// immutable `Arc<CompiledApp>` is shared read-only by every device of
/// the app, so no job ever re-clones or re-compiles the app model.
fn run_job(
    spec: &FleetSpec,
    compiled: &CompiledApp,
    index: usize,
    app_idx: usize,
    overridden: Option<&DeviceOverride>,
) -> JobResult {
    let app = compiled.app();
    let device_in_app = index % spec.devices_per_app as usize;
    let profile = &spec.profiles[device_in_app % spec.profiles.len()];
    let seed = device_seed(spec.root_seed, index as u64);
    // Device ids are 1-based and globally unique, so the merged report's
    // per-device evidence cells never collide across the fleet.
    let device_id = index as u32 + 1;
    let config = overridden
        .and_then(|o| o.config.clone())
        .unwrap_or_else(|| spec.config.clone());
    let faults = overridden.and_then(|o| o.faults).unwrap_or(spec.faults);

    let mut rng = SimRng::seed_from_u64(seed);
    let schedule = generate_schedule(
        app,
        TraceParams {
            actions: spec.executions_per_action * app.actions.len(),
            ..TraceParams::default()
        },
        &mut rng,
    );
    let sim_cfg = SimConfig {
        cores: profile.cores,
        workers: profile.workers,
        ..SimConfig::default()
    };
    let mut run = build_run(compiled, &schedule, sim_cfg, seed);

    let db = shared(BlockingApiDb::documented(spec.apidb_year));
    let (mut doctor, _handle) =
        HangDoctor::new(config, &app.name, &app.package, device_id, Some(db.clone()));
    // Every job gets its own deterministic fault schedule, derived like
    // the device seed from (root_seed, index) — a disabled config makes
    // the plan inert, so clean fleets are untouched.
    doctor.inject_faults(FaultPlan::for_job(faults, spec.root_seed, index as u64));
    let installed = install(Box::new(doctor), &mut run.sim);
    let summary = run.sim.run();

    let hd = installed
        .finish()
        .into_hang_doctor()
        .expect("fleet installs Hang Doctor");
    let flagged: HashSet<ExecId> = hd.detections.iter().map(|d| d.exec_id).collect();
    let confusion = score(run.sim.records(), &run.truths, &flagged);
    let db = db.lock().clone();
    JobResult {
        index,
        app_idx,
        report: hd.report,
        confusion,
        detections: hd.detections.len() as u64,
        hangs_observed: hd.hangs_observed,
        simulated_ns: summary.ended_at.0,
        db,
        faults: hd.faults,
    }
}

/// A shard's running fold of its job results: the [`MergedFleet`] shape
/// plus the chaos tally and (optionally) the per-device upload units.
/// Each worker absorbs every job it owns the moment the job finishes —
/// individual [`JobResult`]s never outlive their shard — and the shard
/// partials fold once more, in shard order, at the end. Because the
/// merge operators are commutative joins and the scalars are sums, any
/// shard grouping folds to the same value as the serial index-order
/// fold.
struct FleetAccum {
    jobs: usize,
    apps: Vec<AppFleetSummary>,
    apidb: BlockingApiDb,
    confusion: Confusion,
    detections: u64,
    hangs_observed: u64,
    simulated_ns: u64,
    faults: FaultTally,
    reports: Vec<JobReport>,
}

impl FleetAccum {
    fn new(spec: &FleetSpec) -> FleetAccum {
        FleetAccum {
            jobs: 0,
            apps: spec
                .apps
                .iter()
                .map(|app| AppFleetSummary {
                    app: app.name.clone(),
                    devices: 0,
                    report: HangBugReport::new(&app.name),
                    confusion: Confusion::default(),
                    detections: 0,
                })
                .collect(),
            apidb: BlockingApiDb::documented(spec.apidb_year),
            confusion: Confusion::default(),
            detections: 0,
            hangs_observed: 0,
            simulated_ns: 0,
            faults: FaultTally::default(),
            reports: Vec::new(),
        }
    }

    fn absorb(&mut self, spec: &FleetSpec, result: JobResult, collect_reports: bool) {
        self.jobs += 1;
        let slot = &mut self.apps[result.app_idx];
        slot.devices += 1;
        slot.report.merge(&result.report);
        add_confusion(&mut slot.confusion, &result.confusion);
        slot.detections += result.detections;
        self.apidb.merge(&result.db);
        add_confusion(&mut self.confusion, &result.confusion);
        self.detections += result.detections;
        self.hangs_observed += result.hangs_observed;
        self.simulated_ns += result.simulated_ns;
        self.faults.merge(&result.faults);
        if collect_reports {
            self.reports.push(JobReport {
                index: result.index,
                app: spec.apps[result.app_idx].name.clone(),
                device: result.index as u32 + 1,
                report: result.report,
                faults: result.faults,
            });
        }
    }

    fn fold(&mut self, other: FleetAccum) {
        self.jobs += other.jobs;
        for (slot, theirs) in self.apps.iter_mut().zip(&other.apps) {
            slot.devices += theirs.devices;
            slot.report.merge(&theirs.report);
            add_confusion(&mut slot.confusion, &theirs.confusion);
            slot.detections += theirs.detections;
        }
        self.apidb.merge(&other.apidb);
        add_confusion(&mut self.confusion, &other.confusion);
        self.detections += other.detections;
        self.hangs_observed += other.hangs_observed;
        self.simulated_ns += other.simulated_ns;
        self.faults.merge(&other.faults);
        self.reports.extend(other.reports);
    }

    fn into_merged(self, spec: &FleetSpec) -> (MergedFleet, FaultTally, Vec<JobReport>) {
        let merged = MergedFleet {
            root_seed: spec.root_seed,
            devices_per_app: spec.devices_per_app,
            jobs: self.jobs,
            apps: self.apps,
            apidb: self.apidb,
            confusion: self.confusion,
            detections: self.detections,
            hangs_observed: self.hangs_observed,
            simulated_ns: self.simulated_ns,
        };
        (merged, self.faults, self.reports)
    }
}

/// One device's end-of-run upload unit: what the telemetry layer ships
/// off-device. `index` is the job's stable fleet index and `device` the
/// globally unique 1-based device id the report's evidence cells use.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JobReport {
    /// Stable job index in the fleet matrix.
    pub index: usize,
    /// App the device ran.
    pub app: String,
    /// Globally unique device id (`index + 1`).
    pub device: u32,
    /// The device's accumulated hang bug report.
    pub report: HangBugReport,
    /// What fault injection did to this device's run (all-zero on clean
    /// fleets) — the control plane's per-device health signal.
    pub faults: FaultTally,
}

/// Per-device departures from the fleet-wide spec, keyed by 1-based
/// device id. This is how the control plane materializes its directives:
/// a pushed threshold or a targeted fault campaign overrides only the
/// devices it names, and every other device keeps the spec's settings —
/// so an empty override map reproduces `run_fleet_with_reports`
/// byte-for-byte.
#[derive(Clone, Debug, Default)]
pub struct DeviceOverride {
    /// Replacement Hang Doctor configuration for this device.
    pub config: Option<HangDoctorConfig>,
    /// Replacement fault-injection configuration for this device.
    pub faults: Option<FaultConfig>,
}

/// Runs the fleet: enumerates the matrix, executes every job on the
/// worker pool, and merges the results.
///
/// # Panics
///
/// Panics if the spec has no apps, no profiles, or zero devices.
pub fn run_fleet(spec: &FleetSpec) -> FleetReport {
    run_fleet_inner(spec, false, &BTreeMap::new()).0
}

/// Like [`run_fleet`], but additionally hands back every device's
/// individual [`JobReport`] in stable job-index order — the per-device
/// artifacts a networked telemetry path uploads instead of merging
/// in-process. The [`FleetReport`] half is identical to what
/// [`run_fleet`] returns for the same spec.
pub fn run_fleet_with_reports(spec: &FleetSpec) -> (FleetReport, Vec<JobReport>) {
    run_fleet_inner(spec, true, &BTreeMap::new())
}

/// Like [`run_fleet_with_reports`], but devices named in `overrides` run
/// with their [`DeviceOverride`] settings instead of the spec's. An empty
/// map is byte-identical to [`run_fleet_with_reports`]; overrides keep
/// every determinism property (they are a pure function of the device
/// id, independent of shard assignment and thread count).
pub fn run_fleet_with_reports_overridden(
    spec: &FleetSpec,
    overrides: &BTreeMap<u32, DeviceOverride>,
) -> (FleetReport, Vec<JobReport>) {
    run_fleet_inner(spec, true, overrides)
}

fn run_fleet_inner(
    spec: &FleetSpec,
    collect_reports: bool,
    overrides: &BTreeMap<u32, DeviceOverride>,
) -> (FleetReport, Vec<JobReport>) {
    assert!(!spec.apps.is_empty(), "fleet needs at least one app");
    assert!(
        !spec.profiles.is_empty(),
        "fleet needs at least one profile"
    );
    assert!(spec.devices_per_app > 0, "fleet needs at least one device");
    let threads = spec.threads.max(1);
    let total_jobs = spec.jobs();
    let started = Instant::now();

    // Compile-once corpus cache: each app is compiled exactly once per
    // fleet run (in parallel on the same pool the jobs use) and shared
    // read-only as an `Arc<CompiledApp>` across all of its device×trace
    // jobs. Compilation is a pure function of the app, so the cache
    // cannot perturb determinism.
    let compiled = compile_corpus(&spec.apps, threads);

    // Sharded thread-per-core execution: shard `s` owns the strided job
    // set {s, s+T, s+2T, …}. Consecutive fleet indices run the same app
    // (the matrix enumerates an app's devices contiguously), so the
    // stride deals every app's devices round-robin across shards — a
    // balanced app mix per shard with zero shared scheduling state. Each
    // shard keeps the `Arc<CompiledApp>` of the app it is currently
    // working through hot in a local slot and folds its results into its
    // own partial as it goes, so no `JobResult` survives its shard.
    let devices_per_app = spec.devices_per_app as usize;
    let mut shards: Vec<ShardStat> = Vec::with_capacity(threads);
    let mut folded: Option<FleetAccum> = None;
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for worker in 0..threads {
            let compiled = &compiled;
            handles.push(scope.spawn(move |_| {
                let begun = Instant::now();
                let mut accum = FleetAccum::new(spec);
                let mut hot: Option<(usize, Arc<CompiledApp>)> = None;
                let mut index = worker;
                while index < total_jobs {
                    let app_idx = index / devices_per_app;
                    if hot.as_ref().map(|(a, _)| *a) != Some(app_idx) {
                        hot = Some((app_idx, Arc::clone(&compiled[app_idx])));
                    }
                    let (_, app) = hot.as_ref().expect("hot slot just filled");
                    let result = run_job(
                        spec,
                        app,
                        index,
                        app_idx,
                        overrides.get(&(index as u32 + 1)),
                    );
                    accum.absorb(spec, result, collect_reports);
                    index += threads;
                }
                (
                    ShardStat {
                        worker,
                        jobs: accum.jobs,
                        busy_ms: begun.elapsed().as_millis() as u64,
                    },
                    accum,
                )
            }));
        }
        // Shard partials fold in worker order; the merge operators are
        // commutative joins, so the grouping cannot change the value.
        for handle in handles {
            let (stat, accum) = handle.join().expect("fleet worker panicked");
            shards.push(stat);
            match &mut folded {
                Some(all) => all.fold(accum),
                None => folded = Some(accum),
            }
        }
    })
    .expect("fleet scope panicked");

    let folded = folded.expect("at least one shard ran");
    debug_assert_eq!(folded.jobs, total_jobs);
    let (merged, fault_tally, mut job_reports) = folded.into_merged(spec);
    let chaos = if spec.faults.enabled() {
        Some(ChaosReport {
            config: spec.faults,
            tally: fault_tally,
            net: NetFaultTally::default(),
        })
    } else {
        None
    };
    // Shards collected their (already index-ascending) report lists
    // independently; one sort restores global stable index order.
    job_reports.sort_by_key(|r| r.index);
    let wall = started.elapsed();
    let wall_seconds = wall.as_secs_f64().max(1e-9);
    let device_hours = merged.simulated_ns as f64 / 3.6e12;
    let report = FleetReport {
        merged,
        chaos,
        timing: FleetTiming {
            threads,
            wall_ms: wall.as_millis() as u64,
            device_hours_per_wall_second: device_hours / wall_seconds,
            shards,
        },
    };
    (report, job_reports)
}

/// Ground-truth bugs of `app` that the fleet's merged runtime report
/// attributes a root cause to.
///
/// A report entry matches a bug when its root-cause symbol is the bug's
/// API symbol and its action is the bug's action (by name). This reads
/// only already-merged [`AppFleetSummary`] fields, so static↔runtime
/// differentials can be scored from an archived fleet artifact without
/// re-running any device.
pub fn bugs_reported(summary: &AppFleetSummary, app: &App) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for entry in summary.report.entries() {
        for bug in &app.bugs {
            if app.api(bug.api).symbol == entry.symbol
                && app
                    .action(bug.action)
                    .is_some_and(|a| a.name == entry.action)
            {
                out.insert(bug.id.clone());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hd_appmodel::corpus::table5;

    fn small_spec(threads: usize) -> FleetSpec {
        FleetSpec {
            apps: vec![table5::k9mail(), table5::omninotes()],
            profiles: DeviceProfile::default_set(),
            devices_per_app: 3,
            executions_per_action: 2,
            root_seed: 42,
            threads,
            config: HangDoctorConfig::default(),
            apidb_year: 2017,
            faults: FaultConfig::none(),
        }
    }

    #[test]
    fn device_seeds_are_distinct_and_stable_across_calls() {
        assert_eq!(device_seed(42, 0), device_seed(42, 0));
        assert_ne!(device_seed(42, 0), device_seed(42, 1));
        assert_ne!(device_seed(42, 0), device_seed(43, 0));
        let seeds: std::collections::HashSet<u64> = (0..1_000).map(|i| device_seed(7, i)).collect();
        assert_eq!(seeds.len(), 1_000, "seeds must not collide");
    }

    #[test]
    fn fleet_runs_and_detects() {
        let report = run_fleet(&small_spec(1));
        assert_eq!(report.merged.jobs, 6);
        assert_eq!(report.merged.apps.len(), 2);
        assert!(
            report.merged.confusion.tp > 0,
            "{:?}",
            report.merged.confusion
        );
        assert!(report.merged.detections > 0);
        assert!(report.merged.simulated_ns > 0);
        assert!(report.timing.device_hours_per_wall_second > 0.0);
        let k9 = &report.merged.apps[0];
        assert_eq!(k9.app, "K9-mail");
        assert_eq!(k9.devices, 3);
        assert!(!k9.report.entries().is_empty(), "K9 bugs must be reported");
        // K9's HtmlCleaner bug is not documented: the fleet discovers it.
        assert!(report
            .merged
            .apidb
            .discovered()
            .iter()
            .any(|(sym, _)| sym.contains("HtmlCleaner")));
    }

    #[test]
    fn bugs_reported_maps_entries_back_to_ground_truth() {
        let spec = small_spec(1);
        let report = run_fleet(&spec);
        let k9 = &report.merged.apps[0];
        let found = bugs_reported(k9, &spec.apps[0]);
        assert!(
            found.iter().any(|b| b.contains("clean")),
            "the HtmlCleaner bug must be attributed: {found:?}"
        );
        for id in &found {
            assert!(spec.apps[0].bug(id).is_some(), "{id} is not a K9 bug");
        }
    }

    #[test]
    fn shards_cover_all_jobs() {
        let report = run_fleet(&small_spec(3));
        assert_eq!(report.timing.shards.len(), 3);
        let pulled: usize = report.timing.shards.iter().map(|s| s.jobs).sum();
        assert_eq!(pulled, report.merged.jobs);
    }

    #[test]
    fn render_mentions_throughput() {
        let report = run_fleet(&small_spec(2));
        let s = report.render();
        assert!(s.contains("device-hours"));
        assert!(s.contains("K9-mail"));
        assert!(!s.contains("chaos"), "clean runs must not mention chaos");
    }

    #[test]
    fn clean_fleet_reports_no_chaos() {
        let report = run_fleet(&small_spec(2));
        assert!(report.chaos.is_none());
    }

    #[test]
    fn chaos_fleet_completes_and_tallies_per_category() {
        let mut spec = small_spec(2);
        spec.faults = FaultConfig::chaos(0.05);
        let report = run_fleet(&spec);
        let chaos = report.chaos.as_ref().expect("chaos report present");
        assert_eq!(chaos.config, FaultConfig::chaos(0.05));
        let t = &chaos.tally;
        assert!(t.injected() > 0, "{t:?}");
        // At 5% every category must have fired somewhere in 6 jobs.
        assert!(t.counter_read_failures > 0, "{t:?}");
        assert!(t.stale_snapshots > 0, "{t:?}");
        assert!(t.samples_dropped > 0, "{t:?}");
        assert!(t.clock_jitters > 0, "{t:?}");
        // And the fleet still detects despite the faults.
        assert!(report.merged.detections > 0);
        assert!(report.render().contains("chaos"));
    }

    #[test]
    fn job_reports_merge_to_the_fleet_report() {
        let spec = small_spec(2);
        let (fleet, jobs) = run_fleet_with_reports(&spec);
        assert_eq!(jobs.len(), fleet.merged.jobs);
        assert!(jobs.windows(2).all(|w| w[0].index < w[1].index));
        assert!(jobs.iter().all(|j| j.device == j.index as u32 + 1));
        // Re-merging the per-job reports app by app reproduces the
        // in-process merged per-app reports byte-for-byte — the invariant
        // the networked telemetry path relies on.
        for summary in &fleet.merged.apps {
            let mut merged = HangBugReport::new(&summary.app);
            for job in jobs.iter().filter(|j| j.app == summary.app) {
                merged.merge(&job.report);
            }
            assert_eq!(
                serde_json::to_string(&merged).unwrap(),
                serde_json::to_string(&summary.report).unwrap()
            );
        }
        // And the fleet half is identical to a plain run.
        let plain = run_fleet(&spec);
        assert_eq!(
            serde_json::to_string(&plain.merged).unwrap(),
            serde_json::to_string(&fleet.merged).unwrap()
        );
    }

    #[test]
    fn empty_overrides_are_byte_identical_to_the_plain_run() {
        let spec = small_spec(2);
        let (plain, plain_jobs) = run_fleet_with_reports(&spec);
        let (overridden, jobs) = run_fleet_with_reports_overridden(&spec, &BTreeMap::new());
        assert_eq!(
            serde_json::to_string(&plain.merged).unwrap(),
            serde_json::to_string(&overridden.merged).unwrap()
        );
        assert_eq!(plain_jobs.len(), jobs.len());
        for (a, b) in plain_jobs.iter().zip(&jobs) {
            assert_eq!(
                serde_json::to_string(a).unwrap(),
                serde_json::to_string(b).unwrap()
            );
        }
    }

    #[test]
    fn overrides_touch_only_the_named_device() {
        let spec = small_spec(2);
        let (_, baseline) = run_fleet_with_reports(&spec);
        // Device 2 alone runs under heavy dropped-sample faults; every
        // other device must reproduce its baseline report byte-for-byte.
        let mut overrides = BTreeMap::new();
        overrides.insert(
            2,
            DeviceOverride {
                config: None,
                faults: Some(FaultConfig::only(
                    hd_faults::FaultCategory::DroppedSample,
                    1.0,
                )),
            },
        );
        let (_, jobs) = run_fleet_with_reports_overridden(&spec, &overrides);
        assert_eq!(baseline.len(), jobs.len());
        for (a, b) in baseline.iter().zip(&jobs) {
            if a.device == 2 {
                assert!(
                    b.faults.samples_dropped > 0,
                    "override must inject on device 2: {:?}",
                    b.faults
                );
            } else {
                assert_eq!(
                    serde_json::to_string(a).unwrap(),
                    serde_json::to_string(b).unwrap(),
                    "device {} must be untouched",
                    a.device
                );
            }
        }
    }

    #[test]
    fn chaos_tally_is_thread_count_independent() {
        let mut serial = small_spec(1);
        serial.faults = FaultConfig::chaos(0.1);
        let mut parallel = small_spec(4);
        parallel.faults = FaultConfig::chaos(0.1);
        let a = run_fleet(&serial);
        let b = run_fleet(&parallel);
        assert_eq!(
            a.chaos.as_ref().unwrap().tally,
            b.chaos.as_ref().unwrap().tally
        );
    }
}
