//! Golden fixtures: the merged report of a small fleet run (clean and
//! chaos mode), checked in byte-for-byte. Any change to these bytes
//! means the science changed — performance work must leave them
//! untouched, and the fault-injection layer must leave the *clean*
//! fixture untouched even as code paths gain fault hooks.
//!
//! Every fixture starts with a one-line schema header carrying
//! [`FIXTURE_SCHEMA`]. The tag versions the *sampled randomness*, not
//! the report format: optimizations that keep the simulator's RNG draw
//! sequence intact must reproduce the fixture bytes under the same tag,
//! while a deliberate redesign of the draw order bumps the tag and
//! re-pins the bytes.
//!
//! Regenerate (only when a deliberate behavior change lands) with:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test -p hd-fleet --test golden
//! ```

use hangdoctor::{FaultConfig, HangDoctorConfig};
use hd_fleet::{run_fleet, DeviceProfile, FleetSpec};

/// Fixture schema tag, bumped when a deliberate behavior change re-pins
/// the fleet goldens. v2: the second hot-loop campaign's batched accrual
/// kernel (one fanned parent draw per accrue) and the system-pulse fast
/// path (one fanned parent draw per pulse cycle) replaced the v1
/// per-event draw chain.
const FIXTURE_SCHEMA: &str = "hang-doctor/fleet-golden/v2";

/// Prefixes the payload with the one-line schema header.
fn tagged(payload: String) -> String {
    format!("{{\"fixture_schema\": \"{FIXTURE_SCHEMA}\"}}\n{payload}")
}

fn spec() -> FleetSpec {
    FleetSpec {
        apps: vec![
            hd_appmodel::corpus::table5::k9mail(),
            hd_appmodel::corpus::table5::omninotes(),
        ],
        profiles: DeviceProfile::default_set(),
        devices_per_app: 2,
        executions_per_action: 2,
        root_seed: 7,
        threads: 2,
        config: HangDoctorConfig::default(),
        apidb_year: 2017,
        faults: FaultConfig::none(),
    }
}

const FIXTURE: &str = include_str!("fixtures/fleet_small.json");
const CHAOS_FIXTURE: &str = include_str!("fixtures/fleet_chaos.json");
const ASYNC_FIXTURE: &str = include_str!("fixtures/fleet_async.json");

fn check_or_regen(rendered: String, fixture: &str, name: &str) {
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
        std::fs::write(path, rendered).expect("write fixture");
        return;
    }
    assert_eq!(
        rendered, fixture,
        "{name} drifted from the golden fixture; if the change is \
         intentional, regenerate with GOLDEN_REGEN=1"
    );
}

#[test]
fn merged_report_matches_checked_in_fixture() {
    let report = run_fleet(&spec());
    assert!(report.chaos.is_none(), "clean run must carry no chaos data");
    let json = serde_json::to_string_pretty(&report.merged).expect("serializable report");
    check_or_regen(tagged(format!("{json}\n")), FIXTURE, "fleet_small.json");
}

#[test]
fn async_report_matches_checked_in_fixture() {
    // The async hang corpus under the same small matrix: wait-edge
    // scheduling (pool queues, serial convoys, join blocks) and the
    // causal blame walk are pinned byte-for-byte.
    // Four executions per action: enough for every hang shape (the
    // pool-starvation app needs more observations than the tiny default
    // matrix grants before its diagnosis crosses the report threshold).
    let async_spec = FleetSpec {
        apps: hd_appmodel::corpus::async_hang_apps(),
        executions_per_action: 4,
        ..spec()
    };
    let report = run_fleet(&async_spec);
    assert!(report.chaos.is_none(), "clean run must carry no chaos data");
    let json = serde_json::to_string_pretty(&report.merged).expect("serializable report");
    check_or_regen(
        tagged(format!("{json}\n")),
        ASYNC_FIXTURE,
        "fleet_async.json",
    );
}

#[test]
fn chaos_report_matches_checked_in_fixture() {
    // Same matrix, 5% chaos: the merged science under faults AND the
    // per-category fault/recovery tallies are both pinned.
    let mut chaos_spec = spec();
    chaos_spec.faults = FaultConfig::chaos(0.05);
    let report = run_fleet(&chaos_spec);
    let chaos = report.chaos.as_ref().expect("chaos run carries tallies");
    assert!(chaos.tally.injected() > 0, "{:?}", chaos.tally);
    let merged = serde_json::to_string_pretty(&report.merged).expect("serializable report");
    let tallies = serde_json::to_string_pretty(chaos).expect("serializable chaos report");
    check_or_regen(
        tagged(format!("{merged}\n{tallies}\n")),
        CHAOS_FIXTURE,
        "fleet_chaos.json",
    );
}
