//! Golden fixture: the merged report of a small fleet run, checked in
//! byte-for-byte. Any change to these bytes means the science changed —
//! performance work must leave this file untouched.
//!
//! Regenerate (only when a deliberate behavior change lands) with:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test -p hd-fleet --test golden
//! ```

use hangdoctor::HangDoctorConfig;
use hd_fleet::{run_fleet, DeviceProfile, FleetSpec};

fn spec() -> FleetSpec {
    FleetSpec {
        apps: vec![
            hd_appmodel::corpus::table5::k9mail(),
            hd_appmodel::corpus::table5::omninotes(),
        ],
        profiles: DeviceProfile::default_set(),
        devices_per_app: 2,
        executions_per_action: 2,
        root_seed: 7,
        threads: 2,
        config: HangDoctorConfig::default(),
        apidb_year: 2017,
    }
}

const FIXTURE: &str = include_str!("fixtures/fleet_small.json");

#[test]
fn merged_report_matches_checked_in_fixture() {
    let report = run_fleet(&spec());
    let json = serde_json::to_string_pretty(&report.merged).expect("serializable report");
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/fixtures/fleet_small.json"
        );
        std::fs::write(path, format!("{json}\n")).expect("write fixture");
        return;
    }
    assert_eq!(
        format!("{json}\n"),
        FIXTURE,
        "merged FleetReport drifted from the golden fixture; if the change \
         is intentional, regenerate with GOLDEN_REGEN=1"
    );
}
