//! The fleet's headline guarantee: the merged results of an N-thread run
//! are byte-identical to the serial run.

use hangdoctor::{FaultConfig, HangDoctorConfig};
use hd_fleet::{run_fleet, DeviceProfile, FleetSpec};

fn spec(threads: usize) -> FleetSpec {
    FleetSpec {
        apps: vec![
            hd_appmodel::corpus::table5::k9mail(),
            hd_appmodel::corpus::table5::omninotes(),
            hd_appmodel::corpus::table5::cyclestreets(),
        ],
        profiles: DeviceProfile::default_set(),
        devices_per_app: 4,
        executions_per_action: 2,
        root_seed: 42,
        threads,
        config: HangDoctorConfig::default(),
        apidb_year: 2017,
        faults: FaultConfig::none(),
    }
}

fn chaos_spec(threads: usize) -> FleetSpec {
    FleetSpec {
        faults: FaultConfig::chaos(0.1),
        ..spec(threads)
    }
}

#[test]
fn eight_thread_fleet_is_byte_identical_to_serial() {
    let serial = run_fleet(&spec(1));
    let parallel = run_fleet(&spec(8));
    let serial_json = serde_json::to_string_pretty(&serial.merged).unwrap();
    let parallel_json = serde_json::to_string_pretty(&parallel.merged).unwrap();
    assert!(
        serial.merged.confusion.tp > 0,
        "the comparison must not be vacuous: {:?}",
        serial.merged.confusion
    );
    assert_eq!(serial_json, parallel_json);
}

#[test]
fn eight_thread_chaos_fleet_is_byte_identical_to_serial() {
    // Fault schedules derive from (root_seed, job index) only, so even a
    // chaos fleet — merged science AND fault tallies — is byte-identical
    // across thread counts.
    let serial = run_fleet(&chaos_spec(1));
    let parallel = run_fleet(&chaos_spec(8));
    assert!(
        serial.chaos.as_ref().unwrap().tally.injected() > 0,
        "the chaos comparison must not be vacuous"
    );
    assert_eq!(
        serde_json::to_string_pretty(&serial.merged).unwrap(),
        serde_json::to_string_pretty(&parallel.merged).unwrap()
    );
    assert_eq!(
        serde_json::to_string_pretty(&serial.chaos).unwrap(),
        serde_json::to_string_pretty(&parallel.chaos).unwrap()
    );
}

#[test]
fn sixteen_thread_fleet_is_byte_identical_to_serial() {
    // Sixteen workers oversubscribe the 12-job matrix: every non-empty
    // strided shard holds a single job and the worker-order fold spans
    // empty partials — the sharded scheduler must still reproduce the
    // serial bytes.
    let serial = run_fleet(&spec(1));
    let parallel = run_fleet(&spec(16));
    assert_eq!(
        serde_json::to_string_pretty(&serial.merged).unwrap(),
        serde_json::to_string_pretty(&parallel.merged).unwrap()
    );
}

#[test]
fn thirty_two_thread_fleet_is_byte_identical_to_serial() {
    // Nearly three workers per job: the trailing shards are empty and
    // fold as identity elements of the merge semilattice.
    let serial = run_fleet(&spec(1));
    let parallel = run_fleet(&spec(32));
    assert_eq!(
        serde_json::to_string_pretty(&serial.merged).unwrap(),
        serde_json::to_string_pretty(&parallel.merged).unwrap()
    );
}

#[test]
fn sixteen_thread_chaos_fleet_is_byte_identical_to_serial() {
    let serial = run_fleet(&chaos_spec(1));
    let parallel = run_fleet(&chaos_spec(16));
    assert_eq!(
        serde_json::to_string_pretty(&serial.merged).unwrap(),
        serde_json::to_string_pretty(&parallel.merged).unwrap()
    );
    assert_eq!(
        serde_json::to_string_pretty(&serial.chaos).unwrap(),
        serde_json::to_string_pretty(&parallel.chaos).unwrap()
    );
}

#[test]
fn thirty_two_thread_chaos_fleet_is_byte_identical_to_serial() {
    let serial = run_fleet(&chaos_spec(1));
    let parallel = run_fleet(&chaos_spec(32));
    assert_eq!(
        serde_json::to_string_pretty(&serial.merged).unwrap(),
        serde_json::to_string_pretty(&parallel.merged).unwrap()
    );
    assert_eq!(
        serde_json::to_string_pretty(&serial.chaos).unwrap(),
        serde_json::to_string_pretty(&parallel.chaos).unwrap()
    );
}

/// The async hang corpus: wait-edge resolution (pool queues, serial
/// convoys, main-thread join blocks) must shard exactly like inline
/// work.
fn async_spec(threads: usize) -> FleetSpec {
    FleetSpec {
        apps: hd_appmodel::corpus::async_hang_apps(),
        ..spec(threads)
    }
}

#[test]
fn async_fleet_is_byte_identical_across_thread_counts() {
    let serial = run_fleet(&async_spec(1));
    let serial_json = serde_json::to_string_pretty(&serial.merged).unwrap();
    // Not vacuous: the causal walk must have crossed a wait edge and
    // blamed a worker-side API, never the join site.
    let symbols: Vec<String> = serial
        .merged
        .apps
        .iter()
        .flat_map(|a| a.report.entries())
        .map(|e| e.symbol)
        .collect();
    assert!(
        symbols
            .iter()
            .any(|s| s == "org.xmlpull.v1.XmlPullParser.next"),
        "worker-side culprit missing: {symbols:?}"
    );
    assert!(
        symbols
            .iter()
            .all(|s| s != "java.util.concurrent.FutureTask.get"),
        "join site blamed: {symbols:?}"
    );
    for threads in [8usize, 16, 32] {
        let parallel = run_fleet(&async_spec(threads));
        assert_eq!(
            serial_json,
            serde_json::to_string_pretty(&parallel.merged).unwrap(),
            "{threads} threads diverged from serial"
        );
    }
}

#[test]
fn async_chaos_fleet_is_byte_identical_across_thread_counts() {
    let chaos_async = |threads| FleetSpec {
        faults: FaultConfig::chaos(0.1),
        ..async_spec(threads)
    };
    let serial = run_fleet(&chaos_async(1));
    assert!(
        serial.chaos.as_ref().unwrap().tally.injected() > 0,
        "the async chaos comparison must not be vacuous"
    );
    for threads in [8usize, 16, 32] {
        let parallel = run_fleet(&chaos_async(threads));
        assert_eq!(
            serde_json::to_string_pretty(&serial.merged).unwrap(),
            serde_json::to_string_pretty(&parallel.merged).unwrap(),
            "{threads} threads diverged from serial"
        );
        assert_eq!(
            serde_json::to_string_pretty(&serial.chaos).unwrap(),
            serde_json::to_string_pretty(&parallel.chaos).unwrap(),
            "{threads}-thread fault tallies diverged from serial"
        );
    }
}

#[test]
fn chaos_and_clean_fleets_differ() {
    // Sanity: 10% chaos must actually perturb the merged science, or the
    // injection points are dead.
    let clean = run_fleet(&spec(2));
    let chaos = run_fleet(&chaos_spec(2));
    assert_ne!(
        serde_json::to_string(&clean.merged).unwrap(),
        serde_json::to_string(&chaos.merged).unwrap()
    );
}

#[test]
fn rerun_with_same_spec_is_byte_identical() {
    let a = run_fleet(&spec(4));
    let b = run_fleet(&spec(4));
    assert_eq!(
        serde_json::to_string(&a.merged).unwrap(),
        serde_json::to_string(&b.merged).unwrap()
    );
}

#[test]
fn different_root_seed_changes_results() {
    let a = run_fleet(&spec(2));
    let mut other = spec(2);
    other.root_seed = 43;
    let b = run_fleet(&other);
    assert_ne!(
        serde_json::to_string(&a.merged).unwrap(),
        serde_json::to_string(&b.merged).unwrap()
    );
}
