//! Idempotency regression tests: re-delivering batches — exact
//! duplicates, spool replays, reordered across devices — must leave the
//! aggregation store and the exported [`TelemetryReport`] unchanged.

use hangdoctor::{HangBugReport, RootCause, RootKind};
use hd_simrt::ActionUid;
use hd_telemetry::{
    encode_frame, read_frame, write_frame, AggregationStore, Request, Response, TelemetryItem,
    TelemetryServer, UploadBatch, Uploader,
};

fn batch(app: &str, device: u32, seq: u64, hangs: u64) -> UploadBatch {
    let mut report = HangBugReport::new(app);
    let uid = ActionUid(1);
    for _ in 0..12 {
        report.note_execution(device, uid, "onOpen");
    }
    let root = RootCause {
        symbol: "java.io.File.read".to_string(),
        file: "Open.java".to_string(),
        line: 31,
        occurrence_factor: 1.0,
        kind: RootKind::BlockingApi,
    };
    for _ in 0..hangs {
        report.record_bug(device, uid, &root, 150_000_000);
    }
    UploadBatch {
        app: app.to_string(),
        device,
        seq,
        items: vec![TelemetryItem::Report(report)],
    }
}

fn corpus() -> Vec<UploadBatch> {
    vec![
        batch("k9mail", 1, 0, 2),
        batch("k9mail", 1, 1, 3),
        batch("k9mail", 2, 0, 1),
        batch("omni-notes", 3, 0, 4),
        batch("omni-notes", 4, 0, 0),
    ]
}

#[test]
fn double_delivery_changes_nothing() {
    let batches = corpus();
    let mut once = AggregationStore::new();
    let mut twice = AggregationStore::new();
    for b in &batches {
        once.ingest(b);
    }
    // Same corpus delivered twice, back to back.
    for b in batches.iter().chain(batches.iter()) {
        twice.ingest(b);
    }
    assert_eq!(once.report(10), twice.report(10));
    assert_eq!(once.device_count(), twice.device_count());
    assert_eq!(
        twice.stats().duplicates_absorbed,
        batches.len() as u64,
        "every re-delivery must be absorbed"
    );
    assert_eq!(twice.stats().batches_applied, batches.len() as u64);
}

#[test]
fn cross_device_reordering_changes_nothing() {
    let batches = corpus();
    let mut fwd = AggregationStore::new();
    let mut rev = AggregationStore::new();
    let mut interleaved = AggregationStore::new();
    for b in &batches {
        fwd.ingest(b);
    }
    for b in batches.iter().rev() {
        rev.ingest(b);
    }
    // Devices interleaved, with duplicates sprinkled mid-stream.
    for i in [3usize, 0, 4, 0, 2, 1, 3, 2] {
        interleaved.ingest(&batches[i]);
    }
    let reference = fwd.report(10).to_json();
    assert_eq!(reference, rev.report(10).to_json());
    assert_eq!(reference, interleaved.report(10).to_json());
}

/// The same guarantees hold over the real TCP path: re-uploading every
/// batch and shuffling device order leaves the queried report
/// byte-identical.
#[test]
fn networked_redelivery_is_idempotent() {
    let batches = corpus();

    let run = |order: &[usize], deliveries: usize| -> String {
        let server = TelemetryServer::builder()
            .addr("127.0.0.1:0")
            .start()
            .unwrap();
        let mut stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
        for _ in 0..deliveries {
            for &i in order {
                let frame = encode_frame(&Request::Upload(batches[i].clone()));
                write_frame(&mut stream, &frame).unwrap();
                match read_frame::<Response>(&mut stream).unwrap() {
                    Response::Ack { .. } => {}
                    other => panic!("expected Ack, got {other:?}"),
                }
            }
        }
        let frame = encode_frame(&Request::Query { top_n: 10 });
        write_frame(&mut stream, &frame).unwrap();
        let report = match read_frame::<Response>(&mut stream).unwrap() {
            Response::Report(r) => r,
            other => panic!("expected Report, got {other:?}"),
        };
        drop(stream);
        let mut client = Uploader::plain(server.local_addr());
        client.shutdown().unwrap();
        server.join();
        report.to_json()
    };

    let reference = run(&[0, 1, 2, 3, 4], 1);
    assert_eq!(
        reference,
        run(&[0, 1, 2, 3, 4], 3),
        "triple delivery drifted"
    );
    assert_eq!(
        reference,
        run(&[4, 2, 0, 3, 1], 1),
        "reordered delivery drifted"
    );
}
