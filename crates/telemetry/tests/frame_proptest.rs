//! Property tests of the telemetry frame codec: arbitrary payloads
//! round-trip byte-exactly, and no amount of truncation or corruption
//! can panic the decoder — every failure is a typed [`FrameError`].

use proptest::prelude::*;

use hangdoctor::{ActionState, DeviceSnapshot, HangBugReport, RootCause, RootKind};
use hd_simrt::ActionUid;
use hd_telemetry::{
    decode_frame, encode_frame, FrameError, Request, Response, TelemetryItem, UploadBatch, MAGIC,
};

const APPS: [&str; 3] = ["k9mail", "omni-notes", "a better camera"];
const SYMBOLS: [&str; 3] = [
    "java.io.File.read",
    "android.database.sqlite.SQLiteDatabase.query",
    "com.example.Sync.pull",
];

/// One recorded bug: (device, uid, symbol index, kind, hangs, hang_ns).
fn arb_bug() -> impl Strategy<Value = (u32, u64, usize, RootKind, u64, u64)> {
    (1u32..5, 0u64..4, 0usize..3, arb_kind(), 1u64..4, 1u64..500).prop_map(
        |(device, uid, sym, kind, hangs, ms)| (device, uid, sym, kind, hangs, ms * 1_000_000),
    )
}

fn arb_kind() -> impl Strategy<Value = RootKind> {
    prop_oneof![Just(RootKind::BlockingApi), Just(RootKind::SelfDeveloped)]
}

fn arb_report() -> impl Strategy<Value = HangBugReport> {
    (
        0usize..3,
        proptest::collection::vec((1u32..5, 0u64..4, 1u64..6), 0..6),
        proptest::collection::vec(arb_bug(), 0..5),
    )
        .prop_map(|(app_idx, execs, bugs)| {
            let app = APPS[app_idx];
            let mut report = HangBugReport::new(app);
            for (device, uid, count) in execs {
                for _ in 0..count {
                    report.note_execution(device, ActionUid(uid), "onAction");
                }
            }
            for (device, uid, sym, kind, hangs, hang_ns) in bugs {
                let root = RootCause {
                    symbol: SYMBOLS[sym].to_string(),
                    file: "App.java".to_string(),
                    line: 10 + sym as u32,
                    occurrence_factor: 1.0,
                    kind,
                };
                for _ in 0..hangs {
                    report.record_bug(device, ActionUid(uid), &root, hang_ns);
                }
            }
            report
        })
}

fn arb_state() -> impl Strategy<Value = ActionState> {
    prop_oneof![
        Just(ActionState::Uncategorized),
        Just(ActionState::Normal),
        Just(ActionState::Suspicious),
        Just(ActionState::HangBug),
    ]
}

fn arb_snapshot() -> impl Strategy<Value = DeviceSnapshot> {
    (
        arb_report(),
        1u32..6,
        proptest::collection::vec((0u64..8, arb_state(), 0u32..30), 0..6),
    )
        .prop_map(|(report, device, states)| DeviceSnapshot {
            app: report.app.clone(),
            device,
            states,
            report,
        })
}

fn arb_item() -> impl Strategy<Value = TelemetryItem> {
    prop_oneof![
        arb_report().prop_map(TelemetryItem::Report),
        arb_snapshot().prop_map(TelemetryItem::Snapshot),
    ]
}

fn arb_batch() -> impl Strategy<Value = UploadBatch> {
    (
        0usize..3,
        1u32..9,
        0u64..5,
        proptest::collection::vec(arb_item(), 0..4),
    )
        .prop_map(|(app_idx, device, seq, items)| UploadBatch {
            app: APPS[app_idx].to_string(),
            device,
            seq,
            items,
        })
}

proptest! {
    /// encode → decode → encode is the identity on bytes, for arbitrary
    /// reports and snapshots inside arbitrary batches.
    #[test]
    fn upload_frames_round_trip_byte_exact(batch in arb_batch()) {
        let frame = encode_frame(&Request::Upload(batch));
        let decoded: Request = match decode_frame(&frame) {
            Ok(r) => r,
            Err(e) => return Err(format!("decode failed: {e}")),
        };
        prop_assert_eq!(encode_frame(&decoded), frame);
    }

    /// Same property for the response direction (reports travel back
    /// in query answers).
    #[test]
    fn response_frames_round_trip_byte_exact(batch in arb_batch()) {
        // Reuse the batch's first report as a query answer payload.
        let response = Response::Ack { fingerprint: batch.seq, duplicate: false };
        let frame = encode_frame(&response);
        let decoded: Response = match decode_frame(&frame) {
            Ok(r) => r,
            Err(e) => return Err(format!("decode failed: {e}")),
        };
        prop_assert_eq!(encode_frame(&decoded), frame);
    }

    /// Every strict prefix of a valid frame decodes to a typed
    /// truncation (or bad magic for sub-header cuts) — never a panic,
    /// never a bogus success.
    #[test]
    fn truncation_yields_typed_errors(batch in arb_batch(), frac in 0u32..100) {
        let frame = encode_frame(&Request::Upload(batch));
        let cut = (frame.len() - 1) * frac as usize / 100;
        match decode_frame::<Request>(&frame[..cut]) {
            Err(FrameError::Truncated { needed, got }) => {
                prop_assert!(got < needed, "got {got} >= needed {needed}");
            }
            Ok(_) => return Err(format!("decoded from a {cut}-byte prefix")),
            Err(other) => return Err(format!("unexpected error at cut {cut}: {other:?}")),
        }
    }

    /// Flipping any single byte never panics the decoder: the result is
    /// either a typed error or (e.g. for a flip inside a string) a
    /// different-but-valid payload.
    #[test]
    fn corruption_never_panics(batch in arb_batch(), pos in 0u32..10_000, delta in 1u8..255) {
        let mut frame = encode_frame(&Request::Upload(batch));
        let idx = pos as usize % frame.len();
        frame[idx] = frame[idx].wrapping_add(delta);
        match decode_frame::<Request>(&frame) {
            Ok(_) => {}
            Err(FrameError::BadMagic(m)) => {
                prop_assert!(idx < 4, "BadMagic from flip at {idx}: {m:?}");
                prop_assert_ne!(&m, &MAGIC);
            }
            Err(FrameError::Truncated { .. })
            | Err(FrameError::TooLarge { .. })
            | Err(FrameError::Schema(_))
            | Err(FrameError::Json(_)) => {}
            Err(FrameError::Io(e)) => return Err(format!("Io error without I/O: {e}")),
        }
    }
}
