//! Durability edge cases pinned as regressions: torn tails drop
//! cleanly, CRC corruption is a typed error (never a panic), compaction
//! preserves replay byte-for-byte, and a killed-and-restarted server
//! recovers the identical aggregate over the real TCP path.

use std::path::PathBuf;

use hangdoctor::{HangBugReport, RootCause, RootKind};
use hd_simrt::ActionUid;
use hd_telemetry::wal::{recover_shard, snapshot_path, wal_path, write_snapshot, Wal};
use hd_telemetry::{
    batch_fingerprint, AggregationStore, TelemetryError, TelemetryItem, TelemetryServer,
    UploadBatch, Uploader,
};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hd-wal-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn batch(app: &str, device: u32, seq: u64, hangs: u64) -> UploadBatch {
    let mut report = HangBugReport::new(app);
    let uid = ActionUid(1);
    for _ in 0..12 {
        report.note_execution(device, uid, "onOpen");
    }
    let root = RootCause {
        symbol: "java.io.File.read".to_string(),
        file: "Open.java".to_string(),
        line: 31,
        occurrence_factor: 1.0,
        kind: RootKind::BlockingApi,
    };
    for _ in 0..hangs {
        report.record_bug(device, uid, &root, 150_000_000);
    }
    UploadBatch {
        app: app.to_string(),
        device,
        seq,
        items: vec![TelemetryItem::Report(report)],
    }
}

fn corpus() -> Vec<UploadBatch> {
    vec![
        batch("k9mail", 1, 0, 2),
        batch("k9mail", 1, 1, 3),
        batch("k9mail", 2, 0, 1),
        batch("omni-notes", 3, 0, 4),
        batch("omni-notes", 4, 0, 0),
    ]
}

fn append_corpus(wal: &mut Wal, batches: &[UploadBatch]) {
    for b in batches {
        wal.append(batch_fingerprint(b), b).unwrap();
    }
}

#[test]
fn torn_tail_is_dropped_cleanly_and_the_log_stays_appendable() {
    let dir = scratch("torn");
    let batches = corpus();
    let path = wal_path(&dir, 0);
    {
        let (mut wal, _) = Wal::open(&path, 0, 0).unwrap();
        append_corpus(&mut wal, &batches);
    }
    // Tear the last record mid-payload, as a crash mid-append would.
    let full = std::fs::read(&path).unwrap();
    std::fs::write(&path, &full[..full.len() - 7]).unwrap();

    let (mut wal, replay) = Wal::open(&path, 0, 0).unwrap();
    assert!(replay.torn_tail_dropped, "the torn record must be noticed");
    assert_eq!(
        replay.batches.len(),
        batches.len() - 1,
        "every complete record survives; only the torn one is dropped"
    );
    // The file was truncated back to its clean prefix, so appending
    // resumes a valid log: reopening sees all records again.
    wal.append(batch_fingerprint(&batches[4]), &batches[4])
        .unwrap();
    drop(wal);
    let (_, replay) = Wal::open(&path, 0, 0).unwrap();
    assert!(!replay.torn_tail_dropped);
    assert_eq!(replay.batches.len(), batches.len());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crc_corruption_is_a_typed_error_not_a_panic() {
    let dir = scratch("crc");
    let batches = corpus();
    let path = wal_path(&dir, 0);
    {
        let (mut wal, _) = Wal::open(&path, 0, 0).unwrap();
        append_corpus(&mut wal, &batches);
    }
    // Flip one payload byte in the middle of the file: in-region
    // corruption, not a torn tail.
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();

    match Wal::open(&path, 0, 0) {
        Err(TelemetryError::WalCorrupt { offset, reason }) => {
            assert!(offset < bytes.len() as u64);
            assert!(
                reason.contains("CRC") || reason.contains("JSON") || reason.contains("magic"),
                "unhelpful corruption reason: {reason}"
            );
        }
        other => panic!("expected WalCorrupt, got {:?}", other.map(|_| ())),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The compaction invariant: a snapshot covering a prefix of the log
/// plus the remaining WAL records recovers the same store — including
/// ingest counters and the fingerprint set — as replaying the whole
/// log, byte-for-byte.
#[test]
fn snapshot_plus_wal_replay_equals_pure_wal_replay_byte_for_byte() {
    let batches = corpus();
    let split = 3;

    // Pure-WAL shard: every batch logged, never compacted.
    let pure_dir = scratch("pure");
    {
        let (mut wal, _) = Wal::open(&wal_path(&pure_dir, 0), 0, 0).unwrap();
        append_corpus(&mut wal, &batches);
    }

    // Compacted shard: snapshot after `split` batches, WAL holds the
    // rest — exactly what `compact_shard` leaves behind.
    let snap_dir = scratch("snap");
    {
        let mut store = AggregationStore::new();
        for b in &batches[..split] {
            store.ingest(b);
        }
        write_snapshot(&snapshot_path(&snap_dir, 0), &store.snapshot()).unwrap();
        let (mut wal, _) = Wal::open(&wal_path(&snap_dir, 0), 0, 0).unwrap();
        append_corpus(&mut wal, &batches[split..]);
    }

    let (pure, _, pure_replayed) = recover_shard(&pure_dir, 0, 0).unwrap();
    let (compacted, _, compacted_replayed) = recover_shard(&snap_dir, 0, 0).unwrap();
    assert_eq!(pure_replayed, batches.len() as u64);
    assert_eq!(compacted_replayed, (batches.len() - split) as u64);
    let pure_bytes = serde_json::to_string(&pure.snapshot()).unwrap();
    let compacted_bytes = serde_json::to_string(&compacted.snapshot()).unwrap();
    assert_eq!(
        pure_bytes, compacted_bytes,
        "compaction must be invisible to recovery"
    );

    // A record racing the truncation (still in the WAL although the
    // snapshot covers it) is absorbed by the snapshot's fingerprint
    // set: the aggregate is unchanged, the race shows up only as an
    // absorbed duplicate.
    let race_dir = scratch("race");
    {
        let mut store = AggregationStore::new();
        for b in &batches[..split] {
            store.ingest(b);
        }
        write_snapshot(&snapshot_path(&race_dir, 0), &store.snapshot()).unwrap();
        let (mut wal, _) = Wal::open(&wal_path(&race_dir, 0), 0, 0).unwrap();
        wal.append(batch_fingerprint(&batches[split - 1]), &batches[split - 1])
            .unwrap();
        append_corpus(&mut wal, &batches[split..]);
    }
    let (raced, _, _) = recover_shard(&race_dir, 0, 0).unwrap();
    assert_eq!(raced.report(10).to_json(), pure.report(10).to_json());
    assert_eq!(raced.stats().duplicates_absorbed, 1);

    for dir in [pure_dir, snap_dir, race_dir] {
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Kill-and-restart over the real TCP path: a server killed without any
/// flush comes back from its WAL with the identical aggregate — with
/// and without a compaction in between.
#[test]
fn killed_server_replays_its_wal_to_the_identical_aggregate() {
    let dir = scratch("restart");
    let batches = corpus();
    let wal_dir = dir.to_string_lossy().to_string();

    let server = TelemetryServer::builder()
        .addr("127.0.0.1:0")
        .shards(2)
        .wal_dir(wal_dir.clone())
        .start()
        .unwrap();
    let mut client = Uploader::plain(server.local_addr());
    for b in &batches {
        client.upload(b).unwrap();
    }
    let before = client.query(10).unwrap().to_json();
    drop(client);
    server.kill(); // abrupt: no flush, no snapshot, state dropped

    let revived = TelemetryServer::builder()
        .addr("127.0.0.1:0")
        .shards(2)
        .wal_dir(wal_dir.clone())
        .start()
        .unwrap();
    assert_eq!(
        revived.stats().batches_recovered,
        batches.len() as u64,
        "every ACKed batch must replay"
    );
    let mut client = Uploader::plain(revived.local_addr());
    assert_eq!(client.query(10).unwrap().to_json(), before);

    // Compact (snapshot + truncate), kill again: recovery now folds the
    // snapshot plus an empty log, to the same bytes.
    revived.compact().unwrap();
    drop(client);
    revived.kill();

    let again = TelemetryServer::builder()
        .addr("127.0.0.1:0")
        .shards(2)
        .wal_dir(wal_dir)
        .start()
        .unwrap();
    assert_eq!(
        again.stats().batches_recovered,
        0,
        "a compacted log has nothing left to replay"
    );
    let mut client = Uploader::plain(again.local_addr());
    assert_eq!(client.query(10).unwrap().to_json(), before);
    client.shutdown().unwrap();
    again.join();
    let _ = std::fs::remove_dir_all(&dir);
}
