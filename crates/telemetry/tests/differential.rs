//! The telemetry subsystem's end-to-end differential: routing every
//! fleet job's report through the real uploader → TCP server →
//! aggregation path must reproduce the in-process fleet merge
//! **byte-for-byte** — clean, and under chaos mode with transport
//! faults whose duplicate deliveries the idempotent ingest absorbs.

use hangdoctor::HangDoctorConfig;
use hd_appmodel::corpus::table5;
use hd_faults::{FaultConfig, NetFaultConfig};
use hd_fleet::{DeviceProfile, FleetSpec};
use hd_telemetry::run_fleet_telemetry;

fn spec(faults: FaultConfig) -> FleetSpec {
    FleetSpec {
        apps: vec![table5::k9mail(), table5::omninotes(), table5::andstatus()],
        profiles: DeviceProfile::default_set(),
        devices_per_app: 3,
        executions_per_action: 2,
        root_seed: 23,
        threads: 3,
        config: HangDoctorConfig::default(),
        apidb_year: 2017,
        faults,
    }
}

#[test]
fn clean_loopback_matches_in_process_merge_byte_for_byte() {
    let outcome = run_fleet_telemetry(&spec(FaultConfig::none()), &NetFaultConfig::none(), 50);
    assert!(
        outcome.byte_identical,
        "networked:\n{}\nreference:\n{}",
        outcome.report.to_json(),
        outcome.reference.to_json()
    );
    // Every job uploaded exactly one batch; none were dropped or
    // double-applied.
    assert_eq!(
        outcome.server.ingest.batches_applied as usize,
        outcome.fleet.merged.jobs
    );
    assert_eq!(outcome.server.ingest.duplicates_absorbed, 0);
    assert_eq!(outcome.server.nacks_sent, 0);
    // Clean runs must not grow chaos accounting.
    assert!(outcome.fleet.chaos.is_none());
    assert_eq!(outcome.report.devices, outcome.fleet.merged.jobs);
}

#[test]
fn chaos_loopback_stays_byte_identical_with_duplicates_absorbed() {
    let outcome = run_fleet_telemetry(
        &spec(FaultConfig::chaos(0.2)),
        &NetFaultConfig::chaos(0.5),
        50,
    );
    assert!(
        outcome.byte_identical,
        "chaos broke the differential:\nnetworked:\n{}\nreference:\n{}",
        outcome.report.to_json(),
        outcome.reference.to_json()
    );

    let chaos = outcome.fleet.chaos.as_ref().expect("chaos accounting");
    assert!(
        chaos.net.frames_duplicated > 0,
        "a 50% duplicate rate over 9 devices should fire at least once"
    );
    // Every injected duplicate the server saw was absorbed, not merged
    // twice (the byte-identity above is the stronger form of this).
    assert_eq!(
        outcome.server.ingest.duplicates_absorbed,
        chaos.net.duplicates_absorbed
    );
    assert_eq!(
        outcome.server.ingest.batches_applied as usize,
        outcome.fleet.merged.jobs
    );
}

/// The chaos transport tally is deterministic: same spec, same bytes —
/// scheduling, retries, and server timing cannot perturb it.
#[test]
fn chaos_net_tally_is_deterministic() {
    let run = || {
        let outcome = run_fleet_telemetry(
            &spec(FaultConfig::chaos(0.1)),
            &NetFaultConfig::chaos(0.4),
            50,
        );
        assert!(outcome.byte_identical);
        serde_json::to_string(&outcome.fleet.chaos.expect("chaos accounting").net).unwrap()
    };
    assert_eq!(run(), run());
}
