//! Golden fixture: the aggregated top-N hang groups over the Table 1
//! corpus, produced by the full loopback telemetry path (uploader →
//! TCP server → aggregation store → query) and checked in byte-for-
//! byte. Any drift means the cross-device aggregation — or the wire
//! schema feeding it — changed.
//!
//! Regenerate (only when a deliberate behavior change lands) with:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test -p hd-telemetry --test golden
//! ```

use hangdoctor::HangDoctorConfig;
use hd_faults::{FaultConfig, NetFaultConfig};
use hd_fleet::{DeviceProfile, FleetSpec};
use hd_telemetry::run_fleet_telemetry;

fn spec() -> FleetSpec {
    FleetSpec {
        apps: hd_appmodel::corpus::table1::apps(),
        profiles: DeviceProfile::default_set(),
        devices_per_app: 2,
        executions_per_action: 2,
        root_seed: 17,
        threads: 4,
        config: HangDoctorConfig::default(),
        apidb_year: 2017,
        faults: FaultConfig::none(),
    }
}

const FIXTURE: &str = include_str!("fixtures/telemetry_table1.json");

fn check_or_regen(rendered: String, fixture: &str, name: &str) {
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
        std::fs::write(path, rendered).expect("write fixture");
        return;
    }
    assert_eq!(
        rendered, fixture,
        "{name} drifted from the golden fixture; if the change is \
         intentional, regenerate with GOLDEN_REGEN=1"
    );
}

#[test]
fn table1_aggregation_matches_checked_in_fixture() {
    let outcome = run_fleet_telemetry(&spec(), &NetFaultConfig::none(), 25);
    assert!(
        outcome.byte_identical,
        "loopback path diverged from the in-process merge"
    );
    let json = serde_json::to_string_pretty(&outcome.report).expect("serializable report");
    check_or_regen(format!("{json}\n"), FIXTURE, "telemetry_table1.json");
}
