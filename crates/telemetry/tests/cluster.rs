//! The cluster differential: partitioning ingestion across N nodes and
//! folding their exported states through the coordinator must reproduce
//! the single-store merge **byte-for-byte** — clean, under transport
//! chaos, and across deterministic kill-and-restart schedules.

use hangdoctor::HangDoctorConfig;
use hd_appmodel::corpus::table5;
use hd_faults::{FaultConfig, NetFaultConfig, NodeCrashPlan};
use hd_fleet::{DeviceProfile, FleetSpec};
use hd_telemetry::run_cluster_telemetry;

fn spec(faults: FaultConfig) -> FleetSpec {
    FleetSpec {
        apps: vec![table5::k9mail(), table5::omninotes(), table5::andstatus()],
        profiles: DeviceProfile::default_set(),
        devices_per_app: 3,
        executions_per_action: 2,
        root_seed: 29,
        threads: 3,
        config: HangDoctorConfig::default(),
        apidb_year: 2017,
        faults,
    }
}

#[test]
fn three_node_fold_matches_single_store_byte_for_byte() {
    let outcome = run_cluster_telemetry(
        &spec(FaultConfig::none()),
        &NetFaultConfig::none(),
        3,
        50,
        &NodeCrashPlan::none(1),
    );
    assert!(
        outcome.byte_identical,
        "cluster fold diverged:\ncluster:\n{}\nreference:\n{}",
        outcome.report.to_json(),
        outcome.reference.to_json()
    );
    assert!(outcome.state_identical, "raw folded state diverged");
    assert_eq!(outcome.nodes, 3);
    assert!(outcome.crashes.is_empty());
    assert_eq!(outcome.batches_recovered, 0);
    // Partitioning is real: with 9 devices over 3 nodes, more than one
    // node must have ingested something.
    let busy = outcome
        .node_stats
        .iter()
        .filter(|s| s.ingest.batches_applied > 0)
        .count();
    assert!(busy > 1, "all batches landed on one node");
}

#[test]
fn kill_and_restart_mid_upload_keeps_the_fold_identical() {
    let outcome = run_cluster_telemetry(
        &spec(FaultConfig::none()),
        &NetFaultConfig::none(),
        3,
        50,
        // Three waves; node 1 is killed and WAL-restarted after wave 0.
        &NodeCrashPlan::pinned(3, 0, 1),
    );
    assert!(
        outcome.byte_identical,
        "restart broke the fold:\ncluster:\n{}\nreference:\n{}",
        outcome.report.to_json(),
        outcome.reference.to_json()
    );
    assert!(outcome.state_identical);
    assert_eq!(outcome.crashes, vec![(0, 1)]);
    // The victim had ingested wave-0 batches before dying; they must
    // have come back through WAL replay, not been silently lost.
    assert!(
        outcome.batches_recovered > 0,
        "the killed node replayed nothing — the differential passed vacuously"
    );
}

#[test]
fn chaos_plus_random_crashes_stay_identical_with_duplicates_absorbed() {
    let outcome = run_cluster_telemetry(
        &spec(FaultConfig::none()),
        &NetFaultConfig::chaos(0.5),
        3,
        50,
        &NodeCrashPlan::for_cluster(1.0, 3, 4, 29),
    );
    assert!(
        outcome.byte_identical,
        "chaos broke the fold:\ncluster:\n{}\nreference:\n{}",
        outcome.report.to_json(),
        outcome.reference.to_json()
    );
    assert!(outcome.state_identical);
    assert!(
        !outcome.crashes.is_empty(),
        "a certain crash rate must fire at least once"
    );
    let duplicates: u64 = outcome
        .node_stats
        .iter()
        .map(|s| s.ingest.duplicates_absorbed)
        .sum();
    assert!(
        duplicates > 0,
        "a 50% duplicate rate over 9 devices should fire at least once"
    );
}

/// Same spec, same bytes: the whole cluster run — routing, chaos
/// streams, crash schedule, recovery — is deterministic.
#[test]
fn cluster_outcome_is_deterministic() {
    let run = || {
        let outcome = run_cluster_telemetry(
            &spec(FaultConfig::none()),
            &NetFaultConfig::chaos(0.3),
            2,
            25,
            &NodeCrashPlan::pinned(2, 0, 0),
        );
        assert!(outcome.byte_identical && outcome.state_identical);
        (
            outcome.report.to_json(),
            outcome.crashes.clone(),
            outcome.batches_recovered,
        )
    };
    assert_eq!(run(), run());
}
