//! Property tests of the control-dialect frame codec: arbitrary
//! `hang-doctor/control/v1` requests and responses round-trip
//! byte-exactly, and no amount of truncation or corruption can panic
//! the decoder — the same typed-[`FrameError`] contract the telemetry
//! dialect pins in `frame_proptest.rs`.

use proptest::prelude::*;

use hangdoctor::{ActionState, SymptomThresholds};
use hd_control::{
    CohortHealth, ControlRequest, ControlResponse, Directives, RolloutSpec, RolloutStage,
    RolloutStatusInfo, StackDump, SyncReport,
};
use hd_telemetry::{
    decode_frame, encode_frame_in, FrameError, Request, Response, WireVersion, MAGIC,
};

const APPS: [&str; 3] = ["k9mail", "omni-notes", "a better camera"];
const FRAMES: [&str; 3] = [
    "android.os.Looper.loop",
    "k9mail#onRefresh.dispatch",
    "java.io.File.read (MailStore.java:42)",
];

fn arb_state() -> impl Strategy<Value = ActionState> {
    prop_oneof![
        Just(ActionState::Uncategorized),
        Just(ActionState::Normal),
        Just(ActionState::Suspicious),
        Just(ActionState::HangBug),
    ]
}

fn arb_thresholds() -> impl Strategy<Value = SymptomThresholds> {
    (0u32..2_000, 0u32..2_000, 0u32..2_000).prop_map(|(cs, tc, pf)| SymptomThresholds {
        context_switch_diff: cs as f64 / 4.0,
        task_clock_diff: tc as f64 * 1e5,
        page_fault_diff: pf as f64 / 2.0,
    })
}

fn arb_stack() -> impl Strategy<Value = StackDump> {
    (
        1u32..6,
        0usize..3,
        0u64..8,
        proptest::collection::vec(0usize..3, 0..4),
        1u64..900_000_000,
    )
        .prop_map(|(device, app_idx, uid, frames, response_ns)| StackDump {
            device,
            action: format!("{}#onAction", APPS[app_idx]),
            uid,
            frames: frames.into_iter().map(|f| FRAMES[f].to_string()).collect(),
            response_ns,
        })
}

fn arb_health() -> impl Strategy<Value = CohortHealth> {
    (0u64..500, 0u64..50, 0u64..50).prop_map(|(uploads, nacks, aborts)| CohortHealth {
        uploads,
        nacks,
        aborts,
    })
}

fn arb_opt_stack() -> impl Strategy<Value = Option<StackDump>> {
    prop_oneof![Just(None), arb_stack().prop_map(Some)]
}

fn arb_sync() -> impl Strategy<Value = SyncReport> {
    (
        1u32..6,
        0usize..3,
        proptest::collection::vec((0u64..8, arb_state(), 0u32..30), 0..6),
        arb_opt_stack(),
        arb_health(),
    )
        .prop_map(|(device, app_idx, states, stack, health)| SyncReport {
            device,
            app: APPS[app_idx].to_string(),
            states,
            stack,
            health,
        })
}

fn arb_stage() -> impl Strategy<Value = RolloutStage> {
    prop_oneof![
        Just(RolloutStage::Canary),
        Just(RolloutStage::Expanded),
        Just(RolloutStage::Full),
    ]
}

fn arb_request() -> impl Strategy<Value = ControlRequest> {
    prop_oneof![
        arb_sync().prop_map(ControlRequest::Sync),
        (1u32..9).prop_map(|device| ControlRequest::QueryState { device }),
        (1u32..9).prop_map(|device| ControlRequest::PullStack { device }),
        (0usize..3, any::<bool>()).prop_map(|(app_idx, enabled)| {
            ControlRequest::ToggleDiagnosis {
                app: APPS[app_idx].to_string(),
                enabled,
            }
        }),
        (arb_thresholds(), arb_thresholds()).prop_map(|(thresholds, baseline)| {
            ControlRequest::PushThresholds(RolloutSpec {
                thresholds,
                baseline,
            })
        }),
        arb_stage().prop_map(|stage| ControlRequest::AdvanceRollout { stage }),
        Just(ControlRequest::RolloutStatus),
    ]
}

fn arb_status() -> impl Strategy<Value = RolloutStatusInfo> {
    (
        arb_stage(),
        any::<bool>(),
        0u64..100,
        0u64..100,
        0u64..1_000,
        0u64..1_000,
    )
        .prop_map(
            |(stage, rolled_back, cohort_devices, cohort_bad, rest_devices, rest_bad)| {
                RolloutStatusInfo {
                    stage: if rolled_back {
                        "rolled-back".to_string()
                    } else {
                        stage.name().to_string()
                    },
                    rolled_back,
                    cohort_devices,
                    cohort_bad,
                    rest_devices,
                    rest_bad,
                }
            },
        )
}

fn arb_response() -> impl Strategy<Value = ControlResponse> {
    prop_oneof![
        (
            prop_oneof![Just(None), arb_thresholds().prop_map(Some)],
            any::<bool>()
        )
            .prop_map(|(thresholds, diagnosis_enabled)| {
                ControlResponse::Directives(Directives {
                    thresholds,
                    diagnosis_enabled,
                })
            }),
        (
            1u32..9,
            proptest::collection::vec((0u64..8, arb_state(), 0u32..30), 0..6)
        )
            .prop_map(|(device, states)| ControlResponse::StateTable { device, states }),
        (1u32..9, arb_opt_stack())
            .prop_map(|(device, stack)| ControlResponse::Stack { device, stack }),
        Just(ControlResponse::Ok),
        arb_status().prop_map(ControlResponse::Rollout),
        (0usize..3, 1u32..9).prop_map(|(app_idx, device)| {
            ControlResponse::Err(format!("unknown device {device} for {}", APPS[app_idx]))
        }),
    ]
}

proptest! {
    /// encode → decode → encode is the identity on bytes for every
    /// control request, in the control dialect's own frames.
    #[test]
    fn control_requests_round_trip_byte_exact(creq in arb_request()) {
        let frame = encode_frame_in(WireVersion::Control, &Request::Control(creq));
        let decoded: Request = match decode_frame(&frame) {
            Ok(r) => r,
            Err(e) => return Err(format!("decode failed: {e}")),
        };
        prop_assert_eq!(encode_frame_in(WireVersion::Control, &decoded), frame);
    }

    /// Same property for the response direction.
    #[test]
    fn control_responses_round_trip_byte_exact(cresp in arb_response()) {
        let frame = encode_frame_in(WireVersion::Control, &Response::Control(cresp));
        let decoded: Response = match decode_frame(&frame) {
            Ok(r) => r,
            Err(e) => return Err(format!("decode failed: {e}")),
        };
        prop_assert_eq!(encode_frame_in(WireVersion::Control, &decoded), frame);
    }

    /// Every strict prefix of a valid control frame decodes to a typed
    /// truncation — never a panic, never a bogus success.
    #[test]
    fn truncation_yields_typed_errors(creq in arb_request(), frac in 0u32..100) {
        let frame = encode_frame_in(WireVersion::Control, &Request::Control(creq));
        let cut = (frame.len() - 1) * frac as usize / 100;
        match decode_frame::<Request>(&frame[..cut]) {
            Err(FrameError::Truncated { needed, got }) => {
                prop_assert!(got < needed, "got {got} >= needed {needed}");
            }
            Ok(_) => return Err(format!("decoded from a {cut}-byte prefix")),
            Err(other) => return Err(format!("unexpected error at cut {cut}: {other:?}")),
        }
    }

    /// Flipping any single byte never panics the decoder: the result is
    /// either a typed error or (e.g. for a flip inside a string) a
    /// different-but-valid payload.
    #[test]
    fn corruption_never_panics(creq in arb_request(), pos in 0u32..10_000, delta in 1u8..255) {
        let mut frame = encode_frame_in(WireVersion::Control, &Request::Control(creq));
        let idx = pos as usize % frame.len();
        frame[idx] = frame[idx].wrapping_add(delta);
        match decode_frame::<Request>(&frame) {
            Ok(_) => {}
            Err(FrameError::BadMagic(m)) => {
                prop_assert!(idx < 4, "BadMagic from flip at {idx}: {m:?}");
                prop_assert_ne!(&m, &MAGIC);
            }
            Err(FrameError::Truncated { .. })
            | Err(FrameError::TooLarge { .. })
            | Err(FrameError::Schema(_))
            | Err(FrameError::Json(_)) => {}
            Err(FrameError::Io(e)) => return Err(format!("Io error without I/O: {e}")),
        }
    }
}
