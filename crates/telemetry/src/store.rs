//! The cross-device aggregation store.
//!
//! Holds the backend's entire state: per-app hang bug reports merged
//! with the semilattice join from `hangdoctor`, the set of `(app,
//! device)` pairs that have contributed, and the fingerprints of every
//! batch ever applied. Ingest is **idempotent**: a batch whose
//! fingerprint was seen before is absorbed without touching the merged
//! state, so at-least-once delivery (uploader retries, duplicated
//! frames, replayed spools) converges to exactly the same store as
//! exactly-once delivery.
//!
//! Because the join is associative, commutative, and idempotent, the
//! final state is independent of batch arrival order — the property the
//! telemetry differential test leans on.

use std::collections::{BTreeMap, BTreeSet, HashSet};

use hangdoctor::HangBugReport;
use serde::{Deserialize, Serialize};

use crate::fingerprint::batch_fingerprint;
use crate::report::TelemetryReport;
use crate::wire::UploadBatch;

/// Ingest-side counters, exported with server stats.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestStats {
    /// Batches applied to the merged state.
    pub batches_applied: u64,
    /// Batches recognized as duplicates and absorbed.
    pub duplicates_absorbed: u64,
    /// Individual reports carried by applied batches.
    pub reports_ingested: u64,
}

/// What [`AggregationStore::ingest`] decided about one batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IngestOutcome {
    /// The batch's content fingerprint.
    pub fingerprint: u64,
    /// Whether the batch was absorbed as a duplicate.
    pub duplicate: bool,
}

/// The aggregation backend state. Deterministic containers throughout
/// (`BTreeMap`/`BTreeSet` plus the sorted-serializing report maps), so
/// two stores with the same logical content serialize identically.
#[derive(Clone, Debug, Default)]
pub struct AggregationStore {
    apps: BTreeMap<String, HangBugReport>,
    devices: BTreeSet<(String, u32)>,
    seen: HashSet<u64>,
    stats: IngestStats,
}

impl AggregationStore {
    /// Creates an empty store.
    pub fn new() -> AggregationStore {
        AggregationStore::default()
    }

    /// Applies one upload batch, deduplicating on its content
    /// fingerprint.
    pub fn ingest(&mut self, batch: &UploadBatch) -> IngestOutcome {
        let fingerprint = batch_fingerprint(batch);
        if !self.seen.insert(fingerprint) {
            self.stats.duplicates_absorbed += 1;
            return IngestOutcome {
                fingerprint,
                duplicate: true,
            };
        }
        self.devices.insert((batch.app.clone(), batch.device));
        for item in &batch.items {
            let report = item.report();
            self.apps
                .entry(report.app.clone())
                .or_insert_with(|| HangBugReport::new(&report.app))
                .merge(report);
            self.stats.reports_ingested += 1;
        }
        self.stats.batches_applied += 1;
        IngestOutcome {
            fingerprint,
            duplicate: false,
        }
    }

    /// Number of distinct `(app, device)` pairs that have contributed.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Number of apps with merged state.
    pub fn app_count(&self) -> usize {
        self.apps.len()
    }

    /// Ingest counters so far.
    pub fn stats(&self) -> &IngestStats {
        &self.stats
    }

    /// The top-N ranked cross-device report over everything ingested.
    pub fn report(&self, top_n: usize) -> TelemetryReport {
        TelemetryReport::build(
            self.apps.iter().map(|(app, r)| (app.as_str(), r)),
            self.devices.len(),
            top_n,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::TelemetryItem;
    use hangdoctor::{RootCause, RootKind};
    use hd_simrt::ActionUid;

    fn batch(app: &str, device: u32, seq: u64, hangs: u64) -> UploadBatch {
        let mut r = HangBugReport::new(app);
        let uid = ActionUid(3);
        for _ in 0..10 {
            r.note_execution(device, uid, "onScroll");
        }
        for _ in 0..hangs {
            r.record_bug(
                device,
                uid,
                &RootCause {
                    symbol: "android.database.sqlite.SQLiteDatabase.query".to_string(),
                    file: "Feed.java".to_string(),
                    line: 77,
                    occurrence_factor: 1.0,
                    kind: RootKind::BlockingApi,
                },
                90_000_000,
            );
        }
        UploadBatch {
            app: app.to_string(),
            device,
            seq,
            items: vec![TelemetryItem::Report(r)],
        }
    }

    #[test]
    fn ingest_merges_across_devices() {
        let mut store = AggregationStore::new();
        assert!(!store.ingest(&batch("app", 1, 0, 2)).duplicate);
        assert!(!store.ingest(&batch("app", 2, 0, 3)).duplicate);
        assert_eq!(store.device_count(), 2);
        assert_eq!(store.app_count(), 1);
        let t = store.report(10);
        assert_eq!(t.groups.len(), 1);
        assert_eq!(t.groups[0].devices, 2);
        assert_eq!(t.groups[0].hangs, 5);
    }

    #[test]
    fn duplicate_batches_are_absorbed() {
        let mut store = AggregationStore::new();
        let b = batch("app", 1, 0, 2);
        let first = store.ingest(&b);
        let second = store.ingest(&b);
        assert!(!first.duplicate);
        assert!(second.duplicate);
        assert_eq!(first.fingerprint, second.fingerprint);
        assert_eq!(store.stats().duplicates_absorbed, 1);
        // The merged state is exactly the single-delivery state.
        let mut once = AggregationStore::new();
        once.ingest(&b);
        assert_eq!(store.report(10).to_json(), once.report(10).to_json());
    }

    #[test]
    fn arrival_order_cannot_change_the_report() {
        let batches = [
            batch("a", 1, 0, 1),
            batch("a", 2, 0, 4),
            batch("b", 3, 0, 2),
        ];
        let mut fwd = AggregationStore::new();
        let mut rev = AggregationStore::new();
        for b in &batches {
            fwd.ingest(b);
        }
        for b in batches.iter().rev() {
            rev.ingest(b);
        }
        assert_eq!(fwd.report(10).to_json(), rev.report(10).to_json());
    }
}
