//! The cross-device aggregation store.
//!
//! Holds a node's (or one shard's) aggregation state: per-app hang bug
//! reports merged with the semilattice join from `hangdoctor`, the set
//! of `(app, device)` pairs that have contributed, and the fingerprints
//! of every batch ever applied. Ingest is **idempotent**: a batch whose
//! fingerprint was seen before is absorbed without touching the merged
//! state, so at-least-once delivery (uploader retries, duplicated
//! frames, replayed spools, WAL replay after a crash) converges to
//! exactly the same store as exactly-once delivery.
//!
//! Because the join is associative, commutative, and idempotent, the
//! final state is independent of batch arrival order — and because the
//! join is a semilattice, the state is a CRDT: two stores that ingested
//! *different partitions* of the same batch set merge (via
//! [`AggregationStore::absorb`]) into exactly the store a single node
//! would have built. The cluster coordinator, WAL replay, and node
//! rejoin are all the same fold.
//!
//! [`StoreSnapshot`] is the store's canonical serialized form — used
//! both as the WAL compaction snapshot on disk and as the
//! `Export`/`State` wire exchange a cluster coordinator folds.

use std::collections::{BTreeMap, BTreeSet, HashSet};

use hangdoctor::HangBugReport;
use serde::{Deserialize, Serialize};

use crate::fingerprint::batch_fingerprint;
use crate::report::TelemetryReport;
use crate::wire::UploadBatch;

/// Schema tag of [`StoreSnapshot`] (disk snapshots and `State` wire
/// bodies).
pub const SNAPSHOT_SCHEMA: &str = "hang-doctor/telemetry-snapshot/v1";

/// Ingest-side counters, exported with server stats.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestStats {
    /// Batches applied to the merged state.
    pub batches_applied: u64,
    /// Batches recognized as duplicates and absorbed.
    pub duplicates_absorbed: u64,
    /// Individual reports carried by applied batches.
    pub reports_ingested: u64,
}

impl IngestStats {
    /// Adds another shard's (or node's) counters into this one.
    pub fn merge(&mut self, other: &IngestStats) {
        self.batches_applied += other.batches_applied;
        self.duplicates_absorbed += other.duplicates_absorbed;
        self.reports_ingested += other.reports_ingested;
    }
}

/// What [`AggregationStore::ingest`] decided about one batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IngestOutcome {
    /// The batch's content fingerprint.
    pub fingerprint: u64,
    /// Whether the batch was absorbed as a duplicate.
    pub duplicate: bool,
}

/// The canonical serialized form of an [`AggregationStore`] — the WAL
/// compaction snapshot on disk, and the body of the wire `State`
/// response a cluster coordinator folds. All containers render sorted,
/// so two stores with the same logical content serialize identically.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StoreSnapshot {
    /// Snapshot schema tag ([`SNAPSHOT_SCHEMA`]).
    pub schema: String,
    /// Per-app merged hang bug reports, sorted by app.
    pub apps: Vec<(String, HangBugReport)>,
    /// Contributing `(app, device)` pairs, sorted.
    pub devices: Vec<(String, u32)>,
    /// Fingerprints of every applied batch, sorted.
    pub seen: Vec<u64>,
    /// Ingest counters at snapshot time.
    pub stats: IngestStats,
}

/// The aggregation backend state. Deterministic containers throughout
/// (`BTreeMap`/`BTreeSet` plus the sorted-serializing report maps), so
/// two stores with the same logical content serialize identically.
#[derive(Clone, Debug, Default)]
pub struct AggregationStore {
    apps: BTreeMap<String, HangBugReport>,
    devices: BTreeSet<(String, u32)>,
    seen: HashSet<u64>,
    stats: IngestStats,
}

impl AggregationStore {
    /// Creates an empty store.
    pub fn new() -> AggregationStore {
        AggregationStore::default()
    }

    /// Applies one upload batch, deduplicating on its content
    /// fingerprint.
    pub fn ingest(&mut self, batch: &UploadBatch) -> IngestOutcome {
        let fingerprint = batch_fingerprint(batch);
        self.ingest_prehashed(batch, fingerprint)
    }

    /// Whether a batch with this fingerprint was already applied.
    pub fn contains(&self, fingerprint: u64) -> bool {
        self.seen.contains(&fingerprint)
    }

    /// Applies one upload batch whose fingerprint the caller already
    /// computed — the hot ingest path computes it once and shares it
    /// with the WAL, so the batch is never re-serialized.
    pub fn ingest_prehashed(&mut self, batch: &UploadBatch, fingerprint: u64) -> IngestOutcome {
        if !self.seen.insert(fingerprint) {
            self.stats.duplicates_absorbed += 1;
            return IngestOutcome {
                fingerprint,
                duplicate: true,
            };
        }
        self.devices.insert((batch.app.clone(), batch.device));
        for item in &batch.items {
            let report = item.report();
            self.apps
                .entry(report.app.clone())
                .or_insert_with(|| HangBugReport::new(&report.app))
                .merge(report);
            self.stats.reports_ingested += 1;
        }
        self.stats.batches_applied += 1;
        IngestOutcome {
            fingerprint,
            duplicate: false,
        }
    }

    /// Number of distinct `(app, device)` pairs that have contributed.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Number of apps with merged state.
    pub fn app_count(&self) -> usize {
        self.apps.len()
    }

    /// Ingest counters so far.
    pub fn stats(&self) -> &IngestStats {
        &self.stats
    }

    /// The top-N ranked cross-device report over everything ingested.
    pub fn report(&self, top_n: usize) -> TelemetryReport {
        TelemetryReport::build(
            self.apps.iter().map(|(app, r)| (app.as_str(), r)),
            self.devices.len(),
            top_n,
        )
    }

    /// Serializes the full store state canonically.
    pub fn snapshot(&self) -> StoreSnapshot {
        let mut seen: Vec<u64> = self.seen.iter().copied().collect();
        seen.sort_unstable();
        StoreSnapshot {
            schema: SNAPSHOT_SCHEMA.to_string(),
            apps: self
                .apps
                .iter()
                .map(|(app, r)| (app.clone(), r.clone()))
                .collect(),
            devices: self.devices.iter().cloned().collect(),
            seen,
            stats: self.stats.clone(),
        }
    }

    /// Rebuilds a store from a snapshot.
    pub fn from_snapshot(snap: &StoreSnapshot) -> AggregationStore {
        AggregationStore {
            apps: snap.apps.iter().cloned().collect(),
            devices: snap.devices.iter().cloned().collect(),
            seen: snap.seen.iter().copied().collect(),
            stats: snap.stats.clone(),
        }
    }

    /// CRDT merge: folds another store's state (typically a different
    /// shard's or node's partition) into this one. Associative,
    /// commutative, and idempotent over semilattice elements, so a
    /// coordinator folding N partitions in any order reproduces the
    /// single-node store exactly.
    pub fn absorb(&mut self, snap: &StoreSnapshot) {
        for (app, report) in &snap.apps {
            self.apps
                .entry(app.clone())
                .or_insert_with(|| HangBugReport::new(app))
                .merge(report);
        }
        self.devices.extend(snap.devices.iter().cloned());
        self.seen.extend(snap.seen.iter().copied());
        self.stats.merge(&snap.stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::TelemetryItem;
    use hangdoctor::{RootCause, RootKind};
    use hd_simrt::ActionUid;

    fn batch(app: &str, device: u32, seq: u64, hangs: u64) -> UploadBatch {
        let mut r = HangBugReport::new(app);
        let uid = ActionUid(3);
        for _ in 0..10 {
            r.note_execution(device, uid, "onScroll");
        }
        for _ in 0..hangs {
            r.record_bug(
                device,
                uid,
                &RootCause {
                    symbol: "android.database.sqlite.SQLiteDatabase.query".to_string(),
                    file: "Feed.java".to_string(),
                    line: 77,
                    occurrence_factor: 1.0,
                    kind: RootKind::BlockingApi,
                },
                90_000_000,
            );
        }
        UploadBatch {
            app: app.to_string(),
            device,
            seq,
            items: vec![TelemetryItem::Report(r)],
        }
    }

    #[test]
    fn ingest_merges_across_devices() {
        let mut store = AggregationStore::new();
        assert!(!store.ingest(&batch("app", 1, 0, 2)).duplicate);
        assert!(!store.ingest(&batch("app", 2, 0, 3)).duplicate);
        assert_eq!(store.device_count(), 2);
        assert_eq!(store.app_count(), 1);
        let t = store.report(10);
        assert_eq!(t.groups.len(), 1);
        assert_eq!(t.groups[0].devices, 2);
        assert_eq!(t.groups[0].hangs, 5);
    }

    #[test]
    fn duplicate_batches_are_absorbed() {
        let mut store = AggregationStore::new();
        let b = batch("app", 1, 0, 2);
        let first = store.ingest(&b);
        let second = store.ingest(&b);
        assert!(!first.duplicate);
        assert!(second.duplicate);
        assert_eq!(first.fingerprint, second.fingerprint);
        assert_eq!(store.stats().duplicates_absorbed, 1);
        // The merged state is exactly the single-delivery state.
        let mut once = AggregationStore::new();
        once.ingest(&b);
        assert_eq!(store.report(10).to_json(), once.report(10).to_json());
    }

    #[test]
    fn arrival_order_cannot_change_the_report() {
        let batches = [
            batch("a", 1, 0, 1),
            batch("a", 2, 0, 4),
            batch("b", 3, 0, 2),
        ];
        let mut fwd = AggregationStore::new();
        let mut rev = AggregationStore::new();
        for b in &batches {
            fwd.ingest(b);
        }
        for b in batches.iter().rev() {
            rev.ingest(b);
        }
        assert_eq!(fwd.report(10).to_json(), rev.report(10).to_json());
    }

    #[test]
    fn snapshot_round_trips_the_full_state() {
        let mut store = AggregationStore::new();
        store.ingest(&batch("a", 1, 0, 2));
        store.ingest(&batch("b", 2, 0, 1));
        let snap = store.snapshot();
        assert_eq!(snap.schema, SNAPSHOT_SCHEMA);
        let back = AggregationStore::from_snapshot(&snap);
        assert_eq!(back.report(10).to_json(), store.report(10).to_json());
        assert_eq!(back.stats(), store.stats());
        // Canonical: snapshotting the restored store is byte-identical.
        assert_eq!(
            serde_json::to_string(&back.snapshot()).unwrap(),
            serde_json::to_string(&snap).unwrap()
        );
        // Idempotency state survives: re-ingesting a snapshotted batch
        // is a duplicate.
        let mut back = back;
        assert!(back.ingest(&batch("a", 1, 0, 2)).duplicate);
    }

    #[test]
    fn absorbing_partitions_equals_single_node_ingest() {
        let batches = [
            batch("a", 1, 0, 1),
            batch("a", 2, 0, 4),
            batch("b", 3, 0, 2),
            batch("b", 4, 0, 3),
        ];
        // Single node ingests everything.
        let mut single = AggregationStore::new();
        for b in &batches {
            single.ingest(b);
        }
        // Two partitions split by device parity, folded either order.
        let mut left = AggregationStore::new();
        let mut right = AggregationStore::new();
        for b in &batches {
            if b.device % 2 == 0 {
                left.ingest(b);
            } else {
                right.ingest(b);
            }
        }
        let mut fold_lr = AggregationStore::new();
        fold_lr.absorb(&left.snapshot());
        fold_lr.absorb(&right.snapshot());
        let mut fold_rl = AggregationStore::new();
        fold_rl.absorb(&right.snapshot());
        fold_rl.absorb(&left.snapshot());
        assert_eq!(fold_lr.report(10).to_json(), single.report(10).to_json());
        assert_eq!(fold_rl.report(10).to_json(), single.report(10).to_json());
        // Idempotent: absorbing a partition twice changes nothing.
        fold_lr.absorb(&left.snapshot());
        assert_eq!(fold_lr.report(10).to_json(), single.report(10).to_json());
    }
}
