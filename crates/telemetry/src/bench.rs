//! Loopback load benchmark — the schema of `BENCH_telemetry.json`.
//!
//! Hammers a loopback server with concurrent synthetic uploaders, each
//! keeping a **window** of batches in flight on one connection
//! ([`PipelinedUploader`]). Pipelining is what moved the bench from
//! ~29k reports/s (one synchronous round trip per batch) past 100k:
//! on a small machine the bottleneck is syscalls and turnaround, not
//! CPU-parallel ingest, so the win comes from many frames per read,
//! batch decode on the server ([`drain_frames`](crate::wire::drain_frames)),
//! and ACKs streaming back while later batches are still in the socket.
//!
//! The backpressure contract still holds under pipelining: a queue-full
//! NACK answers in request order, the client re-sends exactly that
//! batch, and every unique batch lands exactly once (the liveness test
//! below runs a deliberately tiny queue). Per-batch upload latency is
//! measured first-send → final-ACK, so retries count against p50/p99.

use std::collections::VecDeque;
use std::net::SocketAddr;
use std::thread;
use std::time::{Duration, Instant};

use hangdoctor::{HangBugReport, RootCause, RootKind};
use hd_simrt::ActionUid;
use serde::{Deserialize, Serialize};

use crate::client::{PipelinedUploader, Uploader};
use crate::error::TelemetryError;
use crate::server::TelemetryServer;
use crate::wire::{TelemetryItem, UploadBatch};

/// Schema tag of `BENCH_telemetry.json`.
pub const BENCH_SCHEMA: &str = "hang-doctor/telemetry-bench/v2";

/// Bench parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BenchSpec {
    /// Concurrent uploader threads.
    pub clients: usize,
    /// Batches each client delivers.
    pub batches_per_client: usize,
    /// Reports packed into each batch.
    pub reports_per_batch: usize,
    /// Batches each client keeps in flight on its connection.
    pub window: usize,
    /// Server shard workers.
    pub shards: usize,
    /// Per-shard queue depth.
    pub queue_capacity: usize,
    /// Server I/O workers.
    pub io_workers: usize,
}

impl Default for BenchSpec {
    fn default() -> BenchSpec {
        BenchSpec {
            clients: 2,
            batches_per_client: 256,
            reports_per_batch: 32,
            window: 32,
            shards: 4,
            queue_capacity: 256,
            io_workers: 2,
        }
    }
}

/// Machine-readable result of one loopback load run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TelemetryBench {
    /// Schema tag, bumped on incompatible changes.
    pub schema: String,
    /// Concurrent uploader threads.
    pub clients: usize,
    /// Pipeline window per client.
    pub window: usize,
    /// Server shard workers.
    pub shards: usize,
    /// Per-shard bounded queue depth.
    pub queue_capacity: usize,
    /// Server I/O workers.
    pub io_workers: usize,
    /// Unique batches delivered.
    pub batches: u64,
    /// Individual hang reports ingested.
    pub reports: u64,
    /// Queue-full NACKs the server issued.
    pub nacks: u64,
    /// Client re-sends (every NACK'd batch was eventually accepted —
    /// the liveness half of the backpressure contract).
    pub retries: u64,
    /// End-to-end wall time, ms.
    pub wall_ms: u64,
    /// Ingest throughput, reports per wall second.
    pub reports_per_second: f64,
    /// Median per-batch ingest latency, µs (first send → final ACK,
    /// retries included).
    pub p50_upload_us: u64,
    /// 99th-percentile per-batch ingest latency, µs.
    pub p99_upload_us: u64,
}

/// Builds one synthetic batch. Content varies with `(client, seq)` so
/// every batch has a distinct fingerprint, while staying deterministic
/// run-to-run.
pub fn synthetic_batch(client: usize, seq: u64, reports_per_batch: usize) -> UploadBatch {
    let app = format!("bench-app-{}", client % 4);
    let device = client as u32 + 1;
    let mut items = Vec::with_capacity(reports_per_batch);
    for r in 0..reports_per_batch {
        let mut report = HangBugReport::new(&app);
        let uid = ActionUid(r as u64 % 3);
        for _ in 0..4 {
            report.note_execution(device, uid, "onRefresh");
        }
        report.record_bug(
            device,
            uid,
            &RootCause {
                symbol: format!("java.net.Socket.connect#{}", r % 5),
                file: "Sync.java".to_string(),
                line: 100 + (r as u32 % 5),
                occurrence_factor: 1.0,
                kind: RootKind::BlockingApi,
            },
            (50 + seq % 50) * 1_000_000,
        );
        items.push(TelemetryItem::Report(report));
    }
    UploadBatch {
        app,
        device,
        seq,
        items,
    }
}

/// One pipelined client: keep up to `window` pre-encoded batches in
/// flight, retry whichever batch a NACK answers (responses are FIFO per
/// connection, so it is always the oldest in-flight one).
fn client_run(
    addr: SocketAddr,
    client: usize,
    frames: &[Vec<u8>],
    spec: &BenchSpec,
) -> (u64, Vec<u64>) {
    let mut up = PipelinedUploader::connect(addr)
        .unwrap_or_else(|e| panic!("bench client {client} connect failed: {e}"));
    let window = spec.window.max(1);
    let total = frames.len();
    // In-flight batches in request order: (index, first-send instant).
    let mut pending: VecDeque<(usize, Instant)> = VecDeque::with_capacity(window);
    let mut latencies = Vec::with_capacity(total);
    let mut retries = 0u64;
    let mut next = 0usize;
    let mut completed = 0usize;
    while completed < total {
        while pending.len() < window && next < total {
            up.send_encoded(&frames[next])
                .unwrap_or_else(|e| panic!("bench client {client} send failed: {e}"));
            pending.push_back((next, Instant::now()));
            next += 1;
        }
        match up.recv() {
            Ok(receipt) => {
                let (_, first_send) = pending.pop_front().expect("ack matches an in-flight batch");
                assert!(!receipt.duplicate, "bench batches are unique");
                latencies.push(first_send.elapsed().as_micros() as u64);
                completed += 1;
            }
            Err(TelemetryError::Nack { retry_after_ms }) => {
                // The NACK answers the oldest in-flight batch; re-send
                // the same bytes at the back of the window, keeping the
                // first-send instant so retries count against latency.
                let (idx, first_send) = pending
                    .pop_front()
                    .expect("nack matches an in-flight batch");
                retries += 1;
                thread::sleep(Duration::from_millis(retry_after_ms));
                up.send_encoded(&frames[idx])
                    .unwrap_or_else(|e| panic!("bench client {client} re-send failed: {e}"));
                pending.push_back((idx, first_send));
            }
            Err(e) => panic!("bench client {client} upload failed: {e}"),
        }
    }
    (retries, latencies)
}

/// Runs the loopback load bench and returns its machine-readable
/// summary.
///
/// Batches are built and encoded **before** the clock starts: the bench
/// measures ingest (wire → decode → fingerprint → WAL-less merge →
/// ACK), not the harness's own serialization, the way a spooling device
/// re-sends pre-encoded frames.
pub fn run_telemetry_bench(spec: &BenchSpec) -> TelemetryBench {
    let server = TelemetryServer::builder()
        .addr("127.0.0.1:0")
        .shards(spec.shards)
        .queue_capacity(spec.queue_capacity)
        .io_workers(spec.io_workers)
        .nack_retry_ms(1)
        .start()
        .expect("bind loopback bench server");
    let addr = server.local_addr();

    let frames: Vec<Vec<Vec<u8>>> = (0..spec.clients)
        .map(|client| {
            (0..spec.batches_per_client as u64)
                .map(|seq| {
                    PipelinedUploader::encode_upload(&synthetic_batch(
                        client,
                        seq,
                        spec.reports_per_batch,
                    ))
                })
                .collect()
        })
        .collect();

    let started = Instant::now();
    let mut all_latencies: Vec<u64> = Vec::new();
    let mut retries = 0u64;
    thread::scope(|scope| {
        let handles: Vec<_> = frames
            .iter()
            .enumerate()
            .map(|(client, frames)| scope.spawn(move || client_run(addr, client, frames, spec)))
            .collect();
        for h in handles {
            let (client_retries, latencies) = h.join().expect("bench client");
            retries += client_retries;
            all_latencies.extend(latencies);
        }
    });
    let wall = started.elapsed();

    let mut client = Uploader::plain(addr);
    client.shutdown().expect("bench shutdown");
    let stats = server.join();

    all_latencies.sort_unstable();
    let pct = |p: f64| -> u64 {
        if all_latencies.is_empty() {
            return 0;
        }
        let idx = ((all_latencies.len() - 1) as f64 * p).round() as usize;
        all_latencies[idx]
    };

    let reports = stats.ingest.reports_ingested;
    let wall_s = wall.as_secs_f64().max(1e-9);
    TelemetryBench {
        schema: BENCH_SCHEMA.to_string(),
        clients: spec.clients,
        window: spec.window,
        shards: spec.shards,
        queue_capacity: spec.queue_capacity,
        io_workers: spec.io_workers,
        batches: stats.ingest.batches_applied,
        reports,
        nacks: stats.nacks_sent,
        retries,
        wall_ms: wall.as_millis() as u64,
        reports_per_second: reports as f64 / wall_s,
        p50_upload_us: pct(0.50),
        p99_upload_us: pct(0.99),
    }
}

impl TelemetryBench {
    /// Renders a human-readable summary line.
    pub fn render(&self) -> String {
        format!(
            "telemetry bench: {} clients × window {} → {} shards (queue {}, {} io) — \
             {} reports in {} ms ({:.0} reports/s), {} NACKs / {} retries, \
             ingest p50 {} µs p99 {} µs",
            self.clients,
            self.window,
            self.shards,
            self.queue_capacity,
            self.io_workers,
            self.reports,
            self.wall_ms,
            self.reports_per_second,
            self.nacks,
            self.retries,
            self.p50_upload_us,
            self.p99_upload_us,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backpressure_never_loses_or_duplicates_a_batch() {
        // Tiny queue, enough in-flight batches to contend: NACKs are
        // likely, yet every unique batch must land exactly once.
        let spec = BenchSpec {
            clients: 4,
            batches_per_client: 16,
            reports_per_batch: 2,
            window: 8,
            shards: 2,
            queue_capacity: 1,
            io_workers: 2,
        };
        let bench = run_telemetry_bench(&spec);
        assert_eq!(bench.schema, BENCH_SCHEMA);
        assert_eq!(
            bench.batches,
            (spec.clients * spec.batches_per_client) as u64
        );
        assert_eq!(
            bench.reports,
            (spec.clients * spec.batches_per_client * spec.reports_per_batch) as u64
        );
        assert!(bench.reports_per_second > 0.0);
    }
}
