//! Loopback load benchmark — the schema of `BENCH_telemetry.json`.
//!
//! Hammers a loopback server with concurrent synthetic uploaders
//! through a **deliberately small** shard queue, so the run exercises
//! the full backpressure path: queue-full NACKs, deterministic client
//! backoff, and eventual acceptance of every batch. Completing at all
//! is the liveness assertion (bounded queues must never deadlock);
//! the throughput and latency numbers are the perf-trajectory entry CI
//! archives next to `BENCH_fleet.json`.

use std::net::SocketAddr;
use std::thread;
use std::time::Instant;

use hangdoctor::{HangBugReport, RootCause, RootKind};
use hd_simrt::ActionUid;
use serde::{Deserialize, Serialize};

use crate::client::{Uploader, UploaderConfig};
use crate::server::{ServerConfig, TelemetryServer};
use crate::wire::{TelemetryItem, UploadBatch};

/// Schema tag of `BENCH_telemetry.json`.
pub const BENCH_SCHEMA: &str = "hang-doctor/telemetry-bench/v1";

/// Bench parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BenchSpec {
    /// Concurrent uploader threads.
    pub clients: usize,
    /// Batches each client delivers.
    pub batches_per_client: usize,
    /// Reports packed into each batch.
    pub reports_per_batch: usize,
    /// Server shard workers.
    pub shards: usize,
    /// Per-shard queue depth — small on purpose, to provoke NACKs.
    pub queue_capacity: usize,
}

impl Default for BenchSpec {
    fn default() -> BenchSpec {
        BenchSpec {
            clients: 8,
            batches_per_client: 64,
            reports_per_batch: 8,
            shards: 4,
            queue_capacity: 2,
        }
    }
}

/// Machine-readable result of one loopback load run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TelemetryBench {
    /// Schema tag, bumped on incompatible changes.
    pub schema: String,
    /// Concurrent uploader threads.
    pub clients: usize,
    /// Server shard workers.
    pub shards: usize,
    /// Per-shard bounded queue depth.
    pub queue_capacity: usize,
    /// Unique batches delivered.
    pub batches: u64,
    /// Individual hang reports ingested.
    pub reports: u64,
    /// Queue-full NACKs the server issued.
    pub nacks: u64,
    /// Client retry attempts (every NACK'd batch was eventually
    /// accepted — the liveness half of the backpressure contract).
    pub retries: u64,
    /// End-to-end wall time, ms.
    pub wall_ms: u64,
    /// Ingest throughput, reports per wall second.
    pub reports_per_second: f64,
    /// Median per-batch upload latency, µs (includes retries).
    pub p50_upload_us: u64,
    /// 99th-percentile per-batch upload latency, µs.
    pub p99_upload_us: u64,
}

/// Builds one synthetic batch. Content varies with `(client, seq)` so
/// every batch has a distinct fingerprint, while staying deterministic
/// run-to-run.
fn synthetic_batch(client: usize, seq: u64, reports_per_batch: usize) -> UploadBatch {
    let app = format!("bench-app-{}", client % 4);
    let device = client as u32 + 1;
    let mut items = Vec::with_capacity(reports_per_batch);
    for r in 0..reports_per_batch {
        let mut report = HangBugReport::new(&app);
        let uid = ActionUid(r as u64 % 3);
        for _ in 0..4 {
            report.note_execution(device, uid, "onRefresh");
        }
        report.record_bug(
            device,
            uid,
            &RootCause {
                symbol: format!("java.net.Socket.connect#{}", r % 5),
                file: "Sync.java".to_string(),
                line: 100 + (r as u32 % 5),
                occurrence_factor: 1.0,
                kind: RootKind::BlockingApi,
            },
            (50 + seq % 50) * 1_000_000,
        );
        items.push(TelemetryItem::Report(report));
    }
    UploadBatch {
        app,
        device,
        seq,
        items,
    }
}

fn client_run(addr: SocketAddr, client: usize, spec: &BenchSpec) -> (u64, Vec<u64>) {
    let mut uploader = Uploader::new(
        addr,
        client as u64,
        0xBE7C_0000 + client as u64,
        UploaderConfig::default(),
    );
    let mut latencies = Vec::with_capacity(spec.batches_per_client);
    let mut retries = 0u64;
    for seq in 0..spec.batches_per_client as u64 {
        let batch = synthetic_batch(client, seq, spec.reports_per_batch);
        let started = Instant::now();
        let receipt = uploader
            .upload(&batch)
            .unwrap_or_else(|e| panic!("bench client {client} upload failed: {e}"));
        latencies.push(started.elapsed().as_micros() as u64);
        retries += (receipt.attempts - 1) as u64;
    }
    (retries, latencies)
}

/// Runs the loopback load bench and returns its machine-readable
/// summary.
pub fn run_telemetry_bench(spec: &BenchSpec) -> TelemetryBench {
    let server = TelemetryServer::start(
        "127.0.0.1:0",
        ServerConfig {
            shards: spec.shards,
            queue_capacity: spec.queue_capacity,
            nack_retry_ms: 1,
        },
    )
    .expect("bind loopback bench server");
    let addr = server.local_addr();

    let started = Instant::now();
    let mut all_latencies: Vec<u64> = Vec::new();
    let mut retries = 0u64;
    thread::scope(|scope| {
        let handles: Vec<_> = (0..spec.clients)
            .map(|client| scope.spawn(move || client_run(addr, client, spec)))
            .collect();
        for h in handles {
            let (client_retries, latencies) = h.join().expect("bench client");
            retries += client_retries;
            all_latencies.extend(latencies);
        }
    });
    let wall = started.elapsed();

    let mut client = Uploader::plain(addr);
    client.shutdown().expect("bench shutdown");
    let stats = server.join();

    all_latencies.sort_unstable();
    let pct = |p: f64| -> u64 {
        if all_latencies.is_empty() {
            return 0;
        }
        let idx = ((all_latencies.len() - 1) as f64 * p).round() as usize;
        all_latencies[idx]
    };

    let reports = stats.ingest.reports_ingested;
    let wall_s = wall.as_secs_f64().max(1e-9);
    TelemetryBench {
        schema: BENCH_SCHEMA.to_string(),
        clients: spec.clients,
        shards: spec.shards,
        queue_capacity: spec.queue_capacity,
        batches: stats.ingest.batches_applied,
        reports,
        nacks: stats.nacks_sent,
        retries,
        wall_ms: wall.as_millis() as u64,
        reports_per_second: reports as f64 / wall_s,
        p50_upload_us: pct(0.50),
        p99_upload_us: pct(0.99),
    }
}

impl TelemetryBench {
    /// Renders a human-readable summary line.
    pub fn render(&self) -> String {
        format!(
            "telemetry bench: {} clients × {} shards (queue {}) — {} reports in {} ms \
             ({:.0} reports/s), {} NACKs / {} retries, upload p50 {} µs p99 {} µs",
            self.clients,
            self.shards,
            self.queue_capacity,
            self.reports,
            self.wall_ms,
            self.reports_per_second,
            self.nacks,
            self.retries,
            self.p50_upload_us,
            self.p99_upload_us,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backpressure_never_loses_or_duplicates_a_batch() {
        // Tiny queue, enough clients to contend: NACKs are likely, yet
        // every unique batch must land exactly once.
        let spec = BenchSpec {
            clients: 4,
            batches_per_client: 16,
            reports_per_batch: 2,
            shards: 2,
            queue_capacity: 1,
        };
        let bench = run_telemetry_bench(&spec);
        assert_eq!(bench.schema, BENCH_SCHEMA);
        assert_eq!(
            bench.batches,
            (spec.clients * spec.batches_per_client) as u64
        );
        assert_eq!(
            bench.reports,
            (spec.clients * spec.batches_per_client * spec.reports_per_batch) as u64
        );
        assert!(bench.reports_per_second > 0.0);
    }
}
