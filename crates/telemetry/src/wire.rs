//! The telemetry wire protocol: length-prefixed JSON frames.
//!
//! Every message travels as one frame:
//!
//! ```text
//! +------+----------------+------------------------------------------+
//! | HDT1 | u32 BE length  | JSON envelope {"schema": ..., "body": …} |
//! +------+----------------+------------------------------------------+
//! ```
//!
//! The envelope carries a protocol tag. This build speaks two
//! dialects: the current [`SCHEMA`] (`hang-doctor/telemetry/v2`) and
//! the legacy [`SCHEMA_V1`] — a v2 server still ingests v1 frames
//! byte-identically, and answers each connection in the dialect its
//! requests arrive in, so old uploaders keep working across a fleet
//! that upgrades gradually. A frame with any *other* tag is rejected
//! with [`FrameError::Schema`] before its body is interpreted, so
//! protocol drift fails loudly at the boundary instead of corrupting
//! the aggregation store. Version negotiation is explicit: a client
//! may open with [`Request::Hello`] listing the dialects it speaks and
//! the server answers [`Response::Welcome`] with the newest common
//! one. All decode failures are typed [`FrameError`]s — a truncated,
//! corrupt, or oversized frame never panics the server.
//!
//! Encoding is canonical: the JSON renderer is deterministic (struct
//! fields in declaration order, map keys sorted), so
//! `encode(decode(encode(x))) == encode(x)` byte-for-byte. The ingest
//! fingerprints of `fingerprint.rs` rely on exactly this property —
//! and because the fingerprint hashes the *batch*, not the envelope,
//! the same batch carried by a v1 and a v2 frame dedups to one ingest.

use std::fmt;
use std::io::{self, Read, Write};

use hangdoctor::{DeviceSnapshot, HangBugReport};
use hd_control::{ControlRequest, ControlResponse, CONTROL_SCHEMA};
use serde::{Deserialize, Serialize};

use crate::report::TelemetryReport;
use crate::store::StoreSnapshot;

/// Current protocol/schema tag carried by every frame envelope.
pub const SCHEMA: &str = "hang-doctor/telemetry/v2";

/// The legacy protocol tag; still accepted on ingest.
pub const SCHEMA_V1: &str = "hang-doctor/telemetry/v1";

/// Every dialect this build speaks, newest first (the negotiation
/// preference order). The control dialect outranks the telemetry
/// dialects: a client that speaks it is a control client and wants its
/// connection answered in it, while plain uploaders never offer it.
pub const SUPPORTED_SCHEMAS: [&str; 3] = [CONTROL_SCHEMA, SCHEMA, SCHEMA_V1];

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"HDT1";

/// Upper bound on one frame's JSON payload, bytes.
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// A protocol dialect a frame can arrive in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireVersion {
    /// `hang-doctor/telemetry/v1` — PR 5's original envelope.
    V1,
    /// `hang-doctor/telemetry/v2` — adds Hello/Welcome negotiation and
    /// the cluster Export exchange.
    V2,
    /// `hang-doctor/control/v1` — the bidirectional control plane
    /// riding the same framed transport (PR 10).
    Control,
}

impl WireVersion {
    /// The envelope tag of this dialect.
    pub fn tag(self) -> &'static str {
        match self {
            WireVersion::V1 => SCHEMA_V1,
            WireVersion::V2 => SCHEMA,
            WireVersion::Control => CONTROL_SCHEMA,
        }
    }

    /// Parses an envelope tag into a dialect, if supported.
    pub fn from_tag(tag: &str) -> Option<WireVersion> {
        match tag {
            SCHEMA_V1 => Some(WireVersion::V1),
            SCHEMA => Some(WireVersion::V2),
            CONTROL_SCHEMA => Some(WireVersion::Control),
            _ => None,
        }
    }

    /// Picks the newest dialect both sides speak, given the peer's
    /// advertised tags.
    pub fn negotiate(peer: &[String]) -> Option<WireVersion> {
        SUPPORTED_SCHEMAS
            .iter()
            .find(|ours| peer.iter().any(|theirs| theirs == *ours))
            .and_then(|tag| WireVersion::from_tag(tag))
    }
}

/// One item of an upload batch: either a bare hang bug report or a full
/// device snapshot (whose embedded report is what gets aggregated).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum TelemetryItem {
    /// A device's accumulated hang bug report.
    Report(HangBugReport),
    /// A full persisted device snapshot.
    Snapshot(DeviceSnapshot),
}

impl TelemetryItem {
    /// The hang bug report this item contributes to aggregation.
    pub fn report(&self) -> &HangBugReport {
        match self {
            TelemetryItem::Report(r) => r,
            TelemetryItem::Snapshot(s) => &s.report,
        }
    }

    /// Number of individual reports in this item (always 1 today; kept
    /// as a method so batch accounting has one definition).
    pub fn reports(&self) -> u64 {
        1
    }
}

/// One device-side upload: a batch of items from a single `(app,
/// device)` pair. The pair is also the server's shard key, so all
/// batches of one device land on one worker in delivery order.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct UploadBatch {
    /// App the device runs (shard-key half; items carry their own app
    /// names for aggregation).
    pub app: String,
    /// Globally unique device id (shard-key half).
    pub device: u32,
    /// Device-local batch sequence number.
    pub seq: u64,
    /// The batch payload.
    pub items: Vec<TelemetryItem>,
}

impl UploadBatch {
    /// Total reports carried by the batch.
    pub fn reports(&self) -> u64 {
        self.items.iter().map(TelemetryItem::reports).sum()
    }
}

/// Client → server messages.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Request {
    /// Ingest a batch of hang reports.
    Upload(UploadBatch),
    /// Return the current cross-device aggregation, top-`top_n` groups.
    Query {
        /// Maximum number of hang groups to return.
        top_n: usize,
    },
    /// Stop the server after this connection closes.
    Shutdown,
    /// v2: explicit version negotiation — the client lists every
    /// dialect it speaks.
    Hello {
        /// Envelope tags the client can encode and decode.
        supported: Vec<String>,
    },
    /// v2: export the node's raw aggregation state (the semilattice
    /// elements themselves, not the lossy top-N projection) so a
    /// cluster coordinator can fold it with other nodes'.
    Export,
    /// Control dialect: a fleet-control message (device sync, operator
    /// probe, or threshold rollout command) for the server's embedded
    /// [`hd_control::FleetController`].
    Control(ControlRequest),
}

/// Server → client messages.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Response {
    /// The batch was applied to the aggregation store (or recognized as
    /// an exact duplicate and absorbed).
    Ack {
        /// Ingest fingerprint of the batch.
        fingerprint: u64,
        /// Whether idempotent ingest absorbed it as a duplicate.
        duplicate: bool,
    },
    /// The ingest queue is full; retry after backing off. The batch was
    /// **not** applied.
    Nack {
        /// Suggested client backoff, ms.
        retry_after_ms: u64,
    },
    /// Answer to a query.
    Report(TelemetryReport),
    /// The request could not be served.
    Error(String),
    /// Acknowledges a shutdown request.
    Bye,
    /// v2: answer to [`Request::Hello`] — the newest dialect both
    /// sides speak.
    Welcome {
        /// The negotiated envelope tag.
        schema: String,
    },
    /// v2: answer to [`Request::Export`] — the node's full aggregation
    /// state.
    State(StoreSnapshot),
    /// Control dialect: the controller's answer to a
    /// [`Request::Control`] message.
    Control(ControlResponse),
}

/// Typed decode failure. Every malformed frame maps onto one of these —
/// never a panic.
#[derive(Clone, Debug, PartialEq)]
pub enum FrameError {
    /// The frame does not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The stream ended before a complete frame arrived.
    Truncated {
        /// Bytes a complete frame needed.
        needed: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The declared payload length exceeds [`MAX_FRAME`].
    TooLarge {
        /// Declared payload length.
        len: usize,
        /// The enforced maximum.
        max: usize,
    },
    /// The envelope carries an unexpected schema tag.
    Schema(String),
    /// The payload is not valid JSON for the expected message type.
    Json(String),
    /// An I/O error interrupted the read.
    Io(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:?}"),
            FrameError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} bytes, got {got}")
            }
            FrameError::TooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte cap")
            }
            FrameError::Schema(s) => write!(f, "unexpected schema tag `{s}`"),
            FrameError::Json(e) => write!(f, "malformed frame payload: {e}"),
            FrameError::Io(e) => write!(f, "i/o error mid-frame: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// The JSON envelope inside every frame. Concrete over
/// [`serde::Value`] because the vendored derive shim rejects generics.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct Envelope {
    schema: String,
    body: serde::Value,
}

/// Encodes `body` into a complete frame (magic + length + envelope) in
/// the current dialect.
pub fn encode_frame<T: Serialize>(body: &T) -> Vec<u8> {
    encode_frame_in(WireVersion::V2, body)
}

/// Encodes `body` into a complete frame in an explicit dialect — the
/// server answers each connection in the dialect it was addressed in,
/// and the v1-compat tests pin legacy encoding.
pub fn encode_frame_in<T: Serialize>(version: WireVersion, body: &T) -> Vec<u8> {
    let envelope = Envelope {
        schema: version.tag().to_string(),
        body: body.to_value(),
    };
    let json = serde_json::to_string(&envelope).expect("envelope serializes");
    let payload = json.as_bytes();
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Decodes the JSON payload of a frame (everything after the 8-byte
/// header), returning the body and the dialect it arrived in. Every
/// supported schema tag is accepted; anything else is
/// [`FrameError::Schema`].
pub fn decode_payload_versioned<T: Deserialize>(
    payload: &[u8],
) -> Result<(T, WireVersion), FrameError> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| FrameError::Json(format!("invalid UTF-8: {e}")))?;
    let envelope: Envelope =
        serde_json::from_str(text).map_err(|e| FrameError::Json(e.to_string()))?;
    let Some(version) = WireVersion::from_tag(&envelope.schema) else {
        return Err(FrameError::Schema(envelope.schema));
    };
    let body = T::from_value(&envelope.body).map_err(|e| FrameError::Json(e.to_string()))?;
    Ok((body, version))
}

/// Decodes the JSON payload of a frame, discarding the dialect.
pub fn decode_payload<T: Deserialize>(payload: &[u8]) -> Result<T, FrameError> {
    decode_payload_versioned(payload).map(|(body, _)| body)
}

/// Decodes a complete in-memory frame produced by [`encode_frame`].
pub fn decode_frame<T: Deserialize>(frame: &[u8]) -> Result<T, FrameError> {
    if frame.len() < 8 {
        return Err(FrameError::Truncated {
            needed: 8,
            got: frame.len(),
        });
    }
    let magic: [u8; 4] = frame[0..4].try_into().expect("4 bytes");
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let len = u32::from_be_bytes(frame[4..8].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge {
            len,
            max: MAX_FRAME,
        });
    }
    if frame.len() < 8 + len {
        return Err(FrameError::Truncated {
            needed: 8 + len,
            got: frame.len(),
        });
    }
    decode_payload(&frame[8..8 + len])
}

/// Writes a pre-encoded frame to `w`.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    w.write_all(frame)?;
    w.flush()
}

/// Reads and decodes one frame from `r`, returning the dialect it
/// arrived in.
pub fn read_frame_versioned<T: Deserialize>(
    r: &mut impl Read,
) -> Result<(T, WireVersion), FrameError> {
    let mut header = [0u8; 8];
    read_exact_counted(r, &mut header, 8)?;
    let magic: [u8; 4] = header[0..4].try_into().expect("4 bytes");
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let len = u32::from_be_bytes(header[4..8].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge {
            len,
            max: MAX_FRAME,
        });
    }
    let mut payload = vec![0u8; len];
    read_exact_counted(r, &mut payload, 8 + len)?;
    decode_payload_versioned(&payload)
}

/// Reads and decodes one frame from `r`.
///
/// A clean EOF before the first header byte returns
/// `Truncated { needed: 8, got: 0 }`, which callers treat as normal
/// connection close.
pub fn read_frame<T: Deserialize>(r: &mut impl Read) -> Result<T, FrameError> {
    read_frame_versioned(r).map(|(body, _)| body)
}

/// `read_exact` that reports how much of the frame was present when the
/// stream ended early.
fn read_exact_counted(r: &mut impl Read, buf: &mut [u8], needed: usize) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(FrameError::Truncated {
                    needed,
                    got: needed - (buf.len() - filled),
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e.to_string())),
        }
    }
    Ok(())
}

/// Incremental frame extractor for the server's nonblocking read path:
/// carves complete frames out of `buf`, leaving any trailing partial
/// frame in place, and returns the decoded bodies with their dialects.
///
/// A header-level violation (bad magic, oversize) poisons the stream —
/// the caller should answer with an error and close — whereas an
/// incomplete tail is normal and simply waits for more bytes.
pub fn drain_frames<T: Deserialize>(
    buf: &mut Vec<u8>,
) -> Result<Vec<(T, WireVersion)>, FrameError> {
    let frames = drain_frames_with(buf, |_, _, _| ())?;
    Ok(frames.into_iter().map(|(body, v, ())| (body, v)).collect())
}

/// [`drain_frames`] with a per-frame hook over the raw payload bytes,
/// invoked before the payload is dropped. The ingest path uses it to
/// fingerprint upload bodies straight off the wire.
pub fn drain_frames_with<T: Deserialize, A>(
    buf: &mut Vec<u8>,
    mut annotate: impl FnMut(&[u8], &T, WireVersion) -> A,
) -> Result<Vec<(T, WireVersion, A)>, FrameError> {
    let mut out = Vec::new();
    let mut consumed = 0usize;
    loop {
        let rest = &buf[consumed..];
        if rest.len() < 8 {
            break;
        }
        let magic: [u8; 4] = rest[0..4].try_into().expect("4 bytes");
        if magic != MAGIC {
            buf.drain(..consumed);
            return Err(FrameError::BadMagic(magic));
        }
        let len = u32::from_be_bytes(rest[4..8].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME {
            buf.drain(..consumed);
            return Err(FrameError::TooLarge {
                len,
                max: MAX_FRAME,
            });
        }
        if rest.len() < 8 + len {
            break;
        }
        match decode_payload_versioned(&rest[8..8 + len]) {
            Ok((body, version)) => {
                let ann = annotate(&rest[8..8 + len], &body, version);
                out.push((body, version, ann));
            }
            Err(e) => {
                buf.drain(..consumed + 8 + len);
                return Err(e);
            }
        }
        consumed += 8 + len;
    }
    buf.drain(..consumed);
    Ok(out)
}

/// Recovers the ingest fingerprint of an `Upload` request straight from
/// its wire payload, without re-serializing the decoded batch.
///
/// Works because encoding is canonical: a frame our own encoder
/// produced carries the batch's canonical JSON verbatim inside the
/// envelope (`{"schema":"<tag>","body":{"Upload":<batch>}}`), and the
/// ingest fingerprint is FNV-1a over exactly those bytes. Returns
/// `None` when the payload is not in canonical envelope form (e.g. a
/// foreign client inserting whitespace) — the caller then falls back to
/// re-serializing, so the fingerprint is identical either way.
pub fn upload_fingerprint_from_payload(payload: &[u8], version: WireVersion) -> Option<u64> {
    let tag = version.tag();
    let mut prefix = Vec::with_capacity(32 + tag.len());
    prefix.extend_from_slice(b"{\"schema\":\"");
    prefix.extend_from_slice(tag.as_bytes());
    prefix.extend_from_slice(b"\",\"body\":{\"Upload\":");
    let body_end = payload.len().checked_sub(2)?;
    if body_end <= prefix.len() || !payload.starts_with(&prefix) || &payload[body_end..] != b"}}" {
        return None;
    }
    let batch_json = &payload[prefix.len()..body_end];
    if batch_json.first() != Some(&b'{') {
        return None;
    }
    Some(crate::fingerprint::fnv1a(batch_json))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_through_a_frame() {
        let req = Request::Query { top_n: 12 };
        let frame = encode_frame(&req);
        assert_eq!(&frame[0..4], &MAGIC);
        let back: Request = decode_frame(&frame).unwrap();
        match back {
            Request::Query { top_n } => assert_eq!(top_n, 12),
            other => panic!("wrong variant: {other:?}"),
        }
        // Canonical encoding: re-encoding the decoded value is
        // byte-identical.
        let back: Request = decode_frame(&frame).unwrap();
        assert_eq!(encode_frame(&back), frame);
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut frame = encode_frame(&Request::Shutdown);
        frame[0] = b'X';
        match decode_frame::<Request>(&frame) {
            Err(FrameError::BadMagic(m)) => assert_eq!(m[0], b'X'),
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_typed_not_a_panic() {
        let frame = encode_frame(&Request::Query { top_n: 3 });
        for cut in 0..frame.len() {
            match decode_frame::<Request>(&frame[..cut]) {
                Err(FrameError::Truncated { .. }) => {}
                Err(FrameError::BadMagic(_)) if cut >= 8 => {
                    panic!("magic must survive truncation of the payload")
                }
                Ok(_) => panic!("decoded from a {cut}-byte prefix"),
                Err(other) => panic!("unexpected error at cut {cut}: {other:?}"),
            }
        }
    }

    #[test]
    fn unsupported_schema_is_rejected() {
        let json = r#"{"schema": "hang-doctor/telemetry/v0", "body": null}"#;
        match decode_payload::<Request>(json.as_bytes()) {
            Err(FrameError::Schema(s)) => assert_eq!(s, "hang-doctor/telemetry/v0"),
            other => panic!("expected Schema error, got {other:?}"),
        }
    }

    #[test]
    fn both_supported_dialects_decode_and_report_their_version() {
        let req = Request::Query { top_n: 4 };
        let v2 = encode_frame_in(WireVersion::V2, &req);
        let v1 = encode_frame_in(WireVersion::V1, &req);
        assert_ne!(v1, v2, "dialects must be distinguishable on the wire");
        let (_, ver2) = decode_payload_versioned::<Request>(&v2[8..]).unwrap();
        let (_, ver1) = decode_payload_versioned::<Request>(&v1[8..]).unwrap();
        assert_eq!(ver2, WireVersion::V2);
        assert_eq!(ver1, WireVersion::V1);
    }

    #[test]
    fn negotiation_picks_the_newest_common_dialect() {
        let both = vec![SCHEMA_V1.to_string(), SCHEMA.to_string()];
        assert_eq!(WireVersion::negotiate(&both), Some(WireVersion::V2));
        let legacy_only = vec![SCHEMA_V1.to_string()];
        assert_eq!(WireVersion::negotiate(&legacy_only), Some(WireVersion::V1));
        let alien = vec!["hang-doctor/telemetry/v99".to_string()];
        assert_eq!(WireVersion::negotiate(&alien), None);
    }

    #[test]
    fn control_dialect_outranks_telemetry_in_negotiation() {
        // A control client offers both; it gets the control dialect.
        let control = vec![CONTROL_SCHEMA.to_string(), SCHEMA.to_string()];
        assert_eq!(WireVersion::negotiate(&control), Some(WireVersion::Control));
        // Plain uploaders never offer it, so they still land on v2.
        let uploader = vec![SCHEMA.to_string(), SCHEMA_V1.to_string()];
        assert_eq!(WireVersion::negotiate(&uploader), Some(WireVersion::V2));
        assert_eq!(
            WireVersion::from_tag(CONTROL_SCHEMA),
            Some(WireVersion::Control)
        );
        assert_eq!(WireVersion::Control.tag(), "hang-doctor/control/v1");
    }

    #[test]
    fn control_frames_round_trip_in_their_own_dialect() {
        let req = Request::Control(ControlRequest::QueryState { device: 9 });
        let frame = encode_frame_in(WireVersion::Control, &req);
        let (back, version) = decode_payload_versioned::<Request>(&frame[8..]).unwrap();
        assert_eq!(version, WireVersion::Control);
        assert!(matches!(
            back,
            Request::Control(ControlRequest::QueryState { device: 9 })
        ));
        // Canonical: re-encoding the decoded value is byte-identical.
        assert_eq!(encode_frame_in(WireVersion::Control, &back), frame);
        // And control frames never produce an upload fingerprint.
        assert_eq!(
            upload_fingerprint_from_payload(&frame[8..], WireVersion::Control),
            None
        );
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut frame = Vec::new();
        frame.extend_from_slice(&MAGIC);
        frame.extend_from_slice(&u32::MAX.to_be_bytes());
        frame.extend_from_slice(b"garbage");
        match decode_frame::<Request>(&frame) {
            Err(FrameError::TooLarge { len, .. }) => assert_eq!(len, u32::MAX as usize),
            other => panic!("expected TooLarge, got {other:?}"),
        }
        let mut stream = io::Cursor::new(frame);
        assert!(matches!(
            read_frame::<Request>(&mut stream),
            Err(FrameError::TooLarge { .. })
        ));
    }

    #[test]
    fn read_frame_streams_from_a_reader() {
        let a = encode_frame(&Request::Query { top_n: 1 });
        let b = encode_frame(&Request::Shutdown);
        let mut stream = io::Cursor::new([a, b].concat());
        assert!(matches!(
            read_frame::<Request>(&mut stream).unwrap(),
            Request::Query { top_n: 1 }
        ));
        assert!(matches!(
            read_frame::<Request>(&mut stream).unwrap(),
            Request::Shutdown
        ));
        // Clean EOF reads as an empty truncation.
        match read_frame::<Request>(&mut stream) {
            Err(FrameError::Truncated { needed: 8, got: 0 }) => {}
            other => panic!("expected empty truncation, got {other:?}"),
        }
    }

    #[test]
    fn drain_frames_extracts_complete_frames_and_keeps_the_tail() {
        let a = encode_frame(&Request::Query { top_n: 1 });
        let b = encode_frame_in(WireVersion::V1, &Request::Shutdown);
        let c = encode_frame(&Request::Query { top_n: 9 });
        let mut buf = [a.as_slice(), b.as_slice(), &c[..c.len() - 3]].concat();
        let got: Vec<(Request, WireVersion)> = drain_frames(&mut buf).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].1, WireVersion::V2);
        assert_eq!(got[1].1, WireVersion::V1);
        // The partial tail stays buffered; completing it yields frame 3.
        buf.extend_from_slice(&c[c.len() - 3..]);
        let got: Vec<(Request, WireVersion)> = drain_frames(&mut buf).unwrap();
        assert_eq!(got.len(), 1);
        assert!(buf.is_empty());
    }

    #[test]
    fn wire_fingerprint_matches_the_canonical_fingerprint() {
        use crate::fingerprint::batch_fingerprint;
        use hangdoctor::HangBugReport;
        let batch = UploadBatch {
            app: "app".to_string(),
            device: 7,
            seq: 3,
            items: vec![TelemetryItem::Report(HangBugReport::new("app"))],
        };
        let want = batch_fingerprint(&batch);
        for version in [WireVersion::V1, WireVersion::V2] {
            let frame = encode_frame_in(version, &Request::Upload(batch.clone()));
            assert_eq!(
                upload_fingerprint_from_payload(&frame[8..], version),
                Some(want),
                "wire-byte fingerprint must equal the re-serialized one ({version:?})"
            );
        }
        // A semantically equal but non-canonical payload (extra space)
        // falls back instead of producing a wrong fingerprint.
        let frame = encode_frame_in(WireVersion::V2, &Request::Upload(batch.clone()));
        let text = String::from_utf8(frame[8..].to_vec()).unwrap();
        let spaced = text.replace("\"body\":", "\"body\": ");
        assert_eq!(
            upload_fingerprint_from_payload(spaced.as_bytes(), WireVersion::V2),
            None
        );
        // Non-upload requests never fingerprint.
        let q = encode_frame(&Request::Query { top_n: 1 });
        assert_eq!(
            upload_fingerprint_from_payload(&q[8..], WireVersion::V2),
            None
        );
    }

    #[test]
    fn drain_frames_poisons_on_bad_magic() {
        let good = encode_frame(&Request::Shutdown);
        let mut bad = encode_frame(&Request::Shutdown);
        bad[0] = b'Z';
        let mut buf = [good, bad].concat();
        match drain_frames::<Request>(&mut buf) {
            Err(FrameError::BadMagic(m)) => assert_eq!(m[0], b'Z'),
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }
}
