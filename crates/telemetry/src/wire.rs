//! The telemetry wire protocol: length-prefixed JSON frames.
//!
//! Every message travels as one frame:
//!
//! ```text
//! +------+----------------+------------------------------------------+
//! | HDT1 | u32 BE length  | JSON envelope {"schema": ..., "body": …} |
//! +------+----------------+------------------------------------------+
//! ```
//!
//! The envelope carries the protocol tag [`SCHEMA`]
//! (`hang-doctor/telemetry/v1`); a frame with any other tag is rejected
//! with [`FrameError::Schema`] before its body is interpreted, so
//! protocol drift fails loudly at the boundary instead of corrupting the
//! aggregation store. All decode failures are typed [`FrameError`]s —
//! a truncated, corrupt, or oversized frame never panics the server.
//!
//! Encoding is canonical: the JSON renderer is deterministic (struct
//! fields in declaration order, map keys sorted), so
//! `encode(decode(encode(x))) == encode(x)` byte-for-byte. The ingest
//! fingerprints of `fingerprint.rs` rely on exactly this property.

use std::fmt;
use std::io::{self, Read, Write};

use hangdoctor::{DeviceSnapshot, HangBugReport};
use serde::{Deserialize, Serialize};

use crate::report::TelemetryReport;

/// Protocol/schema tag carried by every frame envelope.
pub const SCHEMA: &str = "hang-doctor/telemetry/v1";

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"HDT1";

/// Upper bound on one frame's JSON payload, bytes.
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// One item of an upload batch: either a bare hang bug report or a full
/// device snapshot (whose embedded report is what gets aggregated).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum TelemetryItem {
    /// A device's accumulated hang bug report.
    Report(HangBugReport),
    /// A full persisted device snapshot.
    Snapshot(DeviceSnapshot),
}

impl TelemetryItem {
    /// The hang bug report this item contributes to aggregation.
    pub fn report(&self) -> &HangBugReport {
        match self {
            TelemetryItem::Report(r) => r,
            TelemetryItem::Snapshot(s) => &s.report,
        }
    }

    /// Number of individual reports in this item (always 1 today; kept
    /// as a method so batch accounting has one definition).
    pub fn reports(&self) -> u64 {
        1
    }
}

/// One device-side upload: a batch of items from a single `(app,
/// device)` pair. The pair is also the server's shard key, so all
/// batches of one device land on one worker in delivery order.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct UploadBatch {
    /// App the device runs (shard-key half; items carry their own app
    /// names for aggregation).
    pub app: String,
    /// Globally unique device id (shard-key half).
    pub device: u32,
    /// Device-local batch sequence number.
    pub seq: u64,
    /// The batch payload.
    pub items: Vec<TelemetryItem>,
}

impl UploadBatch {
    /// Total reports carried by the batch.
    pub fn reports(&self) -> u64 {
        self.items.iter().map(TelemetryItem::reports).sum()
    }
}

/// Client → server messages.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Request {
    /// Ingest a batch of hang reports.
    Upload(UploadBatch),
    /// Return the current cross-device aggregation, top-`top_n` groups.
    Query {
        /// Maximum number of hang groups to return.
        top_n: usize,
    },
    /// Stop the server after this connection closes.
    Shutdown,
}

/// Server → client messages.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Response {
    /// The batch was applied to the aggregation store (or recognized as
    /// an exact duplicate and absorbed).
    Ack {
        /// Ingest fingerprint of the batch.
        fingerprint: u64,
        /// Whether idempotent ingest absorbed it as a duplicate.
        duplicate: bool,
    },
    /// The ingest queue is full; retry after backing off. The batch was
    /// **not** applied.
    Nack {
        /// Suggested client backoff, ms.
        retry_after_ms: u64,
    },
    /// Answer to a query.
    Report(TelemetryReport),
    /// The request could not be served.
    Error(String),
    /// Acknowledges a shutdown request.
    Bye,
}

/// Typed decode failure. Every malformed frame maps onto one of these —
/// never a panic.
#[derive(Clone, Debug, PartialEq)]
pub enum FrameError {
    /// The frame does not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The stream ended before a complete frame arrived.
    Truncated {
        /// Bytes a complete frame needed.
        needed: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The declared payload length exceeds [`MAX_FRAME`].
    TooLarge {
        /// Declared payload length.
        len: usize,
        /// The enforced maximum.
        max: usize,
    },
    /// The envelope carries an unexpected schema tag.
    Schema(String),
    /// The payload is not valid JSON for the expected message type.
    Json(String),
    /// An I/O error interrupted the read.
    Io(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:?}"),
            FrameError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} bytes, got {got}")
            }
            FrameError::TooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte cap")
            }
            FrameError::Schema(s) => write!(f, "unexpected schema tag `{s}`"),
            FrameError::Json(e) => write!(f, "malformed frame payload: {e}"),
            FrameError::Io(e) => write!(f, "i/o error mid-frame: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// The JSON envelope inside every frame. Concrete over
/// [`serde::Value`] because the vendored derive shim rejects generics.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct Envelope {
    schema: String,
    body: serde::Value,
}

/// Encodes `body` into a complete frame (magic + length + envelope).
pub fn encode_frame<T: Serialize>(body: &T) -> Vec<u8> {
    let envelope = Envelope {
        schema: SCHEMA.to_string(),
        body: body.to_value(),
    };
    let json = serde_json::to_string(&envelope).expect("envelope serializes");
    let payload = json.as_bytes();
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Decodes the JSON payload of a frame (everything after the 8-byte
/// header), verifying the schema tag.
pub fn decode_payload<T: Deserialize>(payload: &[u8]) -> Result<T, FrameError> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| FrameError::Json(format!("invalid UTF-8: {e}")))?;
    let envelope: Envelope =
        serde_json::from_str(text).map_err(|e| FrameError::Json(e.to_string()))?;
    if envelope.schema != SCHEMA {
        return Err(FrameError::Schema(envelope.schema));
    }
    T::from_value(&envelope.body).map_err(|e| FrameError::Json(e.to_string()))
}

/// Decodes a complete in-memory frame produced by [`encode_frame`].
pub fn decode_frame<T: Deserialize>(frame: &[u8]) -> Result<T, FrameError> {
    if frame.len() < 8 {
        return Err(FrameError::Truncated {
            needed: 8,
            got: frame.len(),
        });
    }
    let magic: [u8; 4] = frame[0..4].try_into().expect("4 bytes");
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let len = u32::from_be_bytes(frame[4..8].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge {
            len,
            max: MAX_FRAME,
        });
    }
    if frame.len() < 8 + len {
        return Err(FrameError::Truncated {
            needed: 8 + len,
            got: frame.len(),
        });
    }
    decode_payload(&frame[8..8 + len])
}

/// Writes a pre-encoded frame to `w`.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    w.write_all(frame)?;
    w.flush()
}

/// Reads and decodes one frame from `r`.
///
/// A clean EOF before the first header byte returns
/// `Truncated { needed: 8, got: 0 }`, which callers treat as normal
/// connection close.
pub fn read_frame<T: Deserialize>(r: &mut impl Read) -> Result<T, FrameError> {
    let mut header = [0u8; 8];
    read_exact_counted(r, &mut header, 8)?;
    let magic: [u8; 4] = header[0..4].try_into().expect("4 bytes");
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let len = u32::from_be_bytes(header[4..8].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge {
            len,
            max: MAX_FRAME,
        });
    }
    let mut payload = vec![0u8; len];
    read_exact_counted(r, &mut payload, 8 + len)?;
    decode_payload(&payload)
}

/// `read_exact` that reports how much of the frame was present when the
/// stream ended early.
fn read_exact_counted(r: &mut impl Read, buf: &mut [u8], needed: usize) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(FrameError::Truncated {
                    needed,
                    got: needed - (buf.len() - filled),
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e.to_string())),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_through_a_frame() {
        let req = Request::Query { top_n: 12 };
        let frame = encode_frame(&req);
        assert_eq!(&frame[0..4], &MAGIC);
        let back: Request = decode_frame(&frame).unwrap();
        match back {
            Request::Query { top_n } => assert_eq!(top_n, 12),
            other => panic!("wrong variant: {other:?}"),
        }
        // Canonical encoding: re-encoding the decoded value is
        // byte-identical.
        let back: Request = decode_frame(&frame).unwrap();
        assert_eq!(encode_frame(&back), frame);
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut frame = encode_frame(&Request::Shutdown);
        frame[0] = b'X';
        match decode_frame::<Request>(&frame) {
            Err(FrameError::BadMagic(m)) => assert_eq!(m[0], b'X'),
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_typed_not_a_panic() {
        let frame = encode_frame(&Request::Query { top_n: 3 });
        for cut in 0..frame.len() {
            match decode_frame::<Request>(&frame[..cut]) {
                Err(FrameError::Truncated { .. }) => {}
                Err(FrameError::BadMagic(_)) if cut >= 8 => {
                    panic!("magic must survive truncation of the payload")
                }
                Ok(_) => panic!("decoded from a {cut}-byte prefix"),
                Err(other) => panic!("unexpected error at cut {cut}: {other:?}"),
            }
        }
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let json = r#"{"schema": "hang-doctor/telemetry/v0", "body": null}"#;
        match decode_payload::<Request>(json.as_bytes()) {
            Err(FrameError::Schema(s)) => assert_eq!(s, "hang-doctor/telemetry/v0"),
            other => panic!("expected Schema error, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut frame = Vec::new();
        frame.extend_from_slice(&MAGIC);
        frame.extend_from_slice(&u32::MAX.to_be_bytes());
        frame.extend_from_slice(b"garbage");
        match decode_frame::<Request>(&frame) {
            Err(FrameError::TooLarge { len, .. }) => assert_eq!(len, u32::MAX as usize),
            other => panic!("expected TooLarge, got {other:?}"),
        }
        let mut stream = io::Cursor::new(frame);
        assert!(matches!(
            read_frame::<Request>(&mut stream),
            Err(FrameError::TooLarge { .. })
        ));
    }

    #[test]
    fn read_frame_streams_from_a_reader() {
        let a = encode_frame(&Request::Query { top_n: 1 });
        let b = encode_frame(&Request::Shutdown);
        let mut stream = io::Cursor::new([a, b].concat());
        assert!(matches!(
            read_frame::<Request>(&mut stream).unwrap(),
            Request::Query { top_n: 1 }
        ));
        assert!(matches!(
            read_frame::<Request>(&mut stream).unwrap(),
            Request::Shutdown
        ));
        // Clean EOF reads as an empty truncation.
        match read_frame::<Request>(&mut stream) {
            Err(FrameError::Truncated { needed: 8, got: 0 }) => {}
            other => panic!("expected empty truncation, got {other:?}"),
        }
    }
}
