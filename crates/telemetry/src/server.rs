//! The TCP ingestion server.
//!
//! Thread layout (since the cluster/durability redesign):
//!
//! ```text
//! acceptor ──► round-robin hand-off to a FIXED pool of I/O workers
//!                 │  (nonblocking sockets, multiplexed per worker)
//!                 ▼
//!   io worker: read-available → batch frame decode → dispatch
//!                 │  shard = fnv(app, device) % shards
//!                 ▼
//!          bounded crossbeam channel per shard   ◄── explicit backpressure:
//!                 │                                  try_send Full → NACK
//!                 ▼
//!          shard worker ──► WAL append ──► owned shard store
//!                 │
//!                 └──► completion queue → io worker flushes ACK
//! ```
//!
//! The PR 5 server spawned **one handler thread per connection** and
//! blocked it on a per-batch reply channel; at fleet scale that is a
//! thread per device and a context switch per batch. The redesign
//! multiplexes all connections over a fixed I/O worker pool on
//! nonblocking sockets: each worker slurps whatever bytes are
//! available, carves out *every* complete frame in one pass
//! ([`drain_frames`]), dispatches the batches, and flushes responses
//! as shard completions arrive — pipelined clients keep dozens of
//! batches in flight on one connection.
//!
//! Properties that carry the correctness argument:
//!
//! * **Per-device ordering.** A device's batches arrive on one
//!   connection (decoded in arrival order by one io worker) and all
//!   hash to one shard, so the shard worker applies them in upload
//!   order.
//! * **ACK after apply.** A response slot only becomes ready once the
//!   shard worker has WAL-appended and merged the batch, so a client
//!   that has its ACKs can immediately query and see its own writes.
//!   Responses flush in request order per connection, which is what
//!   lets clients pipeline.
//! * **Sharded state.** Each shard worker owns an
//!   [`AggregationStore`] partition; queries fold the partitions
//!   through the CRDT merge ([`AggregationStore::absorb`]) — the same
//!   fold the cluster coordinator runs across nodes.
//! * **Durability.** With a WAL directory configured, every batch is
//!   appended to the shard's log *before* it merges, so
//!   kill-and-restart replays to the identical aggregate
//!   (`tests/wal.rs`, `tests/cluster.rs`).
//!
//! Backpressure is explicit and non-blocking: when a shard queue is
//! full the io worker answers a retryable [`Response::Nack`] instead of
//! stalling the connection, and the batch is **not** applied.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use crossbeam::queue::SegQueue;
use serde::{Deserialize, Serialize};

use hd_control::FleetController;

use crate::error::TelemetryError;
use crate::fingerprint::{batch_fingerprint, shard_for};
use crate::store::{AggregationStore, IngestOutcome, IngestStats, StoreSnapshot};
use crate::wal::{self, Wal};
use crate::wire::{
    drain_frames_with, encode_frame_in, upload_fingerprint_from_payload, Request, Response,
    UploadBatch, WireVersion, SUPPORTED_SCHEMAS,
};

/// Server tuning knobs. Construct via [`TelemetryServer::builder`],
/// which validates every field.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Shard workers (ingest parallelism); each owns a store partition.
    pub shards: usize,
    /// Bounded queue depth per shard; a full queue NACKs.
    pub queue_capacity: usize,
    /// Backoff hint carried by NACKs, ms.
    pub nack_retry_ms: u64,
    /// I/O workers multiplexing the connections.
    pub io_workers: usize,
    /// Durability directory for per-shard WALs and snapshots; `None`
    /// runs in-memory only.
    pub wal_dir: Option<String>,
    /// This node's id (recorded in WAL headers; the cluster routing
    /// table index).
    pub node_id: u64,
    /// Auto-compact a shard after this many applied batches
    /// (0 = compaction only via [`TelemetryServer::compact`]).
    pub snapshot_every: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            shards: 4,
            queue_capacity: 64,
            nack_retry_ms: 1,
            io_workers: 2,
            wal_dir: None,
            node_id: 0,
            snapshot_every: 0,
        }
    }
}

/// Validating builder for [`TelemetryServer`] — mirrors the
/// `HangDoctorConfig::builder()` pattern. Invalid values are rejected
/// with typed [`TelemetryError::Config`] errors at [`start`], never
/// silently clamped.
///
/// [`start`]: TelemetryServerBuilder::start
#[derive(Clone, Debug)]
pub struct TelemetryServerBuilder {
    addr: String,
    cfg: ServerConfig,
}

impl TelemetryServerBuilder {
    /// Sets the bind address (use `127.0.0.1:0` for an ephemeral test
    /// port).
    pub fn addr(mut self, addr: &str) -> Self {
        self.addr = addr.to_string();
        self
    }

    /// Sets the number of shard workers (store partitions).
    pub fn shards(mut self, v: usize) -> Self {
        self.cfg.shards = v;
        self
    }

    /// Sets the bounded queue depth per shard.
    pub fn queue_capacity(mut self, v: usize) -> Self {
        self.cfg.queue_capacity = v;
        self
    }

    /// Sets the backoff hint carried by NACKs, ms.
    pub fn nack_retry_ms(mut self, v: u64) -> Self {
        self.cfg.nack_retry_ms = v;
        self
    }

    /// Sets the number of I/O workers multiplexing connections.
    pub fn io_workers(mut self, v: usize) -> Self {
        self.cfg.io_workers = v;
        self
    }

    /// Enables durability: per-shard WALs and snapshots under `dir`.
    pub fn wal_dir(mut self, dir: impl Into<String>) -> Self {
        self.cfg.wal_dir = Some(dir.into());
        self
    }

    /// Sets this node's id (WAL headers, cluster routing).
    pub fn node_id(mut self, v: u64) -> Self {
        self.cfg.node_id = v;
        self
    }

    /// Auto-compacts a shard after `v` applied batches (0 disables).
    pub fn snapshot_every(mut self, v: u64) -> Self {
        self.cfg.snapshot_every = v;
        self
    }

    /// Validates the configuration, binds the listener, recovers any
    /// WAL state, and starts the worker threads.
    pub fn start(self) -> Result<TelemetryServer, TelemetryError> {
        if self.cfg.shards == 0 {
            return Err(TelemetryError::Config {
                field: "shards",
                reason: "must be at least 1".to_string(),
            });
        }
        if self.cfg.queue_capacity == 0 {
            return Err(TelemetryError::Config {
                field: "queue_capacity",
                reason: "must be at least 1 (a zero-depth queue NACKs everything)".to_string(),
            });
        }
        if self.cfg.io_workers == 0 {
            return Err(TelemetryError::Config {
                field: "io_workers",
                reason: "must be at least 1".to_string(),
            });
        }
        TelemetryServer::launch(&self.addr, self.cfg)
    }
}

/// Counters the server exports after (or during) a run.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Upload batches accepted into a shard queue.
    pub batches_accepted: u64,
    /// Retryable NACKs sent on queue-full backpressure.
    pub nacks_sent: u64,
    /// Frames that failed to decode.
    pub decode_errors: u64,
    /// Batches recovered from WAL/snapshot replay at startup.
    pub batches_recovered: u64,
    /// Ingest counters folded across the shard stores.
    pub ingest: IngestStats,
}

/// A completed shard apply, routed back to the owning io worker.
struct Completion {
    conn: u64,
    slot: u64,
    result: Result<IngestOutcome, String>,
}

/// One unit of shard work.
enum ShardJob {
    /// Apply a batch (WAL-append first), then complete `(conn, slot)`.
    Ingest {
        batch: UploadBatch,
        /// Ingest fingerprint recovered from the wire bytes, when the
        /// frame was canonical; `None` makes the shard worker
        /// re-serialize.
        fingerprint: Option<u64>,
        conn: u64,
        slot: u64,
        done: Sender<Completion>,
    },
    /// Snapshot the shard store and truncate its WAL.
    Compact {
        done: mpsc::Sender<Result<(), String>>,
    },
}

struct Shared {
    stores: Vec<Mutex<AggregationStore>>,
    cfg: ServerConfig,
    shutdown: AtomicBool,
    killed: AtomicBool,
    connections: AtomicU64,
    batches_accepted: AtomicU64,
    nacks_sent: AtomicU64,
    decode_errors: AtomicU64,
    batches_recovered: AtomicU64,
    /// The embedded control plane (PR 10). Control frames are rare and
    /// cheap relative to ingest, so one mutex — never touched by the
    /// upload path — is plenty.
    controller: Mutex<FleetController>,
}

impl Shared {
    /// Folds every shard partition through the CRDT merge.
    fn fold_stores(&self) -> AggregationStore {
        let mut folded = AggregationStore::new();
        for store in &self.stores {
            folded.absorb(&store.lock().expect("store lock").snapshot());
        }
        folded
    }
}

/// A running ingestion server. Dropping it without [`join`] leaves the
/// threads running; call [`join`] (after a client sent `Shutdown`) for
/// an orderly stop, or [`kill`] to simulate a crash.
///
/// [`join`]: TelemetryServer::join
/// [`kill`]: TelemetryServer::kill
pub struct TelemetryServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    senders: Vec<Sender<ShardJob>>,
    acceptor: Option<JoinHandle<()>>,
    io_workers: Vec<JoinHandle<()>>,
    shard_workers: Vec<JoinHandle<()>>,
}

impl TelemetryServer {
    /// Starts a validating builder seeded with the defaults.
    pub fn builder() -> TelemetryServerBuilder {
        TelemetryServerBuilder {
            addr: "127.0.0.1:0".to_string(),
            cfg: ServerConfig::default(),
        }
    }

    fn launch(addr: &str, cfg: ServerConfig) -> Result<TelemetryServer, TelemetryError> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;

        // Recover (or freshly create) every shard partition. With no
        // WAL directory the stores start empty and nothing touches
        // disk.
        let mut stores = Vec::with_capacity(cfg.shards);
        let mut wals: Vec<Option<Wal>> = Vec::with_capacity(cfg.shards);
        let mut recovered = 0u64;
        for shard in 0..cfg.shards {
            match &cfg.wal_dir {
                Some(dir) => {
                    let dir = PathBuf::from(dir);
                    let (store, wal, replayed) = wal::recover_shard(&dir, cfg.node_id, shard)?;
                    recovered += replayed;
                    stores.push(Mutex::new(store));
                    wals.push(Some(wal));
                }
                None => {
                    stores.push(Mutex::new(AggregationStore::new()));
                    wals.push(None);
                }
            }
        }

        let shared = Arc::new(Shared {
            stores,
            cfg: cfg.clone(),
            shutdown: AtomicBool::new(false),
            killed: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            batches_accepted: AtomicU64::new(0),
            nacks_sent: AtomicU64::new(0),
            decode_errors: AtomicU64::new(0),
            batches_recovered: AtomicU64::new(recovered),
            controller: Mutex::new(FleetController::new()),
        });

        let mut senders = Vec::with_capacity(cfg.shards);
        let mut shard_workers = Vec::with_capacity(cfg.shards);
        for (shard, wal) in wals.into_iter().enumerate() {
            let (tx, rx): (Sender<ShardJob>, Receiver<ShardJob>) = bounded(cfg.queue_capacity);
            let shared_w = Arc::clone(&shared);
            shard_workers.push(
                thread::Builder::new()
                    .name(format!("hd-telemetry-shard-{shard}"))
                    .spawn(move || shard_worker(shard, rx, wal, shared_w))
                    .expect("spawn shard worker"),
            );
            senders.push(tx);
        }

        // New-connection hand-off queues plus a completion channel per
        // io worker. Completion capacity covers every slot the shards
        // can hold plus slack, so shard workers never stall on it.
        let completion_cap = cfg.shards * cfg.queue_capacity + 64;
        let conn_queues: Vec<Arc<SegQueue<TcpStream>>> = (0..cfg.io_workers)
            .map(|_| Arc::new(SegQueue::new()))
            .collect();
        let mut io_workers = Vec::with_capacity(cfg.io_workers);
        for (w, queue) in conn_queues.iter().enumerate() {
            let (done_tx, done_rx): (Sender<Completion>, Receiver<Completion>) =
                bounded(completion_cap);
            let shared_w = Arc::clone(&shared);
            let senders_w = senders.clone();
            let queue_w = Arc::clone(queue);
            io_workers.push(
                thread::Builder::new()
                    .name(format!("hd-telemetry-io-{w}"))
                    .spawn(move || io_worker(queue_w, done_tx, done_rx, senders_w, shared_w, local))
                    .expect("spawn io worker"),
            );
        }

        let acceptor = {
            let shared_a = Arc::clone(&shared);
            let queues_a = conn_queues;
            thread::Builder::new()
                .name("hd-telemetry-acceptor".to_string())
                .spawn(move || acceptor_loop(listener, shared_a, queues_a))
                .expect("spawn acceptor")
        };

        Ok(TelemetryServer {
            addr: local,
            shared,
            senders,
            acceptor: Some(acceptor),
            io_workers,
            shard_workers,
        })
    }

    /// The bound address (resolves the ephemeral port of `:0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The configuration the server runs under.
    pub fn config(&self) -> &ServerConfig {
        &self.shared.cfg
    }

    /// Snapshot of the server counters.
    pub fn stats(&self) -> ServerStats {
        let mut ingest = IngestStats::default();
        for store in &self.shared.stores {
            ingest.merge(store.lock().expect("store lock").stats());
        }
        ServerStats {
            connections: self.shared.connections.load(Ordering::Relaxed),
            batches_accepted: self.shared.batches_accepted.load(Ordering::Relaxed),
            nacks_sent: self.shared.nacks_sent.load(Ordering::Relaxed),
            decode_errors: self.shared.decode_errors.load(Ordering::Relaxed),
            batches_recovered: self.shared.batches_recovered.load(Ordering::Relaxed),
            ingest,
        }
    }

    /// The aggregated top-N report over everything ingested so far
    /// (all shard partitions folded).
    pub fn report(&self, top_n: usize) -> crate::report::TelemetryReport {
        self.shared.fold_stores().report(top_n)
    }

    /// The node's full aggregation state (all shard partitions folded)
    /// — what the wire `Export` request returns.
    pub fn export_state(&self) -> StoreSnapshot {
        self.shared.fold_stores().snapshot()
    }

    /// Compacts every shard: snapshots the store, then truncates the
    /// WAL. No-op (still `Ok`) without a WAL directory.
    pub fn compact(&self) -> Result<(), TelemetryError> {
        let mut waits = Vec::with_capacity(self.senders.len());
        for tx in &self.senders {
            let (done_tx, done_rx) = mpsc::channel();
            if tx.send(ShardJob::Compact { done: done_tx }).is_err() {
                return Err(TelemetryError::Io("shard worker gone".to_string()));
            }
            waits.push(done_rx);
        }
        for rx in waits {
            match rx.recv() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => return Err(TelemetryError::Io(e)),
                Err(_) => return Err(TelemetryError::Io("shard worker gone".to_string())),
            }
        }
        Ok(())
    }

    /// Simulates a crash: stops every thread as fast as possible
    /// WITHOUT snapshotting, flushing queues gracefully, or notifying
    /// clients. In-memory state is discarded; the WAL (if configured)
    /// is all that survives — restarting over the same directory must
    /// replay to the identical aggregate.
    pub fn kill(mut self) {
        self.shared.killed.store(true, Ordering::SeqCst);
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the acceptor out of its blocking accept.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for w in self.io_workers.drain(..) {
            let _ = w.join();
        }
        self.senders.clear();
        for w in self.shard_workers.drain(..) {
            let _ = w.join();
        }
    }

    /// Waits for the acceptor, io workers, and shard workers to exit,
    /// then returns the final stats. Requires a client to have sent
    /// [`Request::Shutdown`] first; connections still open at that
    /// point must close before the io workers can drain.
    pub fn join(mut self) -> ServerStats {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for w in self.io_workers.drain(..) {
            let _ = w.join();
        }
        // Release the server's own queue handles; the shard workers
        // exit once the last io-worker clone is gone and the queue is
        // empty.
        self.senders.clear();
        for w in self.shard_workers.drain(..) {
            let _ = w.join();
        }
        self.stats()
    }
}

fn acceptor_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    queues: Vec<Arc<SegQueue<TcpStream>>>,
) {
    let mut rr = 0usize;
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        let _ = stream.set_nodelay(true);
        shared.connections.fetch_add(1, Ordering::Relaxed);
        queues[rr % queues.len()].push(stream);
        rr = rr.wrapping_add(1);
    }
}

/// One queued response on a connection. Responses flush strictly in
/// request order; `slot` entries wait for their shard completion.
struct PendingEntry {
    slot: Option<u64>,
    response: Option<Response>,
    version: WireVersion,
}

struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    pending: VecDeque<PendingEntry>,
    /// Dialect of the most recent request (responses echo it).
    version: WireVersion,
    /// Stop reading (clean EOF or poisoned by a decode error).
    closed_read: bool,
    /// Close the socket once everything queued has flushed.
    close_after_flush: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            rbuf: Vec::with_capacity(16 * 1024),
            wbuf: Vec::new(),
            pending: VecDeque::new(),
            version: WireVersion::V2,
            closed_read: false,
            close_after_flush: false,
        }
    }

    fn push_ready(&mut self, response: Response) {
        self.pending.push_back(PendingEntry {
            slot: None,
            response: Some(response),
            version: self.version,
        });
    }

    fn push_waiting(&mut self, slot: u64) {
        self.pending.push_back(PendingEntry {
            slot: Some(slot),
            response: None,
            version: self.version,
        });
    }
}

/// The nonblocking multiplex loop: drains new connections, shard
/// completions, readable bytes (batch-decoding every complete frame),
/// and writable responses — then sleeps briefly only when a pass made
/// no progress.
fn io_worker(
    new_conns: Arc<SegQueue<TcpStream>>,
    done_tx: Sender<Completion>,
    done_rx: Receiver<Completion>,
    senders: Vec<Sender<ShardJob>>,
    shared: Arc<Shared>,
    local: SocketAddr,
) {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_conn_id = 0u64;
    let mut next_slot = 0u64;
    let mut scratch = [0u8; 64 * 1024];
    loop {
        if shared.killed.load(Ordering::SeqCst) {
            return; // crash simulation: drop everything on the floor
        }
        let mut progressed = false;

        while let Some(stream) = new_conns.pop() {
            conns.insert(next_conn_id, Conn::new(stream));
            next_conn_id += 1;
            progressed = true;
        }

        while let Ok(done) = done_rx.try_recv() {
            if let Some(conn) = conns.get_mut(&done.conn) {
                if let Some(entry) = conn.pending.iter_mut().find(|e| e.slot == Some(done.slot)) {
                    entry.response = Some(match done.result {
                        Ok(outcome) => Response::Ack {
                            fingerprint: outcome.fingerprint,
                            duplicate: outcome.duplicate,
                        },
                        Err(e) => Response::Error(e),
                    });
                    entry.slot = None;
                }
            }
            progressed = true;
        }

        let mut dead: Vec<u64> = Vec::new();
        let conn_ids: Vec<u64> = conns.keys().copied().collect();
        for id in conn_ids {
            let conn = conns.get_mut(&id).expect("conn exists");

            // Read everything available, then decode every complete
            // frame in one pass.
            if !conn.closed_read {
                let mut read_any = false;
                loop {
                    match conn.stream.read(&mut scratch) {
                        Ok(0) => {
                            conn.closed_read = true;
                            conn.close_after_flush = true;
                            break;
                        }
                        Ok(n) => {
                            conn.rbuf.extend_from_slice(&scratch[..n]);
                            read_any = true;
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            dead.push(id);
                            break;
                        }
                    }
                }
                if dead.last() == Some(&id) {
                    continue;
                }
                if read_any {
                    progressed = true;
                    // Fingerprint upload bodies straight off the wire
                    // while the payload bytes are still in hand — the
                    // shard worker then skips re-serializing the batch.
                    let drained =
                        drain_frames_with::<Request, _>(&mut conn.rbuf, |payload, req, version| {
                            match req {
                                Request::Upload(_) => {
                                    upload_fingerprint_from_payload(payload, version)
                                }
                                _ => None,
                            }
                        });
                    match drained {
                        Ok(requests) => {
                            for (request, version, fingerprint) in requests {
                                conn.version = version;
                                handle_request(
                                    request,
                                    fingerprint,
                                    id,
                                    conn,
                                    &mut next_slot,
                                    &senders,
                                    &done_tx,
                                    &shared,
                                    local,
                                );
                            }
                        }
                        Err(err) => {
                            shared.decode_errors.fetch_add(1, Ordering::Relaxed);
                            conn.push_ready(Response::Error(err.to_string()));
                            conn.closed_read = true;
                            conn.close_after_flush = true;
                        }
                    }
                }
            }

            // Move the ready prefix of the pending queue into the
            // write buffer (responses flush in request order).
            while matches!(conn.pending.front(), Some(e) if e.response.is_some()) {
                let entry = conn.pending.pop_front().expect("front checked");
                let frame = encode_frame_in(entry.version, &entry.response.expect("response set"));
                conn.wbuf.extend_from_slice(&frame);
                progressed = true;
            }

            // Flush as much of the write buffer as the socket takes.
            if !conn.wbuf.is_empty() {
                match conn.stream.write(&conn.wbuf) {
                    Ok(0) => dead.push(id),
                    Ok(n) => {
                        conn.wbuf.drain(..n);
                        progressed = true;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => dead.push(id),
                }
            }

            let conn = conns.get_mut(&id).expect("conn exists");
            if conn.close_after_flush && conn.wbuf.is_empty() && conn.pending.is_empty() {
                dead.push(id);
            }
        }
        for id in dead {
            conns.remove(&id);
            progressed = true;
        }

        if shared.shutdown.load(Ordering::SeqCst) && conns.is_empty() && new_conns.is_empty() {
            return;
        }
        if !progressed {
            // Nothing moved: yield the core instead of spinning. 200 µs
            // bounds idle-connection latency without starving the shard
            // workers on small machines.
            thread::sleep(Duration::from_micros(200));
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_request(
    request: Request,
    wire_fingerprint: Option<u64>,
    conn_id: u64,
    conn: &mut Conn,
    next_slot: &mut u64,
    senders: &[Sender<ShardJob>],
    done_tx: &Sender<Completion>,
    shared: &Shared,
    local: SocketAddr,
) {
    match request {
        Request::Upload(batch) => {
            let shard = shard_for(&batch.app, batch.device, senders.len());
            let slot = *next_slot;
            *next_slot += 1;
            match senders[shard].try_send(ShardJob::Ingest {
                batch,
                fingerprint: wire_fingerprint,
                conn: conn_id,
                slot,
                done: done_tx.clone(),
            }) {
                Ok(()) => {
                    shared.batches_accepted.fetch_add(1, Ordering::Relaxed);
                    conn.push_waiting(slot);
                }
                Err(TrySendError::Full(_)) => {
                    shared.nacks_sent.fetch_add(1, Ordering::Relaxed);
                    conn.push_ready(Response::Nack {
                        retry_after_ms: shared.cfg.nack_retry_ms,
                    });
                }
                Err(TrySendError::Disconnected(_)) => {
                    conn.push_ready(Response::Error("shard worker gone".to_string()));
                }
            }
        }
        Request::Query { top_n } => {
            let report = shared.fold_stores().report(top_n);
            conn.push_ready(Response::Report(report));
        }
        Request::Export => {
            let snapshot = shared.fold_stores().snapshot();
            conn.push_ready(Response::State(snapshot));
        }
        Request::Hello { supported } => match WireVersion::negotiate(&supported) {
            Some(version) => {
                conn.version = version;
                conn.push_ready(Response::Welcome {
                    schema: version.tag().to_string(),
                });
            }
            None => {
                conn.push_ready(Response::Error(format!(
                    "no common dialect: server speaks {SUPPORTED_SCHEMAS:?}"
                )));
            }
        },
        Request::Control(creq) => {
            let response = shared
                .controller
                .lock()
                .expect("controller lock")
                .handle(creq);
            conn.push_ready(Response::Control(response));
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            conn.push_ready(Response::Bye);
            conn.close_after_flush = true;
            // Wake the acceptor out of its blocking accept; it sees the
            // flag on the next iteration and exits.
            let _ = TcpStream::connect(local);
        }
    }
}

fn shard_worker(shard: usize, rx: Receiver<ShardJob>, mut wal: Option<Wal>, shared: Arc<Shared>) {
    let mut since_snapshot = 0u64;
    while let Ok(job) = rx.recv() {
        match job {
            ShardJob::Ingest {
                batch,
                fingerprint,
                conn,
                slot,
                done,
            } => {
                let fingerprint = fingerprint.unwrap_or_else(|| batch_fingerprint(&batch));
                let mut store = shared.stores[shard].lock().expect("store lock");
                let result = if store.contains(fingerprint) {
                    Ok(store.ingest_prehashed(&batch, fingerprint))
                } else {
                    // WAL-append BEFORE the merge: a crash after the
                    // append replays the batch; a crash before it loses
                    // an un-ACKed batch the uploader will retry.
                    match wal.as_mut().map(|w| w.append(fingerprint, &batch)) {
                        Some(Err(e)) => Err(format!("wal append failed: {e}")),
                        _ => {
                            since_snapshot += 1;
                            Ok(store.ingest_prehashed(&batch, fingerprint))
                        }
                    }
                };
                drop(store);
                // The io worker may have dropped the connection; the
                // apply above still counts.
                let _ = done.send(Completion { conn, slot, result });

                if let Some(w) = wal.as_mut() {
                    if shared.cfg.snapshot_every > 0
                        && since_snapshot >= shared.cfg.snapshot_every
                        && compact_shard(shard, w, &shared).is_ok()
                    {
                        since_snapshot = 0;
                    }
                }
            }
            ShardJob::Compact { done } => {
                let result = match wal.as_mut() {
                    Some(w) => compact_shard(shard, w, &shared).map_err(|e| e.to_string()),
                    None => Ok(()),
                };
                if result.is_ok() {
                    since_snapshot = 0;
                }
                let _ = done.send(result);
            }
        }
    }
}

/// Snapshot-then-truncate. The snapshot rename lands before the WAL
/// reset, so a crash in between replays snapshot + stale records —
/// which the snapshot's fingerprint set absorbs as duplicates.
fn compact_shard(shard: usize, wal: &mut Wal, shared: &Shared) -> Result<(), TelemetryError> {
    let snapshot = shared.stores[shard].lock().expect("store lock").snapshot();
    let dir = wal
        .path()
        .parent()
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    wal::write_snapshot(&wal::snapshot_path(&dir, shard), &snapshot)?;
    wal.reset(shared.cfg.node_id, shard)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{encode_frame, read_frame, write_frame, TelemetryItem};
    use hangdoctor::HangBugReport;

    fn upload_once(addr: SocketAddr, batch: &UploadBatch) -> Response {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let frame = encode_frame(&Request::Upload(batch.clone()));
        write_frame(&mut stream, &frame).expect("write");
        read_frame(&mut stream).expect("response")
    }

    fn shutdown(addr: SocketAddr) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let frame = encode_frame(&Request::Shutdown);
        write_frame(&mut stream, &frame).expect("write");
        let resp: Response = read_frame(&mut stream).expect("bye");
        assert!(matches!(resp, Response::Bye));
    }

    #[test]
    fn upload_query_shutdown_cycle() {
        let server = TelemetryServer::builder().start().unwrap();
        let addr = server.local_addr();

        let batch = UploadBatch {
            app: "app".to_string(),
            device: 1,
            seq: 0,
            items: vec![TelemetryItem::Report(HangBugReport::new("app"))],
        };
        match upload_once(addr, &batch) {
            Response::Ack { duplicate, .. } => assert!(!duplicate),
            other => panic!("expected Ack, got {other:?}"),
        }
        // Same batch again: absorbed as a duplicate.
        match upload_once(addr, &batch) {
            Response::Ack { duplicate, .. } => assert!(duplicate),
            other => panic!("expected Ack, got {other:?}"),
        }

        let mut stream = TcpStream::connect(addr).unwrap();
        let frame = encode_frame(&Request::Query { top_n: 5 });
        write_frame(&mut stream, &frame).unwrap();
        match read_frame::<Response>(&mut stream).unwrap() {
            Response::Report(report) => {
                assert_eq!(report.devices, 1);
                assert_eq!(report.apps, 1);
            }
            other => panic!("expected Report, got {other:?}"),
        }
        drop(stream);

        shutdown(addr);
        let stats = server.join();
        assert_eq!(stats.ingest.batches_applied, 1);
        assert_eq!(stats.ingest.duplicates_absorbed, 1);
        assert_eq!(stats.nacks_sent, 0);
    }

    #[test]
    fn malformed_frame_gets_a_typed_error_response() {
        let server = TelemetryServer::builder().start().unwrap();
        let addr = server.local_addr();

        let mut stream = TcpStream::connect(addr).unwrap();
        let mut bad = encode_frame(&Request::Query { top_n: 1 });
        bad[0] = b'Z';
        write_frame(&mut stream, &bad).unwrap();
        match read_frame::<Response>(&mut stream).unwrap() {
            Response::Error(msg) => assert!(msg.contains("magic"), "got: {msg}"),
            other => panic!("expected Error, got {other:?}"),
        }
        drop(stream);

        shutdown(addr);
        let stats = server.join();
        assert_eq!(stats.decode_errors, 1);
    }

    #[test]
    fn builder_rejects_zero_shards_and_zero_queue_with_typed_errors() {
        let rejected_field = |r: Result<TelemetryServer, TelemetryError>| match r {
            Err(TelemetryError::Config { field, .. }) => field,
            Err(other) => panic!("expected Config error, got {other:?}"),
            Ok(_) => panic!("expected Config error, got a running server"),
        };
        let field = rejected_field(TelemetryServer::builder().shards(0).start());
        assert_eq!(field, "shards");
        let field = rejected_field(TelemetryServer::builder().queue_capacity(0).start());
        assert_eq!(field, "queue_capacity");
        let field = rejected_field(TelemetryServer::builder().io_workers(0).start());
        assert_eq!(field, "io_workers");
    }

    #[test]
    fn hello_negotiates_the_newest_common_dialect() {
        let server = TelemetryServer::builder().start().unwrap();
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        let hello = Request::Hello {
            supported: vec![
                crate::wire::SCHEMA_V1.to_string(),
                crate::wire::SCHEMA.to_string(),
            ],
        };
        write_frame(&mut stream, &encode_frame(&hello)).unwrap();
        match read_frame::<Response>(&mut stream).unwrap() {
            Response::Welcome { schema } => assert_eq!(schema, crate::wire::SCHEMA),
            other => panic!("expected Welcome, got {other:?}"),
        }
        drop(stream);
        shutdown(addr);
        server.join();
    }

    #[test]
    fn pipelined_uploads_ack_in_request_order() {
        let server = TelemetryServer::builder().shards(2).start().unwrap();
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        // Fire 8 uploads without reading a single response.
        let mut fingerprints = Vec::new();
        for seq in 0..8u64 {
            let batch = UploadBatch {
                app: "pipeline".to_string(),
                device: 9,
                seq,
                items: vec![TelemetryItem::Report(HangBugReport::new("pipeline"))],
            };
            fingerprints.push(crate::fingerprint::batch_fingerprint(&batch));
            write_frame(&mut stream, &encode_frame(&Request::Upload(batch))).unwrap();
        }
        // Responses come back in request order.
        for fp in fingerprints {
            match read_frame::<Response>(&mut stream).unwrap() {
                Response::Ack { fingerprint, .. } => assert_eq!(fingerprint, fp),
                other => panic!("expected Ack, got {other:?}"),
            }
        }
        drop(stream);
        shutdown(addr);
        let stats = server.join();
        assert_eq!(stats.batches_accepted, 8);
    }
}
