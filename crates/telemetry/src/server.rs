//! The TCP ingestion server.
//!
//! Thread layout:
//!
//! ```text
//! acceptor ──► one handler thread per connection
//!                 │  shard = fnv(app, device) % shards
//!                 ▼
//!          bounded crossbeam channel per shard   ◄── explicit backpressure:
//!                 │                                  try_send Full → NACK
//!                 ▼
//!          shard worker ──► Mutex<AggregationStore>
//!                 │
//!                 └──► per-job reply channel → handler sends ACK
//! ```
//!
//! Two properties carry the correctness argument:
//!
//! * **Per-device ordering.** A device's batches all hash to one shard
//!   and one connection delivers them in order, so the shard worker
//!   applies them in upload order.
//! * **ACK after apply.** The handler only ACKs once the shard worker
//!   has merged the batch into the store, so a client that has its ACKs
//!   can immediately query and see its own writes — no flush barrier.
//!
//! Backpressure is explicit and non-blocking: when a shard queue is
//! full the handler answers a retryable [`Response::Nack`] instead of
//! stalling the connection, and the batch is **not** applied. The
//! uploader's deterministic backoff makes the retry converge.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use serde::{Deserialize, Serialize};

use crate::fingerprint::shard_for;
use crate::store::{AggregationStore, IngestOutcome, IngestStats};
use crate::wire::{
    encode_frame, read_frame, write_frame, FrameError, Request, Response, UploadBatch,
};

/// Server tuning knobs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Shard workers (ingest parallelism).
    pub shards: usize,
    /// Bounded queue depth per shard; a full queue NACKs.
    pub queue_capacity: usize,
    /// Backoff hint carried by NACKs, ms.
    pub nack_retry_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            shards: 4,
            queue_capacity: 64,
            nack_retry_ms: 1,
        }
    }
}

/// Counters the server exports after (or during) a run.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Upload batches accepted into a shard queue.
    pub batches_accepted: u64,
    /// Retryable NACKs sent on queue-full backpressure.
    pub nacks_sent: u64,
    /// Frames that failed to decode.
    pub decode_errors: u64,
    /// Ingest counters from the aggregation store.
    pub ingest: IngestStats,
}

/// One unit of shard work: the batch plus the reply channel the handler
/// blocks on for ACK-after-apply.
struct ShardJob {
    batch: UploadBatch,
    reply: mpsc::Sender<IngestOutcome>,
}

struct Shared {
    store: Mutex<AggregationStore>,
    shutdown: AtomicBool,
    connections: AtomicU64,
    batches_accepted: AtomicU64,
    nacks_sent: AtomicU64,
    decode_errors: AtomicU64,
}

/// A running ingestion server. Dropping it without [`join`] leaves the
/// threads running; call [`join`] (after a client sent `Shutdown`) for
/// an orderly stop.
///
/// [`join`]: TelemetryServer::join
pub struct TelemetryServer {
    addr: SocketAddr,
    cfg: ServerConfig,
    shared: Arc<Shared>,
    senders: Vec<Sender<ShardJob>>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl TelemetryServer {
    /// Binds `addr` (use `127.0.0.1:0` for an ephemeral test port) and
    /// starts the acceptor and shard workers.
    pub fn start(addr: &str, cfg: ServerConfig) -> io::Result<TelemetryServer> {
        let shards = cfg.shards.max(1);
        let capacity = cfg.queue_capacity.max(1);
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            store: Mutex::new(AggregationStore::new()),
            shutdown: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            batches_accepted: AtomicU64::new(0),
            nacks_sent: AtomicU64::new(0),
            decode_errors: AtomicU64::new(0),
        });

        let mut senders = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx): (Sender<ShardJob>, Receiver<ShardJob>) = bounded(capacity);
            let shared_w = Arc::clone(&shared);
            workers.push(
                thread::Builder::new()
                    .name(format!("hd-telemetry-shard-{shard}"))
                    .spawn(move || shard_worker(rx, shared_w))
                    .expect("spawn shard worker"),
            );
            senders.push(tx);
        }

        let acceptor = {
            let shared_a = Arc::clone(&shared);
            let senders_a = senders.clone();
            let cfg_a = cfg.clone();
            thread::Builder::new()
                .name("hd-telemetry-acceptor".to_string())
                .spawn(move || acceptor_loop(listener, local, shared_a, senders_a, cfg_a))
                .expect("spawn acceptor")
        };

        Ok(TelemetryServer {
            addr: local,
            cfg,
            shared,
            senders,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves the ephemeral port of `:0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The configuration the server runs under.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Snapshot of the server counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            connections: self.shared.connections.load(Ordering::Relaxed),
            batches_accepted: self.shared.batches_accepted.load(Ordering::Relaxed),
            nacks_sent: self.shared.nacks_sent.load(Ordering::Relaxed),
            decode_errors: self.shared.decode_errors.load(Ordering::Relaxed),
            ingest: self
                .shared
                .store
                .lock()
                .expect("store lock")
                .stats()
                .clone(),
        }
    }

    /// The aggregated top-N report over everything ingested so far.
    pub fn report(&self, top_n: usize) -> crate::report::TelemetryReport {
        self.shared.store.lock().expect("store lock").report(top_n)
    }

    /// Waits for the acceptor and shard workers to exit, then returns
    /// the final stats. Requires a client to have sent
    /// [`Request::Shutdown`] first; connections still open at that
    /// point must close before the shard workers can drain.
    pub fn join(mut self) -> ServerStats {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Release the server's own queue handles; the workers exit once
        // the last handler clone is gone and the queue is empty.
        self.senders.clear();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.stats()
    }
}

fn acceptor_loop(
    listener: TcpListener,
    local: SocketAddr,
    shared: Arc<Shared>,
    senders: Vec<Sender<ShardJob>>,
    cfg: ServerConfig,
) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        shared.connections.fetch_add(1, Ordering::Relaxed);
        let shared_h = Arc::clone(&shared);
        let senders_h = senders.clone();
        let cfg_h = cfg.clone();
        let _ = thread::Builder::new()
            .name("hd-telemetry-conn".to_string())
            .spawn(move || handle_connection(stream, local, shared_h, senders_h, cfg_h));
    }
}

fn handle_connection(
    mut stream: TcpStream,
    local: SocketAddr,
    shared: Arc<Shared>,
    senders: Vec<Sender<ShardJob>>,
    cfg: ServerConfig,
) {
    loop {
        let request: Request = match read_frame(&mut stream) {
            Ok(r) => r,
            Err(FrameError::Truncated { got: 0, .. }) => return, // clean close
            Err(err) => {
                shared.decode_errors.fetch_add(1, Ordering::Relaxed);
                let frame = encode_frame(&Response::Error(err.to_string()));
                let _ = write_frame(&mut stream, &frame);
                return;
            }
        };
        let response = match request {
            Request::Upload(batch) => {
                let shard = shard_for(&batch.app, batch.device, senders.len());
                let (reply_tx, reply_rx) = mpsc::channel();
                match senders[shard].try_send(ShardJob {
                    batch,
                    reply: reply_tx,
                }) {
                    Ok(()) => {
                        shared.batches_accepted.fetch_add(1, Ordering::Relaxed);
                        match reply_rx.recv() {
                            Ok(outcome) => Response::Ack {
                                fingerprint: outcome.fingerprint,
                                duplicate: outcome.duplicate,
                            },
                            Err(_) => Response::Error("shard worker gone".to_string()),
                        }
                    }
                    Err(TrySendError::Full(_)) => {
                        shared.nacks_sent.fetch_add(1, Ordering::Relaxed);
                        Response::Nack {
                            retry_after_ms: cfg.nack_retry_ms,
                        }
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        Response::Error("shard worker gone".to_string())
                    }
                }
            }
            Request::Query { top_n } => {
                let report = shared.store.lock().expect("store lock").report(top_n);
                Response::Report(report)
            }
            Request::Shutdown => {
                shared.shutdown.store(true, Ordering::SeqCst);
                let frame = encode_frame(&Response::Bye);
                let _ = write_frame(&mut stream, &frame);
                // Wake the acceptor out of its blocking accept; it sees
                // the flag on the next iteration and exits.
                let _ = TcpStream::connect(local);
                return;
            }
        };
        let frame = encode_frame(&response);
        if write_frame(&mut stream, &frame).is_err() {
            return;
        }
    }
}

fn shard_worker(rx: Receiver<ShardJob>, shared: Arc<Shared>) {
    while let Ok(job) = rx.recv() {
        let outcome = shared.store.lock().expect("store lock").ingest(&job.batch);
        // The handler may have died with its connection; the apply
        // above still counts.
        let _ = job.reply.send(outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::TelemetryItem;
    use hangdoctor::HangBugReport;

    fn upload_once(addr: SocketAddr, batch: &UploadBatch) -> Response {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let frame = encode_frame(&Request::Upload(batch.clone()));
        write_frame(&mut stream, &frame).expect("write");
        read_frame(&mut stream).expect("response")
    }

    fn shutdown(addr: SocketAddr) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let frame = encode_frame(&Request::Shutdown);
        write_frame(&mut stream, &frame).expect("write");
        let resp: Response = read_frame(&mut stream).expect("bye");
        assert!(matches!(resp, Response::Bye));
    }

    #[test]
    fn upload_query_shutdown_cycle() {
        let server = TelemetryServer::start("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = server.local_addr();

        let batch = UploadBatch {
            app: "app".to_string(),
            device: 1,
            seq: 0,
            items: vec![TelemetryItem::Report(HangBugReport::new("app"))],
        };
        match upload_once(addr, &batch) {
            Response::Ack { duplicate, .. } => assert!(!duplicate),
            other => panic!("expected Ack, got {other:?}"),
        }
        // Same batch again: absorbed as a duplicate.
        match upload_once(addr, &batch) {
            Response::Ack { duplicate, .. } => assert!(duplicate),
            other => panic!("expected Ack, got {other:?}"),
        }

        let mut stream = TcpStream::connect(addr).unwrap();
        let frame = encode_frame(&Request::Query { top_n: 5 });
        write_frame(&mut stream, &frame).unwrap();
        match read_frame::<Response>(&mut stream).unwrap() {
            Response::Report(report) => {
                assert_eq!(report.devices, 1);
                assert_eq!(report.apps, 1);
            }
            other => panic!("expected Report, got {other:?}"),
        }
        drop(stream);

        shutdown(addr);
        let stats = server.join();
        assert_eq!(stats.ingest.batches_applied, 1);
        assert_eq!(stats.ingest.duplicates_absorbed, 1);
        assert_eq!(stats.nacks_sent, 0);
    }

    #[test]
    fn malformed_frame_gets_a_typed_error_response() {
        let server = TelemetryServer::start("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = server.local_addr();

        let mut stream = TcpStream::connect(addr).unwrap();
        let mut bad = encode_frame(&Request::Query { top_n: 1 });
        bad[0] = b'Z';
        write_frame(&mut stream, &bad).unwrap();
        match read_frame::<Response>(&mut stream).unwrap() {
            Response::Error(msg) => assert!(msg.contains("magic"), "got: {msg}"),
            other => panic!("expected Error, got {other:?}"),
        }
        drop(stream);

        shutdown(addr);
        let stats = server.join();
        assert_eq!(stats.decode_errors, 1);
    }
}
